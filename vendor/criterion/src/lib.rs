//! A self-contained, dependency-free stand-in for the subset of the
//! `criterion` API this workspace's bench targets use.
//!
//! The build environment has no network access, so the real crates.io
//! `criterion` cannot be fetched. This shim keeps the benches *running*: it
//! honours warm-up and measurement budgets, times the routine over repeated
//! samples, and prints a compact `min/mean/max` summary per benchmark id.
//! HTML reports, statistical analysis and command-line filtering are
//! intentionally not implemented.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Target number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Time spent running the routine before any sample is recorded.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut b);
        report(id, &b.samples);
        self
    }
}

/// Collects timing samples for one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`: warm-up first, then up to `sample_size` samples
    /// within the measurement budget (always at least one).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_end = Instant::now() + self.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warm_end {
                break;
            }
        }
        let budget_end = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if Instant::now() >= budget_end {
                break;
            }
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {id:<40} (no samples — routine never called iter)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "bench {id:<40} {:>12} .. {:>12} (mean {:>12}, n={})",
        fmt_dur(*min),
        fmt_dur(*max),
        fmt_dur(mean),
        samples.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring the two forms of
/// `criterion::criterion_group!` this workspace uses.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut runs = 0u32;
        c.bench_function("shim/smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= 3, "warm-up plus samples must run the routine");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_dur(Duration::from_micros(1500)), "1.50 ms");
    }
}
