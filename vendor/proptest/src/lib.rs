//! A self-contained, dependency-free stand-in for the subset of the
//! `proptest` API this workspace uses.
//!
//! The build environment has no network access and no registry cache, so the
//! real crates.io `proptest` cannot be fetched. This shim keeps the property
//! tests *running* (not just compiling): strategies generate pseudo-random
//! values from a deterministic per-test RNG and every test body is executed
//! for the configured number of cases. Shrinking and failure persistence are
//! intentionally not implemented — a failing case panics with the generated
//! inputs' `Debug` representation via the normal assertion message.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Mirror of `proptest::test_runner::ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Resolves the case count, honouring the `PROPTEST_CASES` env override
    /// the real crate supports.
    #[must_use]
    pub fn resolve_cases(configured: u32) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(configured),
            Err(_) => configured,
        }
    }

    /// SplitMix64 — tiny, fast, and statistically fine for test-input
    /// generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded deterministically from a test name and case
        /// index, so failures reproduce run-to-run.
        #[must_use]
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
            for b in test_name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }
}

use test_runner::TestRng;

/// Core strategy trait and combinators.
pub mod strategy {
    use super::*;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike the real crate there is no value tree / shrinking; `generate`
    /// directly produces one value.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Recursive strategies: `depth` levels of `recurse` wrapped around
        /// `self` as the leaf. The size/branch hints of the real API are
        /// accepted and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut strat = base.clone();
            for _ in 0..depth {
                strat = Union::new(vec![base.clone(), recurse(strat).boxed()]).boxed();
            }
            strat
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Arc::new(self) }
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T> {
        pub(crate) inner: Arc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the wrapped value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between alternatives — the engine behind `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty option list.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as u128 % span as u128) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    let off = (rng.next_u64() as u128 % span as u128) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strings from a (tiny subset of) regex patterns: sequences of literal
    /// characters and `[...]` classes, each optionally followed by `{m}` or
    /// `{m,n}`. Covers the class patterns used in this workspace.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One item: a class or a literal character.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close =
                    chars[i..].iter().position(|&c| c == ']').expect("unclosed [ in pattern") + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional {m} / {m,n} quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close =
                    chars[i..].iter().position(|&c| c == '}').expect("unclosed {{ in pattern") + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                    None => {
                        let m: usize = body.parse().unwrap();
                        (m, m)
                    }
                }
            } else {
                (1usize, 1usize)
            };
            let reps = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..reps {
                let k = rng.below(alphabet.len() as u64) as usize;
                out.push(alphabet[k]);
            }
        }
        out
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($(ref $name,)+) = *self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::*;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Produces an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> strategy::Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let n = self.size.lo + rng.below(span as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec`s of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Bias toward Some like the real crate (3:1).
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Option`s of `inner` values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Sampling helpers (`proptest::sample`).
pub mod sample {
    use super::arbitrary::Arbitrary;
    use super::TestRng;

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(usize);

    impl Index {
        /// Resolves against a collection of length `len` (must be non-zero).
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

/// Everything tests usually import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = $crate::test_runner::resolve_cases(config.cases);
            for case in 0..cases {
                let mut rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

/// Rejects the current case when a precondition fails. The real crate
/// discards the input and draws a replacement; this shim simply skips to
/// the next case (the body is inlined in the per-case loop, so `continue`
/// has exactly that effect). Heavily-rejecting preconditions therefore
/// thin the effective case count rather than resample — acceptable for
/// the filtering this workspace does.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            continue;
        }
    };
}

/// `assert!` under the proptest spelling (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under the proptest spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under the proptest spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategy arms sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

// Unused-import silencer for the `Debug` bound used in doc text.
#[allow(dead_code)]
fn _assert_debug<T: Debug>() {}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = super::test_runner::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-100i32..100), &mut rng);
            assert!((-100..100).contains(&v));
            let w = Strategy::generate(&(1u8..=8), &mut rng);
            assert!((1..=8).contains(&w));
        }
    }

    #[test]
    fn pattern_strings_match_shape() {
        let mut rng = super::test_runner::TestRng::for_case("pattern", 3);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z_][a-z0-9_]{0,24}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 25);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase() || first == '_');
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_binds_arguments(x in 0u64..50, v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(x < 50);
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn assume_skips_rejected_cases(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0, "odd case must have been skipped: {x}");
        }
    }
}
