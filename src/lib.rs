//! # DEFLECTION — delegated and flexible in-enclave code verification
//!
//! A full-system Rust reproduction of *"Practical and Efficient in-Enclave
//! Verification of Privacy Compliance"* (DSN 2021). This facade crate
//! re-exports the workspace crates under one namespace; see the individual
//! crates for details:
//!
//! * [`crypto`] — SHA-256 / HMAC / HKDF / ChaCha20-Poly1305 / DH substrate,
//! * [`isa`] — the executable x86-64-shaped instruction-set model,
//! * [`obj`] — relocatable object format and static linker,
//! * [`lang`] — the DCL compiler standing in for Clang/LLVM,
//! * [`sgx`] — the simulated SGX platform (EPC, AEX/SSA, measurement),
//! * [`attest`] — quotes, attestation service, RA-TLS-style sessions,
//! * [`core`] — the paper's contribution: producer, consumer, runtime,
//! * [`workloads`] — nBench kernels and macro-benchmark applications,
//! * [`telemetry`] — zero-dependency counters/histograms/span timers,
//! * [`trend`] — the BENCH/METRICS trend reporter behind `bin/trend`.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`, which compiles a DCL program, instruments it
//! with the full policy set, verifies it inside the bootstrap enclave, and
//! runs it on attested, encrypted user data.

pub mod profiling;
pub mod trend;

pub use deflection_attest as attest;
pub use deflection_bench as bench;
pub use deflection_core as core;
pub use deflection_crypto as crypto;
pub use deflection_isa as isa;
pub use deflection_lang as lang;
pub use deflection_obj as obj;
pub use deflection_sgx_sim as sgx;
pub use deflection_telemetry as telemetry;
pub use deflection_workloads as workloads;
