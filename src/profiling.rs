//! Host-side aggregation of the VM sampling profiler (DESIGN.md §5j).
//!
//! The VM collects `(pc, weight)` samples in a local buffer and folds them
//! once at run exit; this module runs a workload under the profiler and
//! attributes the folded samples to functions via
//! [`Disassembly::function_of_offset`], producing a hot-function table and
//! flamegraph-ready collapsed stacks. Everything here is untrusted host
//! tooling: it consumes the run report and the profile after the ECall
//! returns, and none of it enters the TCB.
//!
//! [`Disassembly::function_of_offset`]: deflection_isa::Disassembly::function_of_offset

use crate::core::consumer::{discover, resolve};
use crate::core::policy::{Manifest, PolicySet};
use crate::core::producer::produce_for_layout;
use crate::core::runtime::BootstrapEnclave;
use crate::sgx::layout::{EnclaveLayout, MemConfig};
use crate::sgx::vm::{RunExit, VmProfile};
use crate::workloads::nbench::Kernel;
use std::collections::HashMap;

/// Default sampling interval: one PC sample per this many executed
/// instructions. Small enough to resolve short nBench helpers, large
/// enough that the sample buffer stays tiny.
pub const DEFAULT_INTERVAL: u64 = 64;

/// Self-time attributed to one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionProfile {
    /// Symbol name when the object file has one for the entry, otherwise
    /// `fn_<index>@<offset>`.
    pub name: String,
    /// Code-relative offset of the function entry.
    pub entry: usize,
    /// Instructions attributed to pcs inside this function.
    pub self_weight: u64,
    /// Number of samples that landed in this function.
    pub samples: usize,
}

/// One heatmap entry: a pc that tripped a guard or left a trace early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeatEntry {
    /// Function containing the pc.
    pub function: String,
    /// Code-relative offset of the pc.
    pub offset: usize,
    /// How many times it fired.
    pub count: u64,
}

/// An attributed profile of one workload run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Workload name (flamegraph root frame).
    pub kernel: String,
    /// Instructions executed under the profiler (run total minus any
    /// processing-time-blur padding, which is idle by construction).
    pub instructions: u64,
    /// Sum of all sample weights — equals `instructions` by the profiler's
    /// fold-at-exit invariant.
    pub total_weight: u64,
    /// Per-function self-time, heaviest first (ties broken by entry
    /// offset so the table is deterministic).
    pub functions: Vec<FunctionProfile>,
    /// Guard-trip heatmap (policy aborts and faults), hottest first.
    pub guard_trips: Vec<HeatEntry>,
    /// Trace side-exit heatmap, hottest first.
    pub side_exits: Vec<HeatEntry>,
}

impl ProfileReport {
    /// Renders the hot-function table.
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>12} {:>7} {:>8}\n",
            "function", "self instrs", "%", "samples"
        ));
        for f in &self.functions {
            let pct = if self.total_weight == 0 {
                0.0
            } else {
                f.self_weight as f64 / self.total_weight as f64 * 100.0
            };
            out.push_str(&format!(
                "{:<28} {:>12} {:>6.1}% {:>8}\n",
                f.name, f.self_weight, pct, f.samples
            ));
        }
        out.push_str(&format!(
            "{:<28} {:>12} {:>6.1}% {:>8}\n",
            "total",
            self.total_weight,
            100.0,
            self.functions.iter().map(|f| f.samples).sum::<usize>()
        ));
        out
    }

    /// Flamegraph-ready collapsed stacks: one `kernel;function weight`
    /// line per function with self-time (the VM has no call-stack
    /// unwinder, so every stack is the two-frame `root;function` form).
    #[must_use]
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for f in &self.functions {
            if f.self_weight > 0 {
                out.push_str(&format!("{};{} {}\n", self.kernel, f.name, f.self_weight));
            }
        }
        out
    }
}

/// Produces, installs and runs `source` with the sampling profiler armed,
/// then attributes the folded samples to functions.
///
/// # Errors
///
/// Returns a message when the workload fails to build, verify, or halt.
pub fn profile_source(
    name: &str,
    source: &str,
    input: &[u8],
    interval: u64,
) -> Result<ProfileReport, String> {
    let policy = PolicySet::full();
    let mut manifest = Manifest::ccaas();
    manifest.policy = policy;
    let layout = EnclaveLayout::new(MemConfig::small());
    let obj = produce_for_layout(source, &policy, &layout).map_err(|e| format!("producer: {e}"))?;
    let binary = obj.serialize();

    // Host-side attribution context: the resolved text the verifier sees,
    // its function partition, and symbol names for the entries.
    let resolved = resolve(&obj, &layout).map_err(|e| format!("resolve: {e:?}"))?;
    let entry = usize::try_from(resolved.entry_va - layout.code.start)
        .map_err(|e| format!("entry: {e}"))?;
    let verified = discover(&resolved.text, entry, &resolved.ibt_offsets)
        .map_err(|e| format!("discover: {e:?}"))?;
    let mut name_by_offset: HashMap<usize, &str> = HashMap::new();
    for (sym, &va) in &resolved.symbols {
        if let Some(off) = va.checked_sub(layout.code.start) {
            if let Ok(off) = usize::try_from(off) {
                name_by_offset.insert(off, sym);
            }
        }
    }
    let entries = verified.disassembly.function_entries().to_vec();
    let names: Vec<String> = entries
        .iter()
        .enumerate()
        .map(|(i, &e)| {
            name_by_offset.get(&e).map_or_else(|| format!("fn_{i}@{e:#x}"), |s| (*s).to_string())
        })
        .collect();

    let mut enclave = BootstrapEnclave::new(layout.clone(), manifest);
    enclave.set_owner_session([0xAB; 32]);
    enclave.install_plain(&binary).map_err(|e| format!("install: {e}"))?;
    enclave.enable_profiler(interval.max(1));
    if !input.is_empty() {
        enclave.provide_input(input).map_err(|e| format!("input: {e}"))?;
    }
    let report = enclave.run(u64::MAX / 2).map_err(|e| format!("run: {e}"))?;
    if !matches!(report.exit, RunExit::Halted { .. }) {
        return Err(format!("workload did not halt: {:?}", report.exit));
    }
    let profile = enclave.take_profile();
    let executed = report.stats.instructions - report.blur_padding;
    Ok(attribute(name, &profile, executed, &verified.disassembly, &layout, &names))
}

/// [`profile_source`] for one nBench kernel at the given workload scale.
///
/// # Errors
///
/// Same failure modes as [`profile_source`].
pub fn profile_nbench(kernel: &Kernel, scale: u32, interval: u64) -> Result<ProfileReport, String> {
    let source = (kernel.source)();
    let input = (kernel.input)(scale);
    profile_source(kernel.name, &source, &input, interval)
}

/// Folds a raw [`VmProfile`] into per-function self-time and heatmaps.
fn attribute(
    kernel: &str,
    profile: &VmProfile,
    instructions: u64,
    disasm: &crate::isa::Disassembly,
    layout: &EnclaveLayout,
    names: &[String],
) -> ProfileReport {
    let func_of_pc = |pc: u64| -> usize {
        let off = usize::try_from(pc.saturating_sub(layout.code.start)).unwrap_or(0);
        disasm.function_of_offset(off)
    };
    let mut weight = vec![0u64; names.len()];
    let mut samples = vec![0usize; names.len()];
    for &(pc, w) in &profile.samples {
        let f = func_of_pc(pc);
        weight[f] += w;
        samples[f] += 1;
    }
    let mut functions: Vec<FunctionProfile> = names
        .iter()
        .enumerate()
        .filter(|&(i, _)| samples[i] > 0)
        .map(|(i, name)| FunctionProfile {
            name: name.clone(),
            entry: disasm.function_entries()[i],
            self_weight: weight[i],
            samples: samples[i],
        })
        .collect();
    functions.sort_by(|a, b| b.self_weight.cmp(&a.self_weight).then(a.entry.cmp(&b.entry)));

    let heat = |pcs: &[u64]| -> Vec<HeatEntry> {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for &pc in pcs {
            *counts.entry(pc).or_insert(0) += 1;
        }
        let mut out: Vec<HeatEntry> = counts
            .into_iter()
            .map(|(pc, count)| HeatEntry {
                function: names[func_of_pc(pc)].clone(),
                offset: usize::try_from(pc.saturating_sub(layout.code.start)).unwrap_or(0),
                count,
            })
            .collect();
        out.sort_by(|a, b| b.count.cmp(&a.count).then(a.offset.cmp(&b.offset)));
        out
    };

    ProfileReport {
        kernel: kernel.to_string(),
        instructions,
        total_weight: profile.total_weight(),
        functions,
        guard_trips: heat(&profile.guard_trip_pcs),
        side_exits: heat(&profile.side_exit_pcs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::nbench;

    #[test]
    fn profiles_nbench_kernels_with_exact_attribution() {
        // Acceptance: attribution sums to total executed instructions on
        // at least three nBench kernels, through the full pipeline.
        let mut checked = 0;
        for kernel in nbench::all().iter().take(3) {
            let report = profile_nbench(kernel, 1, DEFAULT_INTERVAL).expect("kernel profiles");
            assert_eq!(
                report.total_weight, report.instructions,
                "{}: sample weights must sum to executed instructions",
                kernel.name
            );
            assert!(!report.functions.is_empty(), "{}: no samples attributed", kernel.name);
            let listed: u64 = report.functions.iter().map(|f| f.self_weight).sum();
            assert_eq!(listed, report.total_weight, "{}: table must be lossless", kernel.name);
            assert!(report.table().contains("function"));
            checked += 1;
        }
        assert_eq!(checked, 3);
    }

    #[test]
    fn collapsed_stacks_are_flamegraph_shaped() {
        let kernels = nbench::all();
        let kernel = kernels.iter().find(|k| k.name == "NUMERIC SORT").expect("kernel exists");
        let report = profile_nbench(kernel, 1, DEFAULT_INTERVAL).expect("kernel profiles");
        let collapsed = report.collapsed();
        assert!(!collapsed.is_empty());
        for line in collapsed.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("weight column");
            assert!(stack.starts_with("NUMERIC SORT;"), "root frame is the kernel: {line}");
            assert!(weight.parse::<u64>().is_ok(), "weight is integral: {line}");
        }
    }
}
