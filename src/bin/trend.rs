//! `trend` — the BENCH trend reporter.
//!
//! ```text
//! trend [--current DIR] [--previous DIR] [--threshold PCT] [--enforce] [-o FILE]
//! ```
//!
//! Reads every `BENCH_*.json` in the *current* directory (default
//! `target/bench-smoke`, where `scripts/ci.sh --smoke` writes them) and the
//! *previous* directory (default `.`, the committed repo-root series), plus
//! any `METRICS_*.json` collector snapshots next to the current series, and
//! prints a markdown trend table. With `--enforce`, exits 1 when any
//! enforceable measurement regressed past the threshold (default 25%).

use deflection::trend::{parse_bench_file, parse_metrics_snapshot, BenchFile, TrendReport};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trend [--current DIR] [--previous DIR] [--threshold PCT] [--enforce] [-o FILE]"
    );
    ExitCode::from(2)
}

/// Loads every file in `dir` whose name matches `prefix*.json`, sorted by
/// name so the report order is stable.
fn load_dir<T>(dir: &Path, prefix: &str, parse: impl Fn(&str) -> Option<T>) -> Vec<(String, T)> {
    let Ok(entries) = std::fs::read_dir(dir) else { return Vec::new() };
    let mut named: Vec<(String, T)> = entries
        .filter_map(Result::ok)
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            if !name.starts_with(prefix) || !name.ends_with(".json") {
                return None;
            }
            let text = std::fs::read_to_string(e.path()).ok()?;
            Some((name, parse(&text)?))
        })
        .collect();
    named.sort_by(|a, b| a.0.cmp(&b.0));
    named
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut current = String::from("target/bench-smoke");
    let mut previous = String::from(".");
    let mut threshold = 25.0_f64;
    let mut enforce = false;
    let mut output: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--current" => {
                let Some(v) = args.get(i + 1) else { return usage() };
                current = v.clone();
                i += 2;
            }
            "--previous" => {
                let Some(v) = args.get(i + 1) else { return usage() };
                previous = v.clone();
                i += 2;
            }
            "--threshold" => {
                let Some(Ok(v)) = args.get(i + 1).map(|v| v.parse()) else { return usage() };
                threshold = v;
                i += 2;
            }
            "--enforce" => {
                enforce = true;
                i += 1;
            }
            "-o" | "--output" => {
                let Some(v) = args.get(i + 1) else { return usage() };
                output = Some(v.clone());
                i += 2;
            }
            _ => return usage(),
        }
    }

    let curr: Vec<BenchFile> = load_dir(Path::new(&current), "BENCH_", parse_bench_file)
        .into_iter()
        .map(|(_, f)| f)
        .collect();
    let prev: Vec<BenchFile> = load_dir(Path::new(&previous), "BENCH_", parse_bench_file)
        .into_iter()
        .map(|(_, f)| f)
        .collect();
    if curr.is_empty() {
        eprintln!("trend: no BENCH_*.json found in {current}");
        return usage();
    }
    let metrics = load_dir(Path::new(&current), "METRICS_", |t| Some(parse_metrics_snapshot(t)));
    let prev_metrics =
        load_dir(Path::new(&previous), "METRICS_", |t| Some(parse_metrics_snapshot(t)));

    let mut report = TrendReport::build(&curr, &prev, threshold);
    report.attach_tails(&metrics, &prev_metrics);
    let md = report.to_markdown(&metrics);
    if let Some(path) = output {
        if let Err(e) = std::fs::write(&path, &md) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    print!("{md}");
    if report.has_regression() {
        eprintln!(
            "trend: regression past +{threshold:.0}% detected{}",
            if enforce { "" } else { " (report-only; pass --enforce to gate)" }
        );
        if enforce {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
