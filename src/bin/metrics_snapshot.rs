//! `metrics_snapshot` — drives one small serving batch with the telemetry
//! collector and flight recorder enabled and dumps what they saw.
//!
//! ```text
//! metrics_snapshot [-o METRICS_file.json] [--trace-out TRACE_file.json]
//! ```
//!
//! The flow mirrors the serving story: produce an instrumented binary,
//! install it across an [`EnclavePool`], serve a parallel batch with one
//! chaos-killed worker (so the timeline shows a fault and a respawn),
//! export the sealed audit ring from a standalone enclave, then print the
//! collector's Prometheus-style exposition, the per-request causal
//! timelines, and a profiler hot-function table. `-o` writes the
//! host-stamped JSON snapshot a `trend` run can ingest; `--trace-out`
//! writes the chrome://tracing export of the batch.
//!
//! [`EnclavePool`]: deflection::core::pool::EnclavePool

use deflection::core::audit::open_audit_export;
use deflection::core::policy::{Manifest, PolicySet};
use deflection::core::pool::EnclavePool;
use deflection::core::producer::produce_for_layout;
use deflection::core::runtime::BootstrapEnclave;
use deflection::profiling::{profile_nbench, DEFAULT_INTERVAL};
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::telemetry::{chrome_trace, json_well_formed, Collector, FlightRecorder, Timeline};
use deflection::workloads::nbench;
use std::process::ExitCode;

/// A tiny scoring routine: one pass over the input, one sealed output byte.
const PROGRAM: &str = "
fn main() -> int {
    var n: int = input_len();
    var acc: int = 0;
    var i: int = 0;
    while (i < n) {
        acc = acc + input_byte(i);
        i = i + 1;
    }
    output_byte(0, acc & 0xFF);
    send(1);
    return acc;
}
";

fn main() -> ExitCode {
    let mut output: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match (arg.as_str(), args.next()) {
            ("-o" | "--output", Some(path)) => output = Some(path),
            ("--trace-out", Some(path)) => trace_out = Some(path),
            _ => {
                eprintln!(
                    "usage:\n  metrics_snapshot [-o METRICS_file.json] [--trace-out TRACE_file.json]"
                );
                return ExitCode::from(2);
            }
        }
    }

    Collector::enable();
    Collector::reset();
    FlightRecorder::reset();
    FlightRecorder::enable();

    // Full policy set with guard elision, so the producer's analysis and
    // self-verification phases show up in the histograms too.
    let mut manifest = Manifest::ccaas();
    manifest.policy = PolicySet::full().with_elision();
    let layout = EnclaveLayout::new(MemConfig::small());
    let binary = match produce_for_layout(PROGRAM, &manifest.policy, &layout) {
        Ok(obj) => obj.serialize(),
        Err(e) => {
            eprintln!("producer failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // A four-worker pool serving an eight-request batch: exercises the
    // install cache, work stealing and the per-run output budget.
    let owner_key = [0xD1; 32];
    let mut pool = EnclavePool::new(&layout, &manifest, 4);
    pool.set_owner_session(owner_key);
    if let Err(e) = pool.install_all(&binary) {
        eprintln!("pool install failed: {e}");
        return ExitCode::FAILURE;
    }
    // One chaos-killed worker makes the timeline demo show the full fault
    // story: a lost instance, the respawn, and the request completing on
    // the fresh enclave. Slot 0 is armed because the batch is small enough
    // that the first worker thread often drains it alone.
    pool.chaos_kill_after(0, 3);
    let requests: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i, i + 1, i + 2, 40]).collect();
    let reports = match pool.serve_parallel(&requests, 10_000_000) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve_parallel failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "served {} requests across {} workers ({} verification pass, {} fault, {} respawn)",
        reports.len(),
        pool.len(),
        pool.verification_count(),
        pool.health().total_faulted(),
        pool.health().total_respawned()
    );

    // Per-request causal timelines reconstructed from the flight ring.
    let flight = FlightRecorder::drain();
    let timeline = Timeline::build(&flight);
    println!(
        "\nflight recorder: {} events, {} dropped, {} causal lanes",
        flight.events.len(),
        flight.dropped,
        timeline.lanes.len()
    );
    println!("{}", timeline.render());
    if let Some(path) = trace_out {
        let trace = chrome_trace(&flight);
        if !json_well_formed(&trace) {
            eprintln!("chrome trace export is not well-formed JSON");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&path, &trace) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    FlightRecorder::disable();

    // Profiler demo: one nBench kernel under the sampling profiler, with
    // exact instruction attribution.
    let kernels = nbench::all();
    let kernel = kernels.iter().find(|k| k.name == "NUMERIC SORT").expect("kernel exists");
    match profile_nbench(kernel, 1, DEFAULT_INTERVAL) {
        Ok(profile) => {
            println!(
                "profiler: {} — {} instructions, all attributed\n{}",
                profile.kernel,
                profile.instructions,
                profile.table()
            );
        }
        Err(e) => {
            eprintln!("profiler demo failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    // A standalone enclave demonstrates the attested audit-log export: the
    // sealed blob opens under the owner key on (channel 0, the counter in
    // force after the run's own sealed records).
    let mut enclave = BootstrapEnclave::new(layout, manifest);
    enclave.set_owner_session(owner_key);
    let audit = enclave
        .install_plain(&binary)
        .and_then(|_| enclave.provide_input(&[9, 9, 9]))
        .and_then(|()| enclave.run(10_000_000))
        .map_err(|e| e.to_string())
        .and_then(|report| {
            let sealed = enclave.ecall_export_audit().map_err(|e| e.to_string())?;
            open_audit_export(&owner_key, 0, report.records.len() as u64, &sealed)
                .map_err(|e| format!("{e:?}"))
        });
    match audit {
        Ok(log) => println!(
            "audit log: {} events, {} dropped, next seq {}",
            log.events.len(),
            log.dropped(),
            log.next_seq
        ),
        Err(e) => {
            eprintln!("audit export failed: {e}");
            return ExitCode::FAILURE;
        }
    }

    // The standalone run doubles as an icache health check: a freshly
    // installed enclave is pre-warmed from the verifier's decode, so demand
    // fills here mean the pre-warm missed something.
    let icache = enclave.icache_stats();
    println!(
        "icache: {} pre-warmed, {} hits, {} demand fills, {} invalidations",
        icache.prewarms, icache.hits, icache.fills, icache.invalidations
    );
    // Same health check for the trace layer: install forms the trace
    // cover, so demand formations here mean the cover missed something.
    let traces = enclave.trace_stats();
    println!(
        "traces: {} pre-warmed, {} demand-formed, {} chained, {} side exits, {} invalidated",
        traces.prewarmed, traces.formed, traces.chained, traces.side_exits, traces.invalidated
    );

    let snapshot = Collector::snapshot();
    println!("\n{}", snapshot.to_prometheus());
    if let Some(path) = output {
        // Host-stamped so the trend gate can tell comparable snapshots
        // from host-shape changes when enforcing p50/p99 drift.
        let cores = std::thread::available_parallelism().map(|n| n.get() as u64).ok();
        if let Err(e) = std::fs::write(&path, snapshot.to_json_stamped(cores)) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
