//! `profile` — runs nBench kernels under the VM sampling profiler and
//! prints per-function self-time tables (or flamegraph collapsed stacks).
//!
//! ```text
//! profile [--kernel NAME] [--scale N] [--interval N] [--collapsed] [-o FILE]
//! ```
//!
//! With `--collapsed` the output is flamegraph-ready collapsed-stack
//! lines (`kernel;function weight`), suitable for piping into
//! `flamegraph.pl`; `-o` writes that output to a file instead of stdout.

use deflection::profiling::{profile_nbench, ProfileReport, DEFAULT_INTERVAL};
use deflection::workloads::nbench;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  profile [--kernel NAME] [--scale N] [--interval N] [--collapsed] [-o FILE]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut kernel: Option<String> = None;
    let mut scale: u32 = 1;
    let mut interval: u64 = DEFAULT_INTERVAL;
    let mut collapsed = false;
    let mut output: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--kernel" => match args.next() {
                Some(v) => kernel = Some(v),
                None => return usage(),
            },
            "--scale" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => scale = v,
                None => return usage(),
            },
            "--interval" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => interval = v,
                None => return usage(),
            },
            "--collapsed" => collapsed = true,
            "-o" | "--output" => match args.next() {
                Some(v) => output = Some(v),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    let kernels = nbench::all();
    let selected: Vec<_> = match &kernel {
        Some(name) => match kernels.iter().find(|k| k.name.eq_ignore_ascii_case(name)) {
            Some(k) => vec![k],
            None => {
                eprintln!("unknown kernel {name:?}; available:");
                for k in &kernels {
                    eprintln!("  {}", k.name);
                }
                return ExitCode::from(2);
            }
        },
        None => kernels.iter().collect(),
    };

    let mut reports: Vec<ProfileReport> = Vec::new();
    for k in selected {
        match profile_nbench(k, scale, interval) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("{}: {e}", k.name);
                return ExitCode::FAILURE;
            }
        }
    }

    let mut out = String::new();
    for r in &reports {
        if collapsed {
            out.push_str(&r.collapsed());
        } else {
            out.push_str(&format!(
                "=== {} ({} instructions, {} sampled) ===\n{}",
                r.kernel,
                r.instructions,
                r.total_weight,
                r.table()
            ));
            if !r.side_exits.is_empty() {
                out.push_str("side exits:\n");
                for h in r.side_exits.iter().take(5) {
                    out.push_str(&format!("  {}+{:#x} x{}\n", h.function, h.offset, h.count));
                }
            }
            if !r.guard_trips.is_empty() {
                out.push_str("guard trips:\n");
                for h in r.guard_trips.iter().take(5) {
                    out.push_str(&format!("  {}+{:#x} x{}\n", h.function, h.offset, h.count));
                }
            }
            out.push('\n');
        }
    }

    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &out) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => print!("{out}"),
    }
    ExitCode::SUCCESS
}
