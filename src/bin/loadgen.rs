//! `loadgen` — closed- and open-loop load generator for the multi-tenant
//! admission frontend.
//!
//! ```text
//! loadgen [--quick] [--metrics-out METRICS_file.json] [--seed N]
//! ```
//!
//! Two stages:
//!
//! 1. **Real serving warm-up** — drives mixed admission rounds (https,
//!    credit, genome seqgen, two nBench kernels, stateful KV) through the
//!    real [`AdmissionFrontend`] on a 1-worker pool, measuring each
//!    class's true in-enclave service time and populating the admission
//!    telemetry (queue-depth gauge, shed counters, batch-size histogram).
//! 2. **Scaled closed/open-loop simulation** — replays the measured mix
//!    through the discrete-event serving simulator at 10⁵ (`--quick`,
//!    ≈10³ concurrent clients per series plus a 10⁵-client overload
//!    series) to 10⁶ completions, reporting p50/p99 and saturation
//!    throughput for half-saturation, overload-with-shedding, and
//!    open-loop arrival series.
//!
//! Exits nonzero if the bounded-tail acceptance property fails: p99
//! under shedding must stay within 10× of p99 at half saturation —
//! the queue is bounded, so tail latency must not collapse with offered
//! load. `--metrics-out` writes the host-stamped telemetry snapshot
//! (`METRICS_loadgen.json`) a `trend` run can ingest.
//!
//! [`AdmissionFrontend`]: deflection::core::admission::AdmissionFrontend

use deflection::bench::queueing::{simulate_serving, Arrival, MixEntry, ServingConfig};
use deflection::bench::serving::{admission_round, measured_mix, rig, BATCH};
use deflection::telemetry::Collector;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage:\n  loadgen [--quick] [--metrics-out METRICS_file.json] [--seed N]");
    ExitCode::from(2)
}

fn sim_config(mix: &[MixEntry], arrival: Arrival, total: usize, seed: u64) -> ServingConfig {
    ServingConfig {
        arrival,
        workers: 4,
        mix: mix.to_vec(),
        jitter_frac: 0.05,
        total_requests: total,
        // Latency-tier queue sizing (see DESIGN.md §5k): queue wait is
        // bounded by high_water x mean service / workers, which is what
        // keeps the shedding-regime p99 inside the 10x envelope.
        high_water: 64,
        batch_max: 32,
        batch_wait_us: 500,
        seed,
    }
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut quick = false;
    let mut metrics_out: Option<String> = None;
    let mut seed = 23u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--metrics-out" => match args.next() {
                Some(path) => metrics_out = Some(path),
                None => return usage(),
            },
            "--seed" => match args.next().map(|s| s.parse::<u64>()) {
                Some(Ok(s)) => seed = s,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }

    // Stage 1: real admission serving. Every request goes enqueue ->
    // admit -> claim through the real frontend and pool, so the
    // telemetry snapshot reflects real serving, not simulation.
    let rounds = if quick { 2 } else { 8 };
    println!("=== loadgen: real admission warm-up ({rounds} mixed rounds, 1 worker) ===");
    let mut r = rig(1);
    let mut checksum = 0u64;
    for _ in 0..rounds {
        checksum = checksum.wrapping_add(admission_round(&mut r));
    }
    println!("  {} requests served, round checksum {checksum:#x}", rounds * BATCH);
    let named = measured_mix();
    for (name, m) in &named {
        println!("  measured service time {name:<14} {:>8.0} µs", m.service_us);
    }
    let mix: Vec<MixEntry> = named.iter().map(|(_, m)| *m).collect();

    // Stage 2: scaled series. `--quick` drives ~10^3 concurrent clients
    // per series plus one 10^5-client overload series (>=10^5 simulated
    // client completions in total); the full run drives 10^5 clients to
    // 10^6 completions.
    let (half_clients, over_clients, half_total, over_total) = if quick {
        (2usize, 100_000usize, 20_000usize, 100_000usize)
    } else {
        (8, 100_000, 200_000, 1_000_000)
    };
    println!("\n=== loadgen: closed-loop series (seed {seed}) ===");
    let half = simulate_serving(&sim_config(
        &mix,
        Arrival::Closed { clients: half_clients, think_us: 0 },
        half_total,
        seed,
    ));
    println!(
        "  half-saturation  {half_clients:>7} clients: p50 {:>7} µs  p99 {:>7} µs  \
         {:>8.0} rps  shed {:>5.1}%",
        half.p50_us,
        half.p99_us,
        half.throughput_rps,
        half.shed_rate * 100.0
    );
    let over = simulate_serving(&sim_config(
        &mix,
        Arrival::Closed { clients: over_clients, think_us: 100_000 },
        over_total,
        seed,
    ));
    println!(
        "  overload (shed)  {over_clients:>7} clients: p50 {:>7} µs  p99 {:>7} µs  \
         {:>8.0} rps  shed {:>5.1}%",
        over.p50_us,
        over.p99_us,
        over.throughput_rps,
        over.shed_rate * 100.0
    );

    println!("\n=== loadgen: open-loop series ===");
    let quick_div = if quick { 4 } else { 1 };
    for rate in [1_000.0f64, 4_000.0, 16_000.0] {
        let r = simulate_serving(&sim_config(
            &mix,
            Arrival::Open { rate_rps: rate },
            40_000 / quick_div,
            seed,
        ));
        println!(
            "  offered {rate:>7.0} rps: p99 {:>7} µs  completed {:>8.0} rps  shed {:>5.1}%",
            r.p99_us,
            r.throughput_rps,
            r.shed_rate * 100.0
        );
    }

    let simulated_clients = over_clients + half_clients;
    let completions = half.completed + over.completed;
    println!("\nsimulated clients: {simulated_clients}  completions (closed-loop): {completions}");

    if let Some(path) = metrics_out {
        let cores = std::thread::available_parallelism().ok().map(|n| n.get() as u64);
        let snapshot = Collector::snapshot();
        if let Err(e) = std::fs::write(&path, snapshot.to_json_stamped(cores)) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }

    // Acceptance gate: bounded tail under shedding. The queue being
    // bounded means p99 cannot grow with offered load; 10x is the
    // envelope ISSUE 10 pins.
    let bound = 10.0 * half.p99_us as f64;
    if over.p99_us as f64 > bound {
        eprintln!(
            "FAIL: p99 under shedding ({} µs) exceeds 10x half-saturation p99 ({} µs)",
            over.p99_us, half.p99_us
        );
        return ExitCode::from(1);
    }
    println!(
        "PASS: p99 under shedding {} µs <= 10x half-saturation p99 {} µs",
        over.p99_us, half.p99_us
    );
    ExitCode::SUCCESS
}
