//! `dflc` — the DEFLECTION command-line driver.
//!
//! The code provider's view of the toolchain:
//!
//! ```text
//! dflc build  <src.dcl> -o <out.dflo> [--policy none|p1|p1p2|p1p5|full|fullelide]
//! dflc verify <bin.dflo>              [--policy ...]      # consumer dry-run
//! dflc disasm <bin.dflo>                                  # annotated listing
//! dflc run    <bin.dflo> [--input <hex>] [--policy ...] [--fuel N]
//! dflc inspect <bin.dflo>                                 # object headers
//! ```

use deflection::core::consumer::{install, verifier};
use deflection::core::policy::{Manifest, PolicySet};
use deflection::core::producer::produce;
use deflection::core::runtime::BootstrapEnclave;
use deflection::obj::ObjectFile;
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::sgx::mem::Memory;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dflc build <src.dcl> -o <out.dflo> [--policy none|p1|p1p2|p1p5|full|fullelide]\n  \
         dflc verify <bin.dflo> [--policy ...]\n  \
         dflc disasm <bin.dflo>\n  \
         dflc run <bin.dflo> [--input <hex>] [--policy ...] [--fuel N]\n  \
         dflc inspect <bin.dflo>"
    );
    ExitCode::from(2)
}

fn parse_policy(name: &str) -> Option<PolicySet> {
    Some(match name {
        "none" => PolicySet::none(),
        "p1" => PolicySet::p1(),
        "p1p2" => PolicySet::p1_p2(),
        "p1p5" => PolicySet::p1_p5(),
        "full" => PolicySet::full(),
        "fullelide" => PolicySet::full().with_elision(),
        _ => return None,
    })
}

struct Opts {
    positional: Vec<String>,
    policy: PolicySet,
    output: Option<String>,
    input_hex: Option<String>,
    fuel: u64,
}

fn parse_opts(args: &[String]) -> Option<Opts> {
    let mut opts = Opts {
        positional: Vec::new(),
        policy: PolicySet::full(),
        output: None,
        input_hex: None,
        fuel: 2_000_000_000,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--policy" => {
                opts.policy = parse_policy(args.get(i + 1)?)?;
                i += 2;
            }
            "-o" | "--output" => {
                opts.output = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--input" => {
                opts.input_hex = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--fuel" => {
                opts.fuel = args.get(i + 1)?.parse().ok()?;
                i += 2;
            }
            flag if flag.starts_with('-') => return None,
            _ => {
                opts.positional.push(args[i].clone());
                i += 1;
            }
        }
    }
    Some(opts)
}

fn unhex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok()).collect()
}

fn load_object(path: &str) -> Result<ObjectFile, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    ObjectFile::parse(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else { return usage() };
    let Some(opts) = parse_opts(&args[1..]) else { return usage() };

    match cmd.as_str() {
        "build" => {
            let [src_path] = &opts.positional[..] else { return usage() };
            let Some(out_path) = &opts.output else { return usage() };
            let source = match std::fs::read_to_string(src_path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {src_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Elision needs the target layout: the producer proves guard
            // redundancy against the same windows the verifier will use.
            let built = if opts.policy.elide_guards {
                deflection::core::producer::produce_for_layout(
                    &source,
                    &opts.policy,
                    &EnclaveLayout::new(MemConfig::small()),
                )
            } else {
                produce(&source, &opts.policy)
            };
            match built {
                Ok(obj) => {
                    let bytes = obj.serialize();
                    if let Err(e) = std::fs::write(out_path, &bytes) {
                        eprintln!("cannot write {out_path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    println!(
                        "built {out_path}: {} bytes text, {} bytes data, {} bss, \
                         {} indirect targets, {} total",
                        obj.text.len(),
                        obj.data.len(),
                        obj.bss_size,
                        obj.indirect_branch_table.len(),
                        bytes.len()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{src_path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "verify" => {
            let [bin_path] = &opts.positional[..] else { return usage() };
            let obj = match load_object(bin_path) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut manifest = Manifest::ccaas();
            manifest.policy = opts.policy;
            let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
            match install(&obj.serialize(), &manifest, &mut mem) {
                Ok(installed) => {
                    println!(
                        "ACCEPTED: {} instructions, {} annotation instances, code hash {}",
                        installed.verified.insts.len(),
                        installed.verified.instances.len(),
                        hex(&installed.program.code_hash[..8])
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    println!("REJECTED: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "disasm" => {
            let [bin_path] = &opts.positional[..] else { return usage() };
            let obj = match load_object(bin_path) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let entry = obj.symbol(&obj.entry_symbol).map(|s| s.offset as usize).unwrap_or(0);
            let ibt: Vec<usize> = obj
                .indirect_branch_table
                .iter()
                .filter_map(|n| obj.symbol(n).map(|s| s.offset as usize))
                .collect();
            match deflection::isa::disassemble(&obj.text, entry, &ibt) {
                Ok(d) => {
                    // Mark annotation instances so readers see what the
                    // verifier sees.
                    let insts: Vec<(usize, deflection::isa::Inst, usize)> = d.insts().to_vec();
                    let verified = verifier::verify(&obj.text, entry, &ibt, &PolicySet::none());
                    let interiors: std::collections::HashSet<usize> = verified
                        .map(|v| {
                            v.instances
                                .iter()
                                .flat_map(|ins| {
                                    (ins.start_idx..=ins.end_idx)
                                        .map(|i| v.insts[i].0)
                                        .collect::<Vec<_>>()
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    for (off, inst, _) in &insts {
                        let fn_label = obj
                            .symbols
                            .iter()
                            .find(|s| {
                                s.section == deflection::obj::SectionId::Text
                                    && s.offset as usize == *off
                            })
                            .map(|s| format!("\n{}:", s.name))
                            .unwrap_or_default();
                        if !fn_label.is_empty() {
                            println!("{}", &fn_label[1..]);
                        }
                        let tag = if interiors.contains(off) { "  ~" } else { "   " };
                        println!("{tag}{off:6x}:  {inst}");
                    }
                    println!("\n({} instructions; `~` marks annotation code)", insts.len());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("disassembly failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "run" => {
            let [bin_path] = &opts.positional[..] else { return usage() };
            let obj = match load_object(bin_path) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut manifest = Manifest::ccaas();
            manifest.policy = opts.policy;
            let mut enclave =
                BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
            enclave.set_owner_session([0xD1; 32]);
            if let Err(e) = enclave.install_plain(&obj.serialize()) {
                eprintln!("install rejected: {e}");
                return ExitCode::FAILURE;
            }
            if let Some(hex_input) = &opts.input_hex {
                let Some(bytes) = unhex(hex_input) else {
                    eprintln!("--input must be hex");
                    return ExitCode::FAILURE;
                };
                enclave.provide_input(&bytes).expect("installed");
            }
            let report = enclave.run(opts.fuel).expect("installed");
            println!(
                "exit: {:?}\ninstructions: {}\nocalls: {}\nsealed records: {}\nleaked writes: {}",
                report.exit,
                report.stats.instructions,
                report.stats.ocalls,
                report.records.len(),
                report.untrusted_writes
            );
            ExitCode::SUCCESS
        }
        "inspect" => {
            let [bin_path] = &opts.positional[..] else { return usage() };
            let obj = match load_object(bin_path) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("entry:   {}", obj.entry_symbol);
            println!(
                "text:    {} bytes   data: {} bytes   bss: {} bytes",
                obj.text.len(),
                obj.data.len(),
                obj.bss_size
            );
            println!("symbols ({}):", obj.symbols.len());
            for s in &obj.symbols {
                println!("  {:24} {:?}+{:#x} ({:?})", s.name, s.section, s.offset, s.kind);
            }
            println!("relocations: {}", obj.relocations.len());
            println!("indirect-branch proof list ({}):", obj.indirect_branch_table.len());
            for t in &obj.indirect_branch_table {
                println!("  {t}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
