//! The BENCH trend reporter: ingests the repo's `BENCH_*.json` series
//! (emitted by `scripts/ci.sh --smoke`) plus `METRICS_*.json` collector
//! snapshots, and renders a markdown trend table — per-measurement mean,
//! delta against the previous run, and host-core gating notes — with an
//! optional regression threshold for CI gating.
//!
//! Everything here is zero-dependency by design (matching the vendored-shim
//! policy): the BENCH files are produced by a pure-shell emitter with a
//! known shape, so a small line-oriented extractor is both sufficient and
//! honest about what it accepts.

use std::fmt::Write as _;

/// Benches whose headline assertions are gated off on hosts with fewer
/// than four cores (see ROADMAP): their numbers are reported but never
/// treated as regressions when either side ran under the gate.
pub const CORE_GATED_BENCHES: &[&str] = &["ablation_parallel_verify", "ablation_pool_resilience"];

/// Host context stamped into a BENCH file by `scripts/ci.sh`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostStamp {
    /// `std::thread::available_parallelism` on the emitting host.
    pub available_parallelism: Option<u64>,
    /// Whether the run was a `--smoke` (single-shot `--quick`) run.
    pub smoke: bool,
}

/// One parsed measurement line from the vendored-criterion report format:
/// `bench {id:<40} {min} .. {max} (mean {mean}, n={n})`.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Benchmark id, e.g. `nbench/numeric_sort/baseline`.
    pub id: String,
    /// Mean duration in nanoseconds.
    pub mean_ns: f64,
    /// Sample count.
    pub n: u64,
}

/// One parsed `BENCH_<name>.json` file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchFile {
    /// Bench name (`table2_nbench`, …).
    pub bench: String,
    /// Emitter status (`ok` when the bench binary exited 0).
    pub status: String,
    /// Host context, absent in files emitted before stamping existed.
    pub host: Option<HostStamp>,
    /// Parsed measurement lines.
    pub measurements: Vec<Measurement>,
}

/// A headline counter pulled from a `METRICS_*.json` collector snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name.
    pub name: String,
    /// Raw label body.
    pub labels: String,
    /// Counter/gauge value.
    pub value: i64,
}

/// Percentile estimates pulled from one histogram entry of a
/// `METRICS_*.json` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TailSample {
    /// Histogram name.
    pub name: String,
    /// Raw label body.
    pub labels: String,
    /// Observation count.
    pub count: u64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// One fully parsed `METRICS_*.json` collector snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsFile {
    /// `available_parallelism` of the emitting host, when stamped.
    pub available_parallelism: Option<u64>,
    /// Counter/gauge samples.
    pub samples: Vec<MetricSample>,
    /// Histogram percentile rows.
    pub tails: Vec<TailSample>,
}

/// Floor applied to the tail-regression threshold: the log-2 buckets
/// quantize percentile estimates, so a one-bucket drift (2×, i.e. +100%)
/// is quantization noise — only shifts past the *next* bucket enforce.
pub const TAIL_THRESHOLD_FLOOR_PCT: f64 = 100.0;

/// Minimum observations on both sides before a tail row may enforce: a
/// p99 estimated from a handful of samples is an outlier detector, not a
/// trend.
pub const TAIL_MIN_COUNT: u64 = 4;

/// Parses a duration rendered by the vendored criterion shim
/// (`fmt_dur`): `{ns} ns`, `{:.2} µs`, `{:.2} ms` or `{:.2} s`.
#[must_use]
pub fn parse_duration_ns(s: &str) -> Option<f64> {
    let s = s.trim();
    let (value, scale) = if let Some(v) = s.strip_suffix(" ns") {
        (v, 1.0)
    } else if let Some(v) = s.strip_suffix(" µs") {
        (v, 1e3)
    } else if let Some(v) = s.strip_suffix(" ms") {
        (v, 1e6)
    } else if let Some(v) = s.strip_suffix(" s") {
        (v, 1e9)
    } else {
        return None;
    };
    value.trim().parse::<f64>().ok().map(|v| v * scale)
}

/// Parses one `bench …` measurement line. Returns `None` for the
/// "no samples" form and anything else that is not a measurement.
#[must_use]
pub fn parse_measurement(line: &str) -> Option<Measurement> {
    let rest = line.trim().strip_prefix("bench ")?;
    let id = rest.split_whitespace().next()?.to_string();
    let mean_start = rest.find("(mean")? + "(mean".len();
    let tail = &rest[mean_start..];
    let comma = tail.find(',')?;
    let mean_ns = parse_duration_ns(&tail[..comma])?;
    let n = tail[comma..].trim_start_matches(',').trim().strip_prefix("n=")?;
    let n = n.trim_end_matches(')').trim().parse::<u64>().ok()?;
    Some(Measurement { id, mean_ns, n })
}

/// Extracts the string value of `"key": "value"` from a JSON-shaped line
/// set (first occurrence), honoring backslash escapes — collector
/// snapshots escape label values (e.g. `verdict=\"accept\"`), so the
/// closing quote is the first *unescaped* one.
fn json_string_field(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = chars.by_ref().take(4).collect();
                    let v = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(v)?);
                }
                c => out.push(c),
            },
            c => out.push(c),
        }
    }
}

/// Extracts a numeric or boolean field value as text.
fn json_raw_field(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim().to_string())
}

/// Parses one `BENCH_<name>.json` document.
#[must_use]
pub fn parse_bench_file(text: &str) -> Option<BenchFile> {
    let bench = json_string_field(text, "bench")?;
    let status = json_string_field(text, "status").unwrap_or_else(|| "unknown".into());
    let host = text.contains("\"host\":").then(|| HostStamp {
        available_parallelism: json_raw_field(text, "available_parallelism")
            .and_then(|v| v.parse().ok()),
        smoke: json_raw_field(text, "smoke").as_deref() == Some("true"),
    });
    // Measurement strings are JSON array elements, one per line; strip the
    // quoting and trailing comma, then parse the embedded report line.
    let measurements = text
        .lines()
        .filter_map(|l| {
            let l = l.trim().trim_end_matches(',');
            let inner = l.strip_prefix('"')?.strip_suffix('"')?;
            parse_measurement(inner)
        })
        .collect();
    Some(BenchFile { bench, status, host, measurements })
}

/// Parses the counter/gauge samples out of a `METRICS_*.json` snapshot
/// (schema `deflection-metrics-v1`).
#[must_use]
pub fn parse_metrics_file(text: &str) -> Vec<MetricSample> {
    text.lines()
        .filter_map(|l| {
            let l = l.trim().trim_end_matches(',');
            if !l.starts_with('{') || !l.contains("\"name\"") || !l.contains("\"value\"") {
                return None;
            }
            Some(MetricSample {
                name: json_string_field(l, "name")?,
                labels: json_string_field(l, "labels").unwrap_or_default(),
                value: json_raw_field(l, "value")?.parse().ok()?,
            })
        })
        .collect()
}

/// Parses a full `METRICS_*.json` snapshot: host stamp, counter/gauge
/// samples, and the p50/p99 histogram rows the tail gate compares.
#[must_use]
pub fn parse_metrics_snapshot(text: &str) -> MetricsFile {
    let available_parallelism = text
        .lines()
        .find(|l| l.contains("\"host\""))
        .and_then(|l| json_raw_field(l, "available_parallelism"))
        .and_then(|v| v.parse().ok());
    let tails = text
        .lines()
        .filter_map(|l| {
            let l = l.trim().trim_end_matches(',');
            if !l.starts_with('{') || !l.contains("\"p50\"") {
                return None;
            }
            Some(TailSample {
                name: json_string_field(l, "name")?,
                labels: json_string_field(l, "labels").unwrap_or_default(),
                count: json_raw_field(l, "count")?.parse().ok()?,
                p50: json_raw_field(l, "p50")?.parse().ok()?,
                p99: json_raw_field(l, "p99")?.parse().ok()?,
            })
        })
        .collect();
    MetricsFile { available_parallelism, samples: parse_metrics_file(text), tails }
}

/// One row of the trend table: a measurement matched (by bench name and
/// measurement id) between the previous and current series.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRow {
    /// Bench name.
    pub bench: String,
    /// Measurement id.
    pub id: String,
    /// Previous mean in nanoseconds (`None` for a new measurement).
    pub prev_ns: Option<f64>,
    /// Current mean in nanoseconds.
    pub curr_ns: f64,
    /// Percent delta vs. previous (positive = slower), when comparable.
    pub delta_pct: Option<f64>,
    /// Whether this row exceeded the regression threshold *and* was
    /// eligible for enforcement (comparable host stamps, not core-gated).
    pub regressed: bool,
    /// Human-readable annotation (core gating, host mismatch, new).
    pub note: String,
}

/// One row of the tail-latency table: a histogram's p50/p99 matched (by
/// snapshot file, histogram name and labels) between the previous and
/// current metrics series.
#[derive(Debug, Clone, PartialEq)]
pub struct TailRow {
    /// Snapshot file name both sides were read from.
    pub file: String,
    /// Histogram name.
    pub name: String,
    /// Raw label body.
    pub labels: String,
    /// Previous p50/p99 in nanoseconds (`None` for a new histogram).
    pub prev_p50: Option<f64>,
    /// Previous p99 in nanoseconds.
    pub prev_p99: Option<f64>,
    /// Current p50 in nanoseconds.
    pub curr_p50: f64,
    /// Current p99 in nanoseconds.
    pub curr_p99: f64,
    /// Percent delta of the p99 vs. previous, when comparable.
    pub delta_pct: Option<f64>,
    /// Whether this row exceeded the tail threshold *and* was eligible
    /// for enforcement.
    pub regressed: bool,
    /// Human-readable annotation.
    pub note: String,
}

/// The full trend comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendReport {
    /// Matched rows, in current-series order.
    pub rows: Vec<TrendRow>,
    /// Tail-latency rows (populated by [`TrendReport::attach_tails`]).
    pub tails: Vec<TailRow>,
    /// Regression threshold in percent that was applied.
    pub threshold_pct: f64,
}

impl TrendReport {
    /// Compares the current BENCH series against the previous one.
    ///
    /// A row is only *enforceable* (can set `regressed`) when both sides
    /// carry host stamps with the same `available_parallelism` — numbers
    /// measured on different host shapes are reported but never gate. The
    /// ≥4-core-gated benches ([`CORE_GATED_BENCHES`]) are additionally
    /// exempt when either side ran with fewer than four cores, and noted
    /// as such.
    #[must_use]
    pub fn build(current: &[BenchFile], previous: &[BenchFile], threshold_pct: f64) -> TrendReport {
        let prev_of = |bench: &str, id: &str| -> Option<(&BenchFile, &Measurement)> {
            let f = previous.iter().find(|f| f.bench == bench)?;
            let m = f.measurements.iter().find(|m| m.id == id)?;
            Some((f, m))
        };
        let mut rows = Vec::new();
        for file in current {
            let gated_bench = CORE_GATED_BENCHES.contains(&file.bench.as_str());
            let curr_cores = file.host.and_then(|h| h.available_parallelism);
            for m in &file.measurements {
                let (mut note, mut delta_pct, mut prev_ns) = (String::new(), None, None);
                let mut enforceable = false;
                match prev_of(&file.bench, &m.id) {
                    None => note.push_str("new"),
                    Some((pf, pm)) => {
                        prev_ns = Some(pm.mean_ns);
                        if pm.mean_ns > 0.0 {
                            delta_pct = Some((m.mean_ns - pm.mean_ns) / pm.mean_ns * 100.0);
                        }
                        let prev_cores = pf.host.and_then(|h| h.available_parallelism);
                        match (curr_cores, prev_cores) {
                            (Some(c), Some(p)) if c == p => enforceable = true,
                            (Some(_), Some(_)) => note.push_str("host cores changed"),
                            _ => note.push_str("unstamped baseline"),
                        }
                    }
                }
                if gated_bench && curr_cores.is_none_or(|c| c < 4) {
                    enforceable = false;
                    if !note.is_empty() {
                        note.push_str("; ");
                    }
                    note.push_str("<4 cores: assertions gated off");
                }
                let regressed = enforceable
                    && delta_pct.is_some_and(|d| d > threshold_pct && threshold_pct >= 0.0);
                rows.push(TrendRow {
                    bench: file.bench.clone(),
                    id: m.id.clone(),
                    prev_ns,
                    curr_ns: m.mean_ns,
                    delta_pct,
                    regressed,
                    note,
                });
            }
        }
        TrendReport { rows, tails: Vec::new(), threshold_pct }
    }

    /// Matches p50/p99 histogram rows between the current and previous
    /// metrics snapshots and appends them as tail rows. Enforcement
    /// follows the same host gating as the mean rows — both snapshots
    /// must carry equal `available_parallelism` stamps — plus two
    /// tail-specific rules: only `_ns` latency histograms gate (byte and
    /// length histograms are workload-shaped, not perf-shaped), both
    /// sides need at least [`TAIL_MIN_COUNT`] observations, and the
    /// threshold is floored at [`TAIL_THRESHOLD_FLOOR_PCT`] because the
    /// log-2 buckets quantize the estimate.
    pub fn attach_tails(
        &mut self,
        current: &[(String, MetricsFile)],
        previous: &[(String, MetricsFile)],
    ) {
        let tail_threshold = self.threshold_pct.max(TAIL_THRESHOLD_FLOOR_PCT);
        for (fname, curr) in current {
            let prev_file = previous.iter().find(|(p, _)| p == fname).map(|(_, f)| f);
            for t in &curr.tails {
                let prev_t = prev_file.and_then(|f| {
                    f.tails.iter().find(|p| p.name == t.name && p.labels == t.labels)
                });
                let mut note = String::new();
                let mut enforceable = t.name.ends_with("_ns");
                let (mut prev_p50, mut prev_p99, mut delta_pct) = (None, None, None);
                match prev_t {
                    None => {
                        note.push_str("new");
                        enforceable = false;
                    }
                    Some(p) => {
                        prev_p50 = Some(p.p50);
                        prev_p99 = Some(p.p99);
                        if p.p99 > 0.0 {
                            delta_pct = Some((t.p99 - p.p99) / p.p99 * 100.0);
                        }
                        match (
                            curr.available_parallelism,
                            prev_file.and_then(|f| f.available_parallelism),
                        ) {
                            (Some(c), Some(q)) if c == q => {}
                            (Some(_), Some(_)) => {
                                enforceable = false;
                                note.push_str("host cores changed");
                            }
                            _ => {
                                enforceable = false;
                                note.push_str("unstamped snapshot");
                            }
                        }
                        if t.count < TAIL_MIN_COUNT || p.count < TAIL_MIN_COUNT {
                            enforceable = false;
                            if !note.is_empty() {
                                note.push_str("; ");
                            }
                            note.push_str("sparse");
                        }
                    }
                }
                let regressed = enforceable
                    && delta_pct.is_some_and(|d| d > tail_threshold && self.threshold_pct >= 0.0);
                self.tails.push(TailRow {
                    file: fname.clone(),
                    name: t.name.clone(),
                    labels: t.labels.clone(),
                    prev_p50,
                    prev_p99,
                    curr_p50: t.p50,
                    curr_p99: t.p99,
                    delta_pct,
                    regressed,
                    note,
                });
            }
        }
    }

    /// Whether any enforceable row (mean or tail) exceeded its threshold.
    #[must_use]
    pub fn has_regression(&self) -> bool {
        self.rows.iter().any(|r| r.regressed) || self.tails.iter().any(|r| r.regressed)
    }

    /// Renders the markdown trend table, with tail-latency and
    /// metrics-snapshot sections appended.
    #[must_use]
    pub fn to_markdown(&self, metrics: &[(String, MetricsFile)]) -> String {
        let fmt_ns = |ns: f64| -> String {
            if ns < 1e3 {
                format!("{ns:.0} ns")
            } else if ns < 1e6 {
                format!("{:.2} µs", ns / 1e3)
            } else if ns < 1e9 {
                format!("{:.2} ms", ns / 1e6)
            } else {
                format!("{:.2} s", ns / 1e9)
            }
        };
        let mut out = String::from("# BENCH trend report\n\n");
        let _ = writeln!(
            out,
            "Regression threshold: +{:.0}% on enforceable rows.\n",
            self.threshold_pct
        );
        out.push_str("| bench | measurement | previous | current | delta | note |\n");
        out.push_str("|---|---|---:|---:|---:|---|\n");
        for r in &self.rows {
            let prev = r.prev_ns.map_or_else(|| "—".into(), fmt_ns);
            let delta = r.delta_pct.map_or_else(|| "—".into(), |d| format!("{d:+.1}%"));
            let mark = if r.regressed { " **REGRESSION**" } else { "" };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {}{} | {} |",
                r.bench,
                r.id,
                prev,
                fmt_ns(r.curr_ns),
                delta,
                mark,
                r.note
            );
        }
        if !self.tails.is_empty() {
            let _ = writeln!(
                out,
                "\n## Tail latency (p50/p99)\n\nTail threshold: +{:.0}% on the p99 of \
                 enforceable `_ns` rows (floored for log-2 bucket quantization).\n",
                self.threshold_pct.max(TAIL_THRESHOLD_FLOOR_PCT)
            );
            out.push_str("| histogram | labels | p50 | p99 | prev p99 | delta | note |\n");
            out.push_str("|---|---|---:|---:|---:|---:|---|\n");
            for r in &self.tails {
                let prev = r.prev_p99.map_or_else(|| "—".into(), fmt_ns);
                let delta = r.delta_pct.map_or_else(|| "—".into(), |d| format!("{d:+.1}%"));
                let mark = if r.regressed { " **REGRESSION**" } else { "" };
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | {}{} | {} |",
                    r.name,
                    r.labels,
                    fmt_ns(r.curr_p50),
                    fmt_ns(r.curr_p99),
                    prev,
                    delta,
                    mark,
                    r.note
                );
            }
        }
        if !metrics.is_empty() {
            out.push_str("\n## Collector snapshots\n\n");
            for (name, file) in metrics {
                let events: i64 = file
                    .samples
                    .iter()
                    .filter(|s| s.name.ends_with("_total"))
                    .map(|s| s.value)
                    .sum();
                let _ = writeln!(
                    out,
                    "- `{name}`: {} samples, {} histograms, {events} counted events",
                    file.samples.len(),
                    file.tails.len()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_json(bench: &str, host: Option<(u64, bool)>, lines: &[&str]) -> String {
        let host = host.map_or(String::new(), |(cores, smoke)| {
            format!("  \"host\": {{\"available_parallelism\": {cores}, \"smoke\": {smoke}}},\n")
        });
        let meas: Vec<String> = lines.iter().map(|l| format!("    \"{l}\"")).collect();
        format!(
            "{{\n  \"bench\": \"{bench}\",\n  \"status\": \"ok\",\n{host}  \"measurements\": [\n{}\n  ]\n}}\n",
            meas.join(",\n")
        )
    }

    #[test]
    fn duration_parsing_matches_the_shim_formats() {
        assert_eq!(parse_duration_ns("999 ns"), Some(999.0));
        assert_eq!(parse_duration_ns("1.50 µs"), Some(1500.0));
        assert_eq!(parse_duration_ns("4.78 ms"), Some(4_780_000.0));
        assert_eq!(parse_duration_ns("2.00 s"), Some(2e9));
        assert_eq!(parse_duration_ns("fast"), None);
    }

    #[test]
    fn measurement_lines_parse() {
        let m = parse_measurement(
            "bench nbench/numeric_sort/p1-p6                     6.84 ms ..      8.02 ms (mean      7.17 ms, n=10)",
        )
        .unwrap();
        assert_eq!(m.id, "nbench/numeric_sort/p1-p6");
        assert_eq!(m.n, 10);
        assert!((m.mean_ns - 7_170_000.0).abs() < 1.0);
        assert!(parse_measurement("bench x (no samples — routine never called iter)").is_none());
    }

    #[test]
    fn bench_files_roundtrip_with_and_without_host_stamp() {
        let stamped = bench_json(
            "table2_nbench",
            Some((8, true)),
            &["bench a/b   1.00 ms ..   1.00 ms (mean   1.00 ms, n=3)"],
        );
        let f = parse_bench_file(&stamped).unwrap();
        assert_eq!(f.bench, "table2_nbench");
        assert_eq!(f.host, Some(HostStamp { available_parallelism: Some(8), smoke: true }));
        assert_eq!(f.measurements.len(), 1);
        let unstamped = bench_json(
            "table2_nbench",
            None,
            &["bench a/b   1.00 ms ..   1.00 ms (mean   1.00 ms, n=3)"],
        );
        assert_eq!(parse_bench_file(&unstamped).unwrap().host, None);
    }

    fn file(bench: &str, cores: Option<u64>, id: &str, mean: &str) -> BenchFile {
        parse_bench_file(&bench_json(
            bench,
            cores.map(|c| (c, true)),
            &[&format!("bench {id}   {mean} ..   {mean} (mean   {mean}, n=3)")],
        ))
        .unwrap()
    }

    #[test]
    fn regression_detected_only_on_comparable_hosts() {
        let prev = [file("fig8_seqgen", Some(4), "seqgen/full", "1.00 ms")];
        let slow = [file("fig8_seqgen", Some(4), "seqgen/full", "2.00 ms")];
        let report = TrendReport::build(&slow, &prev, 25.0);
        assert!(report.has_regression());
        assert!((report.rows[0].delta_pct.unwrap() - 100.0).abs() < 0.01);
        // Same slowdown, different core counts: reported, not enforced.
        let other_host = [file("fig8_seqgen", Some(2), "seqgen/full", "2.00 ms")];
        let report = TrendReport::build(&other_host, &prev, 25.0);
        assert!(!report.has_regression());
        assert!(report.rows[0].note.contains("host cores changed"));
        // Unstamped previous file (pre-stamping era): never enforced.
        let prev_unstamped = [file("fig8_seqgen", None, "seqgen/full", "1.00 ms")];
        let report = TrendReport::build(&slow, &prev_unstamped, 25.0);
        assert!(!report.has_regression());
        assert!(report.rows[0].note.contains("unstamped baseline"));
    }

    #[test]
    fn speedups_and_small_drifts_pass() {
        let prev = [file("fig8_seqgen", Some(4), "seqgen/full", "2.00 ms")];
        let fast = [file("fig8_seqgen", Some(4), "seqgen/full", "1.00 ms")];
        assert!(!TrendReport::build(&fast, &prev, 25.0).has_regression());
        let drift = [file("fig8_seqgen", Some(4), "seqgen/full", "2.20 ms")];
        assert!(!TrendReport::build(&drift, &prev, 25.0).has_regression());
    }

    #[test]
    fn core_gated_benches_never_regress_under_four_cores() {
        let prev = [file("ablation_parallel_verify", Some(1), "verify/threads-4", "1.00 ms")];
        let slow = [file("ablation_parallel_verify", Some(1), "verify/threads-4", "9.00 ms")];
        let report = TrendReport::build(&slow, &prev, 25.0);
        assert!(!report.has_regression());
        assert!(report.rows[0].note.contains("gated off"));
        // On a ≥4-core host the same bench does enforce.
        let prev = [file("ablation_parallel_verify", Some(8), "verify/threads-4", "1.00 ms")];
        let slow = [file("ablation_parallel_verify", Some(8), "verify/threads-4", "9.00 ms")];
        assert!(TrendReport::build(&slow, &prev, 25.0).has_regression());
    }

    #[test]
    fn icache_bench_enforces_even_on_one_core() {
        // The icache ablation is single-threaded by construction; it must
        // never join CORE_GATED_BENCHES, so a 1-core CI host still gates on
        // it — the property that makes it the first enforceable perf
        // baseline.
        assert!(!CORE_GATED_BENCHES.contains(&"ablation_icache"));
        let prev = [file("ablation_icache", Some(1), "icache/numeric_sort/cached", "1.00 ms")];
        let slow = [file("ablation_icache", Some(1), "icache/numeric_sort/cached", "9.00 ms")];
        assert!(TrendReport::build(&slow, &prev, 25.0).has_regression());
    }

    #[test]
    fn incremental_bench_enforces_even_on_one_core() {
        // Both sides of the incremental ablation are single-threaded (the
        // incremental verifier is serial by design and is compared against
        // the serial verifier), so it must never join CORE_GATED_BENCHES:
        // a 1-core CI host still gates on its trend.
        assert!(!CORE_GATED_BENCHES.contains(&"ablation_incremental"));
        let prev = [file("ablation_incremental", Some(1), "incremental/patch_warm", "1.00 ms")];
        let slow = [file("ablation_incremental", Some(1), "incremental/patch_warm", "9.00 ms")];
        assert!(TrendReport::build(&slow, &prev, 25.0).has_regression());
    }

    #[test]
    fn flightrec_bench_enforces_even_on_one_core() {
        // The flight-recorder ablation's verify+serve flow is
        // single-threaded, so it must never join CORE_GATED_BENCHES: a
        // 1-core CI host still gates on the recorder-disabled budget.
        assert!(!CORE_GATED_BENCHES.contains(&"ablation_flightrec"));
        let prev = [file("ablation_flightrec", Some(1), "flightrec/verify_serve/off", "1.00 ms")];
        let slow = [file("ablation_flightrec", Some(1), "flightrec/verify_serve/off", "9.00 ms")];
        assert!(TrendReport::build(&slow, &prev, 25.0).has_regression());
    }

    #[test]
    fn fig_serving_bench_enforces_even_on_one_core() {
        // The serving bench's headline series (`admission_1w`, the
        // single-worker saturation floor, and `sim_closed_100k`, the
        // deterministic 10^5-client simulation) are single-worker or
        // simulated by construction; fig_serving must never join
        // CORE_GATED_BENCHES so a 1-core CI host still gates on them.
        // The >=4-core `admission_4w` series protects itself by not
        // registering (no row, nothing to gate) on smaller hosts.
        assert!(!CORE_GATED_BENCHES.contains(&"fig_serving"));
        let prev = [file("fig_serving", Some(1), "fig_serving/admission_1w", "1.00 ms")];
        let slow = [file("fig_serving", Some(1), "fig_serving/admission_1w", "9.00 ms")];
        assert!(TrendReport::build(&slow, &prev, 25.0).has_regression());
        let prev = [file("fig_serving", Some(1), "fig_serving/sim_closed_100k", "1.00 ms")];
        let slow = [file("fig_serving", Some(1), "fig_serving/sim_closed_100k", "9.00 ms")];
        assert!(TrendReport::build(&slow, &prev, 25.0).has_regression());
    }

    #[test]
    fn markdown_renders_rows_and_metrics_sections() {
        let prev = [file("fig8_seqgen", Some(4), "seqgen/full", "1.00 ms")];
        let curr = [file("fig8_seqgen", Some(4), "seqgen/full", "2.00 ms")];
        let report = TrendReport::build(&curr, &prev, 25.0);
        let metrics = vec![(
            "METRICS_smoke.json".to_string(),
            MetricsFile {
                available_parallelism: Some(4),
                samples: vec![MetricSample {
                    name: "deflection_verify_total".into(),
                    labels: "verdict=\"accept\"".into(),
                    value: 3,
                }],
                tails: Vec::new(),
            },
        )];
        let md = report.to_markdown(&metrics);
        assert!(md.contains(
            "| fig8_seqgen | seqgen/full | 1.00 ms | 2.00 ms | +100.0% **REGRESSION** |"
        ));
        assert!(md.contains("Collector snapshots"));
        assert!(md.contains("METRICS_smoke.json"));
    }

    #[test]
    fn metrics_snapshot_samples_parse() {
        let json = "{\n  \"schema\": \"deflection-metrics-v1\",\n  \"samples\": [\n    {\"name\": \"deflection_verify_total\", \"labels\": \"verdict=\\\"accept\\\"\", \"value\": 5},\n    {\"name\": \"deflection_run_budget_headroom_bytes\", \"labels\": \"\", \"value\": -2}\n  ],\n  \"histograms\": []\n}\n";
        let samples = parse_metrics_file(json);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].labels, "verdict=\"accept\"");
        assert_eq!(samples[0].value, 5);
        assert_eq!(samples[1].value, -2);
    }

    fn metrics_snapshot(cores: Option<u64>, name: &str, count: u64, p50: f64, p99: f64) -> String {
        let host = cores.map_or(String::new(), |c| {
            format!("  \"host\": {{\"available_parallelism\": {c}}},\n")
        });
        format!(
            "{{\n  \"schema\": \"deflection-metrics-v1\",\n{host}  \"samples\": [\n  ],\n  \
             \"histograms\": [\n    {{\"name\": \"{name}\", \"labels\": \"\", \"count\": {count}, \
             \"sum\": 0, \"p50\": {p50:.1}, \"p99\": {p99:.1}, \"buckets\": [0]}}\n  ]\n}}\n"
        )
    }

    #[test]
    fn metrics_snapshot_tails_and_host_stamp_parse() {
        let f = parse_metrics_snapshot(&metrics_snapshot(
            Some(8),
            "deflection_verify_ns",
            12,
            1024.0,
            8192.0,
        ));
        assert_eq!(f.available_parallelism, Some(8));
        assert_eq!(f.tails.len(), 1);
        assert_eq!(f.tails[0].count, 12);
        assert!((f.tails[0].p50 - 1024.0).abs() < 0.01);
        assert!((f.tails[0].p99 - 8192.0).abs() < 0.01);
        assert_eq!(parse_metrics_snapshot("{}").available_parallelism, None);
    }

    fn tail_pair(
        prev: (Option<u64>, u64, f64),
        curr: (Option<u64>, u64, f64),
        name: &str,
    ) -> TrendReport {
        let prev = vec![(
            "METRICS_smoke.json".to_string(),
            parse_metrics_snapshot(&metrics_snapshot(prev.0, name, prev.1, 100.0, prev.2)),
        )];
        let curr = vec![(
            "METRICS_smoke.json".to_string(),
            parse_metrics_snapshot(&metrics_snapshot(curr.0, name, curr.1, 100.0, curr.2)),
        )];
        let mut report = TrendReport::build(&[], &[], 25.0);
        report.attach_tails(&curr, &prev);
        report
    }

    #[test]
    fn tail_regressions_enforce_past_one_bucket_of_drift() {
        // 2.5× past the previous p99 (> one log-2 bucket): regression.
        let r = tail_pair((Some(4), 10, 1000.0), (Some(4), 10, 2500.0), "deflection_verify_ns");
        assert!(r.has_regression());
        assert!(r.to_markdown(&[]).contains("**REGRESSION**"));
        // Exactly one bucket of drift (2×, +100%): quantization noise.
        let r = tail_pair((Some(4), 10, 1000.0), (Some(4), 10, 2000.0), "deflection_verify_ns");
        assert!(!r.has_regression());
    }

    #[test]
    fn tail_rows_gate_on_cores_counts_and_latency_units() {
        // Different host shapes: reported, never enforced.
        let r = tail_pair((Some(2), 10, 1000.0), (Some(4), 10, 9000.0), "deflection_verify_ns");
        assert!(!r.has_regression());
        assert!(r.tails[0].note.contains("host cores changed"));
        // Unstamped side: never enforced.
        let r = tail_pair((None, 10, 1000.0), (Some(4), 10, 9000.0), "deflection_verify_ns");
        assert!(!r.has_regression());
        assert!(r.tails[0].note.contains("unstamped snapshot"));
        // Too few observations: never enforced.
        let r = tail_pair((Some(4), 2, 1000.0), (Some(4), 10, 9000.0), "deflection_verify_ns");
        assert!(!r.has_regression());
        assert!(r.tails[0].note.contains("sparse"));
        // Non-latency histograms (bytes, lengths) are workload-shaped.
        let r = tail_pair((Some(4), 10, 1000.0), (Some(4), 10, 9000.0), "deflection_sent_bytes");
        assert!(!r.has_regression());
        // The same drift on a latency histogram with clean stamps gates.
        let r = tail_pair((Some(4), 10, 1000.0), (Some(4), 10, 9000.0), "deflection_verify_ns");
        assert!(r.has_regression());
    }
}
