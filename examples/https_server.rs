//! The in-enclave HTTPS-style server (the paper's Fig. 10 scenario):
//! requests are served by a verified handler, every response leaves the
//! enclave as fixed-length authenticated records.
//!
//! Run with: `cargo run --release --example https_server`

use deflection::core::policy::Manifest;
use deflection::core::producer::produce;
use deflection::core::runtime::{open_record, BootstrapEnclave};
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::workloads::server;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== in-enclave HTTPS-style server ==\n");

    let manifest = Manifest::ccaas();
    let policy = manifest.policy;
    let binary = produce(&server::source(), &policy)?.serialize();
    let owner_key = [9u8; 32];
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.set_owner_session(owner_key);
    enclave.install_plain(&binary)?;
    println!("handler verified and installed\n");

    let mut record_counter = 0u64;
    for (req_id, size) in [(1u64, 352u64), (2, 776), (3, 128)] {
        let input = server::request(req_id, size);
        enclave.provide_input(&input)?;
        let report = enclave.run(1_000_000_000)?;
        let exit = report.exit.exit_value().expect("handler halts");
        assert_eq!(exit, server::reference(&input));

        // The "client" (data owner) decrypts the response records.
        let mut body = Vec::new();
        for sealed in &report.records {
            body.extend(open_record(&owner_key, 0, record_counter, sealed)?);
            record_counter += 1;
        }
        assert_eq!(body.len() as u64, size);
        println!(
            "GET /page/{req_id} -> {size} bytes in {} fixed-size records \
             ({} instructions, checksum {exit:#09x})",
            report.records.len(),
            report.stats.instructions
        );
    }

    println!("\nEvery response left the enclave encrypted and length-padded (P0).");
    Ok(())
}
