//! What happens when the code provider is hostile: every attack in the
//! corpus is thrown at the bootstrap enclave and its containment is shown
//! (paper Section VI-A, "Policy analysis").
//!
//! Run with: `cargo run --release --example malicious_provider`

use deflection::core::attack::{corpus, elision_corpus, Expected};
use deflection::core::consumer::install;
use deflection::core::policy::{Manifest, PolicySet};
use deflection::core::runtime::BootstrapEnclave;
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::sgx::mem::Memory;
use deflection::sgx::vm::RunExit;

fn main() {
    println!("== malicious code provider vs. DEFLECTION ==\n");
    let manifest = Manifest::ccaas();
    let mut contained = 0;
    let total = corpus().len();

    for attack in corpus() {
        let binary = attack.binary.serialize();
        let outcome = match attack.expected {
            Expected::VerifierReject => {
                let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
                match install(&binary, &manifest, &mut mem) {
                    Err(e) => {
                        contained += 1;
                        format!("REJECTED at load/verify: {e}")
                    }
                    Ok(_) => "!! accepted (containment failure)".to_string(),
                }
            }
            Expected::RuntimeAbort(code) => {
                let mut enclave =
                    BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest.clone());
                match enclave.install_plain(&binary) {
                    Err(e) => format!("!! unexpectedly rejected: {e}"),
                    Ok(_) => match enclave.run(1_000_000) {
                        Ok(report) => match report.exit {
                            RunExit::PolicyAbort { code: c } if c == code => {
                                contained += 1;
                                format!(
                                    "ABORTED at runtime (policy code {c}), {} bytes leaked",
                                    report.untrusted_writes
                                )
                            }
                            other => format!("!! wrong outcome: {other:?}"),
                        },
                        Err(e) => format!("!! run error: {e}"),
                    },
                }
            }
        };
        println!("{:26} {}", attack.name, outcome);
        println!("{:26}   ({})", "", attack.description);
    }

    println!("\n{contained}/{total} attacks contained.");
    assert_eq!(contained, total, "every attack must be contained");

    // Round two: a producer that lies about guard elision. The manifest
    // *allows* elision — the verifier still has to refuse any stripped
    // guard its own in-enclave analysis cannot re-prove.
    println!("\n== hostile provider abusing guard elision (elide_guards on) ==\n");
    let mut elide_manifest = Manifest::ccaas();
    elide_manifest.policy = PolicySet::full().with_elision();
    let mut elide_contained = 0;
    let elision_attacks = elision_corpus();
    let elide_total = elision_attacks.len();
    for attack in elision_attacks {
        let binary = attack.binary.serialize();
        let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
        let outcome = match install(&binary, &elide_manifest, &mut mem) {
            Err(e) => {
                elide_contained += 1;
                format!("REJECTED at load/verify: {e}")
            }
            Ok(_) => "!! accepted (containment failure)".to_string(),
        };
        println!("{:26} {}", attack.name, outcome);
        println!("{:26}   ({})", "", attack.description);
    }
    println!("\n{elide_contained}/{elide_total} elision attacks contained.");
    assert_eq!(elide_contained, elide_total, "every elision attack must be contained");
}
