//! Covert-channel control (policies P0 and the Section VII time-blur
//! extension): what the untrusted host actually observes when a malicious
//! service tries to modulate its outputs.
//!
//! A malicious enclave program cannot write the secret out (P1–P5), so it
//! tries covert channels instead: response *length*, response *count*, and
//! completion *time*. This example shows each channel closed in turn.
//!
//! Run with: `cargo run --release --example covert_channels`

use deflection::core::policy::Manifest;
use deflection::core::producer::produce;
use deflection::core::runtime::BootstrapEnclave;
use deflection::sgx::layout::{EnclaveLayout, MemConfig};

/// A malicious service: tries to signal the secret's first byte through
/// output length (send length = secret) and through timing (busy loop
/// proportional to the secret).
const EXFILTRATOR: &str = "
fn main() -> int {
    var secret: int = input_byte(0);
    // Channel 1: output length modulation.
    var i: int = 0;
    while (i < secret) { output_byte(i, 88); i = i + 1; }
    send(secret);
    // Channel 2: timing modulation.
    var spin: int = 0;
    i = 0;
    while (i < secret * 1000) { spin = spin + i; i = i + 1; }
    return spin & 1;
}
";

fn observe(secret: u8, manifest: &Manifest) -> (usize, usize, u64) {
    let binary = produce(EXFILTRATOR, &manifest.policy).expect("compiles").serialize();
    let mut enclave =
        BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest.clone());
    enclave.set_owner_session([4u8; 32]);
    enclave.install_plain(&binary).expect("verifies");
    enclave.provide_input(&[secret]).expect("input");
    let report = enclave.run(100_000_000).expect("runs");
    let lens: usize = report.records.iter().map(Vec::len).sum();
    (report.records.len(), lens, report.stats.instructions)
}

fn main() {
    println!("== covert channels vs. P0 + time blurring ==\n");
    let mut manifest = Manifest::ccaas();
    // The quantum must exceed the worst-case secret-dependent variation —
    // larger quanta trade latency for a tighter leakage bound.
    manifest.time_blur_quantum = Some(16_000_000);

    println!(
        "{:<8} {:>9} {:>16} {:>22}",
        "secret", "records", "total cipher len", "completion (instrs)"
    );
    println!("{:-<60}", "");
    let mut observations = Vec::new();
    for secret in [10u8, 60, 200] {
        let (count, total_len, instrs) = observe(secret, &manifest);
        println!("{secret:<8} {count:>9} {total_len:>16} {instrs:>22}");
        observations.push((count, total_len / count.max(1), instrs));
    }
    println!("{:-<60}", "");

    // Per-record ciphertext length is constant regardless of the secret.
    let lens: Vec<usize> = observations.iter().map(|o| o.1).collect();
    assert!(lens.windows(2).all(|w| w[0] == w[1]), "record length leaked!");
    // Completion time is blurred to the quantum regardless of the secret.
    let times: Vec<u64> = observations.iter().map(|o| o.2).collect();
    assert!(times.windows(2).all(|w| w[0] == w[1]), "timing leaked!");

    println!(
        "\nEvery record the host sees has the same ciphertext length, and every run\n\
         completes at the same (blurred) time. What remains is the record *count* —\n\
         which the entropy budget caps: this manifest allows at most {} plaintext\n\
         bytes per run, bounding each inference's leakage to a few bits (a\n\
         lifetime_output_budget would additionally cap the cumulative total).",
        manifest.output_budget
    );
}
