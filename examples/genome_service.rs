//! Sensitive genome analysis as a service (the paper's Fig. 7 scenario):
//! a hospital (data owner) submits two sequences; a biotech company (code
//! provider) supplies its proprietary Needleman–Wunsch implementation; the
//! bootstrap enclave proves policy compliance before any data is touched.
//!
//! Run with: `cargo run --release --example genome_service`

use deflection::core::policy::{Manifest, PolicySet};
use deflection::core::producer::produce;
use deflection::core::runtime::BootstrapEnclave;
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::workloads::genome;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== genome alignment service ==\n");

    for (label, policy) in [
        ("baseline (no annotations)", PolicySet::none()),
        ("P1 store bounds", PolicySet::p1()),
        ("P1-P5 full memory+CFI", PolicySet::p1_p5()),
        ("P1-P6 with AEX mitigation", PolicySet::full()),
    ] {
        let mut manifest = Manifest::ccaas();
        manifest.policy = policy;
        let binary = produce(&genome::nw_source(), &policy)?.serialize();
        let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
        enclave.set_owner_session([7u8; 32]);
        enclave.install_plain(&binary)?;

        let input = genome::nw_input(200);
        enclave.provide_input(&input)?;
        let report = enclave.run(2_000_000_000)?;
        let exit = report.exit.exit_value().expect("alignment halts");
        let score = (exit >> 28) as i64 - 1_000_000;
        let expected = genome::nw_reference(&input);
        assert_eq!(exit, expected, "instrumentation must not change results");
        println!(
            "{label:28}  score {score:5}   {:>12} instructions   binary {:6} bytes",
            report.stats.instructions,
            binary.len()
        );
    }

    println!("\nSame alignment score at every policy level; only the cost changes.");
    Ok(())
}
