//! Privacy-preserving credit evaluation (the paper's Fig. 9 scenario and
//! its introduction's motivating example): a customer's transactions are
//! only ever exposed to an enclave running credit-evaluation code whose
//! policy compliance was verified — without the scoring algorithm itself
//! being revealed.
//!
//! Run with: `cargo run --release --example credit_scoring`

use deflection::core::policy::Manifest;
use deflection::core::producer::produce;
use deflection::core::runtime::BootstrapEnclave;
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::workloads::credit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== credit scoring service ==\n");

    let manifest = Manifest::ccaas();
    let policy = manifest.policy;
    let binary = produce(&credit::source(), &policy)?.serialize();
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.set_owner_session([3u8; 32]);
    let hash = enclave.install_plain(&binary)?;
    println!("service binary verified in-enclave; hash {}…", hx(&hash[..6]));

    for records in [50u64, 100, 200] {
        let input = credit::input(200, records);
        enclave.provide_input(&input)?;
        let report = enclave.run(5_000_000_000)?;
        let exit = report.exit.exit_value().expect("halts");
        assert_eq!(exit, credit::reference(&input));
        let correct = exit >> 32;
        println!(
            "scored {records:4} applicants: {correct:4} classified correctly \
             ({} instructions, 0 leaks: {})",
            report.stats.instructions,
            report.untrusted_writes == 0
        );
    }

    println!("\nThe model weights never left the enclave; the data owner saw only scores.");
    Ok(())
}

fn hx(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
