//! Quickstart: the complete DEFLECTION flow on one page.
//!
//! A code provider compiles a private program with security annotations, a
//! data owner attests the bootstrap enclave, both deliver their payloads
//! over role-separated encrypted channels, and the enclave verifies the
//! binary before running it on the data.
//!
//! Run with: `cargo run --release --example quickstart`

use deflection::attest::{establish_sessions, AttestationService, HandshakeParty, Role};
use deflection::core::policy::Manifest;
use deflection::core::producer::produce;
use deflection::core::runtime::{delivery_nonce, open_record, BootstrapEnclave};
use deflection::crypto::aead::ChaCha20Poly1305;
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::sgx::measure::Platform;

/// The code provider's *private* algorithm: scores a blood-pressure series
/// without ever revealing how.
const PRIVATE_ALGORITHM: &str = "
fn main() -> int {
    var n: int = input_len();
    var risk: int = 0;
    var i: int = 0;
    while (i < n) {
        var v: int = input_byte(i);
        if (v > 140) { risk = risk + 2; }
        else if (v > 120) { risk = risk + 1; }
        i = i + 1;
    }
    output_byte(0, risk & 0xFF);
    send(1);
    return risk;
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== DEFLECTION quickstart ==\n");

    // --- Platform and enclave setup (the cloud host). ----------------------
    let platform = Platform::new(1, &[11u8; 32]);
    let mut service = AttestationService::new();
    service.register_platform(&platform);
    let manifest = Manifest::ccaas();
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    let measurement = enclave.measurement();
    println!("bootstrap enclave measurement: {}", hex(&measurement[..8]));

    // --- Remote attestation + key agreement (paper Fig. 1). ----------------
    let mut owner = HandshakeParty::new(Role::DataOwner, b"hospital");
    let mut provider = HandshakeParty::new(Role::CodeProvider, b"pharma-co");
    let (owner_key, provider_key, ..) =
        establish_sessions(&platform, &service, measurement, &mut owner, &mut provider)?;
    enclave.set_owner_session(owner_key);
    enclave.set_provider_session(provider_key);
    println!("RA-TLS sessions established (role-separated keys)");

    // --- Code provider: compile + instrument + seal + deliver. ------------
    let policy = enclave.manifest().policy;
    let binary = produce(PRIVATE_ALGORITHM, &policy)?.serialize();
    println!("producer: instrumented binary is {} bytes (P1-P6)", binary.len());
    let sealed_binary = ChaCha20Poly1305::new(&provider_key).seal(
        &delivery_nonce(b"BIN\0", 0),
        b"deflection-binary",
        &binary,
    );
    let code_hash = enclave.ecall_receive_binary(&sealed_binary)?;
    println!("consumer: loaded, verified, rewritten; code hash {}", hex(&code_hash[..8]));

    // --- Data owner: seal + deliver the sensitive readings. ---------------
    let readings: Vec<u8> = vec![118, 125, 131, 150, 145, 122, 119, 160];
    let sealed_data = ChaCha20Poly1305::new(&owner_key).seal(
        &delivery_nonce(b"DAT\0", 1),
        b"deflection-userdata",
        &readings,
    );
    enclave.ecall_receive_userdata(&sealed_data)?;
    println!("data owner: delivered {} sealed readings", readings.len());

    // --- Run under full policy enforcement. --------------------------------
    let report = enclave.run(10_000_000)?;
    println!(
        "run: {:?}, {} instructions, {} bytes leaked outside the enclave",
        report.exit, report.stats.instructions, report.untrusted_writes
    );

    // --- Data owner opens the sealed result. -------------------------------
    let result = open_record(&owner_key, 0, 0, &report.records[0])?;
    println!("data owner decrypts risk score: {}", result[0]);
    assert_eq!(report.untrusted_writes, 0);
    println!("\nOK: computation finished with zero unmediated boundary crossings.");
    Ok(())
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}
