//! Precision-ratchet gate: measures how many P1 store guards and P2 rsp
//! guards the producer+verifier pair can prove and elide, per program, and
//! compares the result against the committed `PRECISION.json` baseline.
//!
//! The ratchet direction is one-way: a change may *increase* the proven
//! counts (better analysis, better codegen shapes) but must never decrease
//! them — losing a proof silently would re-grow the runtime overhead the
//! paper's Table 2 "elided" column measures. `scripts/ci.sh` runs this test
//! and additionally diffs the freshly written JSON against the baseline so
//! an *improvement* that forgets to refresh the baseline is also caught.

use deflection::core::annotations::TemplateKind;
use deflection::core::consumer::install;
use deflection::core::policy::{Manifest, PolicySet};
use deflection::core::producer::{produce, produce_for_layout};
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::sgx::mem::Memory;
use std::fmt::Write as _;
use std::path::Path;

/// The mixed-store elision corpus program shared with `guard_elision.rs`:
/// constant global indices, loop-bounded array stores, and a call-bearing
/// loop body.
const MIXED_SRC: &str = "
var flags: [int; 4];
var acc: [int; 16];
fn mix(x: int) -> int { return x * 31 + 7; }
fn main() -> int {
    flags[0] = 1;
    flags[1] = 2;
    flags[2] = 3;
    var i: int = 0;
    while (i < 16) {
        acc[i] = mix(i);
        i = i + 1;
    }
    var s: int = 0;
    i = 0;
    while (i < 16) {
        s = s + acc[i];
        i = i + 1;
    }
    flags[3] = s;
    log(s);
    output_byte(0, s & 0xFF);
    send(1);
    return s;
}
";

/// A counted loop with a call-free body: the shape the loop-bound
/// materialization pass plus branch refinement must prove.
const COUNTED_LOOP_SRC: &str = "
var table: [int; 64];
fn main() -> int {
    var i: int = 0;
    while (i < 64) {
        table[i] = i * 3 + 1;
        i = i + 1;
    }
    return table[63];
}
";

struct Row {
    name: &'static str,
    full_store: usize,
    elided_store: usize,
    full_rsp: usize,
    elided_rsp: usize,
}

impl Row {
    fn proven_store(&self) -> usize {
        self.full_store - self.elided_store
    }
    fn proven_rsp(&self) -> usize {
        self.full_rsp - self.elided_rsp
    }
}

fn guard_counts(binary: &[u8], manifest: &Manifest) -> (usize, usize) {
    let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
    let installed = install(binary, manifest, &mut mem).expect("binary verifies");
    let stores =
        installed.verified.instances.iter().filter(|i| i.kind == TemplateKind::StoreGuard).count();
    let rsps =
        installed.verified.instances.iter().filter(|i| i.kind == TemplateKind::RspGuard).count();
    (stores, rsps)
}

fn measure(name: &'static str, source: &str) -> Row {
    let layout = EnclaveLayout::new(MemConfig::small());
    let full = produce(source, &PolicySet::full()).expect("compiles").serialize();
    let elided = produce_for_layout(source, &PolicySet::full().with_elision(), &layout)
        .expect("compiles")
        .serialize();
    let mut elide_manifest = Manifest::ccaas();
    elide_manifest.policy = PolicySet::full().with_elision();
    let (full_store, full_rsp) = guard_counts(&full, &Manifest::ccaas());
    let (elided_store, elided_rsp) = guard_counts(&elided, &elide_manifest);
    Row { name, full_store, elided_store, full_rsp, elided_rsp }
}

fn measure_all() -> Vec<Row> {
    let mut rows = vec![measure("corpus/mixed_stores", MIXED_SRC)];
    rows.push({
        let src = COUNTED_LOOP_SRC.to_string();
        let leaked: &'static str = Box::leak(src.into_boxed_str());
        measure("corpus/counted_loop", leaked)
    });
    for kernel in deflection::workloads::nbench::all() {
        let src = (kernel.source)();
        let leaked: &'static str = Box::leak(src.into_boxed_str());
        rows.push(measure(kernel.name, leaked));
    }
    rows
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"programs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"name\": \"{}\", \"store_guards_full\": {}, \"store_guards_elided\": {}, \
             \"store_guards_proven\": {}, \"rsp_guards_full\": {}, \"rsp_guards_elided\": {}, \
             \"rsp_guards_proven\": {}}}{sep}",
            r.name,
            r.full_store,
            r.elided_store,
            r.proven_store(),
            r.full_rsp,
            r.elided_rsp,
            r.proven_rsp(),
        )
        .expect("string write");
    }
    let total_store: usize = rows.iter().map(Row::proven_store).sum();
    let total_rsp: usize = rows.iter().map(Row::proven_rsp).sum();
    writeln!(
        out,
        "  ],\n  \"total_store_guards_proven\": {total_store},\n  \
         \"total_rsp_guards_proven\": {total_rsp}\n}}"
    )
    .expect("string write");
    out
}

/// Pulls `"name": value` pairs out of the baseline without a JSON
/// dependency: good enough for the fixed shape this test itself writes.
fn baseline_proven(baseline: &str, program: &str, key: &str) -> Option<usize> {
    let line = baseline.lines().find(|l| l.contains(&format!("\"name\": \"{program}\"")))?;
    let tag = format!("\"{key}\": ");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn precision_never_ratchets_down() {
    let rows = measure_all();
    let json = render_json(&rows);

    // Always refresh the working copy: ci.sh diffs it against the committed
    // baseline so improvements must be committed, and regressions fail here.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    std::fs::write(root.join("PRECISION.json"), &json).expect("write PRECISION.json");

    let baseline = std::fs::read_to_string(root.join("PRECISION.baseline.json"))
        .expect("PRECISION.baseline.json must be committed (copy PRECISION.json on improvement)");
    for r in &rows {
        let store_floor = baseline_proven(&baseline, r.name, "store_guards_proven")
            .unwrap_or_else(|| panic!("{}: missing from PRECISION.baseline.json", r.name));
        let rsp_floor = baseline_proven(&baseline, r.name, "rsp_guards_proven")
            .unwrap_or_else(|| panic!("{}: missing from PRECISION.baseline.json", r.name));
        assert!(
            r.proven_store() >= store_floor,
            "{}: proven store-guard elisions ratcheted down ({} < baseline {})",
            r.name,
            r.proven_store(),
            store_floor
        );
        assert!(
            r.proven_rsp() >= rsp_floor,
            "{}: proven rsp-guard elisions ratcheted down ({} < baseline {})",
            r.name,
            r.proven_rsp(),
            rsp_floor
        );
    }
}
