//! Incremental/serial verifier equivalence: [`verify_incremental`] must
//! return a verdict — accepted instruction list, annotation instances, or
//! the exact rejection error — that is bit-identical to the serial
//! verifier, cold (empty memo) and warm (memo populated by an arbitrary
//! earlier binary), for honest builds, for the whole attack corpus, and
//! for per-function mutants. It must also re-verify *only* the expected
//! invalidation set, observed through the cache's own stats (robust
//! against unrelated tests sharing the global telemetry counters).
//!
//! This is the property that lets the TCB count only the serial path: the
//! memo is a work-avoidance change, never a semantic one.

use deflection::core::annotations::Instance;
use deflection::core::attack::{corpus, elision_corpus};
use deflection::core::consumer::incremental::{verify_incremental, IncrementalCache};
use deflection::core::consumer::{load, verify_with_layout, VerifyError};
use deflection::core::policy::PolicySet;
use deflection::core::producer::produce;
use deflection::isa::Inst;
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::sgx::mem::Memory;
use proptest::prelude::*;

/// Everything observable about a verification outcome: the full
/// address-ordered instruction list and annotation instances on accept,
/// the exact error on reject.
type Verdict = Result<(Vec<(usize, Inst, usize)>, Vec<Instance>), VerifyError>;

/// Loads `binary` exactly the way `install` does and verifies the
/// relocated code window — serially when `cache` is `None`, incrementally
/// through the given memo otherwise. Returns `None` when the loader
/// rejects the binary (verification never runs).
fn verdict(
    binary: &[u8],
    policy: &PolicySet,
    cache: Option<&mut IncrementalCache>,
) -> Option<Verdict> {
    let layout = EnclaveLayout::new(MemConfig::small());
    let mut mem = Memory::new(layout.clone());
    let program = load(binary, &mut mem).ok()?;
    let code = mem
        .peek_bytes(layout.code.start, program.code_len)
        .expect("loader wrote the code window")
        .to_vec();
    let entry = (program.entry_va - layout.code.start) as usize;
    let result = match cache {
        None => verify_with_layout(&code, entry, &program.ibt_offsets, policy, &layout),
        Some(cache) => {
            verify_incremental(&code, entry, &program.ibt_offsets, policy, &layout, cache)
        }
    };
    Some(result.map(|v| (v.insts, v.instances)))
}

/// Asserts serial and incremental verdicts agree for one binary/policy
/// pair, both from an empty memo and from whatever `warm` already holds
/// (the warm memo is left populated by this binary for the next call).
fn assert_equivalent(name: &str, binary: &[u8], policy: &PolicySet, warm: &mut IncrementalCache) {
    let serial = verdict(binary, policy, None);
    let mut cold = IncrementalCache::new();
    assert_eq!(
        serial,
        verdict(binary, policy, Some(&mut cold)),
        "{name}: cold incremental verdict diverged"
    );
    assert_eq!(
        serial,
        verdict(binary, policy, Some(warm)),
        "{name}: warm incremental verdict diverged"
    );
}

#[test]
fn attack_corpus_verdicts_identical_cold_and_warm() {
    // One memo survives the whole corpus: every attack binary is verified
    // through a cache polluted by all previous attacks, the hardest
    // invalidation workload there is.
    let policy = PolicySet::full();
    let mut warm = IncrementalCache::new();
    for attack in corpus() {
        assert_equivalent(attack.name, &attack.binary.serialize(), &policy, &mut warm);
    }
}

#[test]
fn elision_corpus_verdicts_identical_cold_and_warm() {
    // The elision corpus stresses the abstract interpreter, so this also
    // pins the memoized fixpoints to the from-scratch analysis through
    // the verifier's own accept/reject surface.
    let policy = PolicySet::full().with_elision();
    let mut warm = IncrementalCache::new();
    for attack in elision_corpus() {
        assert_equivalent(attack.name, &attack.binary.serialize(), &policy, &mut warm);
    }
}

/// An honest build whose functions each carry a distinct constant, so a
/// single-function patch is a one-line source change.
fn honest_src(consts: &[u64]) -> String {
    let mut src = String::from("var data: [int; 32];\n");
    for (i, k) in consts.iter().enumerate() {
        src.push_str(&format!(
            "fn f{i}(x: int) -> int {{ data[{i}] = x; return data[{i}] * 3 + {k}; }}\n"
        ));
    }
    src.push_str("fn main() -> int {\n    var s: int = 0;\n");
    for i in 0..consts.len() {
        src.push_str(&format!("    s = s + f{i}({i});\n"));
    }
    src.push_str("    return s;\n}\n");
    src
}

#[test]
fn honest_build_accepted_identically_and_repatch_hits() {
    for policy in [PolicySet::full(), PolicySet::full().with_elision()] {
        let binary = produce(&honest_src(&[1, 2, 3, 4]), &policy).expect("compiles").serialize();
        let serial = verdict(&binary, &policy, None).expect("honest binary loads");
        assert!(serial.is_ok(), "honest binary must verify serially");
        let mut cache = IncrementalCache::new();
        assert_eq!(Some(&serial), verdict(&binary, &policy, Some(&mut cache)).as_ref());
        let cold = cache.last_stats();
        assert_eq!(cold.hits, 0, "empty memo cannot hit");
        assert!(cold.misses >= 5, "main + four leaves are all first sights");
        // Re-verifying the identical binary replays every function.
        assert_eq!(Some(&serial), verdict(&binary, &policy, Some(&mut cache)).as_ref());
        let warm = cache.last_stats();
        assert_eq!(warm.misses + warm.invalidated, 0, "identical binary re-verifies nothing");
        assert_eq!(warm.hits, cold.misses);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Patch one random function per round (a constant change that keeps
    /// the encoded length stable): the incremental verdict must stay
    /// bit-identical to serial, and the memo must re-verify exactly the
    /// patched function — nothing else.
    #[test]
    fn single_function_patch_invalidates_only_that_function(
        rounds in proptest::collection::vec((0usize..6, 5u64..200), 1..5)
    ) {
        let policy = PolicySet::full().with_elision();
        let mut consts = [1u64, 2, 3, 4, 1, 2];
        let mut cache = IncrementalCache::new();
        let binary = produce(&honest_src(&consts), &policy).expect("compiles").serialize();
        prop_assert_eq!(
            verdict(&binary, &policy, None),
            verdict(&binary, &policy, Some(&mut cache))
        );
        let functions = cache.last_stats().misses;
        prop_assert!(functions >= 7, "main + six leaves");
        for (which, k) in rounds {
            prop_assume!(consts[which] != k);
            consts[which] = k;
            let binary = produce(&honest_src(&consts), &policy).expect("compiles").serialize();
            let serial = verdict(&binary, &policy, None);
            prop_assert_eq!(&serial, &verdict(&binary, &policy, Some(&mut cache)));
            let s = cache.last_stats();
            prop_assert_eq!(
                s.misses + s.invalidated, 1,
                "exactly the patched function re-verifies (got {} misses, {} invalidated)",
                s.misses, s.invalidated
            );
            prop_assert_eq!(s.hits, functions - 1);
        }
    }

    /// Random byte flips over an honest instrumented binary: whatever the
    /// serial verifier decides — accept, or reject with a specific error —
    /// a warm incremental verifier must decide identically.
    #[test]
    fn mutated_binaries_verify_identically(
        positions in proptest::collection::vec((0usize..20_000, any::<u8>()), 1..6)
    ) {
        let policy = PolicySet::full().with_elision();
        let honest = produce(&honest_src(&[1, 2, 3, 4]), &policy).expect("compiles").serialize();
        let mut cache = IncrementalCache::new();
        // Warm the memo with the honest build, then mutate.
        let _ = verdict(&honest, &policy, Some(&mut cache));
        let mut binary = honest;
        for (pos, xor) in positions {
            let idx = pos % binary.len();
            binary[idx] ^= xor;
        }
        let serial = verdict(&binary, &policy, None);
        // Mutants the loader rejects never reach the verifier; skip them.
        prop_assume!(serial.is_some());
        prop_assert_eq!(&serial, &verdict(&binary, &policy, Some(&mut cache)));
    }
}

#[test]
fn memo_counters_reach_global_telemetry() {
    use deflection::telemetry::{Collector, METRICS};
    // Counters are no-ops until the collector is enabled; parallel tests
    // share the global registry, so assert only >= deltas and leave the
    // collector enabled rather than racing a disable.
    Collector::enable();
    let policy = PolicySet::full();
    let binary = produce(&honest_src(&[1, 2]), &policy).expect("compiles").serialize();
    let before_miss = METRICS.verify_memo_misses.get();
    let mut cache = IncrementalCache::new();
    let _ = verdict(&binary, &policy, Some(&mut cache));
    let before_hit = METRICS.verify_memo_hits.get();
    let _ = verdict(&binary, &policy, Some(&mut cache));
    assert!(METRICS.verify_memo_misses.get() >= before_miss + 3, "main + two leaves missed");
    assert!(METRICS.verify_memo_hits.get() >= before_hit + 3, "replay hits surfaced globally");
}
