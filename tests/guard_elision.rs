//! End-to-end behaviour of P1/P2 guard elision (`PolicySet::elide_guards`):
//! the producer may drop guards the abstract interpretation proves
//! redundant, the verifier re-derives each proof in-enclave, and the elided
//! binary must behave identically while executing strictly fewer
//! instructions.

use deflection::core::annotations::TemplateKind;
use deflection::core::consumer::{install, InstallError};
use deflection::core::policy::{Manifest, PolicySet};
use deflection::core::producer::{produce, produce_for_layout};
use deflection::core::runtime::BootstrapEnclave;
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::sgx::mem::Memory;
use deflection::sgx::vm::RunExit;

/// Mixes trivially-provable stores (constant global indices), loop-bounded
/// array stores, and enough arithmetic that the program has a non-trivial
/// frame.
const SRC: &str = "
var flags: [int; 4];
var acc: [int; 16];
fn mix(x: int) -> int { return x * 31 + 7; }
fn main() -> int {
    flags[0] = 1;
    flags[1] = 2;
    flags[2] = 3;
    var i: int = 0;
    while (i < 16) {
        acc[i] = mix(i);
        i = i + 1;
    }
    var s: int = 0;
    i = 0;
    while (i < 16) {
        s = s + acc[i];
        i = i + 1;
    }
    flags[3] = s;
    log(s);
    output_byte(0, s & 0xFF);
    send(1);
    return s;
}
";

fn elide_manifest() -> Manifest {
    let mut m = Manifest::ccaas();
    m.policy = PolicySet::full().with_elision();
    m
}

fn store_guards(binary: &[u8], manifest: &Manifest) -> usize {
    let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
    let installed = install(binary, manifest, &mut mem).expect("binary verifies");
    installed.verified.instances.iter().filter(|i| i.kind == TemplateKind::StoreGuard).count()
}

fn run_collect(binary: &[u8], manifest: Manifest) -> (u64, Vec<i64>, RunExit) {
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.set_owner_session([7u8; 32]);
    enclave.install_plain(binary).expect("binary verifies");
    let report = enclave.run(50_000_000).expect("installed");
    (report.stats.instructions, enclave.log_values().to_vec(), report.exit)
}

#[test]
fn elision_drops_guards_and_preserves_behaviour() {
    let layout = EnclaveLayout::new(MemConfig::small());
    let full_policy = PolicySet::full();
    let elide_policy = PolicySet::full().with_elision();

    let full = produce(SRC, &full_policy).expect("compiles").serialize();
    let elided = produce_for_layout(SRC, &elide_policy, &layout).expect("compiles").serialize();

    // The elided binary really carries fewer P1 guards...
    let full_guards = store_guards(&full, &Manifest::ccaas());
    let elided_guards = store_guards(&elided, &elide_manifest());
    assert!(
        elided_guards < full_guards,
        "elision must drop at least one store guard ({elided_guards} vs {full_guards})"
    );

    // ...and the binary is smaller.
    assert!(elided.len() < full.len());

    // Behaviour is identical, with strictly fewer executed instructions.
    let (full_insts, full_log, full_exit) = run_collect(&full, Manifest::ccaas());
    let (elided_insts, elided_log, elided_exit) = run_collect(&elided, elide_manifest());
    assert!(matches!(full_exit, RunExit::Halted { .. }), "{full_exit:?}");
    assert!(matches!(elided_exit, RunExit::Halted { .. }), "{elided_exit:?}");
    assert_eq!(full_log, elided_log);
    assert!(
        elided_insts < full_insts,
        "elision must execute fewer instructions ({elided_insts} vs {full_insts})"
    );
}

#[test]
fn strict_verifier_rejects_the_elided_binary() {
    // The guards are really gone: without `elide_guards` the same binary
    // must fail verification.
    let layout = EnclaveLayout::new(MemConfig::small());
    let elided = produce_for_layout(SRC, &PolicySet::full().with_elision(), &layout)
        .expect("compiles")
        .serialize();
    let mut mem = Memory::new(layout);
    let err = install(&elided, &Manifest::ccaas(), &mut mem)
        .expect_err("strict policy must reject the elided binary");
    assert!(matches!(err, InstallError::Verify(_)), "{err:?}");
}

#[test]
fn elide_policy_accepts_fully_instrumented_binaries() {
    // Elision is an *allowance*, not a requirement: unelided output of an
    // old producer still verifies under an eliding consumer.
    let full = produce(SRC, &PolicySet::full()).expect("compiles").serialize();
    let (insts, log, exit) = run_collect(&full, elide_manifest());
    assert!(matches!(exit, RunExit::Halted { .. }), "{exit:?}");
    assert!(insts > 0);
    assert!(!log.is_empty());
}

#[test]
fn every_nbench_kernel_verifies_and_runs_elided() {
    // ISSUE acceptance: with elide_guards on, every nBench kernel verifies
    // and still computes its reference answer, with strictly fewer executed
    // annotation instructions than the fully guarded build.
    let layout = EnclaveLayout::new(MemConfig::small());
    let elide_policy = PolicySet::full().with_elision();
    for kernel in deflection::workloads::nbench::all() {
        let source = (kernel.source)();
        let input = (kernel.input)(1);

        let full = produce(&source, &PolicySet::full()).expect("compiles").serialize();
        let elided =
            produce_for_layout(&source, &elide_policy, &layout).expect("compiles").serialize();

        let (full_insts, full_log, full_exit) = run_with_input(&full, Manifest::ccaas(), &input);
        let (elided_insts, elided_log, elided_exit) =
            run_with_input(&elided, elide_manifest(), &input);
        assert!(matches!(full_exit, RunExit::Halted { .. }), "{}: {full_exit:?}", kernel.name);
        assert!(matches!(elided_exit, RunExit::Halted { .. }), "{}: {elided_exit:?}", kernel.name);
        assert_eq!(full_log, elided_log, "{}: behaviour must not change", kernel.name);
        assert!(
            elided_insts < full_insts,
            "{}: elided {elided_insts} vs full {full_insts}",
            kernel.name
        );
    }
}

fn run_with_input(binary: &[u8], manifest: Manifest, input: &[u8]) -> (u64, Vec<i64>, RunExit) {
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.set_owner_session([7u8; 32]);
    enclave.install_plain(binary).expect("binary verifies");
    if !input.is_empty() {
        enclave.provide_input(input).expect("installed");
    }
    let report = enclave.run(u64::MAX / 2).expect("installed");
    (report.stats.instructions, enclave.log_values().to_vec(), report.exit)
}
