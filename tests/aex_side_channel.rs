//! P6 integration: AEX detection, counting, thresholds and the co-location
//! probe under benign and hostile schedules (paper Section IV-C).

use deflection::core::policy::{abort_codes, Manifest, PolicySet};
use deflection::core::producer::produce;
use deflection::core::runtime::BootstrapEnclave;
use deflection::sgx::aex::{AexInjector, AexSchedule};
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::sgx::vm::RunExit;

const BUSY: &str = "
var sink: [int; 64];
fn main() -> int {
    var i: int = 0;
    while (i < 20000) {
        sink[i & 63] = i;
        i = i + 1;
    }
    return sink[7];
}
";

fn enclave_with(policy: PolicySet, threshold: u64) -> BootstrapEnclave {
    let mut manifest = Manifest::ccaas();
    manifest.policy = policy;
    manifest.aex_threshold = threshold;
    let binary = produce(BUSY, &policy).expect("compiles").serialize();
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.install_plain(&binary).expect("verifies");
    enclave
}

#[test]
fn no_aex_no_interference() {
    let mut enclave = enclave_with(PolicySet::full(), 100);
    let report = enclave.run(2_000_000_000).expect("runs");
    assert!(matches!(report.exit, RunExit::Halted { .. }));
    assert_eq!(report.stats.aex_injected, 0);
    assert_eq!(report.stats.probes, 0, "no AEX, no probes");
}

#[test]
fn benign_timer_aexes_are_counted_but_tolerated() {
    let mut enclave = enclave_with(PolicySet::full(), 10_000);
    // A benign OS timer: an AEX every 100k instructions.
    enclave.set_aex(AexInjector::new(AexSchedule::Periodic { interval: 100_000 }));
    let report = enclave.run(2_000_000_000).expect("runs");
    assert!(matches!(report.exit, RunExit::Halted { .. }), "{:?}", report.exit);
    assert!(report.stats.aex_injected > 0);
    assert!(report.stats.probes > 0, "each detected AEX runs the probe");
}

#[test]
fn controlled_channel_attack_trips_the_threshold() {
    let mut enclave = enclave_with(PolicySet::full(), 50);
    // Controlled-channel attacker: forces an exit every 500 instructions
    // (page-fault style single-stepping).
    enclave.set_aex(AexInjector::new(AexSchedule::Attack { interval: 500 }));
    let report = enclave.run(2_000_000_000).expect("runs");
    assert_eq!(report.exit, RunExit::PolicyAbort { code: abort_codes::AEX });
    assert!(report.stats.aex_injected >= 50);
}

#[test]
fn co_located_attacker_raises_probe_alarm() {
    let mut enclave = enclave_with(PolicySet::full(), 1_000_000);
    enclave.set_aex(AexInjector::new(AexSchedule::Periodic { interval: 20_000 }));
    // The HyperRace probe detects the non-co-located sibling immediately,
    // aborting long before any counting threshold.
    enclave.set_attacker_present(true);
    let report = enclave.run(2_000_000_000).expect("runs");
    assert_eq!(report.exit, RunExit::PolicyAbort { code: abort_codes::AEX });
}

#[test]
fn without_p6_attack_goes_unnoticed() {
    // The same attack schedule against a P1-P5 binary: no marker checks, no
    // detection — the contrast that motivates P6.
    let mut enclave = enclave_with(PolicySet::p1_p5(), 50);
    enclave.set_aex(AexInjector::new(AexSchedule::Attack { interval: 500 }));
    let report = enclave.run(2_000_000_000).expect("runs");
    assert!(matches!(report.exit, RunExit::Halted { .. }));
    assert!(report.stats.aex_injected > 100);
    assert_eq!(report.stats.probes, 0);
}

#[test]
fn aex_counter_grows_with_attack_rate() {
    let mut slow = enclave_with(PolicySet::full(), u64::MAX);
    slow.set_aex(AexInjector::new(AexSchedule::Periodic { interval: 50_000 }));
    let slow_report = slow.run(2_000_000_000).expect("runs");

    let mut fast = enclave_with(PolicySet::full(), u64::MAX);
    fast.set_aex(AexInjector::new(AexSchedule::Periodic { interval: 5_000 }));
    let fast_report = fast.run(2_000_000_000).expect("runs");

    assert!(fast_report.stats.aex_injected > slow_report.stats.aex_injected * 5);
    assert!(fast_report.stats.probes >= slow_report.stats.probes);
}
