//! Parallel/serial verifier equivalence: the sharded verifier must return a
//! verdict — accepted instruction list, annotation instances, or the exact
//! rejection error — that is bit-identical to the serial verifier at every
//! thread count, for honest binaries, for the whole attack corpus, and for
//! randomly mutated binaries.
//!
//! This is the property that lets the TCB count only the serial path: the
//! parallel path is a scheduling change, never a semantic one.

use deflection::core::annotations::Instance;
use deflection::core::attack::{corpus, elision_corpus};
use deflection::core::consumer::{
    load, verify_with_layout, verify_with_layout_threaded, VerifyError,
};
use deflection::core::policy::PolicySet;
use deflection::core::producer::produce;
use deflection::isa::Inst;
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::sgx::mem::Memory;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

/// Everything observable about a verification outcome: the full
/// address-ordered instruction list and annotation instances on accept, the
/// exact error on reject.
type Verdict = Result<(Vec<(usize, Inst, usize)>, Vec<Instance>), VerifyError>;

/// Loads `binary` exactly the way `install` does and verifies the relocated
/// code window with `threads` workers. Returns `None` when the loader
/// rejects the binary (verification never runs, so there is nothing to
/// compare).
fn verdict(binary: &[u8], policy: &PolicySet, threads: usize) -> Option<Verdict> {
    let layout = EnclaveLayout::new(MemConfig::small());
    let mut mem = Memory::new(layout.clone());
    let program = load(binary, &mut mem).ok()?;
    let code = mem
        .peek_bytes(layout.code.start, program.code_len)
        .expect("loader wrote the code window")
        .to_vec();
    let entry = (program.entry_va - layout.code.start) as usize;
    let result = if threads == 1 {
        verify_with_layout(&code, entry, &program.ibt_offsets, policy, &layout)
    } else {
        verify_with_layout_threaded(&code, entry, &program.ibt_offsets, policy, &layout, threads)
    };
    Some(result.map(|v| (v.insts, v.instances)))
}

/// Asserts serial and parallel verdicts agree for one binary/policy pair.
fn assert_equivalent(name: &str, binary: &[u8], policy: &PolicySet) {
    let serial = verdict(binary, policy, 1);
    for threads in THREAD_COUNTS {
        let parallel = verdict(binary, policy, threads);
        assert_eq!(serial, parallel, "{name}: verdict diverged at {threads} threads");
    }
}

#[test]
fn attack_corpus_verdicts_identical_across_thread_counts() {
    let policy = PolicySet::full();
    for attack in corpus() {
        assert_equivalent(attack.name, &attack.binary.serialize(), &policy);
    }
}

#[test]
fn elision_corpus_verdicts_identical_across_thread_counts() {
    // The elision corpus exists to stress the abstract interpreter, so this
    // also pins the threaded analysis (modular fixpoints) to the serial one
    // through the verifier's own accept/reject surface.
    let policy = PolicySet::full().with_elision();
    for attack in elision_corpus() {
        assert_equivalent(attack.name, &attack.binary.serialize(), &policy);
    }
}

const HONEST: &str = "
var data: [int; 32];
fn helper(x: int) -> int { return x * 3 + 1; }
fn main() -> int {
    var n: int = input_len();
    var f: fn(int) -> int = &helper;
    var i: int = 0;
    while (i < 32) {
        data[i] = f(i + n);
        i = i + 1;
    }
    output_byte(0, data[31] & 0xFF);
    send(1);
    return data[31];
}
";

#[test]
fn honest_binary_accepted_identically_at_every_thread_count() {
    for policy in [PolicySet::full(), PolicySet::full().with_elision()] {
        let binary = produce(HONEST, &policy).expect("compiles").serialize();
        let serial = verdict(&binary, &policy, 1).expect("honest binary loads");
        assert!(serial.is_ok(), "honest binary must verify serially");
        for threads in THREAD_COUNTS {
            assert_eq!(
                Some(&serial),
                verdict(&binary, &policy, threads).as_ref(),
                "honest verdict diverged at {threads} threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random byte flips over an honest instrumented binary: whatever the
    /// serial verifier decides — accept, or reject with a specific error —
    /// the parallel verifier must decide identically.
    #[test]
    fn mutated_binaries_verify_identically(
        positions in proptest::collection::vec((0usize..20_000, any::<u8>()), 1..6)
    ) {
        let policy = PolicySet::full().with_elision();
        let mut binary = produce(HONEST, &policy).expect("compiles").serialize();
        for (pos, xor) in positions {
            let idx = pos % binary.len();
            binary[idx] ^= xor;
        }
        let serial = verdict(&binary, &policy, 1);
        // Mutants the loader rejects never reach the verifier; skip them.
        prop_assume!(serial.is_some());
        for threads in THREAD_COUNTS {
            let parallel = verdict(&binary, &policy, threads);
            prop_assert_eq!(&serial, &parallel, "diverged at {} threads", threads);
        }
    }
}
