//! Telemetry soundness: the collector must be an *observer*. Whether it is
//! disabled, enabled, or snapshotted mid-batch, every verification verdict
//! (accept lists, instances, and exact rejection errors with their indices)
//! and every serving result must be bit-identical. This is the property
//! that keeps the instrumentation out of the trust argument: metrics can
//! never steer a policy decision.

use deflection::core::annotations::Instance;
use deflection::core::attack::{corpus, elision_corpus};
use deflection::core::consumer::{load, verify_with_layout, VerifyError};
use deflection::core::policy::{Manifest, PolicySet};
use deflection::core::pool::EnclavePool;
use deflection::core::producer::produce;
use deflection::isa::Inst;
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::sgx::mem::Memory;
use deflection::telemetry::Collector;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// The collector is process-global and these tests toggle it, so they must
/// not interleave with each other.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default).lock().unwrap_or_else(PoisonError::into_inner)
}

type Verdict = Result<(Vec<(usize, Inst, usize)>, Vec<Instance>), VerifyError>;

/// Loads and verifies `binary` the way `install` does; `None` when the
/// loader rejects it before verification runs.
fn verdict(binary: &[u8], policy: &PolicySet) -> Option<Verdict> {
    let layout = EnclaveLayout::new(MemConfig::small());
    let mut mem = Memory::new(layout.clone());
    let program = load(binary, &mut mem).ok()?;
    let code = mem
        .peek_bytes(layout.code.start, program.code_len)
        .expect("loader wrote the code window")
        .to_vec();
    let entry = (program.entry_va - layout.code.start) as usize;
    let result = verify_with_layout(&code, entry, &program.ibt_offsets, policy, &layout);
    Some(result.map(|v| (v.insts, v.instances)))
}

/// The three collector states under test: off, on, and on with a snapshot
/// racing the measurement (taken between verifier phases of the batch).
fn verdict_under_all_collector_states(binary: &[u8], policy: &PolicySet) -> [Option<Verdict>; 3] {
    Collector::disable();
    let off = verdict(binary, policy);
    Collector::enable();
    Collector::reset();
    let on = verdict(binary, policy);
    let _mid = Collector::snapshot();
    let after_snapshot = verdict(binary, policy);
    Collector::disable();
    [off, on, after_snapshot]
}

#[test]
fn attack_corpus_verdicts_unchanged_by_collector_state() {
    let _guard = lock();
    for (attacks, policy) in
        [(corpus(), PolicySet::full()), (elision_corpus(), PolicySet::full().with_elision())]
    {
        for attack in attacks {
            let [off, on, snap] =
                verdict_under_all_collector_states(&attack.binary.serialize(), &policy);
            assert_eq!(off, on, "{}: verdict changed when collector enabled", attack.name);
            assert_eq!(off, snap, "{}: verdict changed by mid-batch snapshot", attack.name);
        }
    }
}

const HONEST: &str = "
var data: [int; 16];
fn main() -> int {
    var n: int = input_len();
    var i: int = 0;
    while (i < 16) {
        data[i] = i * 7 + n;
        i = i + 1;
    }
    output_byte(0, data[15] & 0xFF);
    send(1);
    return data[15];
}
";

/// Serves one fixed batch on a fresh two-worker pool and digests everything
/// observable about the outcome. Round-robin keeps the request→worker (and
/// hence sealed-record nonce channel) assignment deterministic, so the
/// digests are comparable across pools.
fn serve_digest(binary: &[u8]) -> String {
    let mut manifest = Manifest::ccaas();
    manifest.policy = PolicySet::full();
    let mut pool = EnclavePool::new(&EnclaveLayout::new(MemConfig::small()), &manifest, 2);
    pool.set_owner_session([0x5E; 32]);
    pool.install_all(binary).expect("honest binary installs");
    let requests: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i, 2 * i, 100]).collect();
    let reports = pool.serve_parallel_round_robin(&requests, 10_000_000).expect("batch serves");
    reports.iter().map(|r| format!("{r:?}\n")).collect()
}

#[test]
fn serving_results_unchanged_by_collector_state() {
    let _guard = lock();
    let policy = PolicySet::full();
    let binary = produce(HONEST, &policy).expect("compiles").serialize();
    Collector::disable();
    let off = serve_digest(&binary);
    Collector::enable();
    Collector::reset();
    let on = serve_digest(&binary);
    let _mid = Collector::snapshot();
    let snap = serve_digest(&binary);
    Collector::disable();
    assert_eq!(off, on, "serving results changed when collector enabled");
    assert_eq!(off, snap, "serving results changed by mid-batch snapshot");
}

#[test]
fn enabled_collector_actually_observes_the_verifier() {
    // Guards the suite against vacuous passes: if instrumentation were
    // compiled out entirely, the equality tests above would prove nothing.
    let _guard = lock();
    let policy = PolicySet::full();
    let binary = produce(HONEST, &policy).expect("compiles").serialize();
    Collector::enable();
    Collector::reset();
    assert!(verdict(&binary, &policy).expect("loads").is_ok());
    let snapshot = Collector::snapshot();
    Collector::disable();
    assert!(snapshot.total_events() > 0, "enabled collector recorded nothing");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random byte flips over an honest instrumented binary: whatever the
    /// verifier decides — accept, or reject with a specific error at a
    /// specific index — the decision must not depend on collector state.
    #[test]
    fn mutated_binaries_verify_identically_under_all_collector_states(
        positions in proptest::collection::vec((0usize..20_000, any::<u8>()), 1..6)
    ) {
        let _guard = lock();
        let policy = PolicySet::full().with_elision();
        let mut binary = produce(HONEST, &policy).expect("compiles").serialize();
        for (pos, xor) in positions {
            let idx = pos % binary.len();
            binary[idx] ^= xor;
        }
        let [off, on, snap] = verdict_under_all_collector_states(&binary, &policy);
        // Mutants the loader rejects never reach the verifier; skip them.
        prop_assume!(off.is_some());
        prop_assert_eq!(&off, &on, "verdict changed when collector enabled");
        prop_assert_eq!(&off, &snap, "verdict changed by mid-batch snapshot");
    }
}
