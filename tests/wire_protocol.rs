//! The full delegation session at the byte level: every exchange between
//! the parties and the bootstrap enclave travels as serialized protocol
//! messages (paper Fig. 1), so this test is what a real network transport
//! would carry.

use deflection::attest::protocol::{Message, PayloadKind};
use deflection::attest::{AttestationService, EnclaveHandshake, HandshakeParty, Role};
use deflection::core::policy::Manifest;
use deflection::core::producer::produce;
use deflection::core::runtime::{delivery_nonce, open_record, BootstrapEnclave};
use deflection::crypto::aead::ChaCha20Poly1305;
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::sgx::measure::Platform;

const SERVICE: &str = "
fn main() -> int {
    var n: int = input_len();
    var i: int = 0;
    while (i < n) { output_byte(i, 255 - input_byte(i)); i = i + 1; }
    send(n);
    return n;
}
";

/// One end of a lossless in-memory transport.
fn send_recv(msg: &Message) -> Message {
    Message::parse(&msg.serialize()).expect("transport is lossless")
}

#[test]
fn full_session_over_serialized_messages() {
    // --- Infrastructure. ----------------------------------------------------
    let platform = Platform::new(11, &[5u8; 32]);
    let mut service = AttestationService::new();
    service.register_platform(&platform);
    let manifest = Manifest::ccaas();
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    let measurement = enclave.measurement();

    // --- Handshakes, message by message. ------------------------------------
    let mut owner = HandshakeParty::new(Role::DataOwner, b"hospital");
    let mut provider = HandshakeParty::new(Role::CodeProvider, b"vendor");

    // Owner hello → enclave.
    let hello = send_recv(&Message::ClientHello {
        role: Role::DataOwner,
        dh_public: owner.public_key().to_bytes(),
    });
    let Message::ClientHello { role: Role::DataOwner, dh_public } = hello else {
        panic!("wrong message");
    };
    let owner_pub = deflection::crypto::dh::PublicKey::from_bytes(&dh_public).unwrap();
    let (enclave_owner, quote) = EnclaveHandshake::respond(
        &platform,
        measurement,
        &owner_pub,
        Role::DataOwner,
        b"enclave-owner-eph",
    );
    // Enclave response → owner.
    let resp = send_recv(&Message::AttestationResponse {
        dh_public: enclave_owner.public_key().to_bytes(),
        quote,
    });
    let Message::AttestationResponse { dh_public, quote } = resp else { panic!() };
    owner.set_enclave_public(deflection::crypto::dh::PublicKey::from_bytes(&dh_public).unwrap());
    let owner_key = owner.verify_and_derive(&service, &measurement, &quote).unwrap();
    enclave.set_owner_session(enclave_owner.session_key(&owner_pub, Role::DataOwner).unwrap());

    // Provider channel, same dance.
    let provider_pub = provider.public_key();
    let (enclave_provider, quote_p) = EnclaveHandshake::respond(
        &platform,
        measurement,
        &provider_pub,
        Role::CodeProvider,
        b"enclave-provider-eph",
    );
    provider.set_enclave_public(enclave_provider.public_key());
    let provider_key = provider.verify_and_derive(&service, &measurement, &quote_p).unwrap();
    enclave.set_provider_session(
        enclave_provider.session_key(&provider_pub, Role::CodeProvider).unwrap(),
    );

    // --- Sealed code delivery. ----------------------------------------------
    let binary =
        produce(SERVICE, &enclave.manifest().policy.clone()).expect("compiles").serialize();
    let sealed = ChaCha20Poly1305::new(&provider_key).seal(
        &delivery_nonce(b"BIN\0", 0),
        b"deflection-binary",
        &binary,
    );
    let msg = send_recv(&Message::SealedPayload {
        kind: PayloadKind::Code,
        counter: 0,
        ciphertext: sealed,
    });
    let Message::SealedPayload { kind: PayloadKind::Code, ciphertext, .. } = msg else { panic!() };
    let code_hash = enclave.ecall_receive_binary(&ciphertext).expect("verifies");

    // Enclave reports the code hash to the owner, who checks it against the
    // hash the provider promised out of band.
    let report = send_recv(&Message::CodeHashReport { hash: code_hash });
    let Message::CodeHashReport { hash } = report else { panic!() };
    assert_eq!(hash, deflection::crypto::sha256::sha256(&binary));

    // --- Sealed data delivery and execution. --------------------------------
    let secret = b"\x01\x02\x03\x0A";
    let sealed_data = ChaCha20Poly1305::new(&owner_key).seal(
        &delivery_nonce(b"DAT\0", 1),
        b"deflection-userdata",
        secret,
    );
    let msg = send_recv(&Message::SealedPayload {
        kind: PayloadKind::Data,
        counter: 1,
        ciphertext: sealed_data,
    });
    let Message::SealedPayload { ciphertext, .. } = msg else { panic!() };
    enclave.ecall_receive_userdata(&ciphertext).expect("accepted");

    let run = enclave.run(10_000_000).expect("runs");
    assert_eq!(run.exit.exit_value(), Some(secret.len() as u64));
    assert_eq!(run.untrusted_writes, 0);

    // --- Sealed results stream back to the owner. ---------------------------
    for (i, record) in run.records.iter().enumerate() {
        let msg =
            send_recv(&Message::SealedRecord { counter: i as u64, ciphertext: record.clone() });
        let Message::SealedRecord { counter, ciphertext } = msg else { panic!() };
        let plain = open_record(&owner_key, 0, counter, &ciphertext).expect("owner opens");
        let expected: Vec<u8> = secret.iter().map(|b| 255 - b).collect();
        assert_eq!(plain, expected);
    }
}
