//! Policy-enforcement integration: the attack corpus against every policy
//! level, plus the "why P1 exists" leak demonstration.

use deflection::core::attack::{corpus, Expected};
use deflection::core::consumer::{install, InstallError};
use deflection::core::policy::{Manifest, PolicySet};
use deflection::core::producer::produce;
use deflection::core::runtime::BootstrapEnclave;
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::sgx::mem::Memory;
use deflection::sgx::vm::RunExit;

#[test]
fn corpus_contained_under_full_policy() {
    let manifest = Manifest::ccaas();
    for attack in corpus() {
        let binary = attack.binary.serialize();
        match attack.expected {
            Expected::VerifierReject => {
                let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
                assert!(
                    matches!(install(&binary, &manifest, &mut mem), Err(InstallError::Verify(_))),
                    "{} must be rejected statically",
                    attack.name
                );
            }
            Expected::RuntimeAbort(code) => {
                let mut enclave =
                    BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest.clone());
                enclave.install_plain(&binary).expect("verifies");
                let report = enclave.run(1_000_000).expect("runs");
                assert_eq!(report.exit, RunExit::PolicyAbort { code }, "{}", attack.name);
                assert_eq!(report.untrusted_writes, 0, "{} leaked", attack.name);
            }
        }
    }
}

#[test]
fn unprotected_baseline_actually_leaks() {
    // The raw out-of-enclave store *succeeds* when no policy is enforced —
    // the hardware permits it (the paper's motivation for P1). The same
    // binary is then rejected the moment P1 is required.
    let attack = deflection::core::attack::raw_out_of_enclave_store();
    let binary = attack.binary.serialize();

    let mut manifest = Manifest::ccaas();
    manifest.policy = PolicySet::none();
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.install_plain(&binary).expect("no policy, loads fine");
    let report = enclave.run(1_000).expect("runs");
    assert!(matches!(report.exit, RunExit::Halted { .. }));
    assert!(report.untrusted_writes > 0, "baseline must demonstrate the leak");

    let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
    let mut p1 = Manifest::ccaas();
    p1.policy = PolicySet::p1();
    assert!(install(&binary, &p1, &mut mem).is_err());
}

#[test]
fn weaker_levels_contain_their_own_attacks() {
    // The rsp pivot is caught by any level including P2.
    let attack = deflection::core::attack::rsp_pivot();
    let binary = attack.binary.serialize();
    let mut manifest = Manifest::ccaas();
    manifest.policy = PolicySet::p1_p2();
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.install_plain(&binary).expect("P2-instrumented binary verifies under P1+P2");
    let report = enclave.run(1_000_000).expect("runs");
    assert_eq!(
        report.exit,
        RunExit::PolicyAbort { code: deflection::core::policy::abort_codes::RSP_BOUNDS }
    );
}

#[test]
fn honest_binaries_pass_where_attacks_fail() {
    // Sanity that the verifier's rejections are not vacuous: an honest
    // program with stores, calls, indirect calls and returns passes at the
    // exact same policy level that rejects the corpus.
    let honest = "
        var buf: [int; 16];
        fn write_all(v: int) {
            var i: int = 0;
            while (i < 16) { buf[i] = v + i; i = i + 1; }
        }
        fn main() -> int {
            var f: fn(int) = &write_all;
            f(5);
            return buf[15];
        }
    ";
    let manifest = Manifest::ccaas();
    let binary = produce(honest, &manifest.policy).expect("compiles").serialize();
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.install_plain(&binary).expect("honest binary verifies");
    let report = enclave.run(10_000_000).expect("runs");
    assert_eq!(report.exit, RunExit::Halted { exit: 20 });
}

#[test]
fn denied_ocall_is_blocked_by_manifest() {
    // A manifest that removes `log` from the allowed list turns the OCall
    // into a fault (P0 interface control).
    let src = "fn main() -> int { log(1); return 0; }";
    let mut manifest = Manifest::ccaas();
    manifest.policy = PolicySet::p1();
    manifest.allowed_ocalls = vec![deflection::isa::OcallCode::Send as u8];
    let binary = produce(src, &manifest.policy).expect("compiles").serialize();
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.install_plain(&binary).expect("verifies");
    let report = enclave.run(1_000_000).expect("runs");
    assert!(matches!(report.exit, RunExit::Fault(deflection::sgx::Fault::OcallDenied { code: 2 })));
}

#[test]
fn all_output_records_have_identical_length() {
    // P0 entropy control: whatever the program sends, ciphertexts are
    // indistinguishable by length.
    let src = "
        fn main() -> int {
            output_byte(0, 65);
            send(1);
            var i: int = 0;
            while (i < 100) { output_byte(i, 66); i = i + 1; }
            send(100);
            return 0;
        }
    ";
    let manifest = Manifest::ccaas();
    let binary = produce(src, &manifest.policy).expect("compiles").serialize();
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.set_owner_session([5u8; 32]);
    enclave.install_plain(&binary).expect("verifies");
    let report = enclave.run(10_000_000).expect("runs");
    assert_eq!(report.records.len(), 2);
    assert_eq!(report.records[0].len(), report.records[1].len());
}
