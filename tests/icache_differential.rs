//! Differential suite for the predecoded instruction + trace caches: all
//! three VM dispatch modes — superblock traces (`Vm::run_traced`, the
//! default), per-instruction block dispatch (`Vm::run_cached`) and the
//! decode-every-step reference interpreter — must be *bit-identical*: same
//! exit, same counters, same final memory image, same leak log — on every
//! program shape we can throw at them: the full attack corpus, the elision
//! corpus, every AEX schedule, fuel exhaustion mid-block and mid-trace,
//! self-modifying code that patches a live trace, and proptest-generated
//! programs.
//!
//! The caches are pure performance artifacts; any observable divergence is
//! a soundness bug, so these tests compare whole-machine snapshots rather
//! than spot-checking exit codes.

use deflection::core::attack::{corpus, elision_corpus, Expected};
use deflection::core::policy::{Manifest, PolicySet};
use deflection::core::producer::produce;
use deflection::core::runtime::{BootstrapEnclave, RunReport};
use deflection::crypto::sha256::sha256;
use deflection::sgx::aex::{AexInjector, AexSchedule};
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::sgx::mem::LeakRecord;
use deflection::sgx::vm::{ExecMode, ExecStats, RunExit};
use proptest::prelude::*;

const ALL_MODES: [ExecMode; 3] = [ExecMode::Traced, ExecMode::Block, ExecMode::Reference];

/// Everything an execution can observably produce. Two runs are equivalent
/// iff their snapshots are `==`.
#[derive(Debug, PartialEq)]
struct Snapshot {
    exit: RunExit,
    stats: ExecStats,
    records: Vec<Vec<u8>>,
    untrusted_writes: u64,
    blur_padding: u64,
    log: Vec<i64>,
    leak_log: Vec<LeakRecord>,
    enclave_digest: [u8; 32],
    untrusted_digest: [u8; 32],
}

fn snapshot(enclave: &BootstrapEnclave, report: RunReport) -> Snapshot {
    let mem = enclave.memory();
    let el = mem.layout().elrange;
    let enclave_bytes = mem.peek_bytes(el.start, el.len() as usize).expect("elrange is mapped");
    let untrusted_len = mem.layout().config.untrusted_size as usize;
    let untrusted_bytes = mem.peek_bytes(0, untrusted_len).expect("untrusted window is mapped");
    Snapshot {
        exit: report.exit,
        stats: report.stats,
        records: report.records,
        untrusted_writes: report.untrusted_writes,
        blur_padding: report.blur_padding,
        log: enclave.log_values().to_vec(),
        leak_log: mem.leak_log.clone(),
        enclave_digest: sha256(enclave_bytes),
        untrusted_digest: sha256(untrusted_bytes),
    }
}

/// Installs `binary` and runs it to `fuel` in the requested dispatch mode.
/// Returns `None` when installation is rejected (mode-independent: the
/// consumer pipeline never consults the icache).
fn run_mode(
    binary: &[u8],
    manifest: &Manifest,
    input: &[u8],
    aex: AexSchedule,
    fuel: u64,
    mode: ExecMode,
) -> Option<Snapshot> {
    let mut enclave =
        BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest.clone());
    enclave.set_owner_session([0x5A; 32]);
    if enclave.install_plain(binary).is_err() {
        return None;
    }
    enclave.set_exec_mode(mode);
    enclave.set_aex(AexInjector::new(aex));
    if !input.is_empty() {
        enclave.provide_input(input).expect("installed");
    }
    let report = enclave.run(fuel).expect("installed");
    Some(snapshot(&enclave, report))
}

/// Asserts all three dispatch modes agree, returning the traced snapshot
/// (if the binary installed at all).
fn assert_identical(
    name: &str,
    binary: &[u8],
    manifest: &Manifest,
    input: &[u8],
    aex: &AexSchedule,
    fuel: u64,
) -> Option<Snapshot> {
    let traced = run_mode(binary, manifest, input, aex.clone(), fuel, ExecMode::Traced);
    for mode in [ExecMode::Block, ExecMode::Reference] {
        let other = run_mode(binary, manifest, input, aex.clone(), fuel, mode);
        assert_eq!(
            traced, other,
            "{name}: traced and {mode:?} runs diverged ({aex:?}, fuel {fuel})"
        );
    }
    traced
}

/// Every attack in both corpora, under the manifest that lets it execute:
/// runtime-contained attacks under the full policy (so the guards fire),
/// statically-rejected ones under no policy (so the raw malicious code
/// actually runs — including the self-modifying one, which is the hardest
/// coherence case the cache faces).
#[test]
fn attack_corpora_are_bit_identical() {
    let full = Manifest::ccaas();
    let mut permissive = Manifest::ccaas();
    permissive.policy = PolicySet::none();
    let mut executed = 0usize;
    for attack in corpus().into_iter().chain(elision_corpus()) {
        let binary = attack.binary.serialize();
        let manifest = match attack.expected {
            Expected::RuntimeAbort(_) => &full,
            Expected::VerifierReject => &permissive,
        };
        let aex = AexSchedule::Periodic { interval: 97 };
        if assert_identical(attack.name, &binary, manifest, b"", &aex, 1_000_000).is_some() {
            executed += 1;
        }
    }
    assert!(executed >= 10, "most corpus entries must actually execute ({executed} did)");
}

const HONEST_SRC: &str = "
    var g: [int; 16];
    fn mix(x: int) -> int { return x * 31 + (g[x & 15] ^ 7); }
    fn main() -> int {
        var f: fn(int) -> int = &mix;
        var acc: int = 1;
        var i: int = 0;
        while (i < 200) {
            g[i & 15] = acc;
            acc = acc + f(i);
            i = i + 1;
        }
        log(acc);
        output_byte(0, acc & 0xFF);
        send(1);
        return acc & 0x7F;
    }
";

/// The honest workload across every AEX schedule shape, including the
/// controlled-channel attacker (which trips the P6 abort — both modes must
/// abort at the identical instruction) and fuel ceilings chosen to land
/// mid-block, on a block boundary, and at instruction 1.
#[test]
fn aex_schedules_and_fuel_exhaustion_are_bit_identical() {
    let manifest = Manifest::ccaas();
    let binary = produce(HONEST_SRC, &manifest.policy).expect("compiles").serialize();
    let schedules = [
        AexSchedule::None,
        AexSchedule::Periodic { interval: 1 },
        AexSchedule::Periodic { interval: 7 },
        AexSchedule::Periodic { interval: 1000 },
        AexSchedule::Attack { interval: 3 },
        AexSchedule::Random { per_inst_prob: 0.05, seed: 11 },
        AexSchedule::Random { per_inst_prob: 0.5, seed: 3 },
    ];
    for aex in &schedules {
        for fuel in [1, 137, 10_000, u64::MAX / 2] {
            let snap = assert_identical("honest", &binary, &manifest, b"", aex, fuel)
                .expect("honest binary installs");
            if fuel == 1 {
                assert_eq!(snap.stats.instructions, 1, "fuel must be exact, not block-granular");
            }
        }
    }
}

/// The runtime's install path rewrites placeholder immediates in memory and
/// *then* pre-warms the icache from the predicted post-rewrite stream. If
/// that prediction were stale (pre-rewrite decodes, wrong offsets), cached
/// execution would run with placeholder bounds and diverge. Beyond
/// bit-identity, the cached run must need **zero demand fills**: every
/// executed instruction was already present and coherent from the pre-warm.
#[test]
fn rewriter_coherence_prewarm_serves_patched_decodes() {
    let manifest = Manifest::ccaas();
    let binary = produce(HONEST_SRC, &manifest.policy).expect("compiles").serialize();
    // Periodic AEX so the P6 AexCheck annotations — the template with the
    // most placeholder immediates — actually execute their patched form.
    let aex = AexSchedule::Periodic { interval: 50 };
    assert_identical("honest", &binary, &manifest, b"", &aex, u64::MAX / 2)
        .expect("honest binary installs");

    // Traced mode (the default): the install-time greedy trace cover must
    // serve the whole run — zero demand fills AND zero demand formations.
    let mut enclave =
        BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest.clone());
    enclave.set_owner_session([0x5A; 32]);
    enclave.install_plain(&binary).expect("verifies");
    enclave.set_exec_mode(ExecMode::Traced);
    enclave.set_aex(AexInjector::new(aex.clone()));
    let report = enclave.run(u64::MAX / 2).expect("installed");
    assert!(matches!(report.exit, RunExit::Halted { .. }));
    let stats = enclave.icache_stats();
    assert!(stats.prewarms > 0, "install must pre-warm the cache");
    assert_eq!(stats.fills, 0, "pre-warm must cover every executed instruction");
    assert_eq!(stats.invalidations, 0, "nothing wrote code after install");
    let traces = enclave.trace_stats();
    assert!(traces.prewarmed > 0, "install must form the trace cover");
    assert_eq!(traces.formed, 0, "trace cover must need no demand formations");
    assert_eq!(traces.invalidated, 0, "nothing wrote code after install");

    // Block mode: the same pre-warm serves every per-instruction dispatch.
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.set_owner_session([0x5A; 32]);
    enclave.install_plain(&binary).expect("verifies");
    enclave.set_exec_mode(ExecMode::Block);
    enclave.set_aex(AexInjector::new(aex));
    let report = enclave.run(u64::MAX / 2).expect("installed");
    assert!(matches!(report.exit, RunExit::Halted { .. }));
    let stats = enclave.icache_stats();
    assert!(stats.hits > 0, "block dispatch must serve from the pre-warm");
    assert_eq!(stats.fills, 0, "pre-warm must cover every executed instruction");
}

/// The hardest coherence case: code patched *while a formed trace over it
/// is live*, then re-executed. The corpus' self-modifying attack cannot
/// exercise this — its baked-in P1 guards abort the store before it lands —
/// so this builds an *unguarded* variant (produced under `PolicySet::none`,
/// run under the permissive manifest): call the victim (warming a trace
/// over its code), store over the victim's first instruction, call it
/// again. A traced VM replaying the stale trace would run the original
/// victim and diverge from the reference interpreter; the only sound
/// behavior is to kill the trace and decode the patched bytes fresh.
#[test]
fn self_modifying_store_kills_live_traces_mid_run() {
    use deflection::core::producer::produce_from_mir;
    use deflection::isa::{Inst, MemOperand, Reg};
    use deflection::lang::mir::{MFunction, MInst, MirProgram};

    let mut victim = MFunction::new("victim");
    victim.real(Inst::MovRI { dst: Reg::RAX, imm: 7 });
    victim.push(MInst::Ret);
    let mut main = MFunction::new("__start");
    main.push(MInst::CallSym("victim".into()));
    main.push(MInst::LoadSymAddr { dst: Reg::RBX, symbol: "victim".into(), addend: 0 });
    main.real(Inst::MovRI { dst: Reg::RAX, imm: 0x0101_0101 });
    main.real(Inst::Store { mem: MemOperand::base_disp(Reg::RBX, 0), src: Reg::RAX });
    main.push(MInst::CallSym("victim".into()));
    main.real(Inst::Halt);
    let mir = MirProgram {
        entry: "__start".into(),
        functions: vec![main, victim],
        data: vec![],
        indirect_targets: vec![],
    };
    let binary = produce_from_mir(&mir, &PolicySet::none()).expect("assembles").serialize();

    let mut permissive = Manifest::ccaas();
    permissive.policy = PolicySet::none();
    for aex in [AexSchedule::None, AexSchedule::Periodic { interval: 3 }] {
        assert_identical("unguarded-smc", &binary, &permissive, b"", &aex, 1_000_000)
            .expect("permissive manifest lets it run");
    }

    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), permissive);
    enclave.set_owner_session([0x5A; 32]);
    enclave.install_plain(&binary).expect("installs under no policy");
    enclave.set_exec_mode(ExecMode::Traced);
    let _ = enclave.run(1_000_000).expect("installed");
    assert!(
        enclave.trace_stats().invalidated >= 1,
        "the self-modifying store must kill a live trace: {:?}",
        enclave.trace_stats()
    );
}

/// The literal warm → patch → run sequence: pre-warm the cache with the
/// install-time decode stream, then patch an annotation immediate through
/// the consumer's own rewriter (lowering the P6 AEX threshold to 1), then
/// run. The cached VM must execute the *patched* program — aborting with
/// the P6 code exactly like the reference interpreter — which is only
/// possible if the rewrite's generation bump invalidated the warm entries.
#[test]
fn rewrite_after_warm_is_observed_by_the_cache() {
    use deflection::core::consumer::rewriter::rewritten_insts;
    use deflection::core::consumer::{install, Bindings};
    use deflection::core::policy::abort_codes;
    use deflection::sgx::mem::Memory;
    use deflection::sgx::vm::{NullHost, Vm};

    const LOOP_SRC: &str = "
        var g: [int; 8];
        fn main() -> int {
            var acc: int = 0;
            var i: int = 0;
            while (i < 500) {
                g[i & 7] = acc;
                acc = acc + g[(acc ^ i) & 7] + i;
                i = i + 1;
            }
            return acc & 63;
        }
    ";
    let manifest = Manifest::ccaas();
    let binary = produce(LOOP_SRC, &manifest.policy).expect("compiles").serialize();
    let mut outcomes = Vec::new();
    for mode in ALL_MODES {
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut mem = Memory::new(layout.clone());
        let installed = install(&binary, &manifest, &mut mem).expect("verifies");
        let bindings = Bindings::from_layout(
            &layout,
            installed.program.ibt_addresses.len() as u64,
            manifest.aex_threshold,
        );
        let mut vm = Vm::new(mem, installed.program.entry_va);
        vm.set_exec_mode(mode);
        // Warm: the exact pre-warm the runtime's install path performs,
        // including the install-time trace cover.
        let code_base = layout.code.start;
        let entries: Vec<_> = rewritten_insts(&installed.verified, &bindings)
            .into_iter()
            .map(|(off, inst, len)| (code_base + off as u64, inst, len as u8))
            .collect();
        vm.prewarm_icache(entries.iter().copied());
        vm.prewarm_traces(&entries);
        // Patch through the consumer path: AEX threshold 1000 -> 1.
        let strict = Bindings { aex_max: 1, ..bindings };
        deflection::core::consumer::rewrite(&mut vm.mem, code_base, &installed.verified, &strict);
        vm.aex = AexInjector::new(AexSchedule::Periodic { interval: 5 });
        let exit = vm.run(1_000_000, &mut NullHost);
        assert_eq!(
            exit,
            RunExit::PolicyAbort { code: abort_codes::AEX },
            "the post-warm patch must take effect ({mode:?})"
        );
        if mode != ExecMode::Reference {
            assert!(
                vm.icache_stats().invalidations > 0,
                "the rewrite must invalidate warm icache pages ({mode:?})"
            );
        }
        if mode == ExecMode::Traced {
            assert!(
                vm.trace_stats().invalidated > 0,
                "the rewrite must kill the install-time trace cover"
            );
        }
        outcomes.push((exit, vm.stats));
    }
    assert_eq!(outcomes[0], outcomes[1], "traced and block runs diverged after the patch");
    assert_eq!(outcomes[0], outcomes[2], "traced and reference runs diverged after the patch");
}

/// The reference mode is also reachable through the environment switch the
/// CI differential job uses; the setter must win over the default.
#[test]
fn reference_mode_reports_empty_icache_stats() {
    let manifest = Manifest::ccaas();
    let binary = produce(HONEST_SRC, &manifest.policy).expect("compiles").serialize();
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.set_owner_session([0x5A; 32]);
    enclave.install_plain(&binary).expect("verifies");
    enclave.set_decode_every_step(true);
    let report = enclave.run(u64::MAX / 2).expect("installed");
    assert!(matches!(report.exit, RunExit::Halted { .. }));
    let stats = enclave.icache_stats();
    assert_eq!(stats.hits, 0, "reference mode must never touch the cache");
    assert_eq!(stats.fills, 0);
    let traces = enclave.trace_stats();
    assert_eq!(traces.formed, 0, "reference mode must never form traces");
    assert_eq!(traces.chained, 0);
    assert_eq!(traces.side_exits, 0);
}

/// Renders a random straight-line-in-a-loop program from a compact recipe:
/// op mix, constants, global traffic, and a call in the loop body.
fn render_program(body_ops: &[(u8, i32)], trip: u8) -> String {
    let mut body = String::new();
    for (op, c) in body_ops {
        let op = ["+", "-", "*", "&", "|", "^"][*op as usize % 6];
        body.push_str(&format!("acc = (acc {op} {c}) + g[i & 7]; g[acc & 7] = acc + h(i); "));
    }
    format!(
        "var g: [int; 8];
         fn h(x: int) -> int {{ return x * 3 + g[x & 7]; }}
         fn main() -> int {{
             var acc: int = 1;
             var i: int = 0;
             while (i < {trip}) {{ {body} i = i + 1; }}
             log(acc);
             return acc & 255;
         }}"
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Generated programs × generated AEX interval × generated fuel: the
    /// cached interpreter has no program shape of its own to hide behind.
    #[test]
    fn generated_programs_are_bit_identical(
        body_ops in proptest::collection::vec((0u8..6, -100i32..100), 1..6),
        trip in 1u8..40,
        interval in proptest::option::of(1u64..64),
        fuel in prop_oneof![Just(u64::MAX / 2), 1u64..5_000],
    ) {
        let manifest = Manifest::ccaas();
        let src = render_program(&body_ops, trip);
        let binary = produce(&src, &manifest.policy).expect("generated source compiles").serialize();
        let aex = match interval {
            Some(i) => AexSchedule::Periodic { interval: i },
            None => AexSchedule::None,
        };
        let snap = assert_identical("generated", &binary, &manifest, b"", &aex, fuel)
            .expect("generated binary installs");
        prop_assert!(snap.stats.instructions > 0);
    }
}
