//! DCL language conformance: each construct is compiled, instrumented,
//! verified and executed in the enclave, and its result compared against
//! the language's documented semantics. Run at the full policy level so
//! every construct also round-trips through the annotation machinery.

use deflection::core::policy::PolicySet;
use deflection::workloads::runner::execute;

fn run_full(src: &str) -> u64 {
    execute(src, b"", &PolicySet::full())
}

fn run_both(src: &str) -> u64 {
    let a = execute(src, b"", &PolicySet::none());
    let b = run_full(src);
    assert_eq!(a, b, "instrumentation changed program semantics");
    a
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(run_both("fn main() -> int { return 2 + 3 * 4; }"), 14);
    assert_eq!(run_both("fn main() -> int { return (2 + 3) * 4; }"), 20);
    assert_eq!(run_both("fn main() -> int { return 17 / 5; }"), 3);
    assert_eq!(run_both("fn main() -> int { return 17 % 5; }"), 2);
    assert_eq!(run_both("fn main() -> int { return 0 - 17 / 5; }"), (-3i64) as u64);
    assert_eq!(run_both("fn main() -> int { return 1 << 10; }"), 1024);
    assert_eq!(run_both("fn main() -> int { return (0 - 16) >> 2; }"), (-4i64) as u64);
    assert_eq!(run_both("fn main() -> int { return 0xF0 | 0x0F; }"), 0xFF);
    assert_eq!(run_both("fn main() -> int { return 0xFF & 0x3C; }"), 0x3C);
    assert_eq!(run_both("fn main() -> int { return 0xFF ^ 0x0F; }"), 0xF0);
    assert_eq!(run_both("fn main() -> int { return ~0; }"), u64::MAX);
}

#[test]
fn comparisons_yield_zero_or_one() {
    for (src, expect) in [
        ("1 < 2", 1u64),
        ("2 < 1", 0),
        ("2 <= 2", 1),
        ("3 > 2", 1),
        ("2 >= 3", 0),
        ("5 == 5", 1),
        ("5 != 5", 0),
        ("(0-1) < 1", 1), // signed comparison
    ] {
        let src = format!("fn main() -> int {{ return {src}; }}");
        assert_eq!(run_both(&src), expect, "{src}");
    }
}

#[test]
fn short_circuit_evaluation_skips_side_effects() {
    let src = "
        var hits: int;
        fn bump() -> int { hits = hits + 1; return 1; }
        fn main() -> int {
            var a: int = 0 && bump();
            var b: int = 1 || bump();
            var c: int = 1 && bump();
            return hits * 10 + a + b + c;
        }
    ";
    // Only the last bump() runs: hits == 1, a=0, b=1, c=1.
    assert_eq!(run_both(src), 12);
}

#[test]
fn while_break_continue() {
    let src = "
        fn main() -> int {
            var s: int = 0;
            var i: int = 0;
            while (1) {
                i = i + 1;
                if (i > 10) { break; }
                if (i % 2 == 0) { continue; }
                s = s + i;
            }
            return s; // 1+3+5+7+9
        }
    ";
    assert_eq!(run_both(src), 25);
}

#[test]
fn nested_loops_and_shadowing() {
    let src = "
        fn main() -> int {
            var total: int = 0;
            var i: int = 0;
            while (i < 3) {
                var j: int = 0;
                while (j < 4) {
                    var i: int = 100; // shadows outer i
                    total = total + i / 100;
                    j = j + 1;
                }
                i = i + 1;
            }
            return total;
        }
    ";
    assert_eq!(run_both(src), 12);
}

#[test]
fn recursion_with_shadow_stack() {
    let src = "
        fn fib(n: int) -> int {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() -> int { return fib(15); }
    ";
    assert_eq!(run_both(src), 610);
}

#[test]
fn mutual_recursion() {
    let src = "
        fn is_even(n: int) -> int {
            if (n == 0) { return 1; }
            return is_odd(n - 1);
        }
        fn is_odd(n: int) -> int {
            if (n == 0) { return 0; }
            return is_even(n - 1);
        }
        fn main() -> int { return is_even(40) * 10 + is_odd(7); }
    ";
    assert_eq!(run_both(src), 11);
}

#[test]
fn six_parameters() {
    let src = "
        fn weigh(a: int, b: int, c: int, d: int, e: int, f: int) -> int {
            return a + b * 2 + c * 3 + d * 4 + e * 5 + f * 6;
        }
        fn main() -> int { return weigh(1, 2, 3, 4, 5, 6); }
    ";
    assert_eq!(run_both(src), 1 + 4 + 9 + 16 + 25 + 36);
}

#[test]
fn local_arrays_and_slices() {
    let src = "
        fn sum(a: [int], n: int) -> int {
            var s: int = 0;
            var i: int = 0;
            while (i < n) { s = s + a[i]; i = i + 1; }
            return s;
        }
        fn main() -> int {
            var local: [int; 8];
            var i: int = 0;
            while (i < 8) { local[i] = i * i; i = i + 1; }
            return sum(local, 8);
        }
    ";
    assert_eq!(run_both(src), 140);
}

#[test]
fn slices_are_views_not_copies() {
    let src = "
        fn clear_first(a: [int]) { a[0] = 0; }
        fn main() -> int {
            var buf: [int; 2];
            buf[0] = 99;
            clear_first(buf);
            return buf[0];
        }
    ";
    assert_eq!(run_both(src), 0);
}

#[test]
fn global_initializers() {
    let src = "
        var table: [int; 5] = {10, 20, 30};
        var msg: [byte; 8] = \"ok\";
        var scalar: int = -7;
        fn main() -> int {
            return table[0] + table[2] + table[4] + msg[0] + msg[7] + scalar;
        }
    ";
    // 10 + 30 + 0 + 'o'(111) + 0 - 7
    assert_eq!(run_both(src), 144);
}

#[test]
fn byte_arrays_truncate_and_zero_extend() {
    let src = "
        var b: [byte; 4];
        fn main() -> int {
            b[0] = 0x1FF;      // stores 0xFF
            b[1] = 0 - 1;      // stores 0xFF
            return b[0] + b[1] + b[2];
        }
    ";
    assert_eq!(run_both(src), 0xFF + 0xFF);
}

#[test]
fn function_pointers_in_arrays_and_params() {
    let src = "
        fn inc(x: int) -> int { return x + 1; }
        fn dbl(x: int) -> int { return x * 2; }
        var ops: [fn(int) -> int; 2];
        fn apply(f: fn(int) -> int, v: int) -> int { return f(v); }
        fn main() -> int {
            ops[0] = &inc;
            ops[1] = &dbl;
            var f: fn(int) -> int = ops[1];
            return apply(ops[0], 10) * 100 + f(21);
        }
    ";
    assert_eq!(run_both(src), 1142);
}

#[test]
fn float_semantics() {
    let src = "
        fn main() -> int {
            var a: float = 1.5;
            var b: float = 2.25;
            var c: float = (a + b) * 2.0 - 0.5;  // 7.0
            var ok: int = 0;
            if (c == 7.0) { ok = ok + 1; }
            if (a < b) { ok = ok + 1; }
            if (fsqrt(16.0) == 4.0) { ok = ok + 1; }
            if (ftoi(3.99) == 3) { ok = ok + 1; }
            if (itof(3) > 2.5) { ok = ok + 1; }
            if (-a < 0.0) { ok = ok + 1; }
            return ok;
        }
    ";
    assert_eq!(run_both(src), 6);
}

#[test]
fn division_semantics_match_rust() {
    // Signed division truncates toward zero; remainder keeps dividend sign.
    for (a, b) in [(7i64, 2i64), (-7, 2), (7, -2), (-7, -2)] {
        let src = format!(
            "fn main() -> int {{ return ((0{a:+}) / (0{b:+})) * 1000 + ((0{a:+}) % (0{b:+})); }}"
        );
        let expect = ((a / b) * 1000 + (a % b)) as u64;
        assert_eq!(run_both(&src), expect, "{a}/{b}");
    }
}

#[test]
fn division_by_zero_is_contained() {
    // Faults, never unwinds or corrupts: the enclave reports the fault.
    use deflection::core::policy::Manifest;
    use deflection::core::producer::produce;
    use deflection::core::runtime::BootstrapEnclave;
    use deflection::sgx::layout::{EnclaveLayout, MemConfig};
    let src = "fn main() -> int { var z: int = 0; return 1 / z; }";
    let manifest = Manifest::ccaas();
    let binary = produce(src, &manifest.policy).expect("compiles").serialize();
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.install_plain(&binary).expect("verifies");
    let report = enclave.run(1_000_000).expect("runs");
    assert!(matches!(
        report.exit,
        deflection::sgx::vm::RunExit::Fault(deflection::sgx::Fault::DivideError { .. })
    ));
}

#[test]
fn wrapping_integer_arithmetic() {
    let src = "
        fn main() -> int {
            var big: int = 0x7FFFFFFFFFFFFFFF;
            return big + 1; // wraps to i64::MIN
        }
    ";
    assert_eq!(run_both(src), i64::MIN as u64);
}

#[test]
fn else_if_chains() {
    let src = "
        fn grade(x: int) -> int {
            if (x >= 90) { return 4; }
            else if (x >= 80) { return 3; }
            else if (x >= 70) { return 2; }
            else { return 0; }
        }
        fn main() -> int {
            return grade(95) * 1000 + grade(85) * 100 + grade(75) * 10 + grade(10);
        }
    ";
    assert_eq!(run_both(src), 4320);
}

#[test]
fn fall_off_end_returns_zero() {
    let src = "
        fn maybe(x: int) -> int { if (x > 0) { return 7; } }
        fn main() -> int { return maybe(1) * 10 + maybe(0 - 1); }
    ";
    assert_eq!(run_both(src), 70);
}

#[test]
fn char_literals_and_strings() {
    let src = "
        var s: [byte; 5] = \"AB\\n\";
        fn main() -> int { return s[0] * 10000 + s[1] * 100 + s[2] + ('Z' - 'A'); }
    ";
    assert_eq!(run_both(src), 65 * 10000 + 66 * 100 + 10 + 25);
}
