//! Flight-recorder soundness: the recorder must be an *observer*. Whether
//! it is disabled, enabled, or drained mid-batch, every verification
//! verdict, every serving result, and every telemetry snapshot delta must
//! be bit-identical — recording can never steer a decision. On top of the
//! differential suite, the causal-timeline tests pin the reconstruction
//! contract: a pooled batch with faults and a respawn yields one complete,
//! totally ordered lane per request with no orphan spans.

use deflection::core::annotations::Instance;
use deflection::core::attack::{corpus, elision_corpus};
use deflection::core::consumer::{load, verify_with_layout, VerifyError};
use deflection::core::policy::{Manifest, PolicySet};
use deflection::core::pool::EnclavePool;
use deflection::core::producer::produce;
use deflection::isa::Inst;
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::sgx::mem::Memory;
use deflection::telemetry::{Collector, EventKind, FlightRecorder, Timeline};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// The recorder (and the collector it rides along with) is process-global,
/// so tests that toggle it must not interleave.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default).lock().unwrap_or_else(PoisonError::into_inner)
}

type Verdict = Result<(Vec<(usize, Inst, usize)>, Vec<Instance>), VerifyError>;

/// Loads and verifies `binary` the way `install` does; `None` when the
/// loader rejects it before verification runs.
fn verdict(binary: &[u8], policy: &PolicySet) -> Option<Verdict> {
    let layout = EnclaveLayout::new(MemConfig::small());
    let mut mem = Memory::new(layout.clone());
    let program = load(binary, &mut mem).ok()?;
    let code = mem
        .peek_bytes(layout.code.start, program.code_len)
        .expect("loader wrote the code window")
        .to_vec();
    let entry = (program.entry_va - layout.code.start) as usize;
    let result = verify_with_layout(&code, entry, &program.ibt_offsets, policy, &layout);
    Some(result.map(|v| (v.insts, v.instances)))
}

/// The three recorder states under test: off, on, and on with a drain
/// racing the measurement.
fn verdict_under_all_recorder_states(binary: &[u8], policy: &PolicySet) -> [Option<Verdict>; 3] {
    FlightRecorder::disable();
    let off = verdict(binary, policy);
    FlightRecorder::reset();
    FlightRecorder::enable();
    let on = verdict(binary, policy);
    let _mid = FlightRecorder::drain();
    let after_drain = verdict(binary, policy);
    FlightRecorder::disable();
    [off, on, after_drain]
}

#[test]
fn attack_corpus_verdicts_unchanged_by_recorder_state() {
    let _guard = lock();
    for (attacks, policy) in
        [(corpus(), PolicySet::full()), (elision_corpus(), PolicySet::full().with_elision())]
    {
        for attack in attacks {
            let [off, on, drained] =
                verdict_under_all_recorder_states(&attack.binary.serialize(), &policy);
            assert_eq!(off, on, "{}: verdict changed when recorder enabled", attack.name);
            assert_eq!(off, drained, "{}: verdict changed by mid-batch drain", attack.name);
        }
    }
}

const HONEST: &str = "
var data: [int; 16];
fn main() -> int {
    var n: int = input_len();
    var i: int = 0;
    while (i < 16) {
        data[i] = i * 7 + n;
        i = i + 1;
    }
    output_byte(0, data[15] & 0xFF);
    send(1);
    return data[15];
}
";

/// Serves one fixed batch on a fresh two-worker pool and digests everything
/// observable about the outcome. Round-robin keeps the request→worker (and
/// hence sealed-record nonce channel) assignment deterministic, so the
/// digests are comparable across pools.
fn serve_digest(binary: &[u8]) -> String {
    let mut manifest = Manifest::ccaas();
    manifest.policy = PolicySet::full();
    let mut pool = EnclavePool::new(&EnclaveLayout::new(MemConfig::small()), &manifest, 2);
    pool.set_owner_session([0x5E; 32]);
    pool.install_all(binary).expect("honest binary installs");
    let requests: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i, 2 * i, 100]).collect();
    let reports = pool.serve_parallel_round_robin(&requests, 10_000_000).expect("batch serves");
    reports.iter().map(|r| format!("{r:?}\n")).collect()
}

/// A work-stealing chaos batch: every worker loses its instance on its
/// first claim, so the fault→respawn→retry machinery runs no matter how
/// the claim race lands. Only scheduling-independent facts go into the
/// digest — per-request exits and write counters are deterministic, while
/// sealed-record nonces and cumulative per-worker stats are not.
fn chaos_digest(binary: &[u8]) -> String {
    let mut manifest = Manifest::ccaas();
    manifest.policy = PolicySet::full();
    let mut pool = EnclavePool::new(&EnclaveLayout::new(MemConfig::small()), &manifest, 2);
    pool.set_owner_session([0x5E; 32]);
    pool.install_all(binary).expect("honest binary installs");
    pool.chaos_kill_after(0, 0);
    pool.chaos_kill_after(1, 0);
    let requests: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i, 2 * i, 100]).collect();
    let reports = pool.serve_parallel(&requests, 10_000_000).expect("batch serves");
    let mut digest = format!("served={}\n", reports.len());
    for r in &reports {
        digest.push_str(&format!(
            "exit={:?} untrusted_writes={} records={}\n",
            r.exit,
            r.untrusted_writes,
            r.records.len()
        ));
    }
    digest
}

/// Strips wall-clock timing lines from a Prometheus exposition: `_ns`
/// histograms measure elapsed time and are never bit-stable run to run;
/// everything else (event counters, value histograms) is deterministic.
fn deterministic_lines(prometheus: &str) -> String {
    prometheus.lines().filter(|l| !l.contains("_ns")).map(|l| format!("{l}\n")).collect()
}

#[test]
fn serving_results_and_snapshot_deltas_unchanged_by_recorder_state() {
    let _guard = lock();
    let policy = PolicySet::full();
    let binary = produce(HONEST, &policy).expect("compiles").serialize();

    // The collector stays ON throughout: the recorder must not perturb
    // what the metrics plane sees either, so each serve's deterministic
    // snapshot delta is part of the digest.
    Collector::enable();
    let delta_digest = |binary: &[u8]| {
        Collector::reset();
        let serve = serve_digest(binary);
        // Snapshot the delta before the chaos batch: how many workers the
        // claim race lets fault is scheduling-dependent, so its counters
        // (lost instances, respawns) are not digest material.
        let snap = Collector::snapshot();
        let chaos = chaos_digest(binary);
        format!("{serve}{chaos}snapshot:\n{}", deterministic_lines(&snap.to_prometheus()))
    };

    FlightRecorder::disable();
    let off = delta_digest(&binary);
    FlightRecorder::reset();
    FlightRecorder::enable();
    let on = delta_digest(&binary);
    let _mid = FlightRecorder::drain();
    let drained = delta_digest(&binary);
    FlightRecorder::disable();
    Collector::disable();

    assert_eq!(off, on, "serving results changed when recorder enabled");
    assert_eq!(off, drained, "serving results changed by mid-batch drain");
}

#[test]
fn pooled_batch_with_faults_reconstructs_complete_causal_timelines() {
    let _guard = lock();
    let policy = PolicySet::full();
    let binary = produce(HONEST, &policy).expect("compiles").serialize();

    let mut manifest = Manifest::ccaas();
    manifest.policy = PolicySet::full();
    let mut pool = EnclavePool::new(&EnclaveLayout::new(MemConfig::small()), &manifest, 2);
    pool.set_owner_session([0x5E; 32]);

    FlightRecorder::reset();
    FlightRecorder::enable();
    pool.install_all(&binary).expect("honest binary installs");
    // Every worker loses its instance on its first claim, so however the
    // work-stealing race shakes out, each thread that serves anything
    // walks the full fault→respawn→retry path.
    pool.chaos_kill_after(0, 0);
    pool.chaos_kill_after(1, 0);
    let requests: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i, 2 * i, 100]).collect();
    let reports = pool.serve_parallel(&requests, 10_000_000).expect("batch serves");
    let flight = FlightRecorder::drain();
    FlightRecorder::disable();

    assert_eq!(reports.len(), requests.len());
    assert!(pool.health().total_faulted() >= 1, "chaos workers must actually fault");
    assert!(pool.health().total_respawned() >= 1, "faulted workers must respawn");
    assert_eq!(flight.dropped, 0, "a small batch must fit the ring");

    // Total order: the logical clock never ties and the drain sorts by it.
    for pair in flight.events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "logical clock must be strictly monotonic");
    }

    let timeline = Timeline::build(&flight);
    // One lane per request plus one for the install flow.
    assert_eq!(timeline.lanes.len(), requests.len() + 1, "{}", timeline.render());

    let install_lanes = timeline
        .lanes
        .iter()
        .filter(|l| l.events.iter().any(|e| e.kind == EventKind::Install))
        .count();
    assert_eq!(install_lanes, 1, "install mints exactly one causal lane");

    let mut faults_seen = 0;
    for lane in &timeline.lanes {
        // No orphan spans: every event in a lane carries the lane's trace.
        assert!(lane.events.iter().all(|e| e.trace == lane.trace));
        assert!(!lane.events.is_empty(), "no empty lanes");
        if lane.events.iter().any(|e| e.kind == EventKind::Install) {
            // The install lane: verify phases and one replay per worker.
            assert!(lane.events.iter().any(|e| e.kind == EventKind::VerifyPhase));
            let replays = lane.events.iter().filter(|e| e.kind == EventKind::InstallReplay).count();
            assert_eq!(replays, pool.len(), "one replay event per worker");
            continue;
        }
        // A request lane: Enqueue first, then at least one Claim, and the
        // request ends with a successful Run (every report here succeeded).
        assert_eq!(lane.events[0].kind, EventKind::Enqueue, "{}", timeline.render());
        assert!(lane.events.iter().any(|e| e.kind == EventKind::Claim));
        assert!(lane.events.iter().any(|e| e.kind == EventKind::Run));
        assert!(lane.events.iter().any(|e| e.kind == EventKind::Seal));
        // A fault inside a request lane must be followed by a respawn and
        // then by the run that completed the request on the fresh worker.
        if let Some(fault_at) =
            lane.events.iter().position(|e| e.kind == EventKind::Fault && e.b == 1)
        {
            faults_seen += 1;
            let tail = &lane.events[fault_at..];
            assert!(
                tail.iter().any(|e| e.kind == EventKind::Respawn),
                "lost instance without respawn: {}",
                timeline.render()
            );
            assert!(
                tail.iter().any(|e| e.kind == EventKind::Run),
                "request did not complete after its fault: {}",
                timeline.render()
            );
        }
    }
    assert!(faults_seen >= 1, "chaos faults must land in request lanes");
}

#[test]
fn admission_lanes_show_enqueue_admit_claim_ordering() {
    use deflection::core::admission::{AdmissionConfig, AdmissionFrontend, Overloaded};
    use deflection::core::tenant::{TenantConfig, TenantRegistry};

    let _guard = lock();
    let policy = PolicySet::full();
    let binary = produce(HONEST, &policy).expect("compiles").serialize();
    let mut manifest = Manifest::ccaas();
    manifest.policy = PolicySet::full();

    FlightRecorder::reset();
    FlightRecorder::enable();

    let fe = AdmissionFrontend::new(
        AdmissionConfig {
            queue_capacity: 8,
            high_water: 4,
            batch_max: 4,
            batch_wait: std::time::Duration::from_micros(200),
        },
        TenantRegistry::new(&manifest),
    );
    let tenant = fe
        .register(TenantConfig {
            name: "honest".to_string(),
            binary,
            manifest: manifest.clone(),
            max_in_flight: 8,
            lifetime_output_budget: None,
        })
        .expect("tenant registers");

    // Four accepted requests — each trace is minted at enqueue, before any
    // dispatcher or worker has touched the request.
    let tickets: Vec<_> = (0..4u8)
        .map(|i| fe.submit(tenant, vec![i, 2 * i, 100]).expect("below high water"))
        .collect();
    // Depth is now at the high-water mark: the fifth submission is shed,
    // which must surface as an *unattributed* Shed event (no trace was
    // ever minted for it).
    assert!(matches!(fe.submit(tenant, vec![9, 9, 9]), Err(Overloaded::QueueFull { .. })));
    fe.close();

    let mut pool = EnclavePool::new(&EnclaveLayout::new(MemConfig::small()), &manifest, 2);
    pool.set_owner_session([0x5E; 32]);
    let report = fe.run_dispatcher(&mut pool, 10_000_000);
    let flight = FlightRecorder::drain();
    FlightRecorder::disable();

    assert_eq!(report.served, 4);
    assert_eq!(flight.dropped, 0, "a small batch must fit the ring");
    let timeline = Timeline::build(&flight);

    for t in tickets {
        let (trace, global_id) = (t.trace, t.global_id);
        let lane = timeline.lane(trace).expect("every accepted request has a lane");
        let pos = |kind: EventKind| lane.events.iter().position(|e| e.kind == kind);
        let enqueue = pos(EventKind::Enqueue).expect("lane records its enqueue");
        let admit = pos(EventKind::Admit).expect("lane records its admission");
        let claim = pos(EventKind::Claim).expect("lane records its worker claim");
        // Minted at enqueue means the lane *begins* in the queue: the
        // Enqueue→Admit gap is the request's queueing delay, rendered as
        // its own leading segment.
        assert_eq!(enqueue, 0, "{}", timeline.render());
        assert!(
            enqueue < admit && admit < claim,
            "lane must order Enqueue -> Admit -> Claim: {}",
            timeline.render()
        );
        // Both admission events carry the global request id.
        assert_eq!(lane.events[enqueue].a, global_id);
        assert_eq!(lane.events[admit].a, global_id);
        t.wait().expect("request serves");
    }

    // Exactly one shed decision, unattributed, at the high-water depth,
    // with the queue-full reason code.
    let sheds: Vec<_> = flight.events.iter().filter(|e| e.kind == EventKind::Shed).collect();
    assert_eq!(sheds.len(), 1);
    assert_eq!(sheds[0].trace, deflection::telemetry::TraceId::NONE);
    assert_eq!(sheds[0].a, 4, "depth observed at the shed decision");
    assert_eq!(sheds[0].b, 0, "reason code 0 = queue full");
}

#[test]
fn ring_wraparound_keeps_newest_events_with_exact_drop_count() {
    let _guard = lock();
    FlightRecorder::reset();
    FlightRecorder::enable();
    // Overfill the ring well past capacity from the serve-side record
    // paths, then check the drain keeps the newest window and accounts
    // for every displaced record.
    let total = 3 * 8192u64;
    for i in 0..total {
        deflection::telemetry::flightrec::record(
            EventKind::Enqueue,
            deflection::telemetry::TraceId::NONE,
            i,
            0,
        );
    }
    let flight = FlightRecorder::drain();
    FlightRecorder::disable();
    assert_eq!(flight.total, total);
    assert_eq!(flight.dropped + flight.events.len() as u64, total);
    assert!(flight.dropped > 0, "overfill must displace the oldest records");
    // The survivors are exactly the newest payloads, still in order.
    let first = flight.events.first().expect("ring retains events").a;
    for (i, e) in flight.events.iter().enumerate() {
        assert_eq!(e.a, first + i as u64, "retained window must be the newest, gap-free");
    }
    assert_eq!(flight.events.last().expect("non-empty").a, total - 1);
}
