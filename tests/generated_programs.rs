//! Differential testing over *generated* DCL programs: for arbitrary
//! (terminating, in-bounds) programs, the fully instrumented binary must
//! produce exactly the same result as the uninstrumented baseline, verify
//! cleanly, and never write a byte outside the enclave.
//!
//! This closes the gap the hand-written workloads cannot: annotation
//! correctness on program *shapes* nobody thought to write by hand.

use deflection::core::policy::PolicySet;
use deflection::sgx::layout::MemConfig;
use deflection::sgx::vm::RunExit;
use deflection::workloads::runner::Prepared;
use proptest::prelude::*;

/// A tiny expression grammar over: the loop counter `i`, the accumulator
/// `acc`, global array reads `g[<e> & 15]`, parameters, and literals.
#[derive(Debug, Clone)]
enum Expr {
    Lit(i32),
    Acc,
    Counter,
    Param(usize),
    Global(Box<Expr>),
    Bin(&'static str, Box<Expr>, Box<Expr>),
    Call(usize, Box<Expr>),
}

impl Expr {
    fn render(&self, callee_count: usize) -> String {
        self.render_in(callee_count, false)
    }

    fn render_in(&self, callee_count: usize, in_main: bool) -> String {
        match self {
            Expr::Lit(v) => format!("({v})"),
            Expr::Acc => "acc".into(),
            Expr::Counter => "i".into(),
            // `main` has no parameters; map them onto its locals there.
            Expr::Param(k) if in_main => {
                if k % 2 == 0 {
                    "acc".into()
                } else {
                    "i".into()
                }
            }
            Expr::Param(k) => format!("p{}", k % 2),
            Expr::Global(idx) => format!("g[({}) & 15]", idx.render_in(callee_count, in_main)),
            Expr::Bin(op, a, b) => {
                let (a, b) =
                    (a.render_in(callee_count, in_main), b.render_in(callee_count, in_main));
                match *op {
                    // Keep division safe: force a nonzero positive divisor.
                    "/" | "%" => format!("({a} {op} ((({b}) & 7) + 1))"),
                    // Keep shifts in range.
                    "<<" | ">>" => format!("({a} {op} (({b}) & 15))"),
                    _ => format!("({a} {op} {b})"),
                }
            }
            Expr::Call(f, arg) => {
                if callee_count == 0 {
                    format!("({})", arg.render_in(callee_count, in_main))
                } else {
                    format!("h{}({}, i)", f % callee_count, arg.render_in(callee_count, in_main))
                }
            }
        }
    }
}

fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-100i32..100).prop_map(Expr::Lit),
        Just(Expr::Acc),
        Just(Expr::Counter),
        (0usize..2).prop_map(Expr::Param),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Global(Box::new(e))),
            (
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("/"),
                    Just("%"),
                    Just("&"),
                    Just("|"),
                    Just("^"),
                    Just("<<"),
                    Just(">>"),
                    Just("<"),
                    Just("=="),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::Bin(op, Box::new(a), Box::new(b))),
            (any::<usize>(), inner).prop_map(|(f, a)| Expr::Call(f, Box::new(a))),
        ]
    })
    .boxed()
}

/// One statement inside the generated loop body.
#[derive(Debug, Clone)]
enum Stmt {
    AccAssign(Expr),
    GlobalStore(Expr, Expr),
    If(Expr, Expr),
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        arb_expr(3).prop_map(Stmt::AccAssign),
        (arb_expr(2), arb_expr(2)).prop_map(|(i, v)| Stmt::GlobalStore(i, v)),
        (arb_expr(2), arb_expr(2)).prop_map(|(c, v)| Stmt::If(c, v)),
    ]
}

/// A generated program: a few helper functions and a main loop.
#[derive(Debug, Clone)]
struct Program {
    helpers: Vec<Expr>,
    body: Vec<Stmt>,
    iterations: u8,
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        proptest::collection::vec(arb_expr(2), 0..3),
        proptest::collection::vec(arb_stmt(), 1..6),
        1u8..12,
    )
        .prop_map(|(helpers, body, iterations)| Program { helpers, body, iterations })
}

fn render(p: &Program) -> String {
    let mut src = String::from("var g: [int; 16] = {3, 1, 4, 1, 5, 9, 2, 6};\n");
    // Helpers only call previously defined helpers → no recursion, so the
    // whole program terminates by construction.
    for (k, h) in p.helpers.iter().enumerate() {
        src.push_str(&format!(
            "fn h{k}(p0: int, p1: int) -> int {{ var acc: int = p0; var i: int = p1 & 7; \
             return {}; }}\n",
            h.render(k)
        ));
    }
    src.push_str("fn main() -> int {\n    var acc: int = 1;\n    var i: int = 0;\n");
    src.push_str(&format!("    while (i < {}) {{\n", p.iterations));
    for s in &p.body {
        match s {
            Stmt::AccAssign(e) => {
                src.push_str(&format!("        acc = {};\n", e.render_in(p.helpers.len(), true)));
            }
            Stmt::GlobalStore(i, v) => src.push_str(&format!(
                "        g[({}) & 15] = {};\n",
                i.render_in(p.helpers.len(), true),
                v.render_in(p.helpers.len(), true)
            )),
            Stmt::If(c, v) => src.push_str(&format!(
                "        if ({}) {{ acc = {}; }}\n",
                c.render_in(p.helpers.len(), true),
                v.render_in(p.helpers.len(), true)
            )),
        }
    }
    src.push_str("        i = i + 1;\n    }\n");
    src.push_str("    return (acc ^ g[0] ^ g[7]) & 0xFFFFFFFF;\n}\n");
    src
}

fn run_policy(src: &str, policy: PolicySet) -> (RunExit, u64) {
    let mut p = Prepared::new(src, &policy, MemConfig::small());
    let report = p.run(50_000_000);
    (report.exit, report.untrusted_writes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn instrumentation_preserves_semantics(program in arb_program()) {
        let src = render(&program);
        let (base_exit, base_leaks) = run_policy(&src, PolicySet::none());
        prop_assert!(
            matches!(base_exit, RunExit::Halted { .. }),
            "generated program must halt: {base_exit:?}\n{src}"
        );
        prop_assert_eq!(base_leaks, 0);
        for (name, policy) in PolicySet::levels() {
            let (exit, leaks) = run_policy(&src, policy);
            prop_assert_eq!(
                &exit, &base_exit,
                "{} changed the result\n{}", name, src
            );
            prop_assert_eq!(leaks, 0, "{} leaked\n{}", name, src);
        }
    }
}
