//! Property-based soundness of the verifier: *whatever bytes the verifier
//! accepts must not leak*. We mutate honestly instrumented binaries at
//! random positions; the consumer must (a) never panic, and (b) whenever it
//! still accepts the mutant, the mutant must run without a single
//! unmediated write outside the enclave.
//!
//! This is the load-bearing property of the whole DEFLECTION design: the
//! verifier, not the producer, is in the TCB.

use deflection::core::annotations::TemplateKind;
use deflection::core::consumer::{install, InstallError, VerifyError};
use deflection::core::policy::{Manifest, PolicySet};
use deflection::core::producer::{produce, produce_stripped};
use deflection::core::runtime::BootstrapEnclave;
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::sgx::mem::Memory;
use proptest::prelude::*;
use std::collections::HashSet;

const VICTIM: &str = "
var data: [int; 32];
fn helper(x: int) -> int { return x * 3 + 1; }
fn main() -> int {
    var n: int = input_len();
    var f: fn(int) -> int = &helper;
    var i: int = 0;
    while (i < 32) {
        data[i] = f(i + n);
        i = i + 1;
    }
    output_byte(0, data[31] & 0xFF);
    send(1);
    return data[31];
}
";

fn instrumented_binary() -> Vec<u8> {
    produce(VICTIM, &PolicySet::full()).expect("compiles").serialize()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn accepted_mutants_never_leak(
        positions in proptest::collection::vec((0usize..20_000, any::<u8>()), 1..6)
    ) {
        let mut binary = instrumented_binary();
        for (pos, xor) in positions {
            let idx = pos % binary.len();
            binary[idx] ^= xor;
        }
        let manifest = Manifest::ccaas();
        let mut enclave = BootstrapEnclave::new(
            EnclaveLayout::new(MemConfig::small()),
            manifest,
        );
        // (a) The consumer never panics on mutated input.
        match enclave.install_plain(&binary) {
            Err(_) => { /* rejected — always sound */ }
            Ok(_) => {
                enclave.set_owner_session([1u8; 32]);
                let _ = enclave.provide_input(b"probe");
                // (b) If accepted, the run may halt/abort/fault/stall — but
                // it must never write untrusted memory.
                let report = enclave.run(3_000_000).expect("installed");
                prop_assert_eq!(
                    report.untrusted_writes,
                    0,
                    "verifier accepted a leaking mutant (exit {:?})",
                    report.exit
                );
            }
        }
    }

    #[test]
    fn truncated_binaries_never_panic(cut in 1usize..5_000) {
        let binary = instrumented_binary();
        // Skip (rather than wrap) out-of-range cuts so every exercised case
        // is a genuine strict prefix of the binary.
        prop_assume!(cut < binary.len());
        let manifest = Manifest::ccaas();
        let mut enclave = BootstrapEnclave::new(
            EnclaveLayout::new(MemConfig::small()),
            manifest,
        );
        // Truncation must always be rejected cleanly.
        prop_assert!(enclave.install_plain(&binary[..cut]).is_err());
    }
}

/// Counts the P1/P2 guard instances the verifier finds in the honest
/// fully instrumented VICTIM binary.
fn guard_instance_counts() -> (usize, usize) {
    let manifest = Manifest::ccaas();
    let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
    let installed =
        install(&instrumented_binary(), &manifest, &mut mem).expect("honest binary verifies");
    let stores =
        installed.verified.instances.iter().filter(|i| i.kind == TemplateKind::StoreGuard).count();
    let rsps =
        installed.verified.instances.iter().filter(|i| i.kind == TemplateKind::RspGuard).count();
    (stores, rsps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structured mutation: remove exactly one randomly chosen store
    /// guard. The strict verifier must pinpoint it as an unguarded store —
    /// never accept, never misclassify, never panic.
    #[test]
    fn any_stripped_store_guard_is_detected(seed in any::<usize>()) {
        let (stores, _) = guard_instance_counts();
        assert!(stores > 0, "VICTIM must have store-guard sites");
        let ordinal = seed % stores;
        let stripped = produce_stripped(
            VICTIM,
            &PolicySet::full(),
            &HashSet::from([ordinal]),
            &HashSet::new(),
        )
        .expect("compiles");
        let manifest = Manifest::ccaas();
        let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
        let err = install(&stripped.serialize(), &manifest, &mut mem)
            .expect_err("stripped store guard must be rejected");
        prop_assert!(
            matches!(err, InstallError::Verify(VerifyError::UnguardedStore { .. })),
            "ordinal {ordinal}: {err:?}"
        );
    }

    /// Same property for P2: removing any single rsp guard must surface as
    /// an unguarded rsp write under the strict policy.
    #[test]
    fn any_stripped_rsp_guard_is_detected(seed in any::<usize>()) {
        let (_, rsps) = guard_instance_counts();
        assert!(rsps > 0, "VICTIM must have rsp-guard sites");
        let ordinal = seed % rsps;
        let stripped = produce_stripped(
            VICTIM,
            &PolicySet::full(),
            &HashSet::new(),
            &HashSet::from([ordinal]),
        )
        .expect("compiles");
        let manifest = Manifest::ccaas();
        let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
        let err = install(&stripped.serialize(), &manifest, &mut mem)
            .expect_err("stripped rsp guard must be rejected");
        prop_assert!(
            matches!(err, InstallError::Verify(VerifyError::UnguardedRspWrite { .. })),
            "ordinal {ordinal}: {err:?}"
        );
    }
}

#[test]
fn unmutated_binary_accepted_and_leak_free() {
    let manifest = Manifest::ccaas();
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.set_owner_session([1u8; 32]);
    enclave.install_plain(&instrumented_binary()).expect("honest binary accepted");
    enclave.provide_input(b"probe").expect("input");
    let report = enclave.run(10_000_000).expect("runs");
    assert!(matches!(report.exit, deflection::sgx::vm::RunExit::Halted { .. }));
    assert_eq!(report.untrusted_writes, 0);
}
