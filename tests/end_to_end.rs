//! Full-system integration: attestation → sealed delivery → verification →
//! execution → sealed results, across all policy levels.

use deflection::attest::{establish_sessions, AttestationService, HandshakeParty, Role};
use deflection::core::policy::{Manifest, PolicySet};
use deflection::core::producer::produce;
use deflection::core::runtime::{delivery_nonce, open_record, BootstrapEnclave};
use deflection::crypto::aead::ChaCha20Poly1305;
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::sgx::measure::Platform;
use deflection::sgx::vm::RunExit;

const SERVICE: &str = "
fn main() -> int {
    var n: int = input_len();
    var sum: int = 0;
    var i: int = 0;
    while (i < n) {
        sum = sum + input_byte(i);
        output_byte(i, input_byte(i) ^ 0x5A);
        i = i + 1;
    }
    send(n);
    return sum;
}
";

fn attested_enclave(policy: PolicySet) -> (BootstrapEnclave, [u8; 32], [u8; 32]) {
    let platform = Platform::new(7, &[1u8; 32]);
    let mut service = AttestationService::new();
    service.register_platform(&platform);
    let mut manifest = Manifest::ccaas();
    manifest.policy = policy;
    let enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    let measurement = enclave.measurement();
    let mut owner = HandshakeParty::new(Role::DataOwner, b"owner");
    let mut provider = HandshakeParty::new(Role::CodeProvider, b"provider");
    let (owner_key, provider_key, ..) =
        establish_sessions(&platform, &service, measurement, &mut owner, &mut provider)
            .expect("attestation succeeds");
    (enclave, owner_key, provider_key)
}

#[test]
fn attested_sealed_flow_at_every_policy_level() {
    for (name, policy) in PolicySet::levels() {
        let (mut enclave, owner_key, provider_key) = attested_enclave(policy);
        enclave.set_owner_session(owner_key);
        enclave.set_provider_session(provider_key);

        let binary = produce(SERVICE, &policy).expect("compiles").serialize();
        let sealed_bin = ChaCha20Poly1305::new(&provider_key).seal(
            &delivery_nonce(b"BIN\0", 0),
            b"deflection-binary",
            &binary,
        );
        enclave.ecall_receive_binary(&sealed_bin).expect("install succeeds");

        let data = b"integration-data";
        let sealed_data = ChaCha20Poly1305::new(&owner_key).seal(
            &delivery_nonce(b"DAT\0", 1),
            b"deflection-userdata",
            data,
        );
        enclave.ecall_receive_userdata(&sealed_data).expect("data accepted");

        let report = enclave.run(50_000_000).expect("runs");
        let expected_sum: u64 = data.iter().map(|&b| b as u64).sum();
        assert_eq!(report.exit, RunExit::Halted { exit: expected_sum }, "level {name}");
        assert_eq!(report.untrusted_writes, 0, "level {name} must not leak");

        let out = open_record(&owner_key, 0, 0, &report.records[0]).expect("owner can open");
        let expected: Vec<u8> = data.iter().map(|&b| b ^ 0x5A).collect();
        assert_eq!(out, expected, "level {name}");
    }
}

#[test]
fn instrumented_binary_costs_more_instructions() {
    let mut counts = Vec::new();
    for (_, policy) in PolicySet::levels() {
        let (mut enclave, owner_key, _) = attested_enclave(policy);
        enclave.set_owner_session(owner_key);
        let binary = produce(SERVICE, &policy).expect("compiles").serialize();
        enclave.install_plain(&binary).expect("installs");
        enclave.provide_input(b"cost-probe-data").expect("input");
        let report = enclave.run(50_000_000).expect("runs");
        counts.push(report.stats.instructions);
    }
    // P1 < P1+P2 < P1-P5 < P1-P6 in executed instructions.
    assert!(counts.windows(2).all(|w| w[0] < w[1]), "{counts:?}");
}

#[test]
fn policy_mismatch_is_rejected_before_data_arrives() {
    let (mut enclave, _owner_key, provider_key) = attested_enclave(PolicySet::full());
    enclave.set_provider_session(provider_key);
    // Provider tries to slip in a binary with weaker instrumentation.
    let weak = produce(SERVICE, &PolicySet::p1()).expect("compiles").serialize();
    let sealed = ChaCha20Poly1305::new(&provider_key).seal(
        &delivery_nonce(b"BIN\0", 0),
        b"deflection-binary",
        &weak,
    );
    assert!(enclave.ecall_receive_binary(&sealed).is_err());
}

#[test]
fn code_hash_reported_to_owner_matches_delivery() {
    let (mut enclave, _, provider_key) = attested_enclave(PolicySet::p1());
    enclave.set_provider_session(provider_key);
    let binary = produce(SERVICE, &PolicySet::p1()).expect("compiles").serialize();
    let sealed = ChaCha20Poly1305::new(&provider_key).seal(
        &delivery_nonce(b"BIN\0", 0),
        b"deflection-binary",
        &binary,
    );
    let reported = enclave.ecall_receive_binary(&sealed).expect("installs");
    // The owner can independently verify the service hash it was promised
    // (paper Section III-A: the enclave extracts and reports the hash).
    assert_eq!(reported, deflection::crypto::sha256::sha256(&binary));
}

#[test]
fn multiple_runs_reuse_installed_binary() {
    let (mut enclave, owner_key, _) = attested_enclave(PolicySet::full());
    enclave.set_owner_session(owner_key);
    let binary = produce(SERVICE, &PolicySet::full()).expect("compiles").serialize();
    enclave.install_plain(&binary).expect("installs");
    enclave.provide_input(b"abc").expect("input");
    let first = enclave.run(50_000_000).expect("runs");
    let second = enclave.run(50_000_000).expect("runs");
    assert_eq!(first.exit, second.exit);
}
