//! Paper-scale configuration: the 96 MB-class bootstrap enclave of
//! Section V-B (1 MB shadow stack, 1 MB branch table, 64 MB data, 28 MB
//! code window) hosting real workloads.

use deflection::core::policy::{Manifest, PolicySet};
use deflection::core::producer::produce;
use deflection::core::runtime::BootstrapEnclave;
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::sgx::vm::RunExit;
use deflection::workloads::{genome, nbench};

#[test]
fn paper_sized_enclave_hosts_nbench() {
    let layout = EnclaveLayout::new(MemConfig::paper());
    assert!(layout.elrange.len() >= 94 << 20);
    let mut manifest = Manifest::ccaas();
    manifest.policy = PolicySet::full();

    let kernel = &nbench::all()[0]; // NUMERIC SORT
    let binary = produce(&(kernel.source)(), &manifest.policy).expect("compiles").serialize();
    let mut enclave = BootstrapEnclave::new(layout, manifest);
    enclave.set_owner_session([2u8; 32]);
    enclave.install_plain(&binary).expect("verifies in the paper-size enclave");
    let input = (kernel.input)(2);
    enclave.provide_input(&input).expect("input");
    let report = enclave.run(1_000_000_000).expect("runs");
    assert_eq!(report.exit, RunExit::Halted { exit: (kernel.reference)(&input) });
    assert_eq!(report.untrusted_writes, 0);
}

#[test]
fn paper_sized_enclave_hosts_large_alignment() {
    // A 1000x1000 DP matrix: the N² working set of Fig. 7's largest input
    // fits comfortably in the 64 MB data window.
    let mut manifest = Manifest::ccaas();
    manifest.policy = PolicySet::p1();
    let binary = produce(&genome::nw_source(), &manifest.policy).expect("compiles").serialize();
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::paper()), manifest);
    enclave.set_owner_session([2u8; 32]);
    enclave.install_plain(&binary).expect("verifies");
    let input = genome::nw_input(1000);
    enclave.provide_input(&input).expect("input");
    let report = enclave.run(10_000_000_000).expect("runs");
    assert_eq!(report.exit, RunExit::Halted { exit: genome::nw_reference(&input) });
}
