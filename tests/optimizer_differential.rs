//! Differential suite for the MIR optimizer mid-end (`lang::opt`): the
//! pass pipeline is a pure performance artifact, so an optimized build and
//! an unoptimized build of the same source must be *observationally
//! identical* under the full P1–P6 policy — same exit value, same sealed
//! records, same host-visible writes, same log, same leak log — on every
//! workload the repo ships (all ten nBench kernels, both genome programs,
//! the credit scorer) and on proptest-generated machine-IR programs fed
//! straight into the pass manager.
//!
//! Instruction counts and the code-layout digest are *expected* to differ
//! (that is the point of the optimizer); everything else diverging is a
//! miscompile. This mirrors the whole-machine Snapshot oracle of
//! `icache_differential`, minus the layout-dependent fields.

use deflection::core::policy::{Manifest, PolicySet};
use deflection::core::producer::{produce, produce_from_mir, produce_unoptimized};
use deflection::core::runtime::{BootstrapEnclave, RunReport};
use deflection::crypto::sha256::sha256;
use deflection::isa::{AluOp, CondCode, Inst, Reg};
use deflection::lang::mir::{MFunction, MInst, MirProgram};
use deflection::lang::opt::optimize_pipeline;
use deflection::sgx::layout::{EnclaveLayout, MemConfig};
use deflection::sgx::mem::LeakRecord;
use deflection::sgx::vm::RunExit;
use deflection::workloads::{credit, genome, nbench};
use proptest::prelude::*;
use std::collections::HashSet;

/// Everything a run observably produces that is independent of code
/// layout. Deliberately excludes `stats` (the optimizer exists to change
/// instruction counts) and the enclave-image digest (the text section
/// differs by construction); the *untrusted* window digest stays in,
/// since host-visible bytes must not depend on the optimizer.
#[derive(Debug, PartialEq)]
struct Observable {
    exit: RunExit,
    records: Vec<Vec<u8>>,
    untrusted_writes: u64,
    blur_padding: u64,
    log: Vec<i64>,
    leak_log: Vec<LeakRecord>,
    untrusted_digest: [u8; 32],
}

fn observable(enclave: &BootstrapEnclave, report: RunReport) -> Observable {
    let mem = enclave.memory();
    let untrusted_len = mem.layout().config.untrusted_size as usize;
    let untrusted_bytes = mem.peek_bytes(0, untrusted_len).expect("untrusted window is mapped");
    Observable {
        exit: report.exit,
        records: report.records,
        untrusted_writes: report.untrusted_writes,
        blur_padding: report.blur_padding,
        log: enclave.log_values().to_vec(),
        leak_log: mem.leak_log.clone(),
        untrusted_digest: sha256(untrusted_bytes),
    }
}

/// Installs `binary` under the full-policy manifest and runs it to
/// completion, returning the layout-independent observables plus the
/// executed-instruction count (compared *asymmetrically*: optimized must
/// not execute more).
fn run_full_policy(binary: &[u8], input: &[u8]) -> (Observable, u64) {
    let mut manifest = Manifest::ccaas();
    manifest.policy = PolicySet::full();
    let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
    enclave.set_owner_session([0x5A; 32]);
    enclave.install_plain(binary).expect("binary verifies under full policy");
    if !input.is_empty() {
        enclave.provide_input(input).expect("installed");
    }
    let report = enclave.run(u64::MAX / 2).expect("installed");
    let insts = report.stats.instructions;
    (observable(&enclave, report), insts)
}

/// Compiles `source` twice — pipeline on and pipeline off — and asserts
/// the two builds are observationally identical. Returns the optimized
/// observable for workload-specific checks.
fn assert_optimizer_transparent(name: &str, source: &str, input: &[u8]) -> Observable {
    let policy = PolicySet::full();
    let optimized = produce(source, &policy).expect("optimized build compiles").serialize();
    let raw = produce_unoptimized(source, &policy).expect("raw build compiles").serialize();
    let (opt_obs, opt_insts) = run_full_policy(&optimized, input);
    let (raw_obs, raw_insts) = run_full_policy(&raw, input);
    assert_eq!(opt_obs, raw_obs, "{name}: optimized and raw builds diverged");
    assert!(
        opt_insts <= raw_insts,
        "{name}: optimized build executed more instructions ({opt_insts} vs {raw_insts})"
    );
    opt_obs
}

/// Every Table II kernel: pipeline on vs off under full P1–P6, anchored a
/// third way against the bit-exact native reference implementation.
#[test]
fn nbench_kernels_are_optimizer_transparent() {
    for kernel in nbench::all() {
        let source = (kernel.source)();
        let input = (kernel.input)(1);
        let obs = assert_optimizer_transparent(kernel.name, &source, &input);
        assert_eq!(
            obs.exit,
            RunExit::Halted { exit: (kernel.reference)(&input) },
            "{}: optimized build must still match the native reference",
            kernel.name
        );
    }
}

/// The remaining shipped workloads: both genome programs and the credit
/// scorer (the record-producing workloads, so sealed-record equality is
/// exercised, not just exit codes).
#[test]
fn genome_and_credit_workloads_are_optimizer_transparent() {
    let nw_input = genome::nw_input(64);
    let obs = assert_optimizer_transparent("genome-nw", &genome::nw_source(), &nw_input);
    assert_eq!(obs.exit, RunExit::Halted { exit: genome::nw_reference(&nw_input) });

    let seq_input = genome::seqgen_input(8);
    let obs = assert_optimizer_transparent("genome-seqgen", &genome::seqgen_source(), &seq_input);
    let (seq_exit, seq_records) = genome::seqgen_reference(&seq_input);
    assert_eq!(obs.exit, RunExit::Halted { exit: seq_exit });
    // Records come back sealed; their byte-equality across builds is part of
    // the Observable comparison. Against the reference, check the count.
    assert_eq!(obs.records.len(), seq_records.len(), "one sealed record per reference record");

    let credit_input = credit::input(16, 4);
    let obs = assert_optimizer_transparent("credit", &credit::source(), &credit_input);
    assert_eq!(obs.exit, RunExit::Halted { exit: credit::reference(&credit_input) });
}

/// The pipeline must never grow code and must stay shrinking-monotone when
/// re-applied: a pass that enlarges a program would silently eat the
/// instruction-budget headroom the producer relies on.
#[test]
fn pipeline_is_shrinking_and_stable_on_every_kernel() {
    for kernel in nbench::all() {
        let mir = deflection::lang::compile(&(kernel.source)()).expect("compiles");
        let before = mir.inst_count();
        let mut once = mir.clone();
        optimize_pipeline(&mut once);
        let after_one = once.inst_count();
        let mut twice = once.clone();
        optimize_pipeline(&mut twice);
        let after_two = twice.inst_count();
        assert!(after_one <= before, "{}: pipeline grew code", kernel.name);
        assert!(after_two <= after_one, "{}: second application grew code", kernel.name);
    }
}

// ---------------------------------------------------------------------------
// Pass-manager proptest: random machine-IR programs fed straight into the
// pipeline, then assembled, verified and executed both ways.
// ---------------------------------------------------------------------------

/// Scratch registers the generator draws from. Excludes RSP/RBP (frame
/// discipline) so every generated program is trivially stack-balanced
/// apart from the explicit push/pop pairs it emits.
const GP: [Reg; 6] = [Reg::RAX, Reg::RCX, Reg::RDX, Reg::RBX, Reg::RSI, Reg::RDI];
const CCS: [CondCode; 6] =
    [CondCode::E, CondCode::Ne, CondCode::L, CondCode::Le, CondCode::G, CondCode::Ge];

/// One straight-line arithmetic op, encoded compactly for proptest.
#[derive(Debug, Clone, Copy)]
struct ArithOp {
    kind: u8,
    reg: u8,
    other: u8,
    imm: i16,
}

impl ArithOp {
    fn emit(self, f: &mut MFunction) {
        let dst = GP[self.reg as usize % GP.len()];
        let src = GP[self.other as usize % GP.len()];
        let imm = i64::from(self.imm);
        match self.kind % 6 {
            0 => f.real(Inst::MovRI { dst, imm: imm as u64 }),
            1 => f.real(Inst::AluRI { op: AluOp::Add, dst, imm }),
            2 => f.real(Inst::AluRI { op: AluOp::Xor, dst, imm }),
            3 => f.real(Inst::AluRR { op: AluOp::Add, dst, src }),
            4 => f.real(Inst::MovRR { dst, src }),
            _ => f.real(Inst::Neg { reg: dst }),
        }
    }
}

/// One generated segment: an optional flag-disciplined conditional skip
/// (`cmp; jcc` with the branch *immediately* after the compare, matching
/// the codegen contract the verifier enforces), an optional push/pop
/// wrapper (the shape the fusion pass rewrites), and an arithmetic body.
#[derive(Debug, Clone)]
struct Segment {
    cond: Option<(u8, i16, u8)>,
    push_pop: Option<(u8, u8)>,
    body: Vec<ArithOp>,
}

/// Renders segments into a self-contained `__start` that halts with its
/// result in RAX. All branches are forward, so every generated program
/// terminates.
fn render_mir(segments: &[Segment]) -> MirProgram {
    let mut f = MFunction::new("__start");
    for seg in segments {
        let skip = f.new_label();
        if let Some((r, imm, cc)) = seg.cond {
            f.real(Inst::CmpRI { lhs: GP[r as usize % GP.len()], imm: i64::from(imm) });
            f.push(MInst::Jcc(CCS[cc as usize % CCS.len()], skip));
        }
        if let Some((p, _)) = seg.push_pop {
            f.real(Inst::Push { reg: GP[p as usize % GP.len()] });
        }
        for op in &seg.body {
            op.emit(&mut f);
        }
        if let Some((_, q)) = seg.push_pop {
            f.real(Inst::Pop { reg: GP[q as usize % GP.len()] });
        }
        if seg.cond.is_some() {
            f.push(MInst::Label(skip));
        }
    }
    f.real(Inst::Halt);
    MirProgram {
        entry: "__start".into(),
        functions: vec![f],
        data: vec![],
        indirect_targets: vec![],
    }
}

/// Every label a function's branches target must still be defined after
/// the pipeline ran — dangling targets would fail assembly, but checking
/// here localizes the offending pass.
fn assert_label_integrity(mir: &MirProgram) {
    for f in &mir.functions {
        let defined: HashSet<u32> = f
            .insts
            .iter()
            .filter_map(|i| if let MInst::Label(l) = i { Some(l.0) } else { None })
            .collect();
        for inst in &f.insts {
            let target = match inst {
                MInst::Jmp(l) | MInst::Jcc(_, l) => Some(l.0),
                _ => None,
            };
            if let Some(t) = target {
                assert!(defined.contains(&t), "{}: dangling label L{t}", f.name);
            }
        }
    }
}

fn arith_op() -> impl Strategy<Value = ArithOp> {
    (0u8..6, any::<u8>(), any::<u8>(), -500i16..500).prop_map(|(kind, reg, other, imm)| ArithOp {
        kind,
        reg,
        other,
        imm,
    })
}

fn segment() -> impl Strategy<Value = Segment> {
    (
        proptest::option::of((any::<u8>(), -500i16..500, 0u8..6)),
        proptest::option::of((any::<u8>(), any::<u8>())),
        proptest::collection::vec(arith_op(), 1..6),
    )
        .prop_map(|(cond, push_pop, body)| Segment { cond, push_pop, body })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// Random MIR → pipeline → assemble/verify/run, against the raw build
    /// of the *same* MIR: the pass manager has no generated shape of its
    /// own to hide behind (push/pop pairs, flag-paired branches, dead
    /// arithmetic, cross-segment constant flows all occur).
    #[test]
    fn generated_mir_is_optimizer_transparent(
        segments in proptest::collection::vec(segment(), 1..8),
    ) {
        let mir = render_mir(&segments);
        let mut optimized = mir.clone();
        optimize_pipeline(&mut optimized);
        prop_assert!(optimized.inst_count() <= mir.inst_count(), "pipeline grew code");
        assert_label_integrity(&optimized);

        let policy = PolicySet::full();
        let raw = produce_from_mir(&mir, &policy).expect("raw MIR assembles").serialize();
        let opt =
            produce_from_mir(&optimized, &policy).expect("optimized MIR assembles").serialize();
        let (raw_obs, raw_insts) = run_full_policy(&raw, b"");
        let (opt_obs, opt_insts) = run_full_policy(&opt, b"");
        prop_assert!(matches!(raw_obs.exit, RunExit::Halted { .. }), "generated program must halt");
        prop_assert_eq!(opt_obs, raw_obs, "optimized and raw runs diverged");
        prop_assert!(opt_insts <= raw_insts);
    }
}
