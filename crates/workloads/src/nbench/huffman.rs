//! HUFFMAN: frequency analysis, code construction and bit-packed encoding
//! of a byte buffer (byte stores into the bit buffer dominate — high P1
//! overhead in Table II).

use super::read_ints;
use crate::{encode_ints, with_prelude, Lcg};

const BODY: &str = "
var text: [byte; 8192];
var freq: [int; 64];      // node weights (leaves 0..15, internal after)
var left: [int; 64];
var right: [int; 64];
var parent: [int; 64];
var codelen: [int; 16];
var outbits: [byte; 65536];

fn main() -> int {
    var n: int = geti(0);
    srand(geti(1));
    // Restricted 16-symbol alphabet for a compact tree.
    var i: int = 0;
    while (i < n) { text[i] = rnd(16); i = i + 1; }
    i = 0;
    while (i < 64) { freq[i] = 0; parent[i] = 0 - 1; i = i + 1; }
    i = 0;
    while (i < n) { freq[text[i]] = freq[text[i]] + 1; i = i + 1; }
    // Ensure every symbol exists so the tree covers the alphabet.
    i = 0;
    while (i < 16) { freq[i] = freq[i] + 1; i = i + 1; }

    // Build the tree: repeatedly join the two smallest live roots.
    var nodes: int = 16;
    var joins: int = 0;
    while (joins < 15) {
        var a: int = 0 - 1;
        var b: int = 0 - 1;
        i = 0;
        while (i < nodes) {
            if (parent[i] == 0 - 1) {
                if (a == 0 - 1 || freq[i] < freq[a]) { b = a; a = i; }
                else if (b == 0 - 1 || freq[i] < freq[b]) { b = i; }
            }
            i = i + 1;
        }
        freq[nodes] = freq[a] + freq[b];
        left[nodes] = a;
        right[nodes] = b;
        parent[nodes] = 0 - 1;
        parent[a] = nodes;
        parent[b] = nodes;
        nodes = nodes + 1;
        joins = joins + 1;
    }

    // Code length of each symbol = depth in the tree.
    i = 0;
    while (i < 16) {
        var d: int = 0;
        var p: int = parent[i];
        while (p != 0 - 1) { d = d + 1; p = parent[p]; }
        codelen[i] = d;
        i = i + 1;
    }

    // Encode: write each symbol's depth as that many alternating bits
    // (structure-preserving stand-in for the exact code bits).
    var bitpos: int = 0;
    i = 0;
    while (i < n) {
        var len: int = codelen[text[i]];
        var k: int = 0;
        while (k < len) {
            outbits[bitpos >> 3] = outbits[bitpos >> 3] | ((k & 1) << (bitpos & 7));
            bitpos = bitpos + 1;
            k = k + 1;
        }
        i = i + 1;
    }

    var acc: int = bitpos;
    i = 0;
    while (i < 16) { acc = acc * 31 + codelen[i]; i = i + 1; }
    i = 0;
    while (i < (bitpos >> 3)) { acc = acc * 7 + outbits[i]; i = i + 1; }
    return acc & 0xFFFFFFFF;
}
";

/// DCL source.
#[must_use]
pub fn source() -> String {
    with_prelude(BODY)
}

/// Input: `[n, seed]` — n symbols to encode.
#[must_use]
pub fn input(scale: u32) -> Vec<u8> {
    encode_ints(&[(150 * scale as i64).min(8192), 0x5EED_0008])
}

/// Bit-exact native reference.
#[must_use]
#[allow(clippy::needless_range_loop, clippy::explicit_counter_loop)]
pub fn reference(input: &[u8]) -> u64 {
    let header = read_ints(input);
    let (n, seed) = (header[0] as usize, header[1]);
    let mut lcg = Lcg::new(seed);
    let text: Vec<usize> = (0..n).map(|_| lcg.below(16) as usize).collect();
    let mut freq = [0i64; 64];
    let mut left = [0usize; 64];
    let mut right = [0usize; 64];
    let mut parent = [usize::MAX; 64];
    for &t in &text {
        freq[t] += 1;
    }
    for f in freq.iter_mut().take(16) {
        *f += 1;
    }
    let mut nodes = 16;
    for _ in 0..15 {
        let (mut a, mut b) = (usize::MAX, usize::MAX);
        for i in 0..nodes {
            if parent[i] == usize::MAX {
                if a == usize::MAX || freq[i] < freq[a] {
                    b = a;
                    a = i;
                } else if b == usize::MAX || freq[i] < freq[b] {
                    b = i;
                }
            }
        }
        freq[nodes] = freq[a] + freq[b];
        left[nodes] = a;
        right[nodes] = b;
        parent[a] = nodes;
        parent[b] = nodes;
        nodes += 1;
    }
    let _ = (left, right);
    let mut codelen = [0i64; 16];
    for (i, cl) in codelen.iter_mut().enumerate() {
        let mut d = 0;
        let mut p = parent[i];
        while p != usize::MAX {
            d += 1;
            p = parent[p];
        }
        *cl = d;
    }
    let mut outbits = vec![0u8; 65536];
    let mut bitpos: i64 = 0;
    for &t in &text {
        for k in 0..codelen[t] {
            outbits[(bitpos >> 3) as usize] |= ((k & 1) as u8) << (bitpos & 7);
            bitpos += 1;
        }
    }
    let mut acc: i64 = bitpos;
    for cl in &codelen {
        acc = acc.wrapping_mul(31).wrapping_add(*cl);
    }
    for i in 0..(bitpos >> 3) as usize {
        acc = acc.wrapping_mul(7).wrapping_add(outbits[i] as i64);
    }
    (acc & 0xFFFF_FFFF) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute_expect;
    use deflection_core::policy::PolicySet;

    #[test]
    fn matches_reference_baseline_and_full() {
        let inp = input(1);
        let expected = reference(&inp);
        execute_expect(&source(), &inp, &PolicySet::none(), expected);
        execute_expect(&source(), &inp, &PolicySet::full(), expected);
    }

    #[test]
    #[allow(clippy::explicit_counter_loop)]
    fn code_lengths_satisfy_kraft() {
        // Sanity on the reference tree: sum 2^-len == 1 for a full binary tree.
        let inp = input(1);
        let header = read_ints(&inp);
        let mut lcg = Lcg::new(header[1]);
        let text: Vec<usize> = (0..header[0] as usize).map(|_| lcg.below(16) as usize).collect();
        let mut freq = [0i64; 64];
        let mut parent = [usize::MAX; 64];
        for &t in &text {
            freq[t] += 1;
        }
        for f in freq.iter_mut().take(16) {
            *f += 1;
        }
        let mut nodes = 16;
        for _ in 0..15 {
            let (mut a, mut b) = (usize::MAX, usize::MAX);
            for i in 0..nodes {
                if parent[i] == usize::MAX {
                    if a == usize::MAX || freq[i] < freq[a] {
                        b = a;
                        a = i;
                    } else if b == usize::MAX || freq[i] < freq[b] {
                        b = i;
                    }
                }
            }
            freq[nodes] = freq[a] + freq[b];
            parent[a] = nodes;
            parent[b] = nodes;
            nodes += 1;
        }
        let mut kraft = 0.0;
        for i in 0..16 {
            let mut d = 0;
            let mut p = parent[i];
            while p != usize::MAX {
                d += 1;
                p = parent[p];
            }
            kraft += 0.5f64.powi(d);
        }
        assert!((kraft - 1.0).abs() < 1e-9, "kraft sum {kraft}");
    }
}
