//! BITFIELD: random set/clear/toggle operations on a bitmap followed by a
//! popcount sweep.

use super::read_ints;
use crate::{encode_ints, with_prelude, Lcg};

const BODY: &str = "
var bits: [int; 512];

fn bset(i: int) { bits[i >> 6] = bits[i >> 6] | (1 << (i & 63)); }
fn bclr(i: int) { bits[i >> 6] = bits[i >> 6] & ~(1 << (i & 63)); }
fn btgl(i: int) { bits[i >> 6] = bits[i >> 6] ^ (1 << (i & 63)); }

fn main() -> int {
    var ops: int = geti(0);
    srand(geti(1));
    var k: int = 0;
    while (k < ops) {
        var pos: int = rnd(32768);
        var op: int = rnd(3);
        if (op == 0) { bset(pos); }
        else if (op == 1) { bclr(pos); }
        else { btgl(pos); }
        k = k + 1;
    }
    var acc: int = 0;
    var w: int = 0;
    while (w < 512) {
        var v: int = bits[w];
        var b: int = 0;
        while (b < 64) {
            acc = acc + ((v >> b) & 1);
            b = b + 1;
        }
        w = w + 1;
    }
    return acc;
}
";

/// DCL source.
#[must_use]
pub fn source() -> String {
    with_prelude(BODY)
}

/// Input: `[ops, seed]`.
#[must_use]
pub fn input(scale: u32) -> Vec<u8> {
    encode_ints(&[300 * scale as i64, 0x5EED_0003])
}

/// Bit-exact native reference.
#[must_use]
pub fn reference(input: &[u8]) -> u64 {
    let header = read_ints(input);
    let (ops, seed) = (header[0], header[1]);
    let mut lcg = Lcg::new(seed);
    let mut bits = [0i64; 512];
    for _ in 0..ops {
        let pos = lcg.below(32768);
        let op = lcg.below(3);
        let (w, mask) = ((pos >> 6) as usize, 1i64.wrapping_shl((pos & 63) as u32));
        match op {
            0 => bits[w] |= mask,
            1 => bits[w] &= !mask,
            _ => bits[w] ^= mask,
        }
    }
    bits.iter().map(|w| w.count_ones() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute_expect;
    use deflection_core::policy::PolicySet;

    #[test]
    fn matches_reference_baseline_and_full() {
        let inp = input(1);
        let expected = reference(&inp);
        execute_expect(&source(), &inp, &PolicySet::none(), expected);
        execute_expect(&source(), &inp, &PolicySet::full(), expected);
    }
}
