//! FOURIER: numerical integration of Fourier coefficients with
//! Taylor-series trigonometry (FPU-heavy, few stores).

use super::read_ints;
use crate::{encode_ints, with_prelude};

const BODY: &str = "
fn fsin(x: float) -> float {
    var x2: float = x * x;
    var term: float = x;
    var sum: float = x;
    var k: int = 1;
    while (k < 10) {
        term = 0.0 - term * x2 / itof((2 * k) * (2 * k + 1));
        sum = sum + term;
        k = k + 1;
    }
    return sum;
}

fn fcos(x: float) -> float {
    var x2: float = x * x;
    var term: float = 1.0;
    var sum: float = 1.0;
    var k: int = 1;
    while (k < 10) {
        term = 0.0 - term * x2 / itof((2 * k - 1) * (2 * k));
        sum = sum + term;
        k = k + 1;
    }
    return sum;
}

// Trapezoid integration of f(x)*cos(n*x) (or sin) over [0, 2], f(x) = x.
fn coef(n: int, steps: int, use_sin: int) -> float {
    var h: float = 2.0 / itof(steps);
    var sum: float = 0.0;
    var i: int = 0;
    while (i <= steps) {
        var x: float = itof(i) * h;
        var basis: float = 0.0;
        if (use_sin == 1) { basis = fsin(itof(n) * x); }
        else { basis = fcos(itof(n) * x); }
        var v: float = x * basis;
        if (i == 0 || i == steps) { v = v * 0.5; }
        sum = sum + v;
        i = i + 1;
    }
    return sum * h;
}

fn main() -> int {
    var ncoef: int = geti(0);
    var steps: int = geti(1);
    srand(geti(2));
    var acc: float = 0.0;
    var n: int = 1;
    while (n <= ncoef) {
        acc = acc + coef(n, steps, 0) + coef(n, steps, 1);
        n = n + 1;
    }
    return ftoi(acc * 1000000.0) & 0xFFFFFFFF;
}
";

/// DCL source.
#[must_use]
pub fn source() -> String {
    with_prelude(BODY)
}

/// Input: `[ncoef, steps, seed]`.
#[must_use]
pub fn input(scale: u32) -> Vec<u8> {
    encode_ints(&[3 * scale as i64, 20, 0x5EED_0005])
}

fn fsin(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    for k in 1..10i64 {
        term = 0.0 - term * x2 / ((2 * k) * (2 * k + 1)) as f64;
        sum += term;
    }
    sum
}

fn fcos(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = 1.0;
    let mut sum = 1.0;
    for k in 1..10i64 {
        term = 0.0 - term * x2 / ((2 * k - 1) * (2 * k)) as f64;
        sum += term;
    }
    sum
}

fn coef(n: i64, steps: i64, use_sin: bool) -> f64 {
    let h = 2.0 / steps as f64;
    let mut sum = 0.0;
    for i in 0..=steps {
        let x = i as f64 * h;
        let basis = if use_sin { fsin(n as f64 * x) } else { fcos(n as f64 * x) };
        let mut v = x * basis;
        if i == 0 || i == steps {
            v *= 0.5;
        }
        sum += v;
    }
    sum * h
}

/// Bit-exact native reference.
#[must_use]
pub fn reference(input: &[u8]) -> u64 {
    let header = read_ints(input);
    let (ncoef, steps) = (header[0], header[1]);
    let mut acc = 0.0;
    for n in 1..=ncoef {
        acc += coef(n, steps, false) + coef(n, steps, true);
    }
    (((acc * 1_000_000.0) as i64) & 0xFFFF_FFFF) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute_expect;
    use deflection_core::policy::PolicySet;

    #[test]
    fn matches_reference_baseline_and_full() {
        let inp = input(1);
        let expected = reference(&inp);
        execute_expect(&source(), &inp, &PolicySet::none(), expected);
        execute_expect(&source(), &inp, &PolicySet::full(), expected);
    }

    #[test]
    fn taylor_series_is_accurate_in_range() {
        for i in 0..20 {
            let x = i as f64 * 0.3;
            assert!((fsin(x) - x.sin()).abs() < 2e-2, "sin({x})");
            assert!((fcos(x) - x.cos()).abs() < 2e-2, "cos({x})");
        }
    }
}
