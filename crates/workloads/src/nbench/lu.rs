//! LU DECOMPOSITION: in-place Doolittle factorization of a diagonally
//! dominant matrix (FPU plus array-store heavy).

use super::read_ints;
use crate::{encode_ints, with_prelude, Lcg};

const BODY: &str = "
var a: [float; 1024];    // up to 32x32

fn main() -> int {
    var n: int = geti(0);
    srand(geti(1));
    var i: int = 0;
    while (i < n) {
        var j: int = 0;
        while (j < n) {
            a[i * n + j] = itof(rnd(2000) - 1000) / 100.0;
            j = j + 1;
        }
        // Diagonal dominance keeps pivots well away from zero.
        a[i * n + i] = a[i * n + i] + 1000.0;
        i = i + 1;
    }

    // Doolittle: L (unit diagonal) and U share the array.
    var k: int = 0;
    while (k < n) {
        var j: int = k;
        while (j < n) {
            var s: float = 0.0;
            var m: int = 0;
            while (m < k) { s = s + a[k * n + m] * a[m * n + j]; m = m + 1; }
            a[k * n + j] = a[k * n + j] - s;
            j = j + 1;
        }
        i = k + 1;
        while (i < n) {
            var s2: float = 0.0;
            var m2: int = 0;
            while (m2 < k) { s2 = s2 + a[i * n + m2] * a[m2 * n + k]; m2 = m2 + 1; }
            a[i * n + k] = (a[i * n + k] - s2) / a[k * n + k];
            i = i + 1;
        }
        k = k + 1;
    }

    var acc: float = 0.0;
    i = 0;
    while (i < n) { acc = acc + a[i * n + i]; i = i + 1; }
    return ftoi(acc * 1000.0) & 0xFFFFFFFF;
}
";

/// DCL source.
#[must_use]
pub fn source() -> String {
    with_prelude(BODY)
}

/// Input: `[n, seed]` — an n×n system (n ≤ 32).
#[must_use]
pub fn input(scale: u32) -> Vec<u8> {
    encode_ints(&[(6 + 2 * scale as i64).min(32), 0x5EED_000B])
}

/// Bit-exact native reference.
#[must_use]
pub fn reference(input: &[u8]) -> u64 {
    let header = read_ints(input);
    let (n, seed) = (header[0] as usize, header[1]);
    let mut lcg = Lcg::new(seed);
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = (lcg.below(2000) - 1000) as f64 / 100.0;
        }
        a[i * n + i] += 1000.0;
    }
    for k in 0..n {
        for j in k..n {
            let mut s = 0.0;
            for m in 0..k {
                s += a[k * n + m] * a[m * n + j];
            }
            a[k * n + j] -= s;
        }
        for i in (k + 1)..n {
            let mut s = 0.0;
            for m in 0..k {
                s += a[i * n + m] * a[m * n + k];
            }
            a[i * n + k] = (a[i * n + k] - s) / a[k * n + k];
        }
    }
    let mut acc = 0.0;
    for i in 0..n {
        acc += a[i * n + i];
    }
    (((acc * 1000.0) as i64) & 0xFFFF_FFFF) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute_expect;
    use deflection_core::policy::PolicySet;

    #[test]
    fn matches_reference_baseline_and_full() {
        let inp = input(1);
        let expected = reference(&inp);
        execute_expect(&source(), &inp, &PolicySet::none(), expected);
        execute_expect(&source(), &inp, &PolicySet::full(), expected);
    }

    #[test]
    fn lu_reconstructs_matrix() {
        // Independent sanity check: L*U must reproduce the original matrix.
        let n = 8usize;
        let seed = 0x5EED_000B;
        let mut lcg = Lcg::new(seed);
        let mut orig = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                orig[i * n + j] = (lcg.below(2000) - 1000) as f64 / 100.0;
            }
            orig[i * n + i] += 1000.0;
        }
        // Factorize a copy using the same algorithm.
        let mut a = orig.clone();
        for k in 0..n {
            for j in k..n {
                let mut s = 0.0;
                for m in 0..k {
                    s += a[k * n + m] * a[m * n + j];
                }
                a[k * n + j] -= s;
            }
            for i in (k + 1)..n {
                let mut s = 0.0;
                for m in 0..k {
                    s += a[i * n + m] * a[m * n + k];
                }
                a[i * n + k] = (a[i * n + k] - s) / a[k * n + k];
            }
        }
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0;
                for m in 0..n {
                    let l = if i > m {
                        a[i * n + m]
                    } else if i == m {
                        1.0
                    } else {
                        0.0
                    };
                    let u = if m <= j { a[m * n + j] } else { 0.0 };
                    v += l * u;
                }
                assert!((v - orig[i * n + j]).abs() < 1e-6, "({i},{j})");
            }
        }
    }
}
