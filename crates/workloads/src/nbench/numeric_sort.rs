//! NUMERIC SORT: heapsort over an integer array (store-heavy).

use super::read_ints;
use crate::{encode_ints, with_prelude, Lcg};

const BODY: &str = "
var arr: [int; 8192];

fn sift(root: int, n: int) {
    var r: int = root;
    while (r * 2 + 1 < n) {
        var child: int = r * 2 + 1;
        if (child + 1 < n && arr[child] < arr[child + 1]) { child = child + 1; }
        if (arr[r] < arr[child]) {
            var t: int = arr[r];
            arr[r] = arr[child];
            arr[child] = t;
            r = child;
        } else {
            return;
        }
    }
}

fn heapsort(n: int) {
    var start: int = n / 2 - 1;
    while (start >= 0) { sift(start, n); start = start - 1; }
    var end: int = n - 1;
    while (end > 0) {
        var t: int = arr[end];
        arr[end] = arr[0];
        arr[0] = t;
        sift(0, end);
        end = end - 1;
    }
}

fn main() -> int {
    var n: int = geti(0);
    srand(geti(1));
    var i: int = 0;
    while (i < n) { arr[i] = rnd(1000000); i = i + 1; }
    heapsort(n);
    var acc: int = 0;
    i = 0;
    while (i < n) {
        if (i > 0 && arr[i] < arr[i - 1]) { return 1; }
        acc = acc * 31 + arr[i];
        i = i + 1;
    }
    return acc & 0xFFFFFFFF;
}
";

/// DCL source.
#[must_use]
pub fn source() -> String {
    with_prelude(BODY)
}

/// Input: `[n, seed]`, n elements scaled by `scale`.
#[must_use]
pub fn input(scale: u32) -> Vec<u8> {
    encode_ints(&[(100 * scale as i64).min(8192), 0x5EED_0001])
}

/// Bit-exact native reference.
#[must_use]
pub fn reference(input: &[u8]) -> u64 {
    let header = read_ints(input);
    let (n, seed) = (header[0] as usize, header[1]);
    let mut lcg = Lcg::new(seed);
    let mut arr: Vec<i64> = (0..n).map(|_| lcg.below(1_000_000)).collect();
    arr.sort_unstable();
    let mut acc: i64 = 0;
    for v in &arr {
        acc = acc.wrapping_mul(31).wrapping_add(*v);
    }
    (acc & 0xFFFF_FFFF) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute_expect;
    use deflection_core::policy::PolicySet;

    #[test]
    fn matches_reference_baseline_and_full() {
        let inp = input(1);
        let expected = reference(&inp);
        execute_expect(&source(), &inp, &PolicySet::none(), expected);
        execute_expect(&source(), &inp, &PolicySet::full(), expected);
    }
}
