//! IDEA: the International Data Encryption Algorithm's round structure —
//! 16-bit modular multiplication (mod 65537), addition (mod 65536) and XOR
//! over 4-word blocks with 52 subkeys.

use super::read_ints;
use crate::{encode_ints, with_prelude, Lcg};

const BODY: &str = "
var data: [byte; 8192];
var keys: [int; 52];

fn mul16(a: int, b: int) -> int {
    if (a == 0) { return (65537 - b) & 0xFFFF; }
    if (b == 0) { return (65537 - a) & 0xFFFF; }
    return (a * b % 65537) & 0xFFFF;
}

fn encrypt_block(off: int) {
    var x0: int = data[off] | (data[off + 1] << 8);
    var x1: int = data[off + 2] | (data[off + 3] << 8);
    var x2: int = data[off + 4] | (data[off + 5] << 8);
    var x3: int = data[off + 6] | (data[off + 7] << 8);
    var r: int = 0;
    while (r < 8) {
        var k: int = r * 6;
        x0 = mul16(x0, keys[k]);
        x1 = (x1 + keys[k + 1]) & 0xFFFF;
        x2 = (x2 + keys[k + 2]) & 0xFFFF;
        x3 = mul16(x3, keys[k + 3]);
        var t0: int = x0 ^ x2;
        var t1: int = x1 ^ x3;
        t0 = mul16(t0, keys[k + 4]);
        t1 = (t1 + t0) & 0xFFFF;
        t1 = mul16(t1, keys[k + 5]);
        t0 = (t0 + t1) & 0xFFFF;
        x0 = x0 ^ t1;
        x2 = x2 ^ t1;
        x1 = x1 ^ t0;
        x3 = x3 ^ t0;
        var t: int = x1;
        x1 = x2;
        x2 = t;
        r = r + 1;
    }
    var y0: int = mul16(x0, keys[48]);
    var y1: int = (x2 + keys[49]) & 0xFFFF;
    var y2: int = (x1 + keys[50]) & 0xFFFF;
    var y3: int = mul16(x3, keys[51]);
    data[off] = y0 & 0xFF;
    data[off + 1] = (y0 >> 8) & 0xFF;
    data[off + 2] = y1 & 0xFF;
    data[off + 3] = (y1 >> 8) & 0xFF;
    data[off + 4] = y2 & 0xFF;
    data[off + 5] = (y2 >> 8) & 0xFF;
    data[off + 6] = y3 & 0xFF;
    data[off + 7] = (y3 >> 8) & 0xFF;
}

fn main() -> int {
    var nblocks: int = geti(0);
    srand(geti(1));
    var i: int = 0;
    while (i < 52) { keys[i] = rnd(65536); i = i + 1; }
    i = 0;
    while (i < nblocks * 8) { data[i] = rnd(256); i = i + 1; }
    i = 0;
    while (i < nblocks) { encrypt_block(i * 8); i = i + 1; }
    var acc: int = 0;
    i = 0;
    while (i < nblocks * 8) { acc = acc * 31 + data[i]; i = i + 1; }
    return acc & 0xFFFFFFFF;
}
";

/// DCL source.
#[must_use]
pub fn source() -> String {
    with_prelude(BODY)
}

/// Input: `[nblocks, seed]` (8-byte blocks).
#[must_use]
pub fn input(scale: u32) -> Vec<u8> {
    encode_ints(&[(20 * scale as i64).min(1024), 0x5EED_0007])
}

fn mul16(a: i64, b: i64) -> i64 {
    if a == 0 {
        return (65537 - b) & 0xFFFF;
    }
    if b == 0 {
        return (65537 - a) & 0xFFFF;
    }
    (a.wrapping_mul(b) % 65537) & 0xFFFF
}

/// Bit-exact native reference.
#[must_use]
pub fn reference(input: &[u8]) -> u64 {
    let header = read_ints(input);
    let (nblocks, seed) = (header[0] as usize, header[1]);
    let mut lcg = Lcg::new(seed);
    let keys: Vec<i64> = (0..52).map(|_| lcg.below(65536)).collect();
    let mut data: Vec<i64> = (0..nblocks * 8).map(|_| lcg.below(256)).collect();
    for blk in 0..nblocks {
        let off = blk * 8;
        let mut x0 = data[off] | (data[off + 1] << 8);
        let mut x1 = data[off + 2] | (data[off + 3] << 8);
        let mut x2 = data[off + 4] | (data[off + 5] << 8);
        let mut x3 = data[off + 6] | (data[off + 7] << 8);
        for r in 0..8 {
            let k = r * 6;
            x0 = mul16(x0, keys[k]);
            x1 = (x1 + keys[k + 1]) & 0xFFFF;
            x2 = (x2 + keys[k + 2]) & 0xFFFF;
            x3 = mul16(x3, keys[k + 3]);
            let mut t0 = x0 ^ x2;
            let mut t1 = x1 ^ x3;
            t0 = mul16(t0, keys[k + 4]);
            t1 = (t1 + t0) & 0xFFFF;
            t1 = mul16(t1, keys[k + 5]);
            t0 = (t0 + t1) & 0xFFFF;
            x0 ^= t1;
            x2 ^= t1;
            x1 ^= t0;
            x3 ^= t0;
            std::mem::swap(&mut x1, &mut x2);
        }
        let y0 = mul16(x0, keys[48]);
        let y1 = (x2 + keys[49]) & 0xFFFF;
        let y2 = (x1 + keys[50]) & 0xFFFF;
        let y3 = mul16(x3, keys[51]);
        for (i, y) in [y0, y1, y2, y3].into_iter().enumerate() {
            data[off + 2 * i] = y & 0xFF;
            data[off + 2 * i + 1] = (y >> 8) & 0xFF;
        }
    }
    let mut acc: i64 = 0;
    for b in &data {
        acc = acc.wrapping_mul(31).wrapping_add(*b);
    }
    (acc & 0xFFFF_FFFF) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute_expect;
    use deflection_core::policy::PolicySet;

    #[test]
    fn matches_reference_baseline_and_full() {
        let inp = input(1);
        let expected = reference(&inp);
        execute_expect(&source(), &inp, &PolicySet::none(), expected);
        execute_expect(&source(), &inp, &PolicySet::full(), expected);
    }

    #[test]
    fn mul16_group_properties() {
        // mul16 implements multiplication in GF(2^16+1) with 0 ≡ 2^16.
        assert_eq!(mul16(1, 1), 1);
        assert_eq!(mul16(0, 1), 65536 & 0xFFFF); // 2^16 * 1 = 2^16 ≡ 0 repr
                                                 // Commutativity on a sample.
        let mut lcg = Lcg::new(9);
        for _ in 0..100 {
            let (a, b) = (lcg.below(65536), lcg.below(65536));
            assert_eq!(mul16(a, b), mul16(b, a));
        }
    }
}
