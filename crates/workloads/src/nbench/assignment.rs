//! ASSIGNMENT: greedy task-assignment over a cost matrix whose every
//! element is produced through a function-pointer transform table — the
//! indirect-call-heavy kernel that makes P5 expensive in Table II ("uses a
//! lot of function pointers", as the paper notes).

use super::read_ints;
use crate::{encode_ints, with_prelude, Lcg};

const BODY: &str = "
var cost: [int; 1024];
var taken: [int; 32];
var tf: [fn(int) -> int; 4];

fn t_id(x: int) -> int { return x; }
fn t_dbl(x: int) -> int { return x * 2; }
fn t_inc(x: int) -> int { return x + 7; }
fn t_mix(x: int) -> int { return (x * 3) / 2; }

fn main() -> int {
    var n: int = geti(0);
    srand(geti(1));
    tf[0] = &t_id;
    tf[1] = &t_dbl;
    tf[2] = &t_inc;
    tf[3] = &t_mix;
    var i: int = 0;
    while (i < n) {
        var j: int = 0;
        while (j < n) {
            var f: fn(int) -> int = tf[rnd(4)];
            cost[i * n + j] = f(rnd(1000));
            j = j + 1;
        }
        taken[i] = 0;
        i = i + 1;
    }
    // Greedy row-by-row assignment to the cheapest free column.
    var total: int = 0;
    i = 0;
    while (i < n) {
        var best: int = 0 - 1;
        var bestc: int = 0x7FFFFFFF;
        var j: int = 0;
        while (j < n) {
            if (taken[j] == 0 && cost[i * n + j] < bestc) {
                bestc = cost[i * n + j];
                best = j;
            }
            j = j + 1;
        }
        taken[best] = 1;
        total = total + bestc;
        i = i + 1;
    }
    return total;
}
";

/// DCL source.
#[must_use]
pub fn source() -> String {
    with_prelude(BODY)
}

/// Input: `[n, seed]` — an n×n cost matrix (n ≤ 32).
#[must_use]
pub fn input(scale: u32) -> Vec<u8> {
    encode_ints(&[(8 + 2 * scale as i64).min(32), 0x5EED_0006])
}

/// Bit-exact native reference.
#[must_use]
pub fn reference(input: &[u8]) -> u64 {
    let header = read_ints(input);
    let (n, seed) = (header[0] as usize, header[1]);
    let mut lcg = Lcg::new(seed);
    let transforms: [fn(i64) -> i64; 4] =
        [|x| x, |x| x.wrapping_mul(2), |x| x + 7, |x| x.wrapping_mul(3) / 2];
    let mut cost = vec![0i64; n * n];
    for row in cost.chunks_mut(n).take(n) {
        for c in row.iter_mut() {
            let f = transforms[lcg.below(4) as usize];
            *c = f(lcg.below(1000));
        }
    }
    let mut taken = vec![false; n];
    let mut total: i64 = 0;
    for i in 0..n {
        let mut best = usize::MAX;
        let mut bestc = 0x7FFF_FFFFi64;
        for j in 0..n {
            if !taken[j] && cost[i * n + j] < bestc {
                bestc = cost[i * n + j];
                best = j;
            }
        }
        taken[best] = true;
        total += bestc;
    }
    total as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute_expect;
    use deflection_core::policy::PolicySet;

    #[test]
    fn matches_reference_baseline_and_full() {
        let inp = input(1);
        let expected = reference(&inp);
        execute_expect(&source(), &inp, &PolicySet::none(), expected);
        execute_expect(&source(), &inp, &PolicySet::full(), expected);
    }

    #[test]
    fn cfi_level_also_matches() {
        // The function-pointer traffic must behave identically under the
        // bounds-checked CFI lowering.
        let inp = input(1);
        let expected = reference(&inp);
        execute_expect(&source(), &inp, &PolicySet::p1_p5(), expected);
    }
}
