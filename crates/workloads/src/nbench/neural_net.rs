//! NEURAL NET: a small multi-layer perceptron trained by back-propagation
//! (FPU-heavy with weight-array stores).

use super::read_ints;
use crate::{encode_ints, with_prelude, Lcg};

const BODY: &str = "
var w1: [float; 64];     // 8 inputs x 8 hidden
var w2: [float; 8];      // 8 hidden -> 1 output
var hid: [float; 8];
var sample: [float; 8];

fn act(x: float) -> float {
    // Fast rational sigmoid: 0.5 * (x / (1 + |x|)) + 0.5
    var a: float = x;
    if (a < 0.0) { a = 0.0 - a; }
    return 0.5 * (x / (1.0 + a)) + 0.5;
}

fn forward() -> float {
    var h: int = 0;
    while (h < 8) {
        var s: float = 0.0;
        var i: int = 0;
        while (i < 8) {
            s = s + w1[h * 8 + i] * sample[i];
            i = i + 1;
        }
        hid[h] = act(s);
        h = h + 1;
    }
    var o: float = 0.0;
    h = 0;
    while (h < 8) { o = o + w2[h] * hid[h]; h = h + 1; }
    return act(o);
}

fn main() -> int {
    var epochs: int = geti(0);
    var samples: int = geti(1);
    srand(geti(2));
    var i: int = 0;
    while (i < 64) { w1[i] = itof(rnd(200) - 100) / 100.0; i = i + 1; }
    i = 0;
    while (i < 8) { w2[i] = itof(rnd(200) - 100) / 100.0; i = i + 1; }

    var lr: float = 0.2;
    var err: float = 0.0;
    var e: int = 0;
    while (e < epochs) {
        err = 0.0;
        srand(geti(3));
        var s: int = 0;
        while (s < samples) {
            var ones: int = 0;
            i = 0;
            while (i < 8) {
                var bit: int = rnd(2);
                ones = ones + bit;
                sample[i] = itof(bit * 2 - 1);
                i = i + 1;
            }
            var target: float = itof(ones & 1);
            var out: float = forward();
            var delta: float = (out - target) * out * (1.0 - out);
            err = err + (out - target) * (out - target);
            // Update the output layer, then the hidden layer.
            var h: int = 0;
            while (h < 8) {
                var dh: float = delta * w2[h] * hid[h] * (1.0 - hid[h]);
                w2[h] = w2[h] - lr * delta * hid[h];
                i = 0;
                while (i < 8) {
                    w1[h * 8 + i] = w1[h * 8 + i] - lr * dh * sample[i];
                    i = i + 1;
                }
                h = h + 1;
            }
            s = s + 1;
        }
        e = e + 1;
    }
    return ftoi(err * 1000000.0) & 0xFFFFFFFF;
}
";

/// DCL source.
#[must_use]
pub fn source() -> String {
    with_prelude(BODY)
}

/// Input: `[epochs, samples, weight_seed, data_seed]`.
#[must_use]
pub fn input(scale: u32) -> Vec<u8> {
    encode_ints(&[2 * scale as i64, 12, 0x5EED_0009, 0x5EED_000A])
}

fn act(x: f64) -> f64 {
    let a = if x < 0.0 { 0.0 - x } else { x };
    0.5 * (x / (1.0 + a)) + 0.5
}

/// Bit-exact native reference.
#[must_use]
pub fn reference(input: &[u8]) -> u64 {
    let header = read_ints(input);
    let (epochs, samples, wseed, dseed) = (header[0], header[1], header[2], header[3]);
    let mut lcg = Lcg::new(wseed);
    let mut w1: Vec<f64> = (0..64).map(|_| (lcg.below(200) - 100) as f64 / 100.0).collect();
    let mut w2: Vec<f64> = (0..8).map(|_| (lcg.below(200) - 100) as f64 / 100.0).collect();
    let lr = 0.2;
    let mut err = 0.0;
    for _ in 0..epochs {
        err = 0.0;
        let mut data = Lcg::new(dseed);
        for _ in 0..samples {
            let mut sample = [0.0f64; 8];
            let mut ones = 0i64;
            for s in &mut sample {
                let bit = data.below(2);
                ones += bit;
                *s = (bit * 2 - 1) as f64;
            }
            let target = (ones & 1) as f64;
            // Forward.
            let mut hid = [0.0f64; 8];
            for h in 0..8 {
                let mut s = 0.0;
                for i in 0..8 {
                    s += w1[h * 8 + i] * sample[i];
                }
                hid[h] = act(s);
            }
            let mut o = 0.0;
            for h in 0..8 {
                o += w2[h] * hid[h];
            }
            let out = act(o);
            let delta = (out - target) * out * (1.0 - out);
            err += (out - target) * (out - target);
            for h in 0..8 {
                let dh = delta * w2[h] * hid[h] * (1.0 - hid[h]);
                w2[h] -= lr * delta * hid[h];
                for i in 0..8 {
                    w1[h * 8 + i] -= lr * dh * sample[i];
                }
            }
        }
    }
    (((err * 1_000_000.0) as i64) & 0xFFFF_FFFF) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute_expect;
    use deflection_core::policy::PolicySet;

    #[test]
    fn matches_reference_baseline_and_full() {
        let inp = input(1);
        let expected = reference(&inp);
        execute_expect(&source(), &inp, &PolicySet::none(), expected);
        execute_expect(&source(), &inp, &PolicySet::full(), expected);
    }

    #[test]
    fn training_reduces_error() {
        let short = reference(&encode_ints(&[1, 12, 0x5EED_0009, 0x5EED_000A]));
        let long = reference(&encode_ints(&[40, 12, 0x5EED_0009, 0x5EED_000A]));
        assert!(long < short, "after training: {long} vs initial {short}");
    }
}
