//! The ten nBench kernels of the paper's Table II, re-implemented in DCL.
//!
//! Each kernel preserves the *operation mix* that drives its column in the
//! table: NUMERIC SORT and STRING SORT are store-heavy; FP EMULATION is
//! almost pure register arithmetic (lowest P1 cost, as the paper observes);
//! ASSIGNMENT routes every matrix element through function-pointer
//! callbacks (highest P5 cost, "uses a lot of function pointers");
//! FOURIER / NEURAL NET / LU DECOMPOSITION exercise the FPU.
//!
//! Every kernel ships with a bit-exact Rust reference; tests compare exit
//! values through the full pipeline at the baseline and full policy levels.

pub mod assignment;
pub mod bitfield;
pub mod fourier;
pub mod fp_emu;
pub mod huffman;
pub mod idea;
pub mod lu;
pub mod neural_net;
pub mod numeric_sort;
pub mod string_sort;

/// A Table II kernel: DCL source, input generator and native reference.
#[derive(Debug, Clone, Copy)]
pub struct Kernel {
    /// Name as printed in Table II.
    pub name: &'static str,
    /// DCL source (prelude included).
    pub source: fn() -> String,
    /// Input bytes for a given scale factor (1 = test size, larger for
    /// benches).
    pub input: fn(u32) -> Vec<u8>,
    /// Bit-exact native implementation.
    pub reference: fn(&[u8]) -> u64,
}

/// All ten kernels in Table II order.
#[must_use]
pub fn all() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "NUMERIC SORT",
            source: numeric_sort::source,
            input: numeric_sort::input,
            reference: numeric_sort::reference,
        },
        Kernel {
            name: "STRING SORT",
            source: string_sort::source,
            input: string_sort::input,
            reference: string_sort::reference,
        },
        Kernel {
            name: "BITFIELD",
            source: bitfield::source,
            input: bitfield::input,
            reference: bitfield::reference,
        },
        Kernel {
            name: "FP EMULATION",
            source: fp_emu::source,
            input: fp_emu::input,
            reference: fp_emu::reference,
        },
        Kernel {
            name: "FOURIER",
            source: fourier::source,
            input: fourier::input,
            reference: fourier::reference,
        },
        Kernel {
            name: "ASSIGNMENT",
            source: assignment::source,
            input: assignment::input,
            reference: assignment::reference,
        },
        Kernel {
            name: "IDEA",
            source: idea::source,
            input: idea::input,
            reference: idea::reference,
        },
        Kernel {
            name: "HUFFMAN",
            source: huffman::source,
            input: huffman::input,
            reference: huffman::reference,
        },
        Kernel {
            name: "NEURAL NET",
            source: neural_net::source,
            input: neural_net::input,
            reference: neural_net::reference,
        },
        Kernel {
            name: "LU DECOMPOSITION",
            source: lu::source,
            input: lu::input,
            reference: lu::reference,
        },
    ]
}

/// Reads the little-endian integer header the DCL prelude's `geti` sees.
#[must_use]
pub fn read_ints(input: &[u8]) -> Vec<i64> {
    input.chunks_exact(8).map(|c| i64::from_le_bytes(c.try_into().expect("chunked"))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_ten_kernels() {
        let kernels = all();
        assert_eq!(kernels.len(), 10);
        assert_eq!(kernels[0].name, "NUMERIC SORT");
        assert_eq!(kernels[9].name, "LU DECOMPOSITION");
    }

    #[test]
    fn read_ints_roundtrip() {
        let bytes = crate::encode_ints(&[1, -5, i64::MAX]);
        assert_eq!(read_ints(&bytes), vec![1, -5, i64::MAX]);
    }
}
