//! FP EMULATION: software floating point built from integer operations.
//!
//! Almost all work happens in registers and locals — very few array stores —
//! which is why this kernel shows the *lowest* P1 overhead in Table II
//! (+0.20% in the paper).

use super::read_ints;
use crate::{encode_ints, with_prelude, Lcg};

const BODY: &str = "
fn fpack(s: int, e: int, m: int) -> int {
    return (s << 31) | (e << 23) | (m & 0x7FFFFF);
}

fn fmulx(a: int, b: int) -> int {
    var sa: int = (a >> 31) & 1;
    var sb: int = (b >> 31) & 1;
    var ea: int = (a >> 23) & 0xFF;
    var eb: int = (b >> 23) & 0xFF;
    var ma: int = (a & 0x7FFFFF) | 0x800000;
    var mb: int = (b & 0x7FFFFF) | 0x800000;
    var m: int = (ma * mb) >> 23;
    var e: int = ea + eb - 127;
    while (m >= 0x1000000) { m = m >> 1; e = e + 1; }
    if (e > 254) { e = 254; }
    if (e < 1) { e = 1; }
    return ((sa ^ sb) << 31) | (e << 23) | (m & 0x7FFFFF);
}

fn faddx(a: int, b: int) -> int {
    var ea: int = (a >> 23) & 0xFF;
    var eb: int = (b >> 23) & 0xFF;
    if (eb > ea) {
        var t: int = a; a = b; b = t;
        t = ea; ea = eb; eb = t;
    }
    var ma: int = (a & 0x7FFFFF) | 0x800000;
    var mb: int = (b & 0x7FFFFF) | 0x800000;
    var d: int = ea - eb;
    if (d > 24) { return a; }
    mb = mb >> d;
    var m: int = ma + mb;
    var e: int = ea;
    while (m >= 0x1000000) { m = m >> 1; e = e + 1; }
    if (e > 254) { e = 254; }
    return (((a >> 31) & 1) << 31) | (e << 23) | (m & 0x7FFFFF);
}

fn main() -> int {
    var n: int = geti(0);
    srand(geti(1));
    var acc: int = fpack(0, 127, 0);
    var i: int = 0;
    while (i < n) {
        var r: int = fpack(rnd(2), 120 + rnd(14), rnd(0x800000));
        if (rnd(2) == 0) { acc = fmulx(acc, r); }
        else { acc = faddx(acc, r); }
        i = i + 1;
    }
    return acc & 0xFFFFFFFF;
}
";

/// DCL source.
#[must_use]
pub fn source() -> String {
    with_prelude(BODY)
}

/// Input: `[n, seed]`.
#[must_use]
pub fn input(scale: u32) -> Vec<u8> {
    encode_ints(&[250 * scale as i64, 0x5EED_0004])
}

fn fpack(s: i64, e: i64, m: i64) -> i64 {
    (s << 31) | (e << 23) | (m & 0x7F_FFFF)
}

fn fmulx(a: i64, b: i64) -> i64 {
    let (sa, sb) = ((a >> 31) & 1, (b >> 31) & 1);
    let (ea, eb) = ((a >> 23) & 0xFF, (b >> 23) & 0xFF);
    let ma = (a & 0x7F_FFFF) | 0x80_0000;
    let mb = (b & 0x7F_FFFF) | 0x80_0000;
    let mut m = ma.wrapping_mul(mb) >> 23;
    let mut e = ea + eb - 127;
    while m >= 0x100_0000 {
        m >>= 1;
        e += 1;
    }
    e = e.clamp(1, 254);
    ((sa ^ sb) << 31) | (e << 23) | (m & 0x7F_FFFF)
}

fn faddx(mut a: i64, mut b: i64) -> i64 {
    let mut ea = (a >> 23) & 0xFF;
    let mut eb = (b >> 23) & 0xFF;
    if eb > ea {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut ea, &mut eb);
    }
    let ma = (a & 0x7F_FFFF) | 0x80_0000;
    let mut mb = (b & 0x7F_FFFF) | 0x80_0000;
    let d = ea - eb;
    if d > 24 {
        return a;
    }
    mb >>= d;
    let mut m = ma + mb;
    let mut e = ea;
    while m >= 0x100_0000 {
        m >>= 1;
        e += 1;
    }
    if e > 254 {
        e = 254;
    }
    (((a >> 31) & 1) << 31) | (e << 23) | (m & 0x7F_FFFF)
}

/// Bit-exact native reference.
#[must_use]
pub fn reference(input: &[u8]) -> u64 {
    let header = read_ints(input);
    let (n, seed) = (header[0], header[1]);
    let mut lcg = Lcg::new(seed);
    let mut acc = fpack(0, 127, 0);
    for _ in 0..n {
        let r = fpack(lcg.below(2), 120 + lcg.below(14), lcg.below(0x80_0000));
        if lcg.below(2) == 0 {
            acc = fmulx(acc, r);
        } else {
            acc = faddx(acc, r);
        }
    }
    (acc & 0xFFFF_FFFF) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute_expect;
    use deflection_core::policy::PolicySet;

    #[test]
    fn matches_reference_baseline_and_full() {
        let inp = input(1);
        let expected = reference(&inp);
        execute_expect(&source(), &inp, &PolicySet::none(), expected);
        execute_expect(&source(), &inp, &PolicySet::full(), expected);
    }

    #[test]
    fn soft_float_identities() {
        // 1.0 * 1.0 = 1.0 in the packed format.
        let one = fpack(0, 127, 0);
        assert_eq!(fmulx(one, one), one);
        // Adding a tiny value to a huge one returns the huge one.
        let big = fpack(0, 200, 0);
        let tiny = fpack(0, 10, 0);
        assert_eq!(faddx(big, tiny), big);
    }
}
