//! STRING SORT: selection sort of fixed-width byte strings (byte-store
//! heavy — the second-highest P1 cost in Table II).

use super::read_ints;
use crate::{encode_ints, with_prelude, Lcg};

const BODY: &str = "
var pool: [byte; 16384];

fn sless(a: int, b: int) -> int {
    var i: int = 0;
    while (i < 16) {
        var ca: int = pool[a * 16 + i];
        var cb: int = pool[b * 16 + i];
        if (ca < cb) { return 1; }
        if (ca > cb) { return 0; }
        i = i + 1;
    }
    return 0;
}

fn sswap(a: int, b: int) {
    var i: int = 0;
    while (i < 16) {
        var t: int = pool[a * 16 + i];
        pool[a * 16 + i] = pool[b * 16 + i];
        pool[b * 16 + i] = t;
        i = i + 1;
    }
}

fn main() -> int {
    var n: int = geti(0);
    srand(geti(1));
    var i: int = 0;
    while (i < n * 16) { pool[i] = 97 + rnd(26); i = i + 1; }
    i = 0;
    while (i < n - 1) {
        var min: int = i;
        var j: int = i + 1;
        while (j < n) {
            if (sless(j, min)) { min = j; }
            j = j + 1;
        }
        if (min != i) { sswap(i, min); }
        i = i + 1;
    }
    var acc: int = 0;
    i = 0;
    while (i < n) {
        acc = acc * 131 + pool[i * 16] * 7 + pool[i * 16 + 15];
        i = i + 1;
    }
    return acc & 0xFFFFFFFF;
}
";

/// DCL source.
#[must_use]
pub fn source() -> String {
    with_prelude(BODY)
}

/// Input: `[n, seed]` — n 16-byte strings.
#[must_use]
pub fn input(scale: u32) -> Vec<u8> {
    encode_ints(&[(40 * scale as i64).min(1024), 0x5EED_0002])
}

/// Bit-exact native reference.
#[must_use]
pub fn reference(input: &[u8]) -> u64 {
    let header = read_ints(input);
    let (n, seed) = (header[0] as usize, header[1]);
    let mut lcg = Lcg::new(seed);
    let mut pool: Vec<[u8; 16]> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut s = [0u8; 16];
        for b in &mut s {
            *b = (97 + lcg.below(26)) as u8;
        }
        pool.push(s);
    }
    pool.sort_unstable();
    let mut acc: i64 = 0;
    for s in &pool {
        acc = acc
            .wrapping_mul(131)
            .wrapping_add((s[0] as i64).wrapping_mul(7))
            .wrapping_add(s[15] as i64);
    }
    (acc & 0xFFFF_FFFF) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute_expect;
    use deflection_core::policy::PolicySet;

    #[test]
    fn matches_reference_baseline_and_full() {
        let inp = input(1);
        let expected = reference(&inp);
        execute_expect(&source(), &inp, &PolicySet::none(), expected);
        execute_expect(&source(), &inp, &PolicySet::full(), expected);
    }
}
