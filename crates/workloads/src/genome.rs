//! Sensitive genome data analysis (paper Section VI-B, Fig. 7 and Fig. 8):
//! Needleman–Wunsch global alignment of two nucleotide sequences and FASTA
//! sequence generation.
//!
//! The paper aligns human sequences from the 1000 Genomes project; we
//! substitute seeded synthetic nucleotide strings (the DP cost depends only
//! on sequence *length*, which is the figure's x-axis).

use crate::nbench::read_ints;
use crate::{encode_ints, with_prelude, Lcg};

/// Needleman–Wunsch alignment. Input: `[n, m, seed]`; the two sequences are
/// derived from the seed (n and m nucleotides). Scoring: match +2,
/// mismatch −1, gap −2. Exit value: the alignment score (offset so it is
/// non-negative) combined with a traceback checksum.
const NW_BODY: &str = "
var seqa: [byte; 2048];
var seqb: [byte; 2048];
var prev: [int; 2049];
var cur: [int; 2049];
var trace: [byte; 1048576];   // (n+1) x (m+1) traceback, N^2 memory

fn maxi(a: int, b: int) -> int {
    if (a > b) { return a; }
    return b;
}

fn main() -> int {
    var n: int = geti(0);
    var m: int = geti(1);
    srand(geti(2));
    var i: int = 0;
    while (i < n) { seqa[i] = rnd(4); i = i + 1; }
    i = 0;
    while (i < m) { seqb[i] = rnd(4); i = i + 1; }

    var cols: int = m + 1;
    var j: int = 0;
    while (j <= m) {
        prev[j] = 0 - 2 * j;
        trace[j] = 1;
        j = j + 1;
    }
    i = 1;
    while (i <= n) {
        cur[0] = 0 - 2 * i;
        trace[i * cols] = 2;
        j = 1;
        while (j <= m) {
            var sub: int = 0 - 1;
            if (seqa[i - 1] == seqb[j - 1]) { sub = 2; }
            var diag: int = prev[j - 1] + sub;
            var up: int = prev[j] - 2;
            var lft: int = cur[j - 1] - 2;
            var best: int = maxi(diag, maxi(up, lft));
            cur[j] = best;
            if (best == diag) { trace[i * cols + j] = 0; }
            else if (best == up) { trace[i * cols + j] = 2; }
            else { trace[i * cols + j] = 1; }
            j = j + 1;
        }
        j = 0;
        while (j <= m) { prev[j] = cur[j]; j = j + 1; }
        i = i + 1;
    }

    // Walk the traceback to checksum the alignment path.
    var acc: int = 0;
    var ti: int = n;
    var tj: int = m;
    while (ti > 0 || tj > 0) {
        var t: int = trace[ti * cols + tj];
        acc = acc * 3 + t + 1;
        if (t == 0) { ti = ti - 1; tj = tj - 1; }
        else if (t == 2) { ti = ti - 1; }
        else { tj = tj - 1; }
        acc = acc & 0xFFFFFFF;
    }
    return ((prev[m] + 1000000) << 28) | acc;
}
";

/// DCL source of the alignment service.
#[must_use]
pub fn nw_source() -> String {
    with_prelude(NW_BODY)
}

/// Input for an alignment of two sequences of `len` nucleotides each.
#[must_use]
pub fn nw_input(len: u32) -> Vec<u8> {
    encode_ints(&[len as i64, len as i64, 0x6E0E_0001])
}

/// Bit-exact native reference for the alignment.
#[must_use]
pub fn nw_reference(input: &[u8]) -> u64 {
    let header = read_ints(input);
    let (n, m, seed) = (header[0] as usize, header[1] as usize, header[2]);
    let mut lcg = Lcg::new(seed);
    let seqa: Vec<i64> = (0..n).map(|_| lcg.below(4)).collect();
    let seqb: Vec<i64> = (0..m).map(|_| lcg.below(4)).collect();
    let cols = m + 1;
    let mut prev: Vec<i64> = (0..=m as i64).map(|j| -2 * j).collect();
    let mut cur = vec![0i64; m + 1];
    let mut trace = vec![0u8; (n + 1) * cols];
    for t in trace.iter_mut().take(m + 1) {
        *t = 1;
    }
    for i in 1..=n {
        cur[0] = -2 * i as i64;
        trace[i * cols] = 2;
        for j in 1..=m {
            let sub = if seqa[i - 1] == seqb[j - 1] { 2 } else { -1 };
            let diag = prev[j - 1] + sub;
            let up = prev[j] - 2;
            let lft = cur[j - 1] - 2;
            let best = diag.max(up.max(lft));
            cur[j] = best;
            trace[i * cols + j] = if best == diag {
                0
            } else if best == up {
                2
            } else {
                1
            };
        }
        prev.copy_from_slice(&cur);
    }
    let mut acc: i64 = 0;
    let (mut ti, mut tj) = (n, m);
    while ti > 0 || tj > 0 {
        let t = trace[ti * cols + tj] as i64;
        acc = acc * 3 + t + 1;
        match t {
            0 => {
                ti -= 1;
                tj -= 1;
            }
            2 => ti -= 1,
            _ => tj -= 1,
        }
        acc &= 0xFFF_FFFF;
    }
    (((prev[m] + 1_000_000) << 28) | acc) as u64
}

/// FASTA sequence generation (Fig. 8). Input: `[count, seed]`; the program
/// writes `count` nucleotide letters into the output buffer in chunks and
/// `send`s each chunk (exercising the P0 padded channel), returning a
/// checksum.
const SEQGEN_BODY: &str = "
fn base(code: int) -> int {
    if (code == 0) { return 'A'; }
    if (code == 1) { return 'C'; }
    if (code == 2) { return 'G'; }
    return 'T';
}

fn main() -> int {
    var count: int = geti(0);
    srand(geti(1));
    var acc: int = 0;
    var chunk: int = 0;
    var produced: int = 0;
    while (produced < count) {
        var b: int = base(rnd(4));
        output_byte(chunk, b);
        acc = acc * 31 + b;
        acc = acc & 0xFFFFFFF;
        chunk = chunk + 1;
        produced = produced + 1;
        if (chunk == 200) {
            send(chunk);
            chunk = 0;
        }
    }
    if (chunk > 0) { send(chunk); }
    return acc;
}
";

/// DCL source of the sequence generator.
#[must_use]
pub fn seqgen_source() -> String {
    with_prelude(SEQGEN_BODY)
}

/// Input for generating `count` nucleotides.
#[must_use]
pub fn seqgen_input(count: u64) -> Vec<u8> {
    encode_ints(&[count as i64, 0x6E0E_0002])
}

/// Bit-exact reference checksum plus the expected plaintext records.
#[must_use]
pub fn seqgen_reference(input: &[u8]) -> (u64, Vec<Vec<u8>>) {
    let header = read_ints(input);
    let (count, seed) = (header[0], header[1]);
    let mut lcg = Lcg::new(seed);
    let mut acc: i64 = 0;
    let mut records = Vec::new();
    let mut chunk = Vec::new();
    for _ in 0..count {
        let b = match lcg.below(4) {
            0 => b'A',
            1 => b'C',
            2 => b'G',
            _ => b'T',
        };
        chunk.push(b);
        acc = (acc * 31 + b as i64) & 0xFFF_FFFF;
        if chunk.len() == 200 {
            records.push(std::mem::take(&mut chunk));
        }
    }
    if !chunk.is_empty() {
        records.push(chunk);
    }
    (acc as u64, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{execute_expect, Prepared};
    use deflection_core::policy::PolicySet;
    use deflection_core::runtime::open_record;
    use deflection_sgx_sim::layout::MemConfig;
    use deflection_sgx_sim::vm::RunExit;

    #[test]
    fn alignment_matches_reference() {
        let inp = nw_input(24);
        let expected = nw_reference(&inp);
        execute_expect(&nw_source(), &inp, &PolicySet::none(), expected);
        execute_expect(&nw_source(), &inp, &PolicySet::full(), expected);
    }

    #[test]
    fn alignment_score_within_theoretical_bounds() {
        // Score of two length-n sequences is at most 2n (all matches) and
        // at least -4n (all gaps on both sides).
        let n = 30i64;
        let exit = nw_reference(&nw_input(n as u32));
        let score = (exit >> 28) as i64 - 1_000_000;
        assert!(score <= 2 * n && score >= -4 * n, "score {score}");
        // Random 4-letter sequences of equal length almost surely score
        // above the everything-gapped floor.
        assert!(score > -2 * n);
    }

    #[test]
    fn seqgen_matches_reference_and_seals_chunks() {
        let inp = seqgen_input(450);
        let (expected, records) = seqgen_reference(&inp);
        let mut p = Prepared::new(&seqgen_source(), &PolicySet::full(), MemConfig::small());
        p.input(&inp);
        let report = p.run(crate::runner::DEFAULT_FUEL);
        assert_eq!(report.exit, RunExit::Halted { exit: expected });
        assert_eq!(report.records.len(), records.len()); // 3 chunks: 200+200+50
        for (i, (sealed, plain)) in report.records.iter().zip(&records).enumerate() {
            let opened = open_record(&p.owner_key(), 0, i as u64, sealed).unwrap();
            assert_eq!(&opened, plain, "record {i}");
        }
    }
}
