//! # deflection-workloads
//!
//! The evaluation programs of the DEFLECTION reproduction, written in DCL
//! (the code-producer language) with **bit-exact native Rust reference
//! implementations**:
//!
//! * [`nbench`] — the ten nBench kernels of Table II (numeric sort, string
//!   sort, bitfield, FP emulation, Fourier, assignment, IDEA, Huffman,
//!   neural net, LU decomposition), re-implemented to preserve each
//!   kernel's operation mix (store density, indirect branches, FP share);
//! * [`genome`] — Needleman–Wunsch alignment (Fig. 7) and FASTA sequence
//!   generation (Fig. 8);
//! * [`credit`] — the BP-neural-network credit scorer (Fig. 9);
//! * [`server`] — the HTTPS-style request handler behind Fig. 10/11;
//! * [`kv`] — a stateful KV/session service whose store lives in enclave
//!   globals across requests (the admission-layer load-mix outlier).
//!
//! Every workload couples a DCL source string with a Rust function
//! computing the same result from the same input bytes; the test suite runs
//! each program through the full produce → install → run pipeline and
//! compares exit values, which validates the compiler, the instrumentation,
//! the verifier and the VM end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod credit;
pub mod genome;
pub mod kv;
pub mod nbench;
pub mod runner;
pub mod server;

/// The DCL prelude shared by all workloads: little-endian integer input
/// decoding and a 64-bit LCG whose constants the Rust references mirror
/// exactly.
pub const PRELUDE: &str = "
var __rng: int;

fn srand(s: int) { __rng = s; }

// Deterministic 64-bit LCG; identical constants in the Rust references.
fn rnd(n: int) -> int {
    __rng = __rng * 6364136223846793005 + 1442695040888963407;
    return ((__rng >> 33) & 0x7FFFFFFF) % n;
}

// Reads the idx-th little-endian 64-bit integer from the input buffer.
fn geti(idx: int) -> int { return input_word(idx); }
";

/// Rust mirror of the DCL LCG (for reference implementations).
#[derive(Debug, Clone)]
pub struct Lcg {
    state: i64,
}

impl Lcg {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: i64) -> Self {
        Lcg { state: seed }
    }

    /// `rnd(n)` of the DCL prelude.
    #[must_use]
    pub fn below(&mut self, n: i64) -> i64 {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((self.state >> 33) & 0x7FFF_FFFF) % n
    }
}

/// Encodes a slice of integers as the little-endian input layout `geti`
/// reads.
#[must_use]
pub fn encode_ints(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Joins the prelude with a workload body.
#[must_use]
pub fn with_prelude(body: &str) -> String {
    format!("{PRELUDE}\n{body}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute_expect;
    use deflection_core::policy::PolicySet;

    #[test]
    fn lcg_matches_between_rust_and_dcl() {
        let body = "
            fn main() -> int {
                srand(geti(0));
                var acc: int = 0;
                var i: int = 0;
                while (i < 10) { acc = acc * 31 + rnd(1000); i = i + 1; }
                return acc & 0xFFFFFFFF;
            }
        ";
        let mut lcg = Lcg::new(12345);
        let mut acc: i64 = 0;
        for _ in 0..10 {
            acc = acc.wrapping_mul(31).wrapping_add(lcg.below(1000));
        }
        let expected = (acc & 0xFFFF_FFFF) as u64;
        let src = with_prelude(body);
        execute_expect(&src, &encode_ints(&[12345]), &PolicySet::none(), expected);
        execute_expect(&src, &encode_ints(&[12345]), &PolicySet::full(), expected);
    }

    #[test]
    fn geti_reads_little_endian() {
        let body = "fn main() -> int { return geti(1) - geti(0); }";
        let src = with_prelude(body);
        execute_expect(&src, &encode_ints(&[100, 142]), &PolicySet::none(), 42);
    }
}
