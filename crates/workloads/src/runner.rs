//! Convenience harness: compile a DCL workload, install it in a bootstrap
//! enclave and run it — the path every test and bench shares.

use deflection_core::policy::{Manifest, PolicySet};
use deflection_core::producer::produce;
use deflection_core::runtime::{BootstrapEnclave, RunReport};
use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};
use deflection_sgx_sim::vm::RunExit;

/// Default instruction budget for workload runs.
pub const DEFAULT_FUEL: u64 = 2_000_000_000;

/// A prepared (compiled + installed) workload ready to run repeatedly.
#[derive(Debug)]
pub struct Prepared {
    enclave: BootstrapEnclave,
    owner_key: [u8; 32],
}

impl Prepared {
    /// Compiles `source` under `policy` and installs it in a fresh enclave
    /// with `config`-sized memory.
    ///
    /// # Panics
    ///
    /// Panics on compile or install failure — workload sources are trusted
    /// fixtures of this crate.
    #[must_use]
    pub fn new(source: &str, policy: &PolicySet, config: MemConfig) -> Self {
        let mut manifest = Manifest::ccaas();
        manifest.policy = *policy;
        Self::with_manifest(source, manifest, config)
    }

    /// As [`Prepared::new`] with a custom manifest.
    ///
    /// # Panics
    ///
    /// Panics on compile or install failure.
    #[must_use]
    pub fn with_manifest(source: &str, manifest: Manifest, config: MemConfig) -> Self {
        let policy = manifest.policy;
        let binary = produce(source, &policy)
            .unwrap_or_else(|e| panic!("workload must compile: {e}"))
            .serialize();
        let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(config), manifest);
        let owner_key = [0x42u8; 32];
        enclave.set_owner_session(owner_key);
        enclave.install_plain(&binary).unwrap_or_else(|e| panic!("workload must install: {e}"));
        Prepared { enclave, owner_key }
    }

    /// Provides an input message (first call fills the input buffer).
    ///
    /// # Panics
    ///
    /// Panics if the enclave rejects the input (cannot happen after a
    /// successful install).
    pub fn input(&mut self, data: &[u8]) {
        self.enclave.provide_input(data).expect("installed");
    }

    /// Runs from the entry and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if no binary is installed (prevented by construction).
    pub fn run(&mut self, fuel: u64) -> RunReport {
        self.enclave.run(fuel).expect("installed")
    }

    /// The data owner's session key (to open sealed records in tests).
    #[must_use]
    pub fn owner_key(&self) -> [u8; 32] {
        self.owner_key
    }

    /// Mutable access to the underlying enclave (AEX schedules, attacker
    /// toggles).
    pub fn enclave_mut(&mut self) -> &mut BootstrapEnclave {
        &mut self.enclave
    }
}

/// One-shot execution: returns the exit value, panicking on any non-halt
/// outcome.
///
/// # Panics
///
/// Panics when the program faults, aborts or runs out of fuel.
#[must_use]
pub fn execute(source: &str, input: &[u8], policy: &PolicySet) -> u64 {
    let mut prepared = Prepared::new(source, policy, MemConfig::small());
    if !input.is_empty() {
        prepared.input(input);
    }
    let report = prepared.run(DEFAULT_FUEL);
    match report.exit {
        RunExit::Halted { exit } => exit,
        other => panic!("workload did not halt cleanly: {other:?}"),
    }
}

/// Asserts a workload produces `expected` under `policy`.
///
/// # Panics
///
/// Panics on mismatch or abnormal exit.
pub fn execute_expect(source: &str, input: &[u8], policy: &PolicySet, expected: u64) {
    let got = execute(source, input, policy);
    assert_eq!(got, expected, "workload exit value mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_execute() {
        assert_eq!(execute("fn main() -> int { return 9; }", b"", &PolicySet::none()), 9);
    }

    #[test]
    fn prepared_is_reusable() {
        let src = "
            var counter: int;
            fn main() -> int { counter = counter + 1; return counter; }
        ";
        let mut p = Prepared::new(src, &PolicySet::p1(), MemConfig::small());
        assert_eq!(p.run(1_000_000).exit.exit_value(), Some(1));
        // Globals persist across runs (memory is not reset).
        assert_eq!(p.run(1_000_000).exit.exit_value(), Some(2));
    }

    #[test]
    #[should_panic(expected = "did not halt")]
    fn fuel_exhaustion_panics_in_execute() {
        let src = "fn main() -> int { while (1) { } return 0; }";
        let mut p = Prepared::new(src, &PolicySet::none(), MemConfig::small());
        let report = p.run(1000);
        assert_eq!(report.exit, RunExit::OutOfFuel);
        // And the one-shot wrapper panics:
        let _ = execute(src, b"", &PolicySet::none());
    }
}
