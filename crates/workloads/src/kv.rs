//! A stateful KV/session service — the workload shaped unlike the others.
//!
//! Every other workload is a pure function of its request bytes; this one
//! carries **session state across requests**: the store lives in DCL
//! globals, which persist for the lifetime of the enclave instance (runs
//! on the same worker observe earlier runs' writes; a respawned or
//! different worker starts empty — exactly the isolation the
//! `workers_are_isolated` pool test pins down). Each GET stages its
//! result into the output buffer and `send`s fixed 64-byte records, so a
//! sustained session exercises the P0 per-run budget, the lifetime
//! output ledger and the audit ring the way a long-lived service does.
//!
//! The Rust mirror is [`KvSession`]: replaying the same request sequence
//! through [`KvSession::apply`] yields bit-exact per-request checksums
//! for a single enclave instance serving that sequence in order.

use crate::nbench::read_ints;
use crate::{encode_ints, with_prelude};

/// Maximum distinct keys the in-enclave store holds (global array size).
pub const STORE_CAP: usize = 256;

/// Opcode for "store `val` under `key`".
pub const OP_PUT: i64 = 0;
/// Opcode for "look `key` up and emit the value (or -1) as output".
pub const OP_GET: i64 = 1;

/// Session handler. Input: `[n_ops, (op, key, val) × n_ops]`. State
/// (store and op counter) lives in globals and survives across runs on
/// the same instance. PUTs insert-or-update; GETs fold the found value
/// (or -1) into the checksum and stage it for sending in 64-byte
/// records. Returns a checksum over this request's ops mixed with the
/// session-lifetime op counter, so identical requests at different
/// session positions produce different exits.
const BODY: &str = "
var kv_keys: [int; 256];
var kv_vals: [int; 256];
var kv_len: int;
var kv_ops: int;

fn kv_find(key: int) -> int {
    var i: int = 0;
    while (i < kv_len) {
        if (kv_keys[i] == key) { return i; }
        i = i + 1;
    }
    return 0 - 1;
}

fn main() -> int {
    var n: int = geti(0);
    var acc: int = 0;
    var widx: int = 0;
    var j: int = 0;
    while (j < n) {
        var op: int = geti(1 + j * 3);
        var key: int = geti(2 + j * 3);
        var val: int = geti(3 + j * 3);
        var at: int = kv_find(key);
        if (op == 0) {
            if (at < 0) {
                if (kv_len < 256) {
                    kv_keys[kv_len] = key;
                    kv_vals[kv_len] = val;
                    kv_len = kv_len + 1;
                }
            } else {
                kv_vals[at] = val;
            }
            acc = (acc * 31 + key + val) & 0xFFFFFFF;
        } else {
            var got: int = 0 - 1;
            if (at >= 0) { got = kv_vals[at]; }
            acc = (acc * 31 + got) & 0xFFFFFFF;
            output_word(widx, got);
            widx = widx + 1;
            if (widx == 8) {
                send(64);
                widx = 0;
            }
        }
        kv_ops = kv_ops + 1;
        j = j + 1;
    }
    if (widx > 0) { send(widx * 8); }
    return (acc * 31 + kv_ops) & 0xFFFFFFF;
}
";

/// DCL source of the session handler.
#[must_use]
pub fn source() -> String {
    with_prelude(BODY)
}

/// Encodes one request from `(op, key, val)` triples.
#[must_use]
pub fn request(ops: &[(i64, i64, i64)]) -> Vec<u8> {
    let mut ints = Vec::with_capacity(1 + ops.len() * 3);
    ints.push(ops.len() as i64);
    for &(op, key, val) in ops {
        ints.push(op);
        ints.push(key);
        ints.push(val);
    }
    encode_ints(&ints)
}

/// A deterministic mixed session for the load generator: request `i` of a
/// session seeded with `seed` PUTs a couple of keys then GETs a mix of
/// hot and cold ones, touching at most [`STORE_CAP`] distinct keys.
#[must_use]
pub fn session_request(seed: i64, i: i64) -> Vec<u8> {
    let k = |x: i64| (seed.wrapping_mul(131).wrapping_add(x)) & 0x7F;
    request(&[
        (OP_PUT, k(i), i.wrapping_mul(97)),
        (OP_PUT, k(i + 1), i.wrapping_mul(89).wrapping_add(1)),
        (OP_GET, k(i), 0),
        (OP_GET, k(i.wrapping_sub(3)), 0),
        (OP_GET, 0x7FFF, 0), // always-missing key
    ])
}

/// Bit-exact Rust mirror of the in-enclave session state. One
/// `KvSession` corresponds to one enclave instance; [`KvSession::apply`]
/// corresponds to one run on it, in order.
#[derive(Debug, Clone, Default)]
pub struct KvSession {
    keys: Vec<i64>,
    vals: Vec<i64>,
    ops: i64,
}

impl KvSession {
    /// A fresh session (matches a freshly spawned enclave's zeroed
    /// globals).
    #[must_use]
    pub fn new() -> Self {
        KvSession::default()
    }

    /// Applies one request and returns the expected exit value, mutating
    /// the session state exactly as the enclave run would.
    #[must_use]
    pub fn apply(&mut self, input: &[u8]) -> u64 {
        let ints = read_ints(input);
        let n = ints[0] as usize;
        let mut acc: i64 = 0;
        for j in 0..n {
            let (op, key, val) = (ints[1 + j * 3], ints[2 + j * 3], ints[3 + j * 3]);
            let at = self.keys.iter().position(|&k| k == key);
            if op == OP_PUT {
                match at {
                    Some(i) => self.vals[i] = val,
                    None if self.keys.len() < STORE_CAP => {
                        self.keys.push(key);
                        self.vals.push(val);
                    }
                    None => {}
                }
                acc = (acc.wrapping_mul(31).wrapping_add(key).wrapping_add(val)) & 0xFFF_FFFF;
            } else {
                let got = at.map_or(-1, |i| self.vals[i]);
                acc = (acc.wrapping_mul(31).wrapping_add(got)) & 0xFFF_FFFF;
            }
            self.ops += 1;
        }
        (acc.wrapping_mul(31).wrapping_add(self.ops) & 0xFFF_FFFF) as u64
    }

    /// How many GET results the run for `input` sends (for record-count
    /// assertions: `ceil(gets/8)` 64-byte records, with a short tail).
    #[must_use]
    pub fn records_for(input: &[u8]) -> usize {
        let ints = read_ints(input);
        let n = ints[0] as usize;
        let gets = (0..n).filter(|&j| ints[1 + j * 3] == OP_GET).count();
        gets.div_ceil(8).max(usize::from(gets > 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Prepared, DEFAULT_FUEL};
    use deflection_core::policy::PolicySet;
    use deflection_sgx_sim::layout::MemConfig;

    #[test]
    fn single_request_matches_reference() {
        let req = request(&[
            (OP_PUT, 5, 100),
            (OP_GET, 5, 0),
            (OP_GET, 6, 0),
            (OP_PUT, 5, 200),
            (OP_GET, 5, 0),
        ]);
        let expected = KvSession::new().apply(&req);
        for policy in [PolicySet::none(), PolicySet::full()] {
            let mut p = Prepared::new(&source(), &policy, MemConfig::small());
            p.input(&req);
            let report = p.run(DEFAULT_FUEL);
            assert_eq!(report.exit.exit_value(), Some(expected));
        }
    }

    #[test]
    fn state_persists_across_runs_on_one_instance() {
        // The same PUT-free request returns different results depending
        // on what earlier runs stored — the property no other workload
        // has, and what the admission layer's per-instance serving must
        // preserve.
        let mut session = KvSession::new();
        let mut p = Prepared::new(&source(), &PolicySet::full(), MemConfig::small());
        for i in 0..4i64 {
            let req = session_request(42, i);
            let expected = session.apply(&req);
            p.input(&req);
            let report = p.run(DEFAULT_FUEL);
            assert_eq!(report.exit.exit_value(), Some(expected), "request {i}");
        }
        // A *fresh* instance diverges on the same fourth request: state
        // is per-instance, not per-request.
        let req = session_request(42, 3);
        let fresh_expected = KvSession::new().apply(&req);
        let mut fresh = Prepared::new(&source(), &PolicySet::full(), MemConfig::small());
        fresh.input(&req);
        let fresh_report = fresh.run(DEFAULT_FUEL);
        assert_eq!(fresh_report.exit.exit_value(), Some(fresh_expected));
        assert_ne!(fresh_expected, session.clone().apply(&req));
    }

    #[test]
    fn gets_send_fixed_records() {
        let req = request(&[(OP_PUT, 1, 11), (OP_GET, 1, 0), (OP_GET, 2, 0), (OP_GET, 1, 0)]);
        let mut p = Prepared::new(&source(), &PolicySet::full(), MemConfig::small());
        p.input(&req);
        let report = p.run(DEFAULT_FUEL);
        assert_eq!(report.records.len(), KvSession::records_for(&req));
        assert!(!report.records.is_empty());
    }
}
