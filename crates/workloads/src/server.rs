//! The in-enclave HTTPS-style server handler (paper Section VI-B, Fig. 10
//! and Fig. 11).
//!
//! The paper runs an mbedTLS HTTPS server inside the enclave and drives it
//! with Siege. Here the split is: the *application* work (parsing the
//! request, producing the response body) runs in the enclave as DCL code,
//! while TLS record protection is the runtime's P0 wrapper (real
//! ChaCha20-Poly1305 on every `send`). The bench layer measures the
//! per-request service time of this handler and feeds it into a closed-loop
//! concurrency simulation to regenerate the response-time/throughput
//! curves.

use crate::nbench::read_ints;
use crate::{encode_ints, with_prelude};

/// Request handler. Input: `[request_id, body_size, seed]`. The handler
/// "renders" and "encrypts" a page of `body_size` bytes: a keystream cipher
/// (the TLS-record stand-in, register/local arithmetic like a real cipher)
/// produces the page word-by-word, which is staged into the output buffer
/// and sent in 200-byte records. Returns a checksum.
const BODY: &str = "
fn main() -> int {
    var req: int = geti(0);
    var size: int = geti(1);
    srand(geti(2) + req * 7919);
    var acc: int = 0;
    var produced: int = 0;
    var widx: int = 0;
    var ks: int = __rng;
    while (produced < size) {
        // Keystream block: cipher-like register arithmetic (8 bytes/round).
        ks = ks * 6364136223846793005 + 1442695040888963407;
        var mix: int = ks ^ (ks >> 29);
        mix = mix * 94123863 + req;
        mix = mix ^ (mix >> 17);
        mix = mix + (mix << 5);
        mix = mix ^ (mix >> 41);
        mix = mix * 2685821657736338717 + 1;
        mix = mix ^ (mix >> 31);
        mix = mix + (mix << 11);
        mix = mix ^ (mix >> 13);
        mix = mix * 1103515245 + 12345;
        mix = mix ^ (mix >> 23);
        var word: int = mix;
        acc = (acc * 31 + (word & 0xFF)) & 0xFFFFFFF;
        output_word(widx, word);
        widx = widx + 1;
        produced = produced + 8;
        if (widx == 25) {
            send(200);
            widx = 0;
        }
    }
    if (widx > 0) { send(widx * 8); }
    return acc;
}
";

/// DCL source of the request handler.
#[must_use]
pub fn source() -> String {
    with_prelude(BODY)
}

/// Input for one request.
#[must_use]
pub fn request(req_id: u64, body_size: u64) -> Vec<u8> {
    encode_ints(&[req_id as i64, body_size as i64, 0x5E1F_0001])
}

/// Bit-exact reference checksum for a request.
#[must_use]
pub fn reference(input: &[u8]) -> u64 {
    let header = read_ints(input);
    let (req, size, seed) = (header[0], header[1], header[2]);
    // srand + first keystream read mirror the DCL program exactly.
    let mut ks = seed.wrapping_add(req.wrapping_mul(7919));
    let mut acc: i64 = 0;
    let mut produced = 0i64;
    while produced < size {
        ks = ks.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut mix = ks ^ (ks >> 29);
        mix = mix.wrapping_mul(94123863).wrapping_add(req);
        mix ^= mix >> 17;
        mix = mix.wrapping_add(mix.wrapping_shl(5));
        mix ^= mix >> 41;
        mix = mix.wrapping_mul(2685821657736338717).wrapping_add(1);
        mix ^= mix >> 31;
        mix = mix.wrapping_add(mix.wrapping_shl(11));
        mix ^= mix >> 13;
        mix = mix.wrapping_mul(1103515245).wrapping_add(12345);
        mix ^= mix >> 23;
        acc = (acc.wrapping_mul(31).wrapping_add(mix & 0xFF)) & 0xFFF_FFFF;
        produced += 8;
    }
    acc as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{execute_expect, Prepared};
    use deflection_core::policy::PolicySet;
    use deflection_sgx_sim::layout::MemConfig;

    #[test]
    fn handler_matches_reference() {
        let inp = request(3, 450);
        let expected = reference(&inp);
        execute_expect(&source(), &inp, &PolicySet::none(), expected);
        execute_expect(&source(), &inp, &PolicySet::full(), expected);
    }

    #[test]
    fn distinct_requests_produce_distinct_pages() {
        assert_ne!(reference(&request(1, 300)), reference(&request(2, 300)));
    }

    #[test]
    fn response_is_sealed_into_fixed_records() {
        let mut p = Prepared::new(&source(), &PolicySet::full(), MemConfig::small());
        p.input(&request(1, 500));
        let report = p.run(crate::runner::DEFAULT_FUEL);
        assert_eq!(report.records.len(), 3); // 200 + 200 + 104-byte tail
                                             // Fixed-length ciphertexts: the covert-channel surface P0 closes.
        assert!(report.records.iter().all(|r| r.len() == report.records[0].len()));
    }
}
