//! Personal credit score analysis (paper Section VI-B, Fig. 9): a
//! BP-neural-network credit scorer trained on synthetic records, then used
//! to score test cases — "trains a model to calculate user's credit scores
//! ... and then used to make prediction (output a confidence probability)".
//!
//! The paper trains on 10,000 records and varies the number of scored
//! records (Fig. 9's x-axis); the dominant cost is the per-record forward
//! pass, which is what the bench sweeps.

use crate::nbench::read_ints;
use crate::{encode_ints, with_prelude, Lcg};

const BODY: &str = "
var w1: [float; 30];    // 6 features x 5 hidden
var w2: [float; 5];
var feat: [float; 6];

fn act(x: float) -> float {
    var a: float = x;
    if (a < 0.0) { a = 0.0 - a; }
    return 0.5 * (x / (1.0 + a)) + 0.5;
}

// Deterministic synthetic applicant: 6 features in [-1, 1].
fn load_record() -> float {
    var i: int = 0;
    var risk: float = 0.0;
    while (i < 6) {
        var v: float = itof(rnd(2000) - 1000) / 1000.0;
        feat[i] = v;
        // Ground-truth creditworthiness: a fixed linear rule.
        if (i == 0 || i == 3) { risk = risk + v; }
        else { risk = risk - 0.5 * v; }
        i = i + 1;
    }
    if (risk > 0.0) { return 1.0; }
    return 0.0;
}

fn forward() -> float {
    var o: float = 0.0;
    var h: int = 0;
    while (h < 5) {
        var s: float = 0.0;
        var i: int = 0;
        while (i < 6) { s = s + w1[h * 6 + i] * feat[i]; i = i + 1; }
        o = o + w2[h] * act(s);
        h = h + 1;
    }
    return act(o);
}

fn main() -> int {
    var train: int = geti(0);
    var tests: int = geti(1);
    srand(geti(2));
    var i: int = 0;
    while (i < 30) { w1[i] = itof(rnd(200) - 100) / 100.0; i = i + 1; }
    i = 0;
    while (i < 5) { w2[i] = itof(rnd(200) - 100) / 100.0; i = i + 1; }

    // Train: one SGD pass over `train` records (output layer only, a
    // perceptron-style update keeps the arithmetic lean and deterministic).
    var lr: float = 0.1;
    var t: int = 0;
    while (t < train) {
        var target: float = load_record();
        var out: float = forward();
        var delta: float = (out - target) * out * (1.0 - out);
        var h: int = 0;
        while (h < 5) {
            var s: float = 0.0;
            var j: int = 0;
            while (j < 6) { s = s + w1[h * 6 + j] * feat[j]; j = j + 1; }
            w2[h] = w2[h] - lr * delta * act(s);
            h = h + 1;
        }
        t = t + 1;
    }

    // Score: accumulate confidence probabilities over the test cases.
    var correct: int = 0;
    var acc: float = 0.0;
    t = 0;
    while (t < tests) {
        var target: float = load_record();
        var out: float = forward();
        acc = acc + out;
        if (out > 0.5 && target > 0.5) { correct = correct + 1; }
        if (out < 0.5 && target < 0.5) { correct = correct + 1; }
        t = t + 1;
    }
    return (correct << 32) | (ftoi(acc * 1000.0) & 0xFFFFFFFF);
}
";

/// DCL source of the credit scorer.
#[must_use]
pub fn source() -> String {
    with_prelude(BODY)
}

/// Input: `[train_records, test_records, seed]`.
#[must_use]
pub fn input(train: u64, tests: u64) -> Vec<u8> {
    encode_ints(&[train as i64, tests as i64, 0xC4ED_0001])
}

fn act(x: f64) -> f64 {
    let a = if x < 0.0 { 0.0 - x } else { x };
    0.5 * (x / (1.0 + a)) + 0.5
}

/// Bit-exact native reference. Returns the packed `(correct, acc)` exit.
#[must_use]
pub fn reference(input: &[u8]) -> u64 {
    let header = read_ints(input);
    let (train, tests, seed) = (header[0], header[1], header[2]);
    let mut lcg = Lcg::new(seed);
    let mut w1: Vec<f64> = (0..30).map(|_| (lcg.below(200) - 100) as f64 / 100.0).collect();
    let mut w2: Vec<f64> = (0..5).map(|_| (lcg.below(200) - 100) as f64 / 100.0).collect();
    let mut feat = [0.0f64; 6];
    let load_record = |lcg: &mut Lcg, feat: &mut [f64; 6]| -> f64 {
        let mut risk = 0.0;
        for (i, f) in feat.iter_mut().enumerate() {
            let v = (lcg.below(2000) - 1000) as f64 / 1000.0;
            *f = v;
            if i == 0 || i == 3 {
                risk += v;
            } else {
                risk -= 0.5 * v;
            }
        }
        if risk > 0.0 {
            1.0
        } else {
            0.0
        }
    };
    let forward = |w1: &[f64], w2: &[f64], feat: &[f64; 6]| -> f64 {
        let mut o = 0.0;
        for h in 0..5 {
            let mut s = 0.0;
            for i in 0..6 {
                s += w1[h * 6 + i] * feat[i];
            }
            o += w2[h] * act(s);
        }
        act(o)
    };
    let lr = 0.1;
    for _ in 0..train {
        let target = load_record(&mut lcg, &mut feat);
        let out = forward(&w1, &w2, &feat);
        let delta = (out - target) * out * (1.0 - out);
        for h in 0..5 {
            let mut s = 0.0;
            for j in 0..6 {
                s += w1[h * 6 + j] * feat[j];
            }
            w2[h] -= lr * delta * act(s);
        }
    }
    let _ = &mut w1;
    let mut correct: i64 = 0;
    let mut acc = 0.0;
    for _ in 0..tests {
        let target = load_record(&mut lcg, &mut feat);
        let out = forward(&w1, &w2, &feat);
        acc += out;
        if out > 0.5 && target > 0.5 {
            correct += 1;
        }
        if out < 0.5 && target < 0.5 {
            correct += 1;
        }
    }
    ((correct << 32) | (((acc * 1000.0) as i64) & 0xFFFF_FFFF)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::execute_expect;
    use deflection_core::policy::PolicySet;

    #[test]
    fn matches_reference_baseline_and_full() {
        let inp = input(30, 20);
        let expected = reference(&inp);
        execute_expect(&source(), &inp, &PolicySet::none(), expected);
        execute_expect(&source(), &inp, &PolicySet::full(), expected);
    }

    #[test]
    fn scorer_beats_chance_after_training() {
        let inp = input(400, 100);
        let exit = reference(&inp);
        let correct = (exit >> 32) as i64;
        assert!(correct > 55, "only {correct}/100 correct after training");
    }
}
