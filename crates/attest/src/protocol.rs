//! Wire protocol of the delegation session (paper Fig. 1).
//!
//! The paper's workflow exchanges five kinds of messages between the data
//! owner, the code provider and the bootstrap enclave. This module pins the
//! byte format so sessions can cross a real transport: every message is
//! `[tag][fields…]` with length-prefixed variable parts, parsed with the
//! same fail-closed discipline as the object format (the enclave parses
//! hostile bytes).

use crate::{AttestError, Quote, Role};

/// Payload kinds a [`Message::SealedPayload`] can deliver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadKind {
    /// The instrumented target binary (code-provider channel).
    Code,
    /// User data (data-owner channel).
    Data,
}

impl PayloadKind {
    fn tag(self) -> u8 {
        match self {
            PayloadKind::Code => 0,
            PayloadKind::Data => 1,
        }
    }

    fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(PayloadKind::Code),
            1 => Some(PayloadKind::Data),
            _ => None,
        }
    }
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Party → enclave: role declaration and ephemeral DH value.
    ClientHello {
        /// Declared role.
        role: Role,
        /// The party's DH public value.
        dh_public: [u8; 32],
    },
    /// Enclave → party: its DH value plus the quote binding the handshake.
    AttestationResponse {
        /// The enclave's DH public value.
        dh_public: [u8; 32],
        /// Quote over the handshake binding.
        quote: Quote,
    },
    /// Party → enclave: sealed code or data.
    SealedPayload {
        /// What the ciphertext contains.
        kind: PayloadKind,
        /// Delivery nonce counter.
        counter: u64,
        /// AEAD ciphertext.
        ciphertext: Vec<u8>,
    },
    /// Enclave → data owner: hash of the loaded service binary
    /// (Section III-A: the owner checks it against the hash she was
    /// promised before sending data).
    CodeHashReport {
        /// SHA-256 of the delivered binary.
        hash: [u8; 32],
    },
    /// Enclave → data owner: one sealed, fixed-length output record.
    SealedRecord {
        /// Record nonce counter.
        counter: u64,
        /// AEAD ciphertext (constant length under P0).
        ciphertext: Vec<u8>,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_ATTEST: u8 = 2;
const TAG_PAYLOAD: u8 = 3;
const TAG_HASH: u8 = 4;
const TAG_RECORD: u8 = 5;

fn role_tag(role: Role) -> u8 {
    match role {
        Role::DataOwner => 1,
        Role::CodeProvider => 2,
    }
}

fn role_from_tag(t: u8) -> Option<Role> {
    match t {
        1 => Some(Role::DataOwner),
        2 => Some(Role::CodeProvider),
        _ => None,
    }
}

impl Message {
    /// Serializes the message.
    #[must_use]
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::ClientHello { role, dh_public } => {
                out.push(TAG_HELLO);
                out.push(role_tag(*role));
                out.extend_from_slice(dh_public);
            }
            Message::AttestationResponse { dh_public, quote } => {
                out.push(TAG_ATTEST);
                out.extend_from_slice(dh_public);
                let q = quote.serialize();
                out.extend_from_slice(&(q.len() as u32).to_le_bytes());
                out.extend_from_slice(&q);
            }
            Message::SealedPayload { kind, counter, ciphertext } => {
                out.push(TAG_PAYLOAD);
                out.push(kind.tag());
                out.extend_from_slice(&counter.to_le_bytes());
                out.extend_from_slice(&(ciphertext.len() as u32).to_le_bytes());
                out.extend_from_slice(ciphertext);
            }
            Message::CodeHashReport { hash } => {
                out.push(TAG_HASH);
                out.extend_from_slice(hash);
            }
            Message::SealedRecord { counter, ciphertext } => {
                out.push(TAG_RECORD);
                out.extend_from_slice(&counter.to_le_bytes());
                out.extend_from_slice(&(ciphertext.len() as u32).to_le_bytes());
                out.extend_from_slice(ciphertext);
            }
        }
        out
    }

    /// Parses a message; fails closed on any malformation.
    ///
    /// # Errors
    ///
    /// Returns [`AttestError::Malformed`] for unknown tags, truncation or
    /// trailing bytes.
    pub fn parse(bytes: &[u8]) -> Result<Message, AttestError> {
        let mut r = Reader { bytes, pos: 0 };
        let tag = r.u8()?;
        let msg = match tag {
            TAG_HELLO => {
                let role = role_from_tag(r.u8()?).ok_or(AttestError::Malformed)?;
                Message::ClientHello { role, dh_public: r.arr32()? }
            }
            TAG_ATTEST => {
                let dh_public = r.arr32()?;
                let qlen = r.u32()? as usize;
                if qlen > 4096 {
                    return Err(AttestError::Malformed);
                }
                let quote = Quote::parse(r.take(qlen)?)?;
                Message::AttestationResponse { dh_public, quote }
            }
            TAG_PAYLOAD => {
                let kind = PayloadKind::from_tag(r.u8()?).ok_or(AttestError::Malformed)?;
                let counter = r.u64()?;
                let len = r.u32()? as usize;
                if len > 256 * 1024 * 1024 {
                    return Err(AttestError::Malformed);
                }
                Message::SealedPayload { kind, counter, ciphertext: r.take(len)?.to_vec() }
            }
            TAG_HASH => Message::CodeHashReport { hash: r.arr32()? },
            TAG_RECORD => {
                let counter = r.u64()?;
                let len = r.u32()? as usize;
                if len > 1024 * 1024 {
                    return Err(AttestError::Malformed);
                }
                Message::SealedRecord { counter, ciphertext: r.take(len)?.to_vec() }
            }
            _ => return Err(AttestError::Malformed),
        };
        if r.pos != bytes.len() {
            return Err(AttestError::Malformed);
        }
        Ok(msg)
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], AttestError> {
        if self.pos + n > self.bytes.len() {
            return Err(AttestError::Malformed);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, AttestError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, AttestError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("sized")))
    }

    fn u64(&mut self) -> Result<u64, AttestError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("sized")))
    }

    fn arr32(&mut self) -> Result<[u8; 32], AttestError> {
        Ok(self.take(32)?.try_into().expect("sized"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_quote;
    use deflection_sgx_sim::measure::Platform;

    fn samples() -> Vec<Message> {
        let platform = Platform::new(3, &[9u8; 32]);
        vec![
            Message::ClientHello { role: Role::DataOwner, dh_public: [7; 32] },
            Message::ClientHello { role: Role::CodeProvider, dh_public: [8; 32] },
            Message::AttestationResponse {
                dh_public: [1; 32],
                quote: generate_quote(&platform, [2; 32], [3; 64]),
            },
            Message::SealedPayload {
                kind: PayloadKind::Code,
                counter: 0,
                ciphertext: vec![1, 2, 3],
            },
            Message::SealedPayload { kind: PayloadKind::Data, counter: 9, ciphertext: vec![] },
            Message::CodeHashReport { hash: [0xAB; 32] },
            Message::SealedRecord { counter: 5, ciphertext: vec![9; 276] },
        ]
    }

    #[test]
    fn roundtrip_every_message() {
        for msg in samples() {
            let bytes = msg.serialize();
            assert_eq!(Message::parse(&bytes).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn truncations_rejected() {
        for msg in samples() {
            let bytes = msg.serialize();
            for cut in 0..bytes.len() {
                assert!(
                    Message::parse(&bytes[..cut]).is_err(),
                    "{msg:?} truncated to {cut} must not parse"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = samples()[0].serialize();
        bytes.push(0);
        assert!(Message::parse(&bytes).is_err());
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(Message::parse(&[99]).is_err());
        assert!(Message::parse(&[TAG_HELLO, 7, 0]).is_err()); // bad role
        assert!(Message::parse(&[TAG_PAYLOAD, 9]).is_err()); // bad kind
    }

    #[test]
    fn oversized_lengths_rejected() {
        // A record claiming 2 MiB of ciphertext.
        let mut bytes = vec![TAG_RECORD];
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&(2u32 * 1024 * 1024).to_le_bytes());
        assert!(Message::parse(&bytes).is_err());
    }
}
