//! # deflection-attest
//!
//! Remote attestation and key agreement for the DEFLECTION delegation model
//! (paper Section III-A and Fig. 1): quotes signed by the simulated SGX
//! platform, an Attestation Service that verifies them (the IAS analogue),
//! and an RA-TLS-style handshake with explicit **roles** so the bootstrap
//! enclave "can distinguish the two parties and communicate with them using
//! different schemes" (Section V-B).
//!
//! The flow mirrors the paper's key agreement procedure:
//!
//! 1. data owner and code provider each send a DH public value and a role;
//! 2. the enclave responds with its own DH value and a quote whose report
//!    data binds both values and the role;
//! 3. each party submits the quote to the attestation service, checks the
//!    expected measurement of the bootstrap enclave, and derives a
//!    role-separated session key;
//! 4. code and data then travel only over those encrypted channels.
//!
//! # Example
//!
//! ```
//! use deflection_attest::{AttestationService, HandshakeParty, EnclaveHandshake, Role};
//! use deflection_sgx_sim::measure::Platform;
//!
//! let platform = Platform::new(1, &[7u8; 32]);
//! let mut service = AttestationService::new();
//! service.register_platform(&platform);
//!
//! let measurement = [0xAB; 32]; // what both parties agreed to trust
//! let mut owner = HandshakeParty::new(Role::DataOwner, b"owner seed");
//! let (enclave_side, quote) =
//!     EnclaveHandshake::respond(&platform, measurement, &owner.public_key(), Role::DataOwner, b"enclave seed");
//! owner.set_enclave_public(enclave_side.public_key());
//! let owner_key = owner.verify_and_derive(&service, &measurement, &quote)?;
//! let enclave_key = enclave_side.session_key(&owner.public_key(), Role::DataOwner)?;
//! assert_eq!(owner_key, enclave_key);
//! # Ok::<(), deflection_attest::AttestError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;

use deflection_crypto::dh::{PrivateKey, PublicKey};
use deflection_crypto::sha256::{sha256, Sha256};
use deflection_crypto::{ct_eq, CryptoError};
use deflection_sgx_sim::measure::{Measurement, Platform};
use std::collections::HashMap;
use std::error::Error as StdError;
use std::fmt;

/// Participant roles of the DEFLECTION model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Uploads sensitive data; receives the sealed results.
    DataOwner,
    /// Supplies the (private) target binary.
    CodeProvider,
}

impl Role {
    fn tag(self) -> u8 {
        match self {
            Role::DataOwner => 1,
            Role::CodeProvider => 2,
        }
    }

    /// The HKDF context string separating the two channels.
    #[must_use]
    pub fn context(self) -> &'static [u8] {
        match self {
            Role::DataOwner => b"deflection-ratls:data-owner",
            Role::CodeProvider => b"deflection-ratls:code-provider",
        }
    }
}

/// An attestation quote: measurement plus report data, signed by the
/// platform attestation key (EPID/ECDSA analogue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// Which platform produced the quote.
    pub platform_id: u64,
    /// MRENCLAVE-style measurement of the quoting enclave.
    pub measurement: Measurement,
    /// 64 bytes of enclave-chosen report data (binds the handshake).
    pub report_data: [u8; 64],
    /// Platform signature over the serialized body.
    pub signature: [u8; 32],
}

impl Quote {
    fn body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 32 + 64);
        out.extend_from_slice(&self.platform_id.to_le_bytes());
        out.extend_from_slice(&self.measurement);
        out.extend_from_slice(&self.report_data);
        out
    }

    /// Serializes the quote (body plus signature).
    #[must_use]
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = self.body();
        out.extend_from_slice(&self.signature);
        out
    }

    /// Parses a serialized quote.
    ///
    /// # Errors
    ///
    /// Returns [`AttestError::Malformed`] on any length mismatch.
    pub fn parse(bytes: &[u8]) -> Result<Quote, AttestError> {
        if bytes.len() != 8 + 32 + 64 + 32 {
            return Err(AttestError::Malformed);
        }
        Ok(Quote {
            platform_id: u64::from_le_bytes(bytes[0..8].try_into().expect("sized")),
            measurement: bytes[8..40].try_into().expect("sized"),
            report_data: bytes[40..104].try_into().expect("sized"),
            signature: bytes[104..136].try_into().expect("sized"),
        })
    }
}

/// Generates a quote for (`measurement`, `report_data`) on `platform`.
#[must_use]
pub fn generate_quote(
    platform: &Platform,
    measurement: Measurement,
    report_data: [u8; 64],
) -> Quote {
    let mut quote =
        Quote { platform_id: platform.platform_id, measurement, report_data, signature: [0; 32] };
    quote.signature = platform.sign_report(&quote.body());
    quote
}

/// Attestation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AttestError {
    /// The quote's platform is not registered with the service.
    UnknownPlatform(u64),
    /// The platform signature did not verify.
    BadSignature,
    /// The quoted measurement is not the expected bootstrap enclave.
    MeasurementMismatch,
    /// The report data does not bind this handshake's values.
    BindingMismatch,
    /// The quote bytes were structurally invalid.
    Malformed,
    /// An underlying key-agreement error.
    Crypto(CryptoError),
}

impl fmt::Display for AttestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttestError::UnknownPlatform(id) => write!(f, "unknown platform {id}"),
            AttestError::BadSignature => write!(f, "quote signature invalid"),
            AttestError::MeasurementMismatch => write!(f, "enclave measurement mismatch"),
            AttestError::BindingMismatch => write!(f, "report data does not bind handshake"),
            AttestError::Malformed => write!(f, "malformed quote"),
            AttestError::Crypto(e) => write!(f, "crypto failure: {e}"),
        }
    }
}

impl StdError for AttestError {}

impl From<CryptoError> for AttestError {
    fn from(e: CryptoError) -> Self {
        AttestError::Crypto(e)
    }
}

/// The attestation service (IAS analogue): knows every genuine platform's
/// attestation key and vouches for quote signatures.
#[derive(Debug, Clone, Default)]
pub struct AttestationService {
    platforms: HashMap<u64, [u8; 32]>,
}

impl AttestationService {
    /// An empty service.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a platform (the provisioning step at "manufacturing").
    pub fn register_platform(&mut self, platform: &Platform) {
        self.platforms.insert(platform.platform_id, platform.attestation_key());
    }

    /// Verifies a quote's platform signature.
    ///
    /// # Errors
    ///
    /// [`AttestError::UnknownPlatform`] or [`AttestError::BadSignature`].
    pub fn verify(&self, quote: &Quote) -> Result<(), AttestError> {
        let key = self
            .platforms
            .get(&quote.platform_id)
            .ok_or(AttestError::UnknownPlatform(quote.platform_id))?;
        let expected = deflection_crypto::hmac::hmac_sha256(key, &quote.body());
        if !ct_eq(&expected, &quote.signature) {
            return Err(AttestError::BadSignature);
        }
        Ok(())
    }
}

fn binding(role: Role, enclave_pub: &PublicKey, party_pub: &PublicKey) -> [u8; 64] {
    let mut h = Sha256::new();
    h.update(b"deflection-ratls-binding-v1");
    h.update(&[role.tag()]);
    h.update(&enclave_pub.to_bytes());
    h.update(&party_pub.to_bytes());
    let digest = h.finalize();
    let mut out = [0u8; 64];
    out[..32].copy_from_slice(&digest);
    out[32..].copy_from_slice(&sha256(&digest));
    out
}

/// A remote participant's side of the handshake.
#[derive(Debug)]
pub struct HandshakeParty {
    role: Role,
    secret: PrivateKey,
    /// The enclave's public value, learned from the response.
    enclave_public: Option<PublicKey>,
}

impl HandshakeParty {
    /// Creates a party of the given role with a deterministic seed.
    #[must_use]
    pub fn new(role: Role, seed: &[u8]) -> Self {
        let mut s = [0u8; 32];
        let d = sha256(seed);
        s.copy_from_slice(&d);
        HandshakeParty { role, secret: PrivateKey::from_seed(&s), enclave_public: None }
    }

    /// This party's DH public value (message 1 of the handshake).
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        self.secret.public_key()
    }

    /// The party's role.
    #[must_use]
    pub fn role(&self) -> Role {
        self.role
    }

    /// Verifies the enclave's quote via the attestation service, checks the
    /// expected measurement and the handshake binding, and derives the
    /// role-separated session key.
    ///
    /// # Errors
    ///
    /// Any verification failure; on error no key material is produced.
    pub fn verify_and_derive(
        &self,
        service: &AttestationService,
        expected_measurement: &Measurement,
        quote: &Quote,
    ) -> Result<[u8; 32], AttestError> {
        service.verify(quote)?;
        if !ct_eq(&quote.measurement, expected_measurement) {
            return Err(AttestError::MeasurementMismatch);
        }
        // Recover the enclave public value from the quote's extra field? No:
        // the enclave sends it alongside; here it is carried in the report
        // binding check below via `set_enclave_public`.
        let enclave_pub = self.enclave_public.ok_or(AttestError::BindingMismatch)?;
        let expected_binding = binding(self.role, &enclave_pub, &self.public_key());
        if !ct_eq(&quote.report_data, &expected_binding) {
            return Err(AttestError::BindingMismatch);
        }
        Ok(self.secret.session_key(&enclave_pub, self.role.context())?)
    }

    /// Records the enclave's public value from its response message.
    pub fn set_enclave_public(&mut self, enclave_pub: PublicKey) {
        self.enclave_public = Some(enclave_pub);
    }
}

/// The enclave's side of one handshake.
#[derive(Debug)]
pub struct EnclaveHandshake {
    secret: PrivateKey,
}

impl EnclaveHandshake {
    /// Responds to a party's public value: generates an ephemeral keypair
    /// and a quote binding both values and the role.
    #[must_use]
    pub fn respond(
        platform: &Platform,
        measurement: Measurement,
        party_pub: &PublicKey,
        role: Role,
        seed: &[u8],
    ) -> (EnclaveHandshake, Quote) {
        let mut s = [0u8; 32];
        s.copy_from_slice(&sha256(seed));
        let secret = PrivateKey::from_seed(&s);
        let report_data = binding(role, &secret.public_key(), party_pub);
        let quote = generate_quote(platform, measurement, report_data);
        (EnclaveHandshake { secret }, quote)
    }

    /// The enclave's DH public value (sent with the quote).
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        self.secret.public_key()
    }

    /// Derives the same role-separated session key as the party.
    ///
    /// # Errors
    ///
    /// Propagates key-agreement failures for invalid peer values.
    pub fn session_key(&self, party_pub: &PublicKey, role: Role) -> Result<[u8; 32], AttestError> {
        Ok(self.secret.session_key(party_pub, role.context())?)
    }
}

/// Runs the complete two-party establishment against one enclave: both the
/// data owner's and the code provider's channels (convenience for examples
/// and benches).
///
/// Returns `(owner_key, provider_key)` as derived by the *parties*; the
/// enclave derives matching keys from its two handshakes.
///
/// # Errors
///
/// Propagates any attestation failure.
pub fn establish_sessions(
    platform: &Platform,
    service: &AttestationService,
    measurement: Measurement,
    owner: &mut HandshakeParty,
    provider: &mut HandshakeParty,
) -> Result<([u8; 32], [u8; 32], EnclaveHandshake, EnclaveHandshake), AttestError> {
    let (enclave_owner, quote_owner) = EnclaveHandshake::respond(
        platform,
        measurement,
        &owner.public_key(),
        Role::DataOwner,
        b"enclave-eph-owner",
    );
    owner.set_enclave_public(enclave_owner.public_key());
    let owner_key = owner.verify_and_derive(service, &measurement, &quote_owner)?;

    let (enclave_provider, quote_provider) = EnclaveHandshake::respond(
        platform,
        measurement,
        &provider.public_key(),
        Role::CodeProvider,
        b"enclave-eph-provider",
    );
    provider.set_enclave_public(enclave_provider.public_key());
    let provider_key = provider.verify_and_derive(service, &measurement, &quote_provider)?;

    Ok((owner_key, provider_key, enclave_owner, enclave_provider))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Platform, AttestationService) {
        let platform = Platform::new(42, &[3u8; 32]);
        let mut service = AttestationService::new();
        service.register_platform(&platform);
        (platform, service)
    }

    #[test]
    fn quote_roundtrip_and_verify() {
        let (platform, service) = setup();
        let quote = generate_quote(&platform, [9; 32], [7; 64]);
        assert_eq!(Quote::parse(&quote.serialize()).unwrap(), quote);
        service.verify(&quote).unwrap();
    }

    #[test]
    fn forged_signature_rejected() {
        let (platform, service) = setup();
        let mut quote = generate_quote(&platform, [9; 32], [7; 64]);
        quote.signature[0] ^= 1;
        assert_eq!(service.verify(&quote), Err(AttestError::BadSignature));
    }

    #[test]
    fn tampered_measurement_rejected() {
        let (platform, service) = setup();
        let mut quote = generate_quote(&platform, [9; 32], [7; 64]);
        quote.measurement[0] ^= 1;
        assert_eq!(service.verify(&quote), Err(AttestError::BadSignature));
    }

    #[test]
    fn unregistered_platform_rejected() {
        let (_, service) = setup();
        let rogue = Platform::new(77, &[5u8; 32]);
        let quote = generate_quote(&rogue, [9; 32], [7; 64]);
        assert_eq!(service.verify(&quote), Err(AttestError::UnknownPlatform(77)));
    }

    #[test]
    fn malformed_quote_rejected() {
        assert_eq!(Quote::parse(&[0u8; 10]), Err(AttestError::Malformed));
    }

    #[test]
    fn full_handshake_derives_matching_keys() {
        let (platform, service) = setup();
        let measurement = [0xCD; 32];
        let mut owner = HandshakeParty::new(Role::DataOwner, b"alice");
        let mut provider = HandshakeParty::new(Role::CodeProvider, b"bob");
        let (owner_key, provider_key, e_owner, e_provider) =
            establish_sessions(&platform, &service, measurement, &mut owner, &mut provider)
                .unwrap();
        assert_eq!(owner_key, e_owner.session_key(&owner.public_key(), Role::DataOwner).unwrap());
        assert_eq!(
            provider_key,
            e_provider.session_key(&provider.public_key(), Role::CodeProvider).unwrap()
        );
        // Role separation: the two channels never share a key.
        assert_ne!(owner_key, provider_key);
    }

    #[test]
    fn wrong_expected_measurement_rejected() {
        let (platform, service) = setup();
        let mut owner = HandshakeParty::new(Role::DataOwner, b"alice");
        let (enclave, quote) = EnclaveHandshake::respond(
            &platform,
            [0xCD; 32],
            &owner.public_key(),
            Role::DataOwner,
            b"e",
        );
        owner.set_enclave_public(enclave.public_key());
        assert_eq!(
            owner.verify_and_derive(&service, &[0xEE; 32], &quote),
            Err(AttestError::MeasurementMismatch)
        );
    }

    #[test]
    fn swapped_enclave_public_breaks_binding() {
        // A MITM substituting its own DH value is caught by the report-data
        // binding even though the quote itself is genuine.
        let (platform, service) = setup();
        let measurement = [0xCD; 32];
        let mut owner = HandshakeParty::new(Role::DataOwner, b"alice");
        let (_enclave, quote) = EnclaveHandshake::respond(
            &platform,
            measurement,
            &owner.public_key(),
            Role::DataOwner,
            b"honest",
        );
        let mitm = HandshakeParty::new(Role::DataOwner, b"mitm");
        owner.set_enclave_public(mitm.public_key());
        assert_eq!(
            owner.verify_and_derive(&service, &measurement, &quote),
            Err(AttestError::BindingMismatch)
        );
    }

    #[test]
    fn role_confusion_breaks_binding() {
        // A quote minted for the provider role cannot serve the owner role.
        let (platform, service) = setup();
        let measurement = [0xCD; 32];
        let mut owner = HandshakeParty::new(Role::DataOwner, b"alice");
        let (enclave, quote) = EnclaveHandshake::respond(
            &platform,
            measurement,
            &owner.public_key(),
            Role::CodeProvider, // wrong role in the binding
            b"e",
        );
        owner.set_enclave_public(enclave.public_key());
        assert_eq!(
            owner.verify_and_derive(&service, &measurement, &quote),
            Err(AttestError::BindingMismatch)
        );
    }
}
