//! Property-based tests for the instruction encoding.
//!
//! Invariants:
//! 1. `decode(encode(inst)) == inst` for every representable instruction.
//! 2. Decoding never panics on arbitrary bytes — it either yields an
//!    instruction whose re-encoding reproduces the consumed bytes
//!    (canonicality) or a structured error.

use deflection_isa::{decode, encode, encoded_len, AluOp, CondCode, FpuOp, Inst, MemOperand, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_mem() -> impl Strategy<Value = MemOperand> {
    (
        proptest::option::of(arb_reg()),
        proptest::option::of((arb_reg(), prop_oneof![Just(1u8), Just(2), Just(4), Just(8)])),
        any::<i32>(),
    )
        .prop_map(|(base, index, disp)| MemOperand { base, index, disp })
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    (0u8..13).prop_map(|i| AluOp::from_index(i).unwrap())
}

fn arb_cc() -> impl Strategy<Value = CondCode> {
    (0u8..10).prop_map(|i| CondCode::from_index(i).unwrap())
}

fn arb_fpu() -> impl Strategy<Value = FpuOp> {
    (0u8..4).prop_map(|i| FpuOp::from_index(i).unwrap())
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Halt),
        any::<u8>().prop_map(|code| Inst::Abort { code }),
        any::<u8>().prop_map(|code| Inst::Ocall { code }),
        Just(Inst::AexProbe),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::MovRR { dst, src }),
        (arb_reg(), any::<u64>()).prop_map(|(dst, imm)| Inst::MovRI { dst, imm }),
        (arb_reg(), arb_mem()).prop_map(|(dst, mem)| Inst::Lea { dst, mem }),
        (arb_reg(), arb_mem()).prop_map(|(dst, mem)| Inst::Load { dst, mem }),
        (arb_reg(), arb_mem()).prop_map(|(dst, mem)| Inst::Load8 { dst, mem }),
        (arb_mem(), arb_reg()).prop_map(|(mem, src)| Inst::Store { mem, src }),
        (arb_mem(), arb_reg()).prop_map(|(mem, src)| Inst::Store8 { mem, src }),
        (arb_mem(), any::<i32>()).prop_map(|(mem, imm)| Inst::StoreImm { mem, imm }),
        (arb_reg(), arb_mem()).prop_map(|(reg, mem)| Inst::CmpMem { reg, mem }),
        (arb_alu(), arb_reg(), arb_reg()).prop_map(|(op, dst, src)| Inst::AluRR { op, dst, src }),
        (arb_alu(), arb_reg(), any::<i64>()).prop_map(|(op, dst, imm)| Inst::AluRI {
            op,
            dst,
            imm
        }),
        arb_reg().prop_map(|reg| Inst::Neg { reg }),
        arb_reg().prop_map(|reg| Inst::Not { reg }),
        (arb_reg(), arb_reg()).prop_map(|(lhs, rhs)| Inst::CmpRR { lhs, rhs }),
        (arb_reg(), any::<i64>()).prop_map(|(lhs, imm)| Inst::CmpRI { lhs, imm }),
        (arb_reg(), arb_reg()).prop_map(|(lhs, rhs)| Inst::TestRR { lhs, rhs }),
        (arb_cc(), arb_reg()).prop_map(|(cc, dst)| Inst::SetCc { cc, dst }),
        any::<i32>().prop_map(|rel| Inst::Jmp { rel }),
        (arb_cc(), any::<i32>()).prop_map(|(cc, rel)| Inst::Jcc { cc, rel }),
        arb_reg().prop_map(|reg| Inst::JmpInd { reg }),
        any::<i32>().prop_map(|rel| Inst::Call { rel }),
        arb_reg().prop_map(|reg| Inst::CallInd { reg }),
        Just(Inst::Ret),
        arb_reg().prop_map(|reg| Inst::Push { reg }),
        arb_reg().prop_map(|reg| Inst::Pop { reg }),
        (arb_fpu(), arb_reg(), arb_reg()).prop_map(|(op, dst, src)| Inst::FpuRR { op, dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(lhs, rhs)| Inst::FCmp { lhs, rhs }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::CvtIF { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::CvtFI { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::FSqrt { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::FNeg { dst, src }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let mut bytes = Vec::new();
        encode(&inst, &mut bytes);
        let (decoded, len) = decode(&bytes, 0).expect("canonical encoding must decode");
        prop_assert_eq!(decoded, inst);
        prop_assert_eq!(len, bytes.len());
        prop_assert_eq!(len, encoded_len(&inst));
    }

    #[test]
    fn decode_never_panics_and_is_canonical(bytes in proptest::collection::vec(any::<u8>(), 0..24)) {
        match decode(&bytes, 0) {
            Ok((inst, len)) => {
                prop_assert!(len <= bytes.len());
                let mut re = Vec::new();
                encode(&inst, &mut re);
                prop_assert_eq!(&re[..], &bytes[..len], "decoding must be canonical");
            }
            Err(e) => {
                prop_assert_eq!(e.offset, 0);
            }
        }
    }

    #[test]
    fn instruction_stream_roundtrip(insts in proptest::collection::vec(arb_inst(), 1..64)) {
        let mut bytes = Vec::new();
        for i in &insts {
            encode(i, &mut bytes);
        }
        let mut off = 0;
        let mut decoded = Vec::new();
        while off < bytes.len() {
            let (inst, len) = decode(&bytes, off).expect("stream decodes");
            decoded.push(inst);
            off += len;
        }
        prop_assert_eq!(decoded, insts);
    }
}
