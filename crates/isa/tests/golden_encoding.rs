//! Golden encodings: the byte format is a wire contract between the
//! producer, the verifier and stored binaries — any change to these bytes
//! is a breaking format change and must be deliberate (bump
//! `deflection_obj::VERSION` and update this file).

use deflection_isa::{encode, AluOp, CondCode, FpuOp, Inst, MemOperand, Reg};

fn bytes_of(inst: Inst) -> Vec<u8> {
    let mut out = Vec::new();
    encode(&inst, &mut out);
    out
}

#[test]
fn golden_simple_opcodes() {
    assert_eq!(bytes_of(Inst::Nop), [0x00]);
    assert_eq!(bytes_of(Inst::Halt), [0x01]);
    assert_eq!(bytes_of(Inst::Abort { code: 6 }), [0x02, 6]);
    assert_eq!(bytes_of(Inst::Ocall { code: 1 }), [0x03, 1]);
    assert_eq!(bytes_of(Inst::AexProbe), [0x04]);
    assert_eq!(bytes_of(Inst::Ret), [0x5E]);
}

#[test]
fn golden_register_forms() {
    // mov rax, rbx => opcode 0x10, regs byte dst<<4|src = 0x03
    assert_eq!(bytes_of(Inst::MovRR { dst: Reg::RAX, src: Reg::RBX }), [0x10, 0x03]);
    // push r15 / pop rbp
    assert_eq!(bytes_of(Inst::Push { reg: Reg::R15 }), [0x5F, 15]);
    assert_eq!(bytes_of(Inst::Pop { reg: Reg::RBP }), [0x60, 5]);
    // setl rax => 0x43, cc(2)<<4 | rax(0)
    assert_eq!(bytes_of(Inst::SetCc { cc: CondCode::L, dst: Reg::RAX }), [0x43, 0x20]);
}

#[test]
fn golden_immediates_little_endian() {
    assert_eq!(
        bytes_of(Inst::MovRI { dst: Reg::RCX, imm: 0x1122_3344_5566_7788 }),
        [0x11, 1, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11]
    );
    assert_eq!(
        bytes_of(Inst::AluRI { op: AluOp::Add, dst: Reg::RAX, imm: -1 }),
        [0x30, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF]
    );
    assert_eq!(bytes_of(Inst::Jmp { rel: 0x0102_0304 }), [0x50, 0x04, 0x03, 0x02, 0x01]);
}

#[test]
fn golden_memory_operand() {
    // store [rax + rcx*8 + 0x10], rdx
    // opcode 0x15, src byte, flags=3, regs=rax<<4|rcx=0x01, scale_log2=3, disp32
    assert_eq!(
        bytes_of(Inst::Store {
            mem: MemOperand::base_index(Reg::RAX, Reg::RCX, 8, 0x10),
            src: Reg::RDX
        }),
        [0x15, 2, 0x03, 0x01, 0x03, 0x10, 0x00, 0x00, 0x00]
    );
    // load rbx, [0x2000] (absolute)
    assert_eq!(
        bytes_of(Inst::Load { dst: Reg::RBX, mem: MemOperand::abs(0x2000) }),
        [0x13, 3, 0x00, 0x00, 0x00, 0x00, 0x20, 0x00, 0x00]
    );
}

#[test]
fn golden_opcode_families() {
    // ALU register forms occupy 0x20..=0x2C in AluOp order.
    for (i, op) in AluOp::ALL.iter().enumerate() {
        let b = bytes_of(Inst::AluRR { op: *op, dst: Reg::RAX, src: Reg::RAX });
        assert_eq!(b[0], 0x20 + i as u8, "{op:?}");
    }
    // Jcc occupies 0x51..=0x5A in CondCode order.
    for (i, cc) in CondCode::ALL.iter().enumerate() {
        let b = bytes_of(Inst::Jcc { cc: *cc, rel: 0 });
        assert_eq!(b[0], 0x51 + i as u8, "{cc:?}");
    }
    // FPU binary ops occupy 0x70..=0x73.
    for (i, op) in FpuOp::ALL.iter().enumerate() {
        let b = bytes_of(Inst::FpuRR { op: *op, dst: Reg::RAX, src: Reg::RAX });
        assert_eq!(b[0], 0x70 + i as u8, "{op:?}");
    }
}

#[test]
fn golden_instruction_lengths() {
    // The length table the assembler's first pass depends on.
    let expect: &[(Inst, usize)] = &[
        (Inst::Nop, 1),
        (Inst::Ret, 1),
        (Inst::Halt, 1),
        (Inst::AexProbe, 1),
        (Inst::Abort { code: 0 }, 2),
        (Inst::MovRR { dst: Reg::RAX, src: Reg::RAX }, 2),
        (Inst::MovRI { dst: Reg::RAX, imm: 0 }, 10),
        (Inst::Lea { dst: Reg::RAX, mem: MemOperand::abs(0) }, 9),
        (Inst::Load { dst: Reg::RAX, mem: MemOperand::abs(0) }, 9),
        (Inst::Store { mem: MemOperand::abs(0), src: Reg::RAX }, 9),
        (Inst::StoreImm { mem: MemOperand::abs(0), imm: 0 }, 12),
        (Inst::CmpMem { reg: Reg::RAX, mem: MemOperand::abs(0) }, 9),
        (Inst::AluRI { op: AluOp::Add, dst: Reg::RAX, imm: 0 }, 10),
        (Inst::CmpRI { lhs: Reg::RAX, imm: 0 }, 10),
        (Inst::Jmp { rel: 0 }, 5),
        (Inst::Jcc { cc: CondCode::E, rel: 0 }, 5),
        (Inst::Call { rel: 0 }, 5),
        (Inst::JmpInd { reg: Reg::RAX }, 2),
        (Inst::CallInd { reg: Reg::RAX }, 2),
        (Inst::SetCc { cc: CondCode::E, dst: Reg::RAX }, 2),
    ];
    for (inst, len) in expect {
        assert_eq!(bytes_of(*inst).len(), *len, "{inst:?}");
    }
}
