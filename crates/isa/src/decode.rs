//! Binary decoding of instructions.
//!
//! The decoder is strict: any unknown opcode, truncated operand, reserved
//! nibble or non-canonical memory encoding is an error. The in-enclave
//! verifier treats every decode error as grounds to reject the target binary
//! (the paper's "just-enough disassembling" must never guess).

use crate::encode::op;
use crate::{AluOp, CondCode, FpuOp, Inst, MemOperand, Reg};
use std::error::Error as StdError;
use std::fmt;

/// A decoding failure at a particular code offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset the failing instruction started at.
    pub offset: usize,
    /// What went wrong.
    pub kind: DecodeErrorKind,
}

/// The varieties of decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeErrorKind {
    /// The opcode byte does not denote any instruction.
    UnknownOpcode(u8),
    /// The instruction ran past the end of the code buffer.
    Truncated,
    /// A memory operand carried reserved or non-canonical bits.
    BadMemOperand,
    /// A register field used a reserved value.
    BadRegister,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            DecodeErrorKind::UnknownOpcode(op) => {
                write!(f, "unknown opcode {op:#04x} at offset {:#x}", self.offset)
            }
            DecodeErrorKind::Truncated => {
                write!(f, "truncated instruction at offset {:#x}", self.offset)
            }
            DecodeErrorKind::BadMemOperand => {
                write!(f, "malformed memory operand at offset {:#x}", self.offset)
            }
            DecodeErrorKind::BadRegister => {
                write!(f, "reserved register encoding at offset {:#x}", self.offset)
            }
        }
    }
}

impl StdError for DecodeError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    start: usize,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, kind: DecodeErrorKind) -> DecodeError {
        DecodeError { offset: self.start, kind }
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(DecodeError { offset: self.start, kind: DecodeErrorKind::Truncated })?;
        self.pos += 1;
        Ok(b)
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let mut b = [0u8; 4];
        for x in &mut b {
            *x = self.u8()?;
        }
        Ok(i32::from_le_bytes(b))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        let mut b = [0u8; 8];
        for x in &mut b {
            *x = self.u8()?;
        }
        Ok(i64::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(self.i64()? as u64)
    }

    fn reg(&mut self) -> Result<Reg, DecodeError> {
        let b = self.u8()?;
        Reg::from_index(b).ok_or_else(|| self.err(DecodeErrorKind::BadRegister))
    }

    fn reg_pair(&mut self) -> Result<(Reg, Reg), DecodeError> {
        let b = self.u8()?;
        let hi = Reg::from_index(b >> 4).expect("nibble < 16");
        let lo = Reg::from_index(b & 0xF).expect("nibble < 16");
        Ok((hi, lo))
    }

    fn mem(&mut self) -> Result<MemOperand, DecodeError> {
        let flags = self.u8()?;
        if flags > 3 {
            return Err(self.err(DecodeErrorKind::BadMemOperand));
        }
        let regs = self.u8()?;
        let scale_log2 = self.u8()?;
        if scale_log2 > 3 {
            return Err(self.err(DecodeErrorKind::BadMemOperand));
        }
        let disp = self.i32()?;
        let has_base = flags & 1 != 0;
        let has_index = flags & 2 != 0;
        // Canonical encoding: absent fields must be zero.
        if !has_base && (regs >> 4) != 0 {
            return Err(self.err(DecodeErrorKind::BadMemOperand));
        }
        if !has_index && ((regs & 0xF) != 0 || scale_log2 != 0) {
            return Err(self.err(DecodeErrorKind::BadMemOperand));
        }
        let base = has_base.then(|| Reg::from_index(regs >> 4).expect("nibble < 16"));
        let index = has_index
            .then(|| (Reg::from_index(regs & 0xF).expect("nibble < 16"), 1u8 << scale_log2));
        Ok(MemOperand { base, index, disp })
    }

    /// Validation-only skip of `n` operand bytes (same `Truncated`
    /// behaviour as reading them one at a time).
    fn skip(&mut self, n: usize) -> Result<(), DecodeError> {
        if self.pos + n > self.bytes.len() {
            return Err(self.err(DecodeErrorKind::Truncated));
        }
        self.pos += n;
        Ok(())
    }

    /// Validation-only register operand (same checks as [`Cursor::reg`]).
    fn reg_step(&mut self) -> Result<(), DecodeError> {
        let b = self.u8()?;
        if Reg::from_index(b).is_none() {
            return Err(self.err(DecodeErrorKind::BadRegister));
        }
        Ok(())
    }

    /// Validation-only memory operand (same checks, in the same order, as
    /// [`Cursor::mem`] — so the reported error kind is identical).
    fn mem_step(&mut self) -> Result<(), DecodeError> {
        let flags = self.u8()?;
        if flags > 3 {
            return Err(self.err(DecodeErrorKind::BadMemOperand));
        }
        let regs = self.u8()?;
        let scale_log2 = self.u8()?;
        if scale_log2 > 3 {
            return Err(self.err(DecodeErrorKind::BadMemOperand));
        }
        self.skip(4)?;
        let has_base = flags & 1 != 0;
        let has_index = flags & 2 != 0;
        if !has_base && (regs >> 4) != 0 {
            return Err(self.err(DecodeErrorKind::BadMemOperand));
        }
        if !has_index && ((regs & 0xF) != 0 || scale_log2 != 0) {
            return Err(self.err(DecodeErrorKind::BadMemOperand));
        }
        Ok(())
    }
}

/// Control-flow classification of a decoded instruction, as needed by the
/// recursive-descent frontier walk ([`crate::disassemble`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Execution falls through to the next instruction.
    Fall,
    /// Unconditional direct jump: control moves to the target only.
    Jmp {
        /// Signed displacement from the end of the instruction.
        rel: i32,
    },
    /// Conditional branch: target and fall-through both reachable.
    Jcc {
        /// Signed displacement from the end of the instruction.
        rel: i32,
    },
    /// Direct call: callee entry and fall-through both reachable.
    Call {
        /// Signed displacement from the end of the instruction.
        rel: i32,
    },
    /// Control never falls to the next byte (indirect jump, ret, halt,
    /// abort).
    Stop,
}

/// Validates the instruction at `offset` and classifies its control flow,
/// without materialising an [`Inst`].
///
/// This is the cheap half of [`decode`] used by the disassembler's serial
/// frontier walk: it performs *exactly* the same operand validation, in the
/// same byte order, so it succeeds iff `decode` succeeds, returns the same
/// length, and fails with the identical [`DecodeError`].
///
/// # Errors
///
/// Returns the same [`DecodeError`] that [`decode`] would return for the
/// same bytes and offset.
pub fn decode_step(bytes: &[u8], offset: usize) -> Result<(StepKind, usize), DecodeError> {
    let mut c = Cursor { bytes, start: offset, pos: offset };
    let opcode = c.u8()?;
    let step = match opcode {
        op::NOP | op::AEXPROBE => StepKind::Fall,
        op::HALT | op::RET => StepKind::Stop,
        op::ABORT => {
            c.skip(1)?;
            StepKind::Stop
        }
        op::OCALL => {
            c.skip(1)?;
            StepKind::Fall
        }
        // Register-pair forms: any nibble pair is a valid register pair.
        op::MOV_RR
        | op::CMP_RR
        | op::TEST_RR
        | op::FCMP
        | op::CVT_IF
        | op::CVT_FI
        | op::FSQRT
        | op::FNEG => {
            c.skip(1)?;
            StepKind::Fall
        }
        o if (op::ALU_RR_BASE..op::ALU_RR_BASE + 13).contains(&o) => {
            c.skip(1)?;
            StepKind::Fall
        }
        o if (op::FPU_BASE..op::FPU_BASE + 4).contains(&o) => {
            c.skip(1)?;
            StepKind::Fall
        }
        op::MOV_RI | op::CMP_RI => {
            c.reg_step()?;
            c.skip(8)?;
            StepKind::Fall
        }
        o if (op::ALU_RI_BASE..op::ALU_RI_BASE + 13).contains(&o) => {
            c.reg_step()?;
            c.skip(8)?;
            StepKind::Fall
        }
        op::LEA | op::LOAD | op::LOAD8 | op::STORE | op::STORE8 | op::CMP_MEM => {
            c.reg_step()?;
            c.mem_step()?;
            StepKind::Fall
        }
        op::STORE_IMM => {
            c.mem_step()?;
            c.skip(4)?;
            StepKind::Fall
        }
        op::NEG | op::NOT | op::PUSH | op::POP | op::CALL_IND => {
            c.reg_step()?;
            StepKind::Fall
        }
        op::JMP_IND => {
            c.reg_step()?;
            StepKind::Stop
        }
        op::SETCC => {
            let b = c.u8()?;
            if CondCode::from_index(b >> 4).is_none() {
                return Err(c.err(DecodeErrorKind::BadRegister));
            }
            StepKind::Fall
        }
        op::JMP => StepKind::Jmp { rel: c.i32()? },
        o if (op::JCC_BASE..op::JCC_BASE + 10).contains(&o) => StepKind::Jcc { rel: c.i32()? },
        op::CALL => StepKind::Call { rel: c.i32()? },
        other => return Err(DecodeError { offset, kind: DecodeErrorKind::UnknownOpcode(other) }),
    };
    Ok((step, c.pos - offset))
}

/// Decodes a single instruction starting at `offset` in `bytes`.
///
/// Returns the instruction and its encoded length.
///
/// # Errors
///
/// Returns a [`DecodeError`] for unknown opcodes, truncated instructions and
/// non-canonical operand encodings.
pub fn decode(bytes: &[u8], offset: usize) -> Result<(Inst, usize), DecodeError> {
    let mut c = Cursor { bytes, start: offset, pos: offset };
    let opcode = c.u8()?;
    let inst = match opcode {
        op::NOP => Inst::Nop,
        op::HALT => Inst::Halt,
        op::ABORT => Inst::Abort { code: c.u8()? },
        op::OCALL => Inst::Ocall { code: c.u8()? },
        op::AEXPROBE => Inst::AexProbe,
        op::MOV_RR => {
            let (dst, src) = c.reg_pair()?;
            Inst::MovRR { dst, src }
        }
        op::MOV_RI => {
            let dst = c.reg()?;
            Inst::MovRI { dst, imm: c.u64()? }
        }
        op::LEA => {
            let dst = c.reg()?;
            Inst::Lea { dst, mem: c.mem()? }
        }
        op::LOAD => {
            let dst = c.reg()?;
            Inst::Load { dst, mem: c.mem()? }
        }
        op::LOAD8 => {
            let dst = c.reg()?;
            Inst::Load8 { dst, mem: c.mem()? }
        }
        op::STORE => {
            let src = c.reg()?;
            Inst::Store { mem: c.mem()?, src }
        }
        op::STORE8 => {
            let src = c.reg()?;
            Inst::Store8 { mem: c.mem()?, src }
        }
        op::STORE_IMM => {
            let mem = c.mem()?;
            Inst::StoreImm { mem, imm: c.i32()? }
        }
        op::CMP_MEM => {
            let reg = c.reg()?;
            Inst::CmpMem { reg, mem: c.mem()? }
        }
        o if (op::ALU_RR_BASE..op::ALU_RR_BASE + 13).contains(&o) => {
            let alu = AluOp::from_index(o - op::ALU_RR_BASE).expect("range checked");
            let (dst, src) = c.reg_pair()?;
            Inst::AluRR { op: alu, dst, src }
        }
        o if (op::ALU_RI_BASE..op::ALU_RI_BASE + 13).contains(&o) => {
            let alu = AluOp::from_index(o - op::ALU_RI_BASE).expect("range checked");
            let dst = c.reg()?;
            Inst::AluRI { op: alu, dst, imm: c.i64()? }
        }
        op::NEG => Inst::Neg { reg: c.reg()? },
        op::NOT => Inst::Not { reg: c.reg()? },
        op::CMP_RR => {
            let (lhs, rhs) = c.reg_pair()?;
            Inst::CmpRR { lhs, rhs }
        }
        op::CMP_RI => {
            let lhs = c.reg()?;
            Inst::CmpRI { lhs, imm: c.i64()? }
        }
        op::TEST_RR => {
            let (lhs, rhs) = c.reg_pair()?;
            Inst::TestRR { lhs, rhs }
        }
        op::SETCC => {
            let b = c.u8()?;
            let cc =
                CondCode::from_index(b >> 4).ok_or_else(|| c.err(DecodeErrorKind::BadRegister))?;
            let dst = Reg::from_index(b & 0xF).expect("nibble < 16");
            Inst::SetCc { cc, dst }
        }
        op::JMP => Inst::Jmp { rel: c.i32()? },
        o if (op::JCC_BASE..op::JCC_BASE + 10).contains(&o) => {
            let cc = CondCode::from_index(o - op::JCC_BASE).expect("range checked");
            Inst::Jcc { cc, rel: c.i32()? }
        }
        op::JMP_IND => Inst::JmpInd { reg: c.reg()? },
        op::CALL => Inst::Call { rel: c.i32()? },
        op::CALL_IND => Inst::CallInd { reg: c.reg()? },
        op::RET => Inst::Ret,
        op::PUSH => Inst::Push { reg: c.reg()? },
        op::POP => Inst::Pop { reg: c.reg()? },
        o if (op::FPU_BASE..op::FPU_BASE + 4).contains(&o) => {
            let fop = FpuOp::from_index(o - op::FPU_BASE).expect("range checked");
            let (dst, src) = c.reg_pair()?;
            Inst::FpuRR { op: fop, dst, src }
        }
        op::FCMP => {
            let (lhs, rhs) = c.reg_pair()?;
            Inst::FCmp { lhs, rhs }
        }
        op::CVT_IF => {
            let (dst, src) = c.reg_pair()?;
            Inst::CvtIF { dst, src }
        }
        op::CVT_FI => {
            let (dst, src) = c.reg_pair()?;
            Inst::CvtFI { dst, src }
        }
        op::FSQRT => {
            let (dst, src) = c.reg_pair()?;
            Inst::FSqrt { dst, src }
        }
        op::FNEG => {
            let (dst, src) = c.reg_pair()?;
            Inst::FNeg { dst, src }
        }
        other => return Err(DecodeError { offset, kind: DecodeErrorKind::UnknownOpcode(other) }),
    };
    Ok((inst, c.pos - offset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode, encoded_len};

    fn roundtrip(inst: Inst) {
        let mut bytes = vec![0xEE, 0xEE]; // leading garbage to exercise offsets
        encode(&inst, &mut bytes);
        let (decoded, len) = decode(&bytes, 2).unwrap();
        assert_eq!(decoded, inst);
        assert_eq!(len, encoded_len(&inst));
    }

    #[test]
    fn roundtrip_all_simple_forms() {
        use crate::{AluOp, CondCode, FpuOp};
        let m = MemOperand::base_index(Reg::R8, Reg::R15, 8, -1024);
        let cases = vec![
            Inst::Nop,
            Inst::Halt,
            Inst::Abort { code: 3 },
            Inst::Ocall { code: 1 },
            Inst::AexProbe,
            Inst::MovRR { dst: Reg::RSP, src: Reg::RBP },
            Inst::MovRI { dst: Reg::R13, imm: u64::MAX },
            Inst::Lea { dst: Reg::RAX, mem: m },
            Inst::Load { dst: Reg::RAX, mem: MemOperand::abs(4096) },
            Inst::Load8 { dst: Reg::RCX, mem: MemOperand::base_disp(Reg::RSI, 1) },
            Inst::Store { mem: m, src: Reg::RDX },
            Inst::Store8 { mem: m, src: Reg::RDX },
            Inst::StoreImm { mem: m, imm: -7 },
            Inst::CmpMem { reg: Reg::RBX, mem: MemOperand::base_disp(Reg::RSP, 16) },
            Inst::AluRR { op: AluOp::SDiv, dst: Reg::RAX, src: Reg::RCX },
            Inst::AluRI { op: AluOp::Shl, dst: Reg::RAX, imm: 3 },
            Inst::Neg { reg: Reg::R9 },
            Inst::Not { reg: Reg::R10 },
            Inst::CmpRR { lhs: Reg::RAX, rhs: Reg::RBX },
            Inst::CmpRI { lhs: Reg::RAX, imm: i64::MIN },
            Inst::TestRR { lhs: Reg::RAX, rhs: Reg::RAX },
            Inst::Jmp { rel: i32::MAX },
            Inst::Jcc { cc: CondCode::Be, rel: -1 },
            Inst::JmpInd { reg: Reg::R11 },
            Inst::Call { rel: 1234 },
            Inst::CallInd { reg: Reg::RAX },
            Inst::Ret,
            Inst::Push { reg: Reg::RBP },
            Inst::Pop { reg: Reg::RBP },
            Inst::FpuRR { op: FpuOp::FDiv, dst: Reg::RAX, src: Reg::RBX },
            Inst::FCmp { lhs: Reg::RAX, rhs: Reg::RBX },
            Inst::CvtIF { dst: Reg::RAX, src: Reg::RBX },
            Inst::CvtFI { dst: Reg::RAX, src: Reg::RBX },
            Inst::FSqrt { dst: Reg::RAX, src: Reg::RBX },
            Inst::FNeg { dst: Reg::RAX, src: Reg::RBX },
        ];
        for inst in cases {
            roundtrip(inst);
        }
    }

    #[test]
    fn roundtrip_all_alu_and_cc_variants() {
        for op in crate::AluOp::ALL {
            roundtrip(Inst::AluRR { op, dst: Reg::R14, src: Reg::R15 });
            roundtrip(Inst::AluRI { op, dst: Reg::R14, imm: -42 });
        }
        for cc in crate::CondCode::ALL {
            roundtrip(Inst::Jcc { cc, rel: 77 });
        }
        for op in crate::FpuOp::ALL {
            roundtrip(Inst::FpuRR { op, dst: Reg::RAX, src: Reg::RDX });
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let err = decode(&[0xFF], 0).unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::UnknownOpcode(0xFF));
        let err = decode(&[0x2D], 0).unwrap_err(); // one past ALU_RR range
        assert_eq!(err.kind, DecodeErrorKind::UnknownOpcode(0x2D));
    }

    #[test]
    fn truncated_rejected() {
        let inst = Inst::MovRI { dst: Reg::RAX, imm: 0x1122334455667788 };
        let mut bytes = Vec::new();
        encode(&inst, &mut bytes);
        for cut in 1..bytes.len() {
            let err = decode(&bytes[..cut], 0).unwrap_err();
            assert_eq!(err.kind, DecodeErrorKind::Truncated, "cut at {cut}");
        }
        assert_eq!(decode(&[], 0).unwrap_err().kind, DecodeErrorKind::Truncated);
    }

    #[test]
    fn bad_register_rejected() {
        // push with register index 16.
        let err = decode(&[0x5F, 16], 0).unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::BadRegister);
    }

    #[test]
    fn noncanonical_mem_rejected() {
        // store rax, [mem] with flags=0 (no base/index) but nonzero regs byte.
        let bytes = [0x15, 0x00, 0x00, 0x10, 0x00, 0, 0, 0, 0];
        let err = decode(&bytes, 0).unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::BadMemOperand);
        // flags with reserved bits set.
        let bytes = [0x15, 0x00, 0x04, 0x00, 0x00, 0, 0, 0, 0];
        let err = decode(&bytes, 0).unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::BadMemOperand);
        // scale_log2 out of range.
        let bytes = [0x15, 0x00, 0x03, 0x00, 0x04, 0, 0, 0, 0];
        let err = decode(&bytes, 0).unwrap_err();
        assert_eq!(err.kind, DecodeErrorKind::BadMemOperand);
    }

    #[test]
    fn error_display_mentions_offset() {
        let err = decode(&[0x00, 0xFF], 1).unwrap_err();
        assert!(err.to_string().contains("0x1"));
    }

    /// The control-flow classification `decode_step` must produce for a
    /// fully decoded instruction.
    fn step_of(inst: &Inst) -> StepKind {
        match *inst {
            Inst::Jmp { rel } => StepKind::Jmp { rel },
            Inst::Jcc { rel, .. } => StepKind::Jcc { rel },
            Inst::Call { rel } => StepKind::Call { rel },
            Inst::JmpInd { .. } | Inst::Ret | Inst::Halt | Inst::Abort { .. } => StepKind::Stop,
            _ => StepKind::Fall,
        }
    }

    fn assert_lockstep(bytes: &[u8], offset: usize) {
        match (decode(bytes, offset), decode_step(bytes, offset)) {
            (Ok((inst, len)), Ok((step, step_len))) => {
                assert_eq!(len, step_len, "length mismatch on {bytes:02x?} at {offset}");
                assert_eq!(step, step_of(&inst), "step mismatch on {bytes:02x?} at {offset}");
            }
            (Err(a), Err(b)) => {
                assert_eq!(a, b, "error mismatch on {bytes:02x?} at {offset}");
            }
            (a, b) => panic!("verdict mismatch on {bytes:02x?} at {offset}: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn decode_step_matches_decode_on_encoded_instructions() {
        use crate::encode::encode;
        let m = MemOperand::base_index(Reg::R8, Reg::R15, 8, -1024);
        let mut cases = vec![
            Inst::Nop,
            Inst::Halt,
            Inst::Abort { code: 3 },
            Inst::Ocall { code: 1 },
            Inst::AexProbe,
            Inst::MovRR { dst: Reg::RSP, src: Reg::RBP },
            Inst::MovRI { dst: Reg::R13, imm: u64::MAX },
            Inst::Lea { dst: Reg::RAX, mem: m },
            Inst::Load { dst: Reg::RAX, mem: MemOperand::abs(4096) },
            Inst::Load8 { dst: Reg::RCX, mem: MemOperand::base_disp(Reg::RSI, 1) },
            Inst::Store { mem: m, src: Reg::RDX },
            Inst::Store8 { mem: m, src: Reg::RDX },
            Inst::StoreImm { mem: m, imm: -7 },
            Inst::CmpMem { reg: Reg::RBX, mem: MemOperand::base_disp(Reg::RSP, 16) },
            Inst::Neg { reg: Reg::R9 },
            Inst::Not { reg: Reg::R10 },
            Inst::CmpRR { lhs: Reg::RAX, rhs: Reg::RBX },
            Inst::CmpRI { lhs: Reg::RAX, imm: i64::MIN },
            Inst::TestRR { lhs: Reg::RAX, rhs: Reg::RAX },
            Inst::Jmp { rel: -9 },
            Inst::JmpInd { reg: Reg::R11 },
            Inst::Call { rel: 1234 },
            Inst::CallInd { reg: Reg::RAX },
            Inst::Ret,
            Inst::Push { reg: Reg::RBP },
            Inst::Pop { reg: Reg::RBP },
            Inst::FCmp { lhs: Reg::RAX, rhs: Reg::RBX },
            Inst::CvtIF { dst: Reg::RAX, src: Reg::RBX },
            Inst::CvtFI { dst: Reg::RAX, src: Reg::RBX },
            Inst::FSqrt { dst: Reg::RAX, src: Reg::RBX },
            Inst::FNeg { dst: Reg::RAX, src: Reg::RBX },
        ];
        for op in crate::AluOp::ALL {
            cases.push(Inst::AluRR { op, dst: Reg::R14, src: Reg::R15 });
            cases.push(Inst::AluRI { op, dst: Reg::R14, imm: -42 });
        }
        for cc in crate::CondCode::ALL {
            cases.push(Inst::Jcc { cc, rel: 77 });
            cases.push(Inst::SetCc { cc, dst: Reg::RDI });
        }
        for op in crate::FpuOp::ALL {
            cases.push(Inst::FpuRR { op, dst: Reg::RAX, src: Reg::RDX });
        }
        for inst in cases {
            let mut bytes = vec![0xEE; 2];
            encode(&inst, &mut bytes);
            assert_lockstep(&bytes, 2);
            // Every truncation of the encoding must fail identically too.
            for cut in 2..bytes.len() {
                assert_lockstep(&bytes[..cut], 2);
            }
        }
    }

    #[test]
    fn decode_step_matches_decode_on_arbitrary_bytes() {
        // Deterministic xorshift fuzz: decode and decode_step must agree on
        // verdict, length, control-flow kind and error for any byte soup.
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20_000 {
            let len = (next() % 14) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| (next() >> 24) as u8).collect();
            assert_lockstep(&bytes, 0);
        }
        // And with every opcode byte leading a fixed operand soup, so each
        // opcode arm is exercised even where the fuzz misses it.
        for opcode in 0u8..=255 {
            let mut bytes = vec![opcode];
            bytes.extend_from_slice(&[0x21, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10]);
            assert_lockstep(&bytes, 0);
            for cut in 1..bytes.len() {
                assert_lockstep(&bytes[..cut], 0);
            }
        }
    }
}
