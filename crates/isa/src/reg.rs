//! General-purpose registers.

use std::fmt;

/// One of the sixteen 64-bit general-purpose registers.
///
/// Registers follow x86-64 naming; [`Reg::RSP`] is the stack pointer the
/// `push`/`pop`/`call`/`ret` instructions operate on, and the register whose
/// integrity policy **P2** protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Reg {
    RAX = 0,
    RCX = 1,
    RDX = 2,
    RBX = 3,
    RSP = 4,
    RBP = 5,
    RSI = 6,
    RDI = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    /// All registers in encoding order.
    pub const ALL: [Reg; 16] = [
        Reg::RAX,
        Reg::RCX,
        Reg::RDX,
        Reg::RBX,
        Reg::RSP,
        Reg::RBP,
        Reg::RSI,
        Reg::RDI,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Returns the 4-bit encoding of this register.
    #[must_use]
    pub const fn index(self) -> u8 {
        self as u8
    }

    /// Decodes a register from its 4-bit encoding.
    ///
    /// Returns `None` if `idx > 15`.
    #[must_use]
    pub const fn from_index(idx: u8) -> Option<Reg> {
        if idx < 16 {
            Some(Self::ALL[idx as usize])
        } else {
            None
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Reg::RAX => "rax",
            Reg::RCX => "rcx",
            Reg::RDX => "rdx",
            Reg::RBX => "rbx",
            Reg::RSP => "rsp",
            Reg::RBP => "rbp",
            Reg::RSI => "rsi",
            Reg::RDI => "rdi",
            Reg::R8 => "r8",
            Reg::R9 => "r9",
            Reg::R10 => "r10",
            Reg::R11 => "r11",
            Reg::R12 => "r12",
            Reg::R13 => "r13",
            Reg::R14 => "r14",
            Reg::R15 => "r15",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index()), Some(r));
        }
    }

    #[test]
    fn out_of_range_index_rejected() {
        assert_eq!(Reg::from_index(16), None);
        assert_eq!(Reg::from_index(255), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::RSP.to_string(), "rsp");
        assert_eq!(Reg::R15.to_string(), "r15");
    }
}
