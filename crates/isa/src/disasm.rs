//! Recursive-descent disassembly — the paper's "clipped disassembler".
//!
//! DEFLECTION's code consumer inspects the target binary with *just-enough
//! disassembling* (Section IV-D): start at the program entry, follow direct
//! control flow, and when an indirect branch is reached, continue from the
//! addresses on the indirect-branch target list the code producer shipped as
//! the proof. The engine here implements exactly that algorithm and, like the
//! verifier requires, fails closed: decode errors, out-of-range targets and
//! instruction overlap (a branch into the *middle* of an instruction —
//! the classic way to skip an annotation) are all hard errors.
//!
//! The work is split into two phases so that the expensive half can use
//! multiple cores without changing the verdict:
//!
//! 1. a **serial frontier walk** over [`crate::decode_step`] discovers every
//!    reachable instruction boundary, validates each encoding and records
//!    function entries (the program entry, the indirect-branch targets, and
//!    every direct call target) — this phase is order-sensitive and performs
//!    *all* fail-closed checks;
//! 2. **materialisation** re-decodes each validated boundary into a full
//!    [`Inst`]; the boundaries are independent, so
//!    [`disassemble_threaded`] shards them across worker threads. The result
//!    is assembled into pre-assigned slots, so it is byte-identical to the
//!    serial order for any thread count.

use crate::{decode, decode_step, DecodeError, Inst, StepKind};
use std::collections::VecDeque;
use std::error::Error as StdError;
use std::fmt;

/// A disassembly failure; the verifier converts these into rejections.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DisasmError {
    /// An instruction failed to decode.
    Decode(DecodeError),
    /// A branch or provided target pointed outside the code region.
    TargetOutOfRange {
        /// The offending target offset.
        target: i64,
    },
    /// Control flow reached a byte inside an already-decoded instruction.
    InstructionOverlap {
        /// The offset control flow arrived at.
        target: usize,
        /// The start of the instruction it falls inside.
        within: usize,
    },
    /// The entry point is outside the code region.
    EntryOutOfRange {
        /// The offending entry offset.
        entry: usize,
    },
}

impl fmt::Display for DisasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DisasmError::Decode(e) => write!(f, "decode failure: {e}"),
            DisasmError::TargetOutOfRange { target } => {
                write!(f, "control-flow target {target:#x} outside code region")
            }
            DisasmError::InstructionOverlap { target, within } => {
                write!(f, "target {target:#x} lands inside instruction at {within:#x}")
            }
            DisasmError::EntryOutOfRange { entry } => {
                write!(f, "entry point {entry:#x} outside code region")
            }
        }
    }
}

impl StdError for DisasmError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            DisasmError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for DisasmError {
    fn from(e: DecodeError) -> Self {
        DisasmError::Decode(e)
    }
}

/// A basic block recovered by the disassembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Offset of the first instruction.
    pub start: usize,
    /// Offset one past the last byte of the block.
    pub end: usize,
    /// Offsets of the instructions in the block, in order.
    pub inst_offsets: Vec<usize>,
    /// Offsets of statically known successor blocks.
    pub successors: Vec<usize>,
    /// Whether the block ends in an indirect branch (successors are then the
    /// whole indirect-branch target list).
    pub ends_in_indirect: bool,
}

/// The result of recursive-descent disassembly over a code region.
///
/// Instructions are stored as a single address-sorted vector plus a dense
/// offset→index map, so per-instruction queries are O(1) and whole-program
/// scans are cache-friendly — both matter to the in-enclave verifier, which
/// walks the instruction list many times.
#[derive(Debug, Clone)]
pub struct Disassembly {
    /// `(offset, instruction, encoded length)` in address order.
    insts: Vec<(usize, Inst, usize)>,
    /// Dense map: code offset → index into `insts` (`u32::MAX` = not an
    /// instruction start).
    index: Vec<u32>,
    /// Offsets that start a basic block, sorted.
    leaders: Vec<usize>,
    /// Function entries (program entry ∪ indirect-branch targets ∪ direct
    /// call targets), sorted and deduplicated.
    function_entries: Vec<usize>,
    /// The entry offset disassembly started from.
    pub entry: usize,
    /// The indirect-branch targets provided as the proof.
    pub indirect_targets: Vec<usize>,
}

impl Disassembly {
    /// Every reached instruction as `(offset, instruction, length)`, in
    /// address order.
    #[must_use]
    pub fn insts(&self) -> &[(usize, Inst, usize)] {
        &self.insts
    }

    /// Number of decoded instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether no instruction was decoded (never true for a successful
    /// disassembly — the entry instruction always decodes).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Index into [`Disassembly::insts`] of the instruction starting at
    /// `offset`.
    #[must_use]
    pub fn index_of(&self, offset: usize) -> Option<usize> {
        match self.index.get(offset) {
            Some(&i) if i != u32::MAX => Some(i as usize),
            _ => None,
        }
    }

    /// Whether `offset` is a decoded instruction boundary.
    #[must_use]
    pub fn is_instruction_start(&self, offset: usize) -> bool {
        self.index_of(offset).is_some()
    }

    /// The instruction decoded at `offset`, if control flow reached it.
    #[must_use]
    pub fn inst_at(&self, offset: usize) -> Option<&Inst> {
        self.index_of(offset).map(|i| &self.insts[i].1)
    }

    /// The offset of the instruction following the one at `offset`.
    #[must_use]
    pub fn next_offset(&self, offset: usize) -> Option<usize> {
        self.index_of(offset).map(|i| offset + self.insts[i].2)
    }

    /// Offsets that start a basic block, sorted ascending.
    #[must_use]
    pub fn leaders(&self) -> &[usize] {
        &self.leaders
    }

    /// Whether `offset` starts a basic block.
    #[must_use]
    pub fn is_leader(&self, offset: usize) -> bool {
        self.leaders.binary_search(&offset).is_ok()
    }

    /// Function entry offsets — the program entry, every indirect-branch
    /// target and every direct call target — sorted ascending.
    ///
    /// These are the shard boundaries for parallel verification: every
    /// instruction belongs to the function of the closest entry at or below
    /// its offset (instructions below the first entry join the first
    /// function).
    #[must_use]
    pub fn function_entries(&self) -> &[usize] {
        &self.function_entries
    }

    /// Index into [`Disassembly::function_entries`] of the function whose
    /// address range contains `offset`.
    #[must_use]
    pub fn function_of_offset(&self, offset: usize) -> usize {
        self.function_entries.partition_point(|&e| e <= offset).saturating_sub(1)
    }

    /// Per-function instruction ranges: for each entry in
    /// [`Disassembly::function_entries`], the half-open range of indices
    /// into [`Disassembly::insts`] its address range covers.
    #[must_use]
    pub fn function_ranges(&self) -> Vec<(usize, usize)> {
        let n = self.function_entries.len();
        let mut ranges = Vec::with_capacity(n);
        let mut start = 0usize;
        for k in 1..=n {
            let end = if k == n {
                self.insts.len()
            } else {
                let boundary = self.function_entries[k];
                self.insts.partition_point(|t| t.0 < boundary)
            };
            ranges.push((start, end));
            start = end;
        }
        ranges
    }

    /// Reconstructs the basic blocks and their static successor edges.
    #[must_use]
    pub fn blocks(&self) -> Vec<BasicBlock> {
        let mut blocks = Vec::new();
        let mut current: Option<BasicBlock> = None;
        for &(off, inst, len) in &self.insts {
            let starts_block = self.is_leader(off);
            if starts_block {
                if let Some(b) = current.take() {
                    blocks.push(b);
                }
                current = Some(BasicBlock {
                    start: off,
                    end: off,
                    inst_offsets: Vec::new(),
                    successors: Vec::new(),
                    ends_in_indirect: false,
                });
            }
            let Some(block) = current.as_mut() else {
                // Instruction not reachable from any leader should not occur:
                // every decoded instruction is on a path from a leader.
                continue;
            };
            // A gap (unreached bytes) between instructions ends the block.
            if !block.inst_offsets.is_empty() && block.end != off {
                let done = current.take().expect("checked above");
                blocks.push(done);
                current = Some(BasicBlock {
                    start: off,
                    end: off,
                    inst_offsets: Vec::new(),
                    successors: Vec::new(),
                    ends_in_indirect: false,
                });
            }
            let block = current.as_mut().expect("just ensured");
            block.inst_offsets.push(off);
            block.end = off + len;
            let next = off + len;
            let mut terminate = false;
            match inst {
                Inst::Jmp { rel } => {
                    block.successors.push(add_rel(next, rel));
                    terminate = true;
                }
                Inst::Jcc { rel, .. } => {
                    block.successors.push(add_rel(next, rel));
                    block.successors.push(next);
                    terminate = true;
                }
                Inst::JmpInd { .. } => {
                    block.successors.extend(self.indirect_targets.iter().copied());
                    block.ends_in_indirect = true;
                    terminate = true;
                }
                Inst::Ret | Inst::Halt | Inst::Abort { .. } => {
                    terminate = true;
                }
                _ => {
                    // Calls fall through within the block for CFG purposes;
                    // the callee is reached separately via the worklist.
                    if self.is_leader(next) {
                        block.successors.push(next);
                        terminate = true;
                    }
                }
            }
            if terminate {
                blocks.push(current.take().expect("block present"));
            }
        }
        if let Some(b) = current.take() {
            blocks.push(b);
        }
        blocks
    }
}

fn add_rel(next: usize, rel: i32) -> usize {
    (next as i64 + rel as i64) as usize
}

/// Validated instruction boundaries found by the frontier walk.
struct Frontier {
    /// `(offset, length)` in address order.
    starts: Vec<(usize, usize)>,
    /// Basic-block leaders, sorted, deduplicated.
    leaders: Vec<usize>,
    /// Function entries, sorted, deduplicated.
    function_entries: Vec<usize>,
}

/// Byte states for the dense frontier map.
const FREE: u8 = 0;
const START: u8 = 1;
const INTERIOR: u8 = 2;

/// Phase 1: the serial recursive-descent walk. Performs every fail-closed
/// check (decode validity, range, overlap) using [`decode_step`], which is
/// validation-identical to [`decode`], so the walk fails exactly where a
/// full serial disassembly would.
fn frontier(
    code: &[u8],
    entry: usize,
    indirect_targets: &[usize],
) -> Result<Frontier, DisasmError> {
    if entry >= code.len() {
        return Err(DisasmError::EntryOutOfRange { entry });
    }
    let mut state = vec![FREE; code.len()];
    let mut starts: Vec<(usize, usize)> = Vec::new();
    let mut leaders: Vec<usize> = vec![entry];
    let mut function_entries: Vec<usize> = vec![entry];
    let mut work: VecDeque<usize> = VecDeque::new();

    work.push_back(entry);
    for &t in indirect_targets {
        if t >= code.len() {
            return Err(DisasmError::TargetOutOfRange { target: t as i64 });
        }
        leaders.push(t);
        function_entries.push(t);
        work.push_back(t);
    }

    while let Some(start) = work.pop_front() {
        let mut off = start;
        loop {
            // (a decoded instruction never extends past the buffer, so an
            // out-of-range offset can never be an overlap as well)
            if off >= code.len() {
                return Err(DisasmError::TargetOutOfRange { target: off as i64 });
            }
            match state[off] {
                START => break, // already disassembled from here
                INTERIOR => {
                    let within = (0..off)
                        .rev()
                        .find(|&p| state[p] == START)
                        .expect("interior bytes follow their instruction start");
                    return Err(DisasmError::InstructionOverlap { target: off, within });
                }
                _ => {}
            }
            let (step, len) = decode_step(code, off)?;
            // The new instruction must not swallow the start of a following,
            // already-decoded instruction.
            if let Some(b) = (off + 1..off + len).find(|&b| state[b] == START) {
                return Err(DisasmError::InstructionOverlap { target: b, within: off });
            }
            state[off] = START;
            for b in &mut state[off + 1..off + len] {
                *b = INTERIOR;
            }
            starts.push((off, len));
            let next = off + len;
            let mut enqueue = |target: i64| -> Result<usize, DisasmError> {
                if target < 0 || target as usize >= code.len() {
                    return Err(DisasmError::TargetOutOfRange { target });
                }
                let t = target as usize;
                leaders.push(t);
                work.push_back(t);
                Ok(t)
            };
            match step {
                StepKind::Jmp { rel } => {
                    enqueue(next as i64 + rel as i64)?;
                    break;
                }
                StepKind::Jcc { rel } => {
                    enqueue(next as i64 + rel as i64)?;
                    leaders.push(next);
                    off = next;
                }
                StepKind::Call { rel } => {
                    let callee = enqueue(next as i64 + rel as i64)?;
                    function_entries.push(callee);
                    off = next;
                }
                StepKind::Stop => break,
                StepKind::Fall => off = next,
            }
        }
    }

    starts.sort_unstable();
    leaders.sort_unstable();
    leaders.dedup();
    function_entries.sort_unstable();
    function_entries.dedup();
    Ok(Frontier { starts, leaders, function_entries })
}

/// Below this instruction count the thread-spawn overhead outweighs the
/// parallel decode win; materialise serially.
const PARALLEL_MIN_INSTS: usize = 256;

/// Phase 2: re-decode each validated boundary into a full [`Inst`]. Every
/// slot is pre-assigned, so sharding across threads cannot reorder or race:
/// the output is identical for any thread count.
fn materialize(
    code: &[u8],
    starts: &[(usize, usize)],
    threads: usize,
) -> Vec<(usize, Inst, usize)> {
    let full = |&(off, len): &(usize, usize)| -> (usize, Inst, usize) {
        let (inst, dlen) = decode(code, off).expect("frontier-validated instruction re-decodes");
        debug_assert_eq!(dlen, len);
        (off, inst, len)
    };
    if threads <= 1 || starts.len() < PARALLEL_MIN_INSTS {
        return starts.iter().map(full).collect();
    }
    let mut out: Vec<(usize, Inst, usize)> = vec![(0, Inst::Nop, 0); starts.len()];
    let chunk = starts.len().div_ceil(threads);
    std::thread::scope(|s| {
        for (src, dst) in starts.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move || {
                for (slot, t) in dst.iter_mut().zip(src) {
                    *slot = full(t);
                }
            });
        }
    });
    out
}

/// Disassembles `code` by recursive descent from `entry`, additionally
/// seeding the worklist with `indirect_targets` (the proof's legitimate
/// indirect-branch targets).
///
/// Equivalent to [`disassemble_threaded`] with one thread; this is the
/// TCB-counted default.
///
/// # Errors
///
/// Fails closed on any decode error, any control-flow target outside
/// `code`, and any target that lands inside an already-decoded instruction.
pub fn disassemble(
    code: &[u8],
    entry: usize,
    indirect_targets: &[usize],
) -> Result<Disassembly, DisasmError> {
    disassemble_threaded(code, entry, indirect_targets, 1)
}

/// [`disassemble`], with instruction materialisation sharded across up to
/// `threads` worker threads.
///
/// All fail-closed validation happens in the serial frontier walk before any
/// thread is spawned, so the verdict — success or the exact error — and the
/// resulting [`Disassembly`] are identical to the serial path for every
/// thread count.
///
/// # Errors
///
/// Exactly the errors [`disassemble`] returns, on exactly the same inputs.
pub fn disassemble_threaded(
    code: &[u8],
    entry: usize,
    indirect_targets: &[usize],
    threads: usize,
) -> Result<Disassembly, DisasmError> {
    let Frontier { starts, leaders, function_entries } = frontier(code, entry, indirect_targets)?;
    let insts = materialize(code, &starts, threads);
    let mut index = vec![u32::MAX; code.len()];
    for (i, t) in insts.iter().enumerate() {
        index[t.0] = u32::try_from(i).expect("code region fits in u32");
    }
    Ok(Disassembly {
        insts,
        index,
        leaders,
        function_entries,
        entry,
        indirect_targets: indirect_targets.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode_program, AluOp, CondCode, MemOperand, Reg};

    #[test]
    fn straight_line_program() {
        let prog = [
            Inst::MovRI { dst: Reg::RAX, imm: 1 },
            Inst::AluRI { op: AluOp::Add, dst: Reg::RAX, imm: 2 },
            Inst::Halt,
        ];
        let (code, offsets) = encode_program(&prog);
        let d = disassemble(&code, 0, &[]).unwrap();
        assert_eq!(d.len(), 3);
        for off in offsets {
            assert!(d.is_instruction_start(off));
        }
    }

    #[test]
    fn follows_both_branch_arms() {
        // 0: cmp rax, 0
        // 10: je +1 (to halt at 16)
        // 15: nop  (fallthrough arm)
        // 16: halt
        let prog = [
            Inst::CmpRI { lhs: Reg::RAX, imm: 0 },
            Inst::Jcc { cc: CondCode::E, rel: 1 },
            Inst::Nop,
            Inst::Halt,
        ];
        let (code, offsets) = encode_program(&prog);
        let d = disassemble(&code, 0, &[]).unwrap();
        assert_eq!(d.len(), 4);
        assert!(d.is_leader(offsets[2])); // fallthrough leader
        assert!(d.is_leader(offsets[3])); // branch target leader
    }

    #[test]
    fn code_after_unconditional_jmp_not_reached() {
        let prog = [
            Inst::Jmp { rel: 1 }, // skip the nop
            Inst::Nop,            // dead unless targeted
            Inst::Halt,
        ];
        let (code, offsets) = encode_program(&prog);
        let d = disassemble(&code, 0, &[]).unwrap();
        assert!(!d.is_instruction_start(offsets[1]));
        assert!(d.is_instruction_start(offsets[2]));
    }

    #[test]
    fn indirect_targets_continue_disassembly() {
        // jmp rax; unreachable without the provided list.
        let prog =
            [Inst::JmpInd { reg: Reg::RAX }, Inst::MovRI { dst: Reg::RAX, imm: 9 }, Inst::Halt];
        let (code, offsets) = encode_program(&prog);
        // Without the list the tail is invisible.
        let d = disassemble(&code, 0, &[]).unwrap();
        assert_eq!(d.len(), 1);
        // With the list, disassembly continues (the paper's algorithm).
        let d = disassemble(&code, 0, &[offsets[1]]).unwrap();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn follows_call_and_fallthrough() {
        let prog = [
            Inst::Call { rel: 2 }, // callee = ret at offset 7 (next inst is at 5)
            Inst::Nop,             // fallthrough after return
            Inst::Halt,
            Inst::Ret, // callee
        ];
        let (code, offsets) = encode_program(&prog);
        let d = disassemble(&code, 0, &[]).unwrap();
        assert_eq!(d.len(), 4);
        assert!(d.is_leader(offsets[3]));
    }

    #[test]
    fn jump_into_instruction_middle_is_rejected() {
        // jmp +(-4) targets inside the jmp's own rel32 bytes.
        let prog = [Inst::Jmp { rel: -4 }];
        let (code, _) = encode_program(&prog);
        let err = disassemble(&code, 0, &[]).unwrap_err();
        assert!(matches!(err, DisasmError::InstructionOverlap { .. }));
    }

    #[test]
    fn branch_outside_code_rejected() {
        let prog = [Inst::Jmp { rel: 1000 }];
        let (code, _) = encode_program(&prog);
        let err = disassemble(&code, 0, &[]).unwrap_err();
        assert!(matches!(err, DisasmError::TargetOutOfRange { .. }));
    }

    #[test]
    fn negative_branch_target_rejected() {
        let prog = [Inst::Jmp { rel: -100 }];
        let (code, _) = encode_program(&prog);
        let err = disassemble(&code, 0, &[]).unwrap_err();
        assert!(matches!(err, DisasmError::TargetOutOfRange { target } if target < 0));
    }

    #[test]
    fn decode_error_propagates() {
        let code = [0xFFu8];
        let err = disassemble(&code, 0, &[]).unwrap_err();
        assert!(matches!(err, DisasmError::Decode(_)));
    }

    #[test]
    fn falling_off_the_end_rejected() {
        let prog = [Inst::Nop]; // no terminator
        let (code, _) = encode_program(&prog);
        let err = disassemble(&code, 0, &[]).unwrap_err();
        assert!(matches!(err, DisasmError::TargetOutOfRange { .. }));
    }

    #[test]
    fn entry_out_of_range_rejected() {
        assert!(matches!(
            disassemble(&[], 0, &[]).unwrap_err(),
            DisasmError::EntryOutOfRange { .. }
        ));
        let (code, _) = encode_program(&[Inst::Halt]);
        assert!(matches!(
            disassemble(&code, 5, &[]).unwrap_err(),
            DisasmError::EntryOutOfRange { .. }
        ));
    }

    #[test]
    fn indirect_target_out_of_range_rejected() {
        let (code, _) = encode_program(&[Inst::Halt]);
        let err = disassemble(&code, 0, &[100]).unwrap_err();
        assert!(matches!(err, DisasmError::TargetOutOfRange { .. }));
    }

    #[test]
    fn basic_blocks_and_successors() {
        // block A: cmp; je T --> successors [T, fall]
        // block B (fall): store; jmp T
        // block T: halt
        let prog = [
            Inst::CmpRI { lhs: Reg::RAX, imm: 5 },  // 0..10
            Inst::Jcc { cc: CondCode::E, rel: 14 }, // 10..15
            Inst::Store { mem: MemOperand::abs(64), src: Reg::RAX }, // 15..24
            Inst::Jmp { rel: 0 },                   // 24..29
            Inst::Halt,                             // 29
        ];
        let (code, offsets) = encode_program(&prog);
        let d = disassemble(&code, 0, &[]).unwrap();
        let blocks = d.blocks();
        assert_eq!(blocks.len(), 3);
        let a = &blocks[0];
        assert_eq!(a.start, 0);
        assert_eq!(a.successors, vec![offsets[4], offsets[2]]);
        let b = &blocks[1];
        assert_eq!(b.start, offsets[2]);
        assert_eq!(b.successors, vec![offsets[4]]);
        let t = &blocks[2];
        assert_eq!(t.start, offsets[4]);
        assert!(t.successors.is_empty());
    }

    #[test]
    fn indirect_block_successors_are_the_list() {
        let prog = [
            Inst::JmpInd { reg: Reg::RAX }, // block 0
            Inst::Halt,                     // target 1
            Inst::Halt,                     // target 2
        ];
        let (code, offsets) = encode_program(&prog);
        let d = disassemble(&code, 0, &[offsets[1], offsets[2]]).unwrap();
        let blocks = d.blocks();
        let first = blocks.iter().find(|b| b.start == 0).unwrap();
        assert!(first.ends_in_indirect);
        assert_eq!(first.successors, vec![offsets[1], offsets[2]]);
    }

    #[test]
    fn index_and_iteration_agree() {
        let prog = [
            Inst::Call { rel: 2 },
            Inst::Nop,
            Inst::Halt,
            Inst::Ret,
            Inst::Nop, // dead
        ];
        let (code, _) = encode_program(&prog);
        let d = disassemble(&code, 0, &[]).unwrap();
        for (i, &(off, inst, len)) in d.insts().iter().enumerate() {
            assert_eq!(d.index_of(off), Some(i));
            assert_eq!(d.inst_at(off), Some(&inst));
            assert_eq!(d.next_offset(off), Some(off + len));
        }
        // Interior and unreached bytes are not instruction starts.
        assert_eq!(d.index_of(1), None);
    }

    #[test]
    fn function_entries_cover_entry_calls_and_indirect_targets() {
        let prog = [
            Inst::Call { rel: 3 },          // 0..5: callee at 8
            Inst::JmpInd { reg: Reg::RAX }, // 5..7
            Inst::Nop,                      // 7 (dead)
            Inst::Ret,                      // 8: direct callee
            Inst::Halt,                     // 9: indirect target
        ];
        let (code, offsets) = encode_program(&prog);
        let d = disassemble(&code, 0, &[offsets[4]]).unwrap();
        assert_eq!(d.function_entries(), &[0, offsets[3], offsets[4]]);
        assert_eq!(d.function_of_offset(0), 0);
        assert_eq!(d.function_of_offset(offsets[1]), 0);
        assert_eq!(d.function_of_offset(offsets[3]), 1);
        assert_eq!(d.function_of_offset(offsets[4]), 2);
        // Ranges partition the instruction list (the dead nop is not decoded).
        let ranges = d.function_ranges();
        assert_eq!(ranges.len(), 3);
        assert_eq!(ranges[0], (0, 2));
        assert_eq!(ranges[1], (2, 3));
        assert_eq!(ranges[2], (3, 4));
        assert_eq!(ranges.last().unwrap().1, d.len());
    }

    #[test]
    fn threaded_disassembly_is_identical_to_serial() {
        // Large enough to clear PARALLEL_MIN_INSTS: a long chain of calls
        // and arithmetic with a branchy tail.
        let mut prog = Vec::new();
        for i in 0..300 {
            prog.push(Inst::MovRI { dst: Reg::RAX, imm: i });
            prog.push(Inst::AluRI { op: AluOp::Add, dst: Reg::RAX, imm: 1 });
        }
        prog.push(Inst::CmpRI { lhs: Reg::RAX, imm: 0 });
        prog.push(Inst::Jcc { cc: CondCode::E, rel: 1 });
        prog.push(Inst::Nop);
        prog.push(Inst::Halt);
        let (code, _) = encode_program(&prog);
        let serial = disassemble(&code, 0, &[]).unwrap();
        assert!(serial.len() >= PARALLEL_MIN_INSTS);
        for threads in [2, 4, 8] {
            let par = disassemble_threaded(&code, 0, &[], threads).unwrap();
            assert_eq!(par.insts(), serial.insts(), "threads={threads}");
            assert_eq!(par.leaders(), serial.leaders());
            assert_eq!(par.function_entries(), serial.function_entries());
        }
    }
}
