//! Recursive-descent disassembly — the paper's "clipped disassembler".
//!
//! DEFLECTION's code consumer inspects the target binary with *just-enough
//! disassembling* (Section IV-D): start at the program entry, follow direct
//! control flow, and when an indirect branch is reached, continue from the
//! addresses on the indirect-branch target list the code producer shipped as
//! the proof. The engine here implements exactly that algorithm and, like the
//! verifier requires, fails closed: decode errors, out-of-range targets and
//! instruction overlap (a branch into the *middle* of an instruction —
//! the classic way to skip an annotation) are all hard errors.

use crate::{decode, DecodeError, Inst};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::error::Error as StdError;
use std::fmt;

/// A disassembly failure; the verifier converts these into rejections.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DisasmError {
    /// An instruction failed to decode.
    Decode(DecodeError),
    /// A branch or provided target pointed outside the code region.
    TargetOutOfRange {
        /// The offending target offset.
        target: i64,
    },
    /// Control flow reached a byte inside an already-decoded instruction.
    InstructionOverlap {
        /// The offset control flow arrived at.
        target: usize,
        /// The start of the instruction it falls inside.
        within: usize,
    },
    /// The entry point is outside the code region.
    EntryOutOfRange {
        /// The offending entry offset.
        entry: usize,
    },
}

impl fmt::Display for DisasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DisasmError::Decode(e) => write!(f, "decode failure: {e}"),
            DisasmError::TargetOutOfRange { target } => {
                write!(f, "control-flow target {target:#x} outside code region")
            }
            DisasmError::InstructionOverlap { target, within } => {
                write!(f, "target {target:#x} lands inside instruction at {within:#x}")
            }
            DisasmError::EntryOutOfRange { entry } => {
                write!(f, "entry point {entry:#x} outside code region")
            }
        }
    }
}

impl StdError for DisasmError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            DisasmError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for DisasmError {
    fn from(e: DecodeError) -> Self {
        DisasmError::Decode(e)
    }
}

/// A basic block recovered by the disassembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Offset of the first instruction.
    pub start: usize,
    /// Offset one past the last byte of the block.
    pub end: usize,
    /// Offsets of the instructions in the block, in order.
    pub inst_offsets: Vec<usize>,
    /// Offsets of statically known successor blocks.
    pub successors: Vec<usize>,
    /// Whether the block ends in an indirect branch (successors are then the
    /// whole indirect-branch target list).
    pub ends_in_indirect: bool,
}

/// The result of recursive-descent disassembly over a code region.
#[derive(Debug, Clone)]
pub struct Disassembly {
    /// Every reached instruction: offset → (instruction, encoded length).
    pub instrs: BTreeMap<usize, (Inst, usize)>,
    /// Offsets that start a basic block.
    pub leaders: BTreeSet<usize>,
    /// The entry offset disassembly started from.
    pub entry: usize,
    /// The indirect-branch targets provided as the proof.
    pub indirect_targets: Vec<usize>,
}

impl Disassembly {
    /// Whether `offset` is a decoded instruction boundary.
    #[must_use]
    pub fn is_instruction_start(&self, offset: usize) -> bool {
        self.instrs.contains_key(&offset)
    }

    /// The instruction decoded at `offset`, if control flow reached it.
    #[must_use]
    pub fn inst_at(&self, offset: usize) -> Option<&Inst> {
        self.instrs.get(&offset).map(|(i, _)| i)
    }

    /// The offset of the instruction following the one at `offset`.
    #[must_use]
    pub fn next_offset(&self, offset: usize) -> Option<usize> {
        self.instrs.get(&offset).map(|(_, len)| offset + len)
    }

    /// Reconstructs the basic blocks and their static successor edges.
    #[must_use]
    pub fn blocks(&self) -> Vec<BasicBlock> {
        let mut blocks = Vec::new();
        let mut current: Option<BasicBlock> = None;
        for (&off, &(inst, len)) in &self.instrs {
            let starts_block = self.leaders.contains(&off);
            if starts_block {
                if let Some(b) = current.take() {
                    blocks.push(b);
                }
                current = Some(BasicBlock {
                    start: off,
                    end: off,
                    inst_offsets: Vec::new(),
                    successors: Vec::new(),
                    ends_in_indirect: false,
                });
            }
            let Some(block) = current.as_mut() else {
                // Instruction not reachable from any leader should not occur:
                // every decoded instruction is on a path from a leader.
                continue;
            };
            // A gap (unreached bytes) between instructions ends the block.
            if !block.inst_offsets.is_empty() && block.end != off {
                let done = current.take().expect("checked above");
                blocks.push(done);
                current = Some(BasicBlock {
                    start: off,
                    end: off,
                    inst_offsets: Vec::new(),
                    successors: Vec::new(),
                    ends_in_indirect: false,
                });
            }
            let block = current.as_mut().expect("just ensured");
            block.inst_offsets.push(off);
            block.end = off + len;
            let next = off + len;
            let mut terminate = false;
            match inst {
                Inst::Jmp { rel } => {
                    block.successors.push(add_rel(next, rel));
                    terminate = true;
                }
                Inst::Jcc { rel, .. } => {
                    block.successors.push(add_rel(next, rel));
                    block.successors.push(next);
                    terminate = true;
                }
                Inst::JmpInd { .. } => {
                    block.successors.extend(self.indirect_targets.iter().copied());
                    block.ends_in_indirect = true;
                    terminate = true;
                }
                Inst::Ret | Inst::Halt | Inst::Abort { .. } => {
                    terminate = true;
                }
                _ => {
                    // Calls fall through within the block for CFG purposes;
                    // the callee is reached separately via the worklist.
                    if self.leaders.contains(&next) {
                        block.successors.push(next);
                        terminate = true;
                    }
                }
            }
            if terminate {
                blocks.push(current.take().expect("block present"));
            }
        }
        if let Some(b) = current.take() {
            blocks.push(b);
        }
        blocks
    }
}

fn add_rel(next: usize, rel: i32) -> usize {
    (next as i64 + rel as i64) as usize
}

/// Disassembles `code` by recursive descent from `entry`, additionally
/// seeding the worklist with `indirect_targets` (the proof's legitimate
/// indirect-branch targets).
///
/// # Errors
///
/// Fails closed on any decode error, any control-flow target outside
/// `code`, and any target that lands inside an already-decoded instruction.
pub fn disassemble(
    code: &[u8],
    entry: usize,
    indirect_targets: &[usize],
) -> Result<Disassembly, DisasmError> {
    if entry >= code.len() {
        return Err(DisasmError::EntryOutOfRange { entry });
    }
    let mut instrs: BTreeMap<usize, (Inst, usize)> = BTreeMap::new();
    let mut leaders: BTreeSet<usize> = BTreeSet::new();
    let mut work: VecDeque<usize> = VecDeque::new();

    leaders.insert(entry);
    work.push_back(entry);
    for &t in indirect_targets {
        if t >= code.len() {
            return Err(DisasmError::TargetOutOfRange { target: t as i64 });
        }
        leaders.insert(t);
        work.push_back(t);
    }

    // Checks `off` against the already-decoded instruction map; Ok(true)
    // means already decoded at exactly this offset.
    let check_overlap = |instrs: &BTreeMap<usize, (Inst, usize)>, off: usize| {
        if instrs.contains_key(&off) {
            return Ok(true);
        }
        if let Some((&prev, &(_, len))) = instrs.range(..off).next_back() {
            if prev + len > off {
                return Err(DisasmError::InstructionOverlap { target: off, within: prev });
            }
        }
        Ok(false)
    };

    while let Some(start) = work.pop_front() {
        let mut off = start;
        loop {
            if check_overlap(&instrs, off)? {
                break; // already disassembled from here
            }
            if off >= code.len() {
                return Err(DisasmError::TargetOutOfRange { target: off as i64 });
            }
            let (inst, len) = decode(code, off)?;
            // The new instruction must not swallow the start of a following,
            // already-decoded instruction.
            if let Some((&nxt, _)) = instrs.range(off + 1..).next() {
                if off + len > nxt {
                    return Err(DisasmError::InstructionOverlap { target: nxt, within: off });
                }
            }
            instrs.insert(off, (inst, len));
            let next = off + len;
            let mut enqueue = |target: i64| -> Result<usize, DisasmError> {
                if target < 0 || target as usize >= code.len() {
                    return Err(DisasmError::TargetOutOfRange { target });
                }
                let t = target as usize;
                leaders.insert(t);
                work.push_back(t);
                Ok(t)
            };
            match inst {
                Inst::Jmp { rel } => {
                    enqueue(next as i64 + rel as i64)?;
                    break;
                }
                Inst::Jcc { rel, .. } => {
                    enqueue(next as i64 + rel as i64)?;
                    leaders.insert(next);
                    off = next;
                }
                Inst::Call { rel } => {
                    enqueue(next as i64 + rel as i64)?;
                    off = next;
                }
                Inst::JmpInd { .. } | Inst::Ret | Inst::Halt | Inst::Abort { .. } => break,
                Inst::CallInd { .. } => {
                    off = next;
                }
                _ => {
                    off = next;
                }
            }
        }
    }

    Ok(Disassembly { instrs, leaders, entry, indirect_targets: indirect_targets.to_vec() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode_program, AluOp, CondCode, MemOperand, Reg};

    #[test]
    fn straight_line_program() {
        let prog = [
            Inst::MovRI { dst: Reg::RAX, imm: 1 },
            Inst::AluRI { op: AluOp::Add, dst: Reg::RAX, imm: 2 },
            Inst::Halt,
        ];
        let (code, offsets) = encode_program(&prog);
        let d = disassemble(&code, 0, &[]).unwrap();
        assert_eq!(d.instrs.len(), 3);
        for off in offsets {
            assert!(d.is_instruction_start(off));
        }
    }

    #[test]
    fn follows_both_branch_arms() {
        // 0: cmp rax, 0
        // 10: je +1 (to halt at 16)
        // 15: nop  (fallthrough arm)
        // 16: halt
        let prog = [
            Inst::CmpRI { lhs: Reg::RAX, imm: 0 },
            Inst::Jcc { cc: CondCode::E, rel: 1 },
            Inst::Nop,
            Inst::Halt,
        ];
        let (code, offsets) = encode_program(&prog);
        let d = disassemble(&code, 0, &[]).unwrap();
        assert_eq!(d.instrs.len(), 4);
        assert!(d.leaders.contains(&offsets[2])); // fallthrough leader
        assert!(d.leaders.contains(&offsets[3])); // branch target leader
    }

    #[test]
    fn code_after_unconditional_jmp_not_reached() {
        let prog = [
            Inst::Jmp { rel: 1 }, // skip the nop
            Inst::Nop,            // dead unless targeted
            Inst::Halt,
        ];
        let (code, offsets) = encode_program(&prog);
        let d = disassemble(&code, 0, &[]).unwrap();
        assert!(!d.is_instruction_start(offsets[1]));
        assert!(d.is_instruction_start(offsets[2]));
    }

    #[test]
    fn indirect_targets_continue_disassembly() {
        // jmp rax; unreachable without the provided list.
        let prog =
            [Inst::JmpInd { reg: Reg::RAX }, Inst::MovRI { dst: Reg::RAX, imm: 9 }, Inst::Halt];
        let (code, offsets) = encode_program(&prog);
        // Without the list the tail is invisible.
        let d = disassemble(&code, 0, &[]).unwrap();
        assert_eq!(d.instrs.len(), 1);
        // With the list, disassembly continues (the paper's algorithm).
        let d = disassemble(&code, 0, &[offsets[1]]).unwrap();
        assert_eq!(d.instrs.len(), 3);
    }

    #[test]
    fn follows_call_and_fallthrough() {
        let prog = [
            Inst::Call { rel: 2 }, // callee = ret at offset 7 (next inst is at 5)
            Inst::Nop,             // fallthrough after return
            Inst::Halt,
            Inst::Ret, // callee
        ];
        let (code, offsets) = encode_program(&prog);
        let d = disassemble(&code, 0, &[]).unwrap();
        assert_eq!(d.instrs.len(), 4);
        assert!(d.leaders.contains(&offsets[3]));
    }

    #[test]
    fn jump_into_instruction_middle_is_rejected() {
        // jmp +(-4) targets inside the jmp's own rel32 bytes.
        let prog = [Inst::Jmp { rel: -4 }];
        let (code, _) = encode_program(&prog);
        let err = disassemble(&code, 0, &[]).unwrap_err();
        assert!(matches!(err, DisasmError::InstructionOverlap { .. }));
    }

    #[test]
    fn branch_outside_code_rejected() {
        let prog = [Inst::Jmp { rel: 1000 }];
        let (code, _) = encode_program(&prog);
        let err = disassemble(&code, 0, &[]).unwrap_err();
        assert!(matches!(err, DisasmError::TargetOutOfRange { .. }));
    }

    #[test]
    fn negative_branch_target_rejected() {
        let prog = [Inst::Jmp { rel: -100 }];
        let (code, _) = encode_program(&prog);
        let err = disassemble(&code, 0, &[]).unwrap_err();
        assert!(matches!(err, DisasmError::TargetOutOfRange { target } if target < 0));
    }

    #[test]
    fn decode_error_propagates() {
        let code = [0xFFu8];
        let err = disassemble(&code, 0, &[]).unwrap_err();
        assert!(matches!(err, DisasmError::Decode(_)));
    }

    #[test]
    fn falling_off_the_end_rejected() {
        let prog = [Inst::Nop]; // no terminator
        let (code, _) = encode_program(&prog);
        let err = disassemble(&code, 0, &[]).unwrap_err();
        assert!(matches!(err, DisasmError::TargetOutOfRange { .. }));
    }

    #[test]
    fn entry_out_of_range_rejected() {
        assert!(matches!(
            disassemble(&[], 0, &[]).unwrap_err(),
            DisasmError::EntryOutOfRange { .. }
        ));
        let (code, _) = encode_program(&[Inst::Halt]);
        assert!(matches!(
            disassemble(&code, 5, &[]).unwrap_err(),
            DisasmError::EntryOutOfRange { .. }
        ));
    }

    #[test]
    fn indirect_target_out_of_range_rejected() {
        let (code, _) = encode_program(&[Inst::Halt]);
        let err = disassemble(&code, 0, &[100]).unwrap_err();
        assert!(matches!(err, DisasmError::TargetOutOfRange { .. }));
    }

    #[test]
    fn basic_blocks_and_successors() {
        // block A: cmp; je T --> successors [T, fall]
        // block B (fall): store; jmp T
        // block T: halt
        let prog = [
            Inst::CmpRI { lhs: Reg::RAX, imm: 5 },  // 0..10
            Inst::Jcc { cc: CondCode::E, rel: 14 }, // 10..15
            Inst::Store { mem: MemOperand::abs(64), src: Reg::RAX }, // 15..24
            Inst::Jmp { rel: 0 },                   // 24..29
            Inst::Halt,                             // 29
        ];
        let (code, offsets) = encode_program(&prog);
        let d = disassemble(&code, 0, &[]).unwrap();
        let blocks = d.blocks();
        assert_eq!(blocks.len(), 3);
        let a = &blocks[0];
        assert_eq!(a.start, 0);
        assert_eq!(a.successors, vec![offsets[4], offsets[2]]);
        let b = &blocks[1];
        assert_eq!(b.start, offsets[2]);
        assert_eq!(b.successors, vec![offsets[4]]);
        let t = &blocks[2];
        assert_eq!(t.start, offsets[4]);
        assert!(t.successors.is_empty());
    }

    #[test]
    fn indirect_block_successors_are_the_list() {
        let prog = [
            Inst::JmpInd { reg: Reg::RAX }, // block 0
            Inst::Halt,                     // target 1
            Inst::Halt,                     // target 2
        ];
        let (code, offsets) = encode_program(&prog);
        let d = disassemble(&code, 0, &[offsets[1], offsets[2]]).unwrap();
        let blocks = d.blocks();
        let first = blocks.iter().find(|b| b.start == 0).unwrap();
        assert!(first.ends_in_indirect);
        assert_eq!(first.successors, vec![offsets[1], offsets[2]]);
    }
}
