//! The instruction set.

use crate::{CondCode, MemOperand, Reg};
use std::fmt;

/// Integer ALU operations (`dst = dst op src`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AluOp {
    /// Wrapping addition.
    Add = 0,
    /// Wrapping subtraction.
    Sub = 1,
    /// Bitwise AND.
    And = 2,
    /// Bitwise OR.
    Or = 3,
    /// Bitwise XOR.
    Xor = 4,
    /// Logical shift left (count masked to 63).
    Shl = 5,
    /// Logical shift right.
    Shr = 6,
    /// Arithmetic shift right.
    Sar = 7,
    /// Wrapping multiplication (low 64 bits).
    Mul = 8,
    /// Unsigned division; faults on a zero divisor.
    UDiv = 9,
    /// Signed division; faults on zero divisor or `MIN / -1`.
    SDiv = 10,
    /// Unsigned remainder; faults on a zero divisor.
    URem = 11,
    /// Signed remainder; faults on zero divisor or `MIN % -1`.
    SRem = 12,
}

impl AluOp {
    /// All ALU operations in encoding order.
    pub const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
        AluOp::Mul,
        AluOp::UDiv,
        AluOp::SDiv,
        AluOp::URem,
        AluOp::SRem,
    ];

    /// Decodes from the opcode-relative index.
    #[must_use]
    pub const fn from_index(idx: u8) -> Option<AluOp> {
        if (idx as usize) < Self::ALL.len() {
            Some(Self::ALL[idx as usize])
        } else {
            None
        }
    }
}

/// Floating-point binary operations (`dst = dst op src`, IEEE 754 f64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FpuOp {
    /// Addition.
    FAdd = 0,
    /// Subtraction.
    FSub = 1,
    /// Multiplication.
    FMul = 2,
    /// Division (IEEE semantics: produces ±inf/NaN, never faults).
    FDiv = 3,
}

impl FpuOp {
    /// All FPU operations in encoding order.
    pub const ALL: [FpuOp; 4] = [FpuOp::FAdd, FpuOp::FSub, FpuOp::FMul, FpuOp::FDiv];

    /// Decodes from the opcode-relative index.
    #[must_use]
    pub const fn from_index(idx: u8) -> Option<FpuOp> {
        if (idx as usize) < Self::ALL.len() {
            Some(Self::ALL[idx as usize])
        } else {
            None
        }
    }
}

/// Well-known OCall service codes the bootstrap enclave's manifest can allow.
///
/// The paper's P0 policy restricts the target binary to a small set of
/// system-call wrappers defined in the EDL manifest; `send`/`recv` are the
/// ones the CCaaS setting needs (Section IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OcallCode {
    /// Send bytes to the data owner (encrypted and padded by the wrapper).
    Send = 0,
    /// Receive bytes from the data owner (decrypted by the wrapper).
    Recv = 1,
    /// Append a diagnostic line to the host log (plaintext-free: length only).
    Log = 2,
    /// Read a monotonic virtual clock (instruction count).
    Clock = 3,
}

impl OcallCode {
    /// Decodes a known OCall code.
    #[must_use]
    pub const fn from_u8(v: u8) -> Option<OcallCode> {
        match v {
            0 => Some(OcallCode::Send),
            1 => Some(OcallCode::Recv),
            2 => Some(OcallCode::Log),
            3 => Some(OcallCode::Clock),
            _ => None,
        }
    }
}

/// One machine instruction.
///
/// Relative branch displacements (`rel`) are measured from the address of the
/// *next* instruction, exactly like x86-64 `rel32` operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// No operation.
    Nop,
    /// Normal program termination; the exit value is in `rax`.
    Halt,
    /// Policy-violation abort raised by security annotations.
    Abort {
        /// Which policy fired (see `deflection_core::policy::abort_codes`).
        code: u8,
    },
    /// Trap to a runtime OCall wrapper (`rdi`, `rsi`, `rdx` arguments, result
    /// in `rax`).
    Ocall {
        /// Service code, usually one of [`OcallCode`].
        code: u8,
    },
    /// HyperRace-style co-location probe (P6): sets `rax` to 1 when the
    /// sibling-thread data-race test passes, 0 when it raises an alarm.
    AexProbe,
    /// `dst = src`.
    MovRR {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = imm` (full 64-bit immediate, like `movabs`).
    MovRI {
        /// Destination register.
        dst: Reg,
        /// 64-bit immediate.
        imm: u64,
    },
    /// `dst = effective_address(mem)` without touching memory.
    Lea {
        /// Destination register.
        dst: Reg,
        /// Address expression.
        mem: MemOperand,
    },
    /// 64-bit load.
    Load {
        /// Destination register.
        dst: Reg,
        /// Source address.
        mem: MemOperand,
    },
    /// Byte load, zero-extended.
    Load8 {
        /// Destination register.
        dst: Reg,
        /// Source address.
        mem: MemOperand,
    },
    /// 64-bit store — the operation policy **P1** guards.
    Store {
        /// Destination address.
        mem: MemOperand,
        /// Source register.
        src: Reg,
    },
    /// Byte store (low 8 bits of `src`) — also guarded by **P1**.
    Store8 {
        /// Destination address.
        mem: MemOperand,
        /// Source register.
        src: Reg,
    },
    /// 64-bit store of a sign-extended 32-bit immediate.
    StoreImm {
        /// Destination address.
        mem: MemOperand,
        /// Immediate value (sign-extended to 64 bits).
        imm: i32,
    },
    /// `cmp reg, qword [mem]` — used by the shadow-stack epilogue to compare
    /// the saved return address against the in-stack one.
    CmpMem {
        /// Left-hand register.
        reg: Reg,
        /// Right-hand memory operand.
        mem: MemOperand,
    },
    /// Register-register ALU operation.
    AluRR {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand).
        dst: Reg,
        /// Right operand.
        src: Reg,
    },
    /// Register-immediate ALU operation.
    AluRI {
        /// Operation.
        op: AluOp,
        /// Destination (and left operand).
        dst: Reg,
        /// Right operand immediate.
        imm: i64,
    },
    /// Two's-complement negation.
    Neg {
        /// Register negated in place.
        reg: Reg,
    },
    /// Bitwise complement.
    Not {
        /// Register complemented in place.
        reg: Reg,
    },
    /// Compare two registers and set flags.
    CmpRR {
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// Compare a register against an immediate and set flags.
    CmpRI {
        /// Left operand.
        lhs: Reg,
        /// Right operand immediate.
        imm: i64,
    },
    /// Bitwise AND of two registers, setting flags and discarding the result.
    TestRR {
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// Materializes a condition as 0/1 in a register (`setcc` + zero-extend).
    SetCc {
        /// Condition evaluated against the current flags.
        cc: CondCode,
        /// Destination register receiving 0 or 1.
        dst: Reg,
    },
    /// Unconditional relative jump.
    Jmp {
        /// Displacement from the next instruction.
        rel: i32,
    },
    /// Conditional relative jump.
    Jcc {
        /// Condition.
        cc: CondCode,
        /// Displacement from the next instruction.
        rel: i32,
    },
    /// Indirect jump through a register — guarded by policy **P5**.
    JmpInd {
        /// Register holding the target address.
        reg: Reg,
    },
    /// Relative call: pushes the return address, then jumps.
    Call {
        /// Displacement from the next instruction.
        rel: i32,
    },
    /// Indirect call through a register — guarded by policy **P5**.
    CallInd {
        /// Register holding the target address.
        reg: Reg,
    },
    /// Return: pops the return address and jumps to it — guarded by the
    /// shadow stack of policy **P5**.
    Ret,
    /// Push a register (decrements `rsp` by 8, stores).
    Push {
        /// Register pushed.
        reg: Reg,
    },
    /// Pop into a register (loads, increments `rsp` by 8).
    Pop {
        /// Register popped into.
        reg: Reg,
    },
    /// Floating-point binary operation on register bit patterns.
    FpuRR {
        /// Operation.
        op: FpuOp,
        /// Destination (and left operand).
        dst: Reg,
        /// Right operand.
        src: Reg,
    },
    /// Floating-point compare setting flags (`ucomisd`-like).
    FCmp {
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// Convert signed integer to f64.
    CvtIF {
        /// Destination register (f64 bits).
        dst: Reg,
        /// Source register (i64).
        src: Reg,
    },
    /// Convert f64 to signed integer (truncating, saturating).
    CvtFI {
        /// Destination register (i64).
        dst: Reg,
        /// Source register (f64 bits).
        src: Reg,
    },
    /// Floating-point square root.
    FSqrt {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Floating-point negation.
    FNeg {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
}

impl Inst {
    /// Returns the memory operand this instruction writes, if any — the set
    /// of instructions the P1 pass must annotate (the analogue of LLVM's
    /// `MachineInstr::mayStore()` the paper calls out).
    #[must_use]
    pub fn stored_mem(&self) -> Option<&MemOperand> {
        match self {
            Inst::Store { mem, .. } | Inst::Store8 { mem, .. } | Inst::StoreImm { mem, .. } => {
                Some(mem)
            }
            _ => None,
        }
    }

    /// Returns the register this instruction explicitly writes, if any.
    ///
    /// Implicit updates (the `rsp` adjustments of `push`/`pop`/`call`/`ret`,
    /// `rax` results of `ocall`/`aexprobe`) are *not* reported; policy P2
    /// only needs the explicit writes, while the implicit `rsp` moves are
    /// structurally bounded (±8) and protected by the stack guard pages.
    #[must_use]
    pub fn written_reg(&self) -> Option<Reg> {
        match *self {
            Inst::MovRR { dst, .. }
            | Inst::MovRI { dst, .. }
            | Inst::Lea { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Load8 { dst, .. }
            | Inst::AluRR { dst, .. }
            | Inst::AluRI { dst, .. }
            | Inst::FpuRR { dst, .. }
            | Inst::CvtIF { dst, .. }
            | Inst::CvtFI { dst, .. }
            | Inst::FSqrt { dst, .. }
            | Inst::FNeg { dst, .. } => Some(dst),
            Inst::SetCc { dst, .. } => Some(dst),
            Inst::Neg { reg } | Inst::Not { reg } | Inst::Pop { reg } => Some(reg),
            _ => None,
        }
    }

    /// Whether this instruction explicitly writes `rsp` — the trigger for a
    /// P2 annotation.
    #[must_use]
    pub fn writes_rsp_explicitly(&self) -> bool {
        self.written_reg() == Some(Reg::RSP)
    }

    /// Whether this is an indirect control transfer (P5 forward edge).
    #[must_use]
    pub fn is_indirect_branch(&self) -> bool {
        matches!(self, Inst::JmpInd { .. } | Inst::CallInd { .. })
    }

    /// Whether control never falls through to the next instruction.
    #[must_use]
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. } | Inst::JmpInd { .. } | Inst::Ret | Inst::Halt | Inst::Abort { .. }
        )
    }

    /// The relative displacement if this is a direct branch or call.
    #[must_use]
    pub fn direct_rel(&self) -> Option<i32> {
        match *self {
            Inst::Jmp { rel } | Inst::Jcc { rel, .. } | Inst::Call { rel } => Some(rel),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
            Inst::Abort { code } => write!(f, "abort {code}"),
            Inst::Ocall { code } => write!(f, "ocall {code}"),
            Inst::AexProbe => write!(f, "aexprobe"),
            Inst::MovRR { dst, src } => write!(f, "mov {dst}, {src}"),
            Inst::MovRI { dst, imm } => write!(f, "mov {dst}, {imm:#x}"),
            Inst::Lea { dst, mem } => write!(f, "lea {dst}, {mem}"),
            Inst::Load { dst, mem } => write!(f, "mov {dst}, qword {mem}"),
            Inst::Load8 { dst, mem } => write!(f, "movzx {dst}, byte {mem}"),
            Inst::Store { mem, src } => write!(f, "mov qword {mem}, {src}"),
            Inst::Store8 { mem, src } => write!(f, "mov byte {mem}, {src}"),
            Inst::StoreImm { mem, imm } => write!(f, "mov qword {mem}, {imm}"),
            Inst::CmpMem { reg, mem } => write!(f, "cmp {reg}, qword {mem}"),
            Inst::AluRR { op, dst, src } => write!(f, "{} {dst}, {src}", alu_name(*op)),
            Inst::AluRI { op, dst, imm } => write!(f, "{} {dst}, {imm}", alu_name(*op)),
            Inst::Neg { reg } => write!(f, "neg {reg}"),
            Inst::Not { reg } => write!(f, "not {reg}"),
            Inst::CmpRR { lhs, rhs } => write!(f, "cmp {lhs}, {rhs}"),
            Inst::CmpRI { lhs, imm } => write!(f, "cmp {lhs}, {imm:#x}"),
            Inst::TestRR { lhs, rhs } => write!(f, "test {lhs}, {rhs}"),
            Inst::SetCc { cc, dst } => write!(f, "set{cc} {dst}"),
            Inst::Jmp { rel } => write!(f, "jmp {rel:+}"),
            Inst::Jcc { cc, rel } => write!(f, "j{cc} {rel:+}"),
            Inst::JmpInd { reg } => write!(f, "jmp {reg}"),
            Inst::Call { rel } => write!(f, "call {rel:+}"),
            Inst::CallInd { reg } => write!(f, "call {reg}"),
            Inst::Ret => write!(f, "ret"),
            Inst::Push { reg } => write!(f, "push {reg}"),
            Inst::Pop { reg } => write!(f, "pop {reg}"),
            Inst::FpuRR { op, dst, src } => write!(f, "{} {dst}, {src}", fpu_name(*op)),
            Inst::FCmp { lhs, rhs } => write!(f, "fcmp {lhs}, {rhs}"),
            Inst::CvtIF { dst, src } => write!(f, "cvtsi2sd {dst}, {src}"),
            Inst::CvtFI { dst, src } => write!(f, "cvttsd2si {dst}, {src}"),
            Inst::FSqrt { dst, src } => write!(f, "sqrtsd {dst}, {src}"),
            Inst::FNeg { dst, src } => write!(f, "fneg {dst}, {src}"),
        }
    }
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
        AluOp::Sar => "sar",
        AluOp::Mul => "imul",
        AluOp::UDiv => "div",
        AluOp::SDiv => "idiv",
        AluOp::URem => "rem",
        AluOp::SRem => "irem",
    }
}

fn fpu_name(op: FpuOp) -> &'static str {
    match op {
        FpuOp::FAdd => "addsd",
        FpuOp::FSub => "subsd",
        FpuOp::FMul => "mulsd",
        FpuOp::FDiv => "divsd",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_mem_only_on_stores() {
        let m = MemOperand::base_disp(Reg::RAX, 0);
        assert!(Inst::Store { mem: m, src: Reg::RBX }.stored_mem().is_some());
        assert!(Inst::Store8 { mem: m, src: Reg::RBX }.stored_mem().is_some());
        assert!(Inst::StoreImm { mem: m, imm: 5 }.stored_mem().is_some());
        assert!(Inst::Load { dst: Reg::RBX, mem: m }.stored_mem().is_none());
        assert!(Inst::Push { reg: Reg::RBX }.stored_mem().is_none());
    }

    #[test]
    fn rsp_write_detection() {
        assert!(Inst::MovRR { dst: Reg::RSP, src: Reg::RAX }.writes_rsp_explicitly());
        assert!(Inst::AluRI { op: AluOp::Sub, dst: Reg::RSP, imm: 64 }.writes_rsp_explicitly());
        assert!(Inst::Pop { reg: Reg::RSP }.writes_rsp_explicitly());
        // Balanced push/pop of other registers are implicit, structurally
        // bounded updates — not P2 triggers.
        assert!(!Inst::Push { reg: Reg::RAX }.writes_rsp_explicitly());
        assert!(!Inst::Ret.writes_rsp_explicitly());
    }

    #[test]
    fn terminators() {
        assert!(Inst::Ret.is_terminator());
        assert!(Inst::Jmp { rel: 0 }.is_terminator());
        assert!(Inst::Halt.is_terminator());
        assert!(!Inst::Call { rel: 0 }.is_terminator());
        assert!(!Inst::Jcc { cc: CondCode::E, rel: 0 }.is_terminator());
    }

    #[test]
    fn indirect_branches() {
        assert!(Inst::JmpInd { reg: Reg::RAX }.is_indirect_branch());
        assert!(Inst::CallInd { reg: Reg::RAX }.is_indirect_branch());
        assert!(!Inst::Jmp { rel: 4 }.is_indirect_branch());
    }

    #[test]
    fn display_smoke() {
        let m = MemOperand::base_index(Reg::RAX, Reg::RCX, 8, 16);
        assert_eq!(
            Inst::Store { mem: m, src: Reg::RDX }.to_string(),
            "mov qword [rax+rcx*8+16], rdx"
        );
        assert_eq!(Inst::Jcc { cc: CondCode::Ae, rel: -12 }.to_string(), "jae -12");
    }

    #[test]
    fn ocall_code_roundtrip() {
        for c in [OcallCode::Send, OcallCode::Recv, OcallCode::Log, OcallCode::Clock] {
            assert_eq!(OcallCode::from_u8(c as u8), Some(c));
        }
        assert_eq!(OcallCode::from_u8(200), None);
    }
}
