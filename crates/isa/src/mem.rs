//! SIB-style memory operands: `[base + index*scale + disp]`.

use crate::Reg;
use std::fmt;

/// A memory operand with optional base and scaled index registers plus a
/// signed 32-bit displacement — the shape x86-64 Scale-Index-Base addressing
/// takes and the reason store destinations must be *computed* before the P1
/// bounds annotation can check them (the paper's Fig. 5 `lea`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemOperand {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register and scale (1, 2, 4 or 8), if any.
    pub index: Option<(Reg, u8)>,
    /// Signed displacement added to the address.
    pub disp: i32,
}

impl MemOperand {
    /// An absolute address operand `[disp]`.
    #[must_use]
    pub const fn abs(disp: i32) -> Self {
        MemOperand { base: None, index: None, disp }
    }

    /// A `[base + disp]` operand.
    #[must_use]
    pub const fn base_disp(base: Reg, disp: i32) -> Self {
        MemOperand { base: Some(base), index: None, disp }
    }

    /// A full `[base + index*scale + disp]` operand.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not 1, 2, 4 or 8.
    #[must_use]
    pub fn base_index(base: Reg, index: Reg, scale: u8, disp: i32) -> Self {
        assert!(matches!(scale, 1 | 2 | 4 | 8), "scale must be 1, 2, 4 or 8");
        MemOperand { base: Some(base), index: Some((index, scale)), disp }
    }

    /// An `[index*scale + disp]` operand with no base.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not 1, 2, 4 or 8.
    #[must_use]
    pub fn index_disp(index: Reg, scale: u8, disp: i32) -> Self {
        assert!(matches!(scale, 1 | 2 | 4 | 8), "scale must be 1, 2, 4 or 8");
        MemOperand { base: None, index: Some((index, scale)), disp }
    }

    /// Returns every register the operand reads.
    pub fn regs(&self) -> impl Iterator<Item = Reg> + '_ {
        self.base.into_iter().chain(self.index.map(|(r, _)| r))
    }

    /// Whether this operand references `reg`.
    #[must_use]
    pub fn uses(&self, reg: Reg) -> bool {
        self.regs().any(|r| r == reg)
    }
}

impl fmt::Display for MemOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some((i, s)) = self.index {
            if wrote {
                write!(f, "+")?;
            }
            write!(f, "{i}*{s}")?;
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote && self.disp >= 0 {
                write!(f, "+")?;
            }
            write!(f, "{}", self.disp)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(MemOperand::abs(64).to_string(), "[64]");
        assert_eq!(MemOperand::base_disp(Reg::RSP, 8).to_string(), "[rsp+8]");
        assert_eq!(MemOperand::base_disp(Reg::RBP, -16).to_string(), "[rbp-16]");
        assert_eq!(MemOperand::base_index(Reg::RAX, Reg::RCX, 8, 0).to_string(), "[rax+rcx*8]");
    }

    #[test]
    fn uses_reports_both_registers() {
        let m = MemOperand::base_index(Reg::RAX, Reg::RCX, 4, 12);
        assert!(m.uses(Reg::RAX));
        assert!(m.uses(Reg::RCX));
        assert!(!m.uses(Reg::RDX));
    }

    #[test]
    #[should_panic(expected = "scale must be 1, 2, 4 or 8")]
    fn invalid_scale_panics() {
        let _ = MemOperand::base_index(Reg::RAX, Reg::RCX, 3, 0);
    }
}
