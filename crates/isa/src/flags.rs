//! CPU flags and condition codes.

use std::fmt;

/// The arithmetic flags set by `cmp`, `test`, ALU operations and `fcmp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Zero flag — result was zero / operands compared equal.
    pub zf: bool,
    /// Sign flag — result was negative (signed view).
    pub sf: bool,
    /// Carry flag — unsigned overflow / borrow / `fcmp` "below".
    pub cf: bool,
    /// Overflow flag — signed overflow.
    pub of: bool,
}

impl Flags {
    /// Flags after comparing two signed/unsigned 64-bit values, with x86
    /// `cmp` semantics (`lhs - rhs`).
    #[must_use]
    pub fn from_cmp(lhs: u64, rhs: u64) -> Flags {
        let (res, borrow) = lhs.overflowing_sub(rhs);
        let signed_overflow = ((lhs ^ rhs) & (lhs ^ res)) >> 63 == 1;
        Flags { zf: res == 0, sf: (res >> 63) == 1, cf: borrow, of: signed_overflow }
    }

    /// Flags after comparing two `f64` values (x86 `ucomisd`-like mapping:
    /// `zf` = equal, `cf` = below; NaN compares as neither).
    #[must_use]
    pub fn from_fcmp(lhs: f64, rhs: f64) -> Flags {
        if lhs.is_nan() || rhs.is_nan() {
            // x86 sets ZF=CF=PF=1 on unordered; we approximate with both set
            // so neither strict ordering condition holds but E does not hold
            // either (we clear ZF to make NaN != NaN observable).
            return Flags { zf: false, sf: false, cf: true, of: false };
        }
        Flags { zf: lhs == rhs, sf: false, cf: lhs < rhs, of: false }
    }

    /// Flags after a logical operation producing `result` (CF/OF cleared).
    #[must_use]
    pub fn from_logic(result: u64) -> Flags {
        Flags { zf: result == 0, sf: (result >> 63) == 1, cf: false, of: false }
    }
}

/// Condition codes for conditional jumps, following x86 mnemonics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CondCode {
    /// Equal (`zf`).
    E = 0,
    /// Not equal (`!zf`).
    Ne = 1,
    /// Signed less-than (`sf != of`).
    L = 2,
    /// Signed less-or-equal (`zf || sf != of`).
    Le = 3,
    /// Signed greater-than (`!zf && sf == of`).
    G = 4,
    /// Signed greater-or-equal (`sf == of`).
    Ge = 5,
    /// Unsigned below (`cf`).
    B = 6,
    /// Unsigned below-or-equal (`cf || zf`).
    Be = 7,
    /// Unsigned above (`!cf && !zf`).
    A = 8,
    /// Unsigned above-or-equal (`!cf`).
    Ae = 9,
}

impl CondCode {
    /// All condition codes in encoding order.
    pub const ALL: [CondCode; 10] = [
        CondCode::E,
        CondCode::Ne,
        CondCode::L,
        CondCode::Le,
        CondCode::G,
        CondCode::Ge,
        CondCode::B,
        CondCode::Be,
        CondCode::A,
        CondCode::Ae,
    ];

    /// Decodes a condition code from its encoding.
    #[must_use]
    pub const fn from_index(idx: u8) -> Option<CondCode> {
        if (idx as usize) < Self::ALL.len() {
            Some(Self::ALL[idx as usize])
        } else {
            None
        }
    }

    /// Returns the encoding of this condition code.
    #[must_use]
    pub const fn index(self) -> u8 {
        self as u8
    }

    /// Evaluates the condition against `flags`.
    #[must_use]
    pub fn eval(self, flags: Flags) -> bool {
        match self {
            CondCode::E => flags.zf,
            CondCode::Ne => !flags.zf,
            CondCode::L => flags.sf != flags.of,
            CondCode::Le => flags.zf || flags.sf != flags.of,
            CondCode::G => !flags.zf && flags.sf == flags.of,
            CondCode::Ge => flags.sf == flags.of,
            CondCode::B => flags.cf,
            CondCode::Be => flags.cf || flags.zf,
            CondCode::A => !flags.cf && !flags.zf,
            CondCode::Ae => !flags.cf,
        }
    }

    /// Returns the negation of this condition.
    #[must_use]
    pub fn negate(self) -> CondCode {
        match self {
            CondCode::E => CondCode::Ne,
            CondCode::Ne => CondCode::E,
            CondCode::L => CondCode::Ge,
            CondCode::Le => CondCode::G,
            CondCode::G => CondCode::Le,
            CondCode::Ge => CondCode::L,
            CondCode::B => CondCode::Ae,
            CondCode::Be => CondCode::A,
            CondCode::A => CondCode::Be,
            CondCode::Ae => CondCode::B,
        }
    }
}

impl fmt::Display for CondCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CondCode::E => "e",
            CondCode::Ne => "ne",
            CondCode::L => "l",
            CondCode::Le => "le",
            CondCode::G => "g",
            CondCode::Ge => "ge",
            CondCode::B => "b",
            CondCode::Be => "be",
            CondCode::A => "a",
            CondCode::Ae => "ae",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_signed_ordering() {
        let f = Flags::from_cmp(-5i64 as u64, 3u64);
        assert!(CondCode::L.eval(f));
        assert!(!CondCode::G.eval(f));
        assert!(CondCode::Ne.eval(f));
        // Unsigned view: -5 as u64 is huge.
        assert!(CondCode::A.eval(f));
    }

    #[test]
    fn cmp_equal() {
        let f = Flags::from_cmp(42, 42);
        assert!(CondCode::E.eval(f));
        assert!(CondCode::Le.eval(f));
        assert!(CondCode::Ge.eval(f));
        assert!(CondCode::Be.eval(f));
        assert!(CondCode::Ae.eval(f));
        assert!(!CondCode::L.eval(f));
        assert!(!CondCode::A.eval(f));
    }

    #[test]
    fn cmp_unsigned_ordering() {
        let f = Flags::from_cmp(1, 2);
        assert!(CondCode::B.eval(f));
        assert!(!CondCode::Ae.eval(f));
    }

    #[test]
    fn signed_overflow_case() {
        // i64::MIN - 1 overflows; signed comparison must still be correct:
        // MIN < 1 so L must hold.
        let f = Flags::from_cmp(i64::MIN as u64, 1);
        assert!(CondCode::L.eval(f));
    }

    #[test]
    fn negation_is_involutive_and_opposite() {
        for cc in CondCode::ALL {
            assert_eq!(cc.negate().negate(), cc);
        }
        for (l, r) in [(0u64, 0u64), (1, 2), (2, 1), (u64::MAX, 0), (5, u64::MAX)] {
            let f = Flags::from_cmp(l, r);
            for cc in CondCode::ALL {
                assert_ne!(cc.eval(f), cc.negate().eval(f), "{cc} on cmp({l},{r})");
            }
        }
    }

    #[test]
    fn fcmp_ordering() {
        let f = Flags::from_fcmp(1.5, 2.5);
        assert!(CondCode::B.eval(f));
        let f = Flags::from_fcmp(2.5, 2.5);
        assert!(CondCode::E.eval(f));
        let f = Flags::from_fcmp(3.5, 2.5);
        assert!(CondCode::A.eval(f));
    }

    #[test]
    fn fcmp_nan_is_unordered() {
        let f = Flags::from_fcmp(f64::NAN, 1.0);
        assert!(!CondCode::E.eval(f));
        assert!(!CondCode::A.eval(f));
    }

    #[test]
    fn cond_code_index_roundtrip() {
        for cc in CondCode::ALL {
            assert_eq!(CondCode::from_index(cc.index()), Some(cc));
        }
        assert_eq!(CondCode::from_index(10), None);
    }
}
