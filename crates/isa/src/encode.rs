//! Binary encoding of instructions.
//!
//! The encoding is variable length (1–12 bytes) and canonical: for every
//! instruction there is exactly one byte sequence, and the decoder rejects
//! non-canonical forms. Canonicality matters to the verifier — the code
//! consumer compares re-disassembled annotations against expected templates
//! byte-for-byte at the instruction level.

use crate::{Inst, MemOperand, Reg};

/// Opcode constants (kept together so the decoder mirrors this table).
pub(crate) mod op {
    pub const NOP: u8 = 0x00;
    pub const HALT: u8 = 0x01;
    pub const ABORT: u8 = 0x02;
    pub const OCALL: u8 = 0x03;
    pub const AEXPROBE: u8 = 0x04;
    pub const MOV_RR: u8 = 0x10;
    pub const MOV_RI: u8 = 0x11;
    pub const LEA: u8 = 0x12;
    pub const LOAD: u8 = 0x13;
    pub const LOAD8: u8 = 0x14;
    pub const STORE: u8 = 0x15;
    pub const STORE8: u8 = 0x16;
    pub const STORE_IMM: u8 = 0x17;
    pub const CMP_MEM: u8 = 0x18;
    pub const ALU_RR_BASE: u8 = 0x20; // 0x20..=0x2C
    pub const ALU_RI_BASE: u8 = 0x30; // 0x30..=0x3C
    pub const NEG: u8 = 0x3D;
    pub const NOT: u8 = 0x3E;
    pub const CMP_RR: u8 = 0x40;
    pub const CMP_RI: u8 = 0x41;
    pub const TEST_RR: u8 = 0x42;
    pub const SETCC: u8 = 0x43;
    pub const JMP: u8 = 0x50;
    pub const JCC_BASE: u8 = 0x51; // 0x51..=0x5A
    pub const JMP_IND: u8 = 0x5B;
    pub const CALL: u8 = 0x5C;
    pub const CALL_IND: u8 = 0x5D;
    pub const RET: u8 = 0x5E;
    pub const PUSH: u8 = 0x5F;
    pub const POP: u8 = 0x60;
    pub const FPU_BASE: u8 = 0x70; // 0x70..=0x73
    pub const FCMP: u8 = 0x74;
    pub const CVT_IF: u8 = 0x75;
    pub const CVT_FI: u8 = 0x76;
    pub const FSQRT: u8 = 0x77;
    pub const FNEG: u8 = 0x78;
}

fn regs_byte(hi: Reg, lo: Reg) -> u8 {
    (hi.index() << 4) | lo.index()
}

pub(crate) fn encode_mem(mem: &MemOperand, out: &mut Vec<u8>) {
    let mut flags = 0u8;
    let mut regs = 0u8;
    let mut scale_log2 = 0u8;
    if let Some(base) = mem.base {
        flags |= 1;
        regs |= base.index() << 4;
    }
    if let Some((index, scale)) = mem.index {
        flags |= 2;
        regs |= index.index();
        scale_log2 = scale.trailing_zeros() as u8;
    }
    out.push(flags);
    out.push(regs);
    out.push(scale_log2);
    out.extend_from_slice(&mem.disp.to_le_bytes());
}

/// Appends the encoding of `inst` to `out`.
pub fn encode(inst: &Inst, out: &mut Vec<u8>) {
    match *inst {
        Inst::Nop => out.push(op::NOP),
        Inst::Halt => out.push(op::HALT),
        Inst::Abort { code } => {
            out.push(op::ABORT);
            out.push(code);
        }
        Inst::Ocall { code } => {
            out.push(op::OCALL);
            out.push(code);
        }
        Inst::AexProbe => out.push(op::AEXPROBE),
        Inst::MovRR { dst, src } => {
            out.push(op::MOV_RR);
            out.push(regs_byte(dst, src));
        }
        Inst::MovRI { dst, imm } => {
            out.push(op::MOV_RI);
            out.push(dst.index());
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Inst::Lea { dst, mem } => {
            out.push(op::LEA);
            out.push(dst.index());
            encode_mem(&mem, out);
        }
        Inst::Load { dst, mem } => {
            out.push(op::LOAD);
            out.push(dst.index());
            encode_mem(&mem, out);
        }
        Inst::Load8 { dst, mem } => {
            out.push(op::LOAD8);
            out.push(dst.index());
            encode_mem(&mem, out);
        }
        Inst::Store { mem, src } => {
            out.push(op::STORE);
            out.push(src.index());
            encode_mem(&mem, out);
        }
        Inst::Store8 { mem, src } => {
            out.push(op::STORE8);
            out.push(src.index());
            encode_mem(&mem, out);
        }
        Inst::StoreImm { mem, imm } => {
            out.push(op::STORE_IMM);
            encode_mem(&mem, out);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Inst::CmpMem { reg, mem } => {
            out.push(op::CMP_MEM);
            out.push(reg.index());
            encode_mem(&mem, out);
        }
        Inst::AluRR { op: alu, dst, src } => {
            out.push(op::ALU_RR_BASE + alu as u8);
            out.push(regs_byte(dst, src));
        }
        Inst::AluRI { op: alu, dst, imm } => {
            out.push(op::ALU_RI_BASE + alu as u8);
            out.push(dst.index());
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Inst::Neg { reg } => {
            out.push(op::NEG);
            out.push(reg.index());
        }
        Inst::Not { reg } => {
            out.push(op::NOT);
            out.push(reg.index());
        }
        Inst::CmpRR { lhs, rhs } => {
            out.push(op::CMP_RR);
            out.push(regs_byte(lhs, rhs));
        }
        Inst::CmpRI { lhs, imm } => {
            out.push(op::CMP_RI);
            out.push(lhs.index());
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Inst::TestRR { lhs, rhs } => {
            out.push(op::TEST_RR);
            out.push(regs_byte(lhs, rhs));
        }
        Inst::SetCc { cc, dst } => {
            out.push(op::SETCC);
            out.push((cc.index() << 4) | dst.index());
        }
        Inst::Jmp { rel } => {
            out.push(op::JMP);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Inst::Jcc { cc, rel } => {
            out.push(op::JCC_BASE + cc.index());
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Inst::JmpInd { reg } => {
            out.push(op::JMP_IND);
            out.push(reg.index());
        }
        Inst::Call { rel } => {
            out.push(op::CALL);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Inst::CallInd { reg } => {
            out.push(op::CALL_IND);
            out.push(reg.index());
        }
        Inst::Ret => out.push(op::RET),
        Inst::Push { reg } => {
            out.push(op::PUSH);
            out.push(reg.index());
        }
        Inst::Pop { reg } => {
            out.push(op::POP);
            out.push(reg.index());
        }
        Inst::FpuRR { op: fop, dst, src } => {
            out.push(op::FPU_BASE + fop as u8);
            out.push(regs_byte(dst, src));
        }
        Inst::FCmp { lhs, rhs } => {
            out.push(op::FCMP);
            out.push(regs_byte(lhs, rhs));
        }
        Inst::CvtIF { dst, src } => {
            out.push(op::CVT_IF);
            out.push(regs_byte(dst, src));
        }
        Inst::CvtFI { dst, src } => {
            out.push(op::CVT_FI);
            out.push(regs_byte(dst, src));
        }
        Inst::FSqrt { dst, src } => {
            out.push(op::FSQRT);
            out.push(regs_byte(dst, src));
        }
        Inst::FNeg { dst, src } => {
            out.push(op::FNEG);
            out.push(regs_byte(dst, src));
        }
    }
}

/// Returns the encoded length of `inst` in bytes.
#[must_use]
pub fn encoded_len(inst: &Inst) -> usize {
    let mut buf = Vec::with_capacity(12);
    encode(inst, &mut buf);
    buf.len()
}

/// Encodes a straight-line sequence of instructions into one byte buffer and
/// returns the byte offset of each instruction.
#[must_use]
pub fn encode_program(insts: &[Inst]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut offsets = Vec::with_capacity(insts.len());
    for inst in insts {
        offsets.push(bytes.len());
        encode(inst, &mut bytes);
    }
    (bytes, offsets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, CondCode};

    #[test]
    fn lengths_are_variable() {
        assert_eq!(encoded_len(&Inst::Ret), 1);
        assert_eq!(encoded_len(&Inst::Push { reg: Reg::RAX }), 2);
        assert_eq!(encoded_len(&Inst::MovRI { dst: Reg::RAX, imm: 0 }), 10);
        assert_eq!(encoded_len(&Inst::Jmp { rel: 0 }), 5);
        assert_eq!(encoded_len(&Inst::Store { mem: MemOperand::abs(0), src: Reg::RAX }), 9);
        assert_eq!(encoded_len(&Inst::StoreImm { mem: MemOperand::abs(0), imm: 0 }), 12);
    }

    #[test]
    fn program_offsets_are_cumulative() {
        let prog = [
            Inst::Nop,
            Inst::MovRI { dst: Reg::RAX, imm: 7 },
            Inst::AluRR { op: AluOp::Add, dst: Reg::RAX, src: Reg::RBX },
            Inst::Jcc { cc: CondCode::E, rel: -5 },
            Inst::Halt,
        ];
        let (bytes, offsets) = encode_program(&prog);
        assert_eq!(offsets, vec![0, 1, 11, 13, 18]);
        assert_eq!(bytes.len(), 19);
    }
}
