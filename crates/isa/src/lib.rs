//! # deflection-isa
//!
//! An executable, formally specified instruction-set model shaped after
//! x86-64, standing in for the real x64 ISA that DEFLECTION (DSN 2021)
//! instruments with LLVM and disassembles with a clipped Capstone.
//!
//! The model deliberately keeps every property the paper's techniques depend
//! on:
//!
//! * **variable-length encoding** ([`encode`]/[`decode`]) — instructions are
//!   1 to 10 bytes, so "jump into the middle of an annotation" is a real
//!   attack the verifier must rule out, and disassembly requires following
//!   control flow rather than fixed strides;
//! * **a stack pointer that is just a register** ([`Reg::RSP`]) — RSP can be
//!   corrupted by ordinary moves and arithmetic, motivating policy **P2**;
//! * **indirect control flow through registers** ([`Inst::CallInd`],
//!   [`Inst::JmpInd`]) — motivating the CFI policy **P5**;
//! * **stores with computed effective addresses** (SIB-style
//!   [`MemOperand`]) — motivating the store-bounds policy **P1**;
//! * **recursive-descent disassembly** ([`disassemble`]) — the exact algorithm
//!   the paper's "clipped disassembler" uses (Section V-B), including the use
//!   of the indirect-branch target list to continue across indirect flows.
//!
//! The semantics of each instruction are implemented by the CPU interpreter
//! in `deflection-sgx-sim`; this crate defines the syntax, the encoding, the
//! flags/condition model and the disassembler.
//!
//! # Example
//!
//! ```
//! use deflection_isa::{Inst, Reg, encode, decode};
//!
//! let program = [
//!     Inst::MovRI { dst: Reg::RAX, imm: 41 },
//!     Inst::AluRI { op: deflection_isa::AluOp::Add, dst: Reg::RAX, imm: 1 },
//!     Inst::Halt,
//! ];
//! let mut bytes = Vec::new();
//! for inst in &program {
//!     encode(inst, &mut bytes);
//! }
//! let (first, len) = decode(&bytes, 0)?;
//! assert_eq!(first, program[0]);
//! assert!(len > 1); // variable length: MovRI carries a 64-bit immediate
//! # Ok::<(), deflection_isa::DecodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decode;
mod disasm;
mod encode;
mod flags;
mod inst;
mod mem;
mod reg;

pub use decode::{decode, decode_step, DecodeError, DecodeErrorKind, StepKind};
pub use disasm::{disassemble, disassemble_threaded, BasicBlock, DisasmError, Disassembly};
pub use encode::{encode, encode_program, encoded_len};
pub use flags::{CondCode, Flags};
pub use inst::{AluOp, FpuOp, Inst, OcallCode};
pub use mem::MemOperand;
pub use reg::Reg;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_debug() {
        // C-DEBUG: spot-check that the core public types implement Debug.
        let _ = format!(
            "{:?} {:?} {:?} {:?} {:?}",
            Reg::RAX,
            MemOperand::base_disp(Reg::RSP, 8),
            Inst::Ret,
            CondCode::E,
            Flags::default()
        );
    }
}
