//! The CPU interpreter: executes one instruction at a time against the
//! simulated memory, with x86-64-style semantics for flags, stack
//! operations and control flow.

use crate::mem::Memory;
use crate::Fault;
use deflection_isa::{decode, AluOp, CondCode, Flags, FpuOp, Inst, MemOperand, Reg};

/// A predecoded instruction with its control-flow successors resolved to
/// absolute addresses — the dense operand form superblock traces dispatch
/// over. Direct control flow (`Jmp`/`Jcc`/`Call`) stores precomputed
/// targets so the threaded dispatcher never re-derives `next + rel`;
/// everything else carries the decoded [`Inst`] plus its fallthrough.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PredInst {
    /// A straight-line instruction (or an indirect branch / terminator the
    /// trace ends at): execute `inst` whose encoding ends at `next`.
    Line {
        /// The decoded instruction.
        inst: Inst,
        /// Address of the byte after the encoding (the fallthrough pc).
        next: u64,
    },
    /// An unconditional direct jump to `target`.
    Jmp {
        /// Absolute branch target.
        target: u64,
    },
    /// A conditional direct branch with both successors resolved.
    Jcc {
        /// The branch condition.
        cc: CondCode,
        /// Absolute target when the condition holds.
        taken: u64,
        /// Fallthrough address when it does not.
        fall: u64,
    },
    /// A direct call: push `ret`, continue at `target`.
    Call {
        /// Absolute call target.
        target: u64,
        /// Return address pushed on the stack.
        ret: u64,
    },
}

/// Fetches and decodes the instruction at `pc` without executing it — the
/// slow half of [`Cpu::step`], shared with the VM's icache miss path and
/// trace formation so a miss decodes exactly once.
pub(crate) fn fetch_decode_at(mem: &Memory, pc: u64) -> Result<(Inst, u8), Fault> {
    let window = mem.fetch_window(pc)?;
    let (inst, len) = decode(window, 0).map_err(|e| {
        Fault::Decode(deflection_isa::DecodeError { offset: pc as usize, kind: e.kind })
    })?;
    debug_assert!(len <= 16);
    Ok((inst, len as u8))
}

/// Architectural CPU state.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// General-purpose registers, indexed by [`Reg::index`].
    pub regs: [u64; 16],
    /// Arithmetic flags.
    pub flags: Flags,
    /// Program counter (virtual address).
    pub pc: u64,
}

/// What happened after executing one instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepEvent {
    /// Execution continues at the (already updated) `pc`.
    Continue,
    /// The program executed `halt`; `rax` holds the exit value.
    Halted,
    /// A security annotation executed `abort code` (policy violation caught
    /// at runtime).
    PolicyAbort(u8),
    /// The program requested OCall service `code`; the runtime must handle
    /// it and then resume.
    Ocall(u8),
    /// The program executed the co-location probe; the VM must run the
    /// HyperRace test and put the outcome in `rax`.
    AexProbe,
}

impl Cpu {
    /// Creates a CPU with all registers zero and `pc` at `entry`.
    #[must_use]
    pub fn new(entry: u64) -> Self {
        Cpu { regs: [0; 16], flags: Flags::default(), pc: entry }
    }

    /// Reads a register.
    #[must_use]
    pub fn get(&self, r: Reg) -> u64 {
        self.regs[r.index() as usize]
    }

    /// Writes a register.
    pub fn set(&mut self, r: Reg, v: u64) {
        self.regs[r.index() as usize] = v;
    }

    /// Computes the effective address of a memory operand.
    #[must_use]
    pub fn effective_address(&self, mem: &MemOperand) -> u64 {
        let mut addr = mem.disp as i64 as u64;
        if let Some(base) = mem.base {
            addr = addr.wrapping_add(self.get(base));
        }
        if let Some((index, scale)) = mem.index {
            addr = addr.wrapping_add(self.get(index).wrapping_mul(scale as u64));
        }
        addr
    }

    /// Fetches, decodes and executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] on decode failures, permission violations,
    /// unmapped accesses and divide errors. On a fault `pc` still points at
    /// the faulting instruction.
    pub fn step(&mut self, mem: &mut Memory) -> Result<StepEvent, Fault> {
        let (inst, len) = self.fetch_decode(mem)?;
        let next = self.pc.wrapping_add(len as u64);
        let event = self.execute(inst, next, mem)?;
        Ok(event)
    }

    /// Fetches and decodes the instruction at `pc` without executing it —
    /// the slow half of [`Cpu::step`], shared with the VM's icache miss
    /// path so a miss decodes exactly once and fills the cache.
    pub(crate) fn fetch_decode(&self, mem: &Memory) -> Result<(Inst, u8), Fault> {
        fetch_decode_at(mem, self.pc)
    }

    /// Executes one predecoded trace element. Must only be called when `pc`
    /// sits at the address the element was decoded from: direct branches
    /// skip the generic `next + rel` computation and assign their resolved
    /// successor directly, which is only equivalent under that invariant.
    ///
    /// # Errors
    ///
    /// Same fault surface as [`Cpu::execute`]; on a fault `pc` still points
    /// at the faulting instruction (a faulting `Call` push propagates before
    /// `pc` is updated, exactly like the interpreted path).
    #[inline]
    pub(crate) fn execute_pred(
        &mut self,
        op: &PredInst,
        mem: &mut Memory,
    ) -> Result<StepEvent, Fault> {
        match *op {
            PredInst::Line { inst, next } => self.execute(inst, next, mem),
            PredInst::Jmp { target } => {
                self.pc = target;
                Ok(StepEvent::Continue)
            }
            PredInst::Jcc { cc, taken, fall } => {
                self.pc = if cc.eval(self.flags) { taken } else { fall };
                Ok(StepEvent::Continue)
            }
            PredInst::Call { target, ret } => {
                self.push(ret, mem)?;
                self.pc = target;
                Ok(StepEvent::Continue)
            }
        }
    }

    fn push(&mut self, value: u64, mem: &mut Memory) -> Result<(), Fault> {
        let rsp = self.get(Reg::RSP).wrapping_sub(8);
        mem.store(rsp, 8, value)?;
        self.set(Reg::RSP, rsp);
        Ok(())
    }

    fn pop(&mut self, mem: &mut Memory) -> Result<u64, Fault> {
        let rsp = self.get(Reg::RSP);
        let v = mem.load(rsp, 8)?;
        self.set(Reg::RSP, rsp.wrapping_add(8));
        Ok(v)
    }

    fn alu(&mut self, op: AluOp, dst: Reg, rhs: u64) -> Result<(), Fault> {
        let lhs = self.get(dst);
        let result = match op {
            AluOp::Add => {
                let (r, carry) = lhs.overflowing_add(rhs);
                let of = ((lhs ^ r) & (rhs ^ r)) >> 63 == 1;
                self.flags = Flags { zf: r == 0, sf: r >> 63 == 1, cf: carry, of };
                r
            }
            AluOp::Sub => {
                self.flags = Flags::from_cmp(lhs, rhs);
                lhs.wrapping_sub(rhs)
            }
            AluOp::And => {
                let r = lhs & rhs;
                self.flags = Flags::from_logic(r);
                r
            }
            AluOp::Or => {
                let r = lhs | rhs;
                self.flags = Flags::from_logic(r);
                r
            }
            AluOp::Xor => {
                let r = lhs ^ rhs;
                self.flags = Flags::from_logic(r);
                r
            }
            AluOp::Shl => {
                let r = lhs.wrapping_shl((rhs & 63) as u32);
                self.flags = Flags::from_logic(r);
                r
            }
            AluOp::Shr => {
                let r = lhs.wrapping_shr((rhs & 63) as u32);
                self.flags = Flags::from_logic(r);
                r
            }
            AluOp::Sar => {
                let r = (lhs as i64).wrapping_shr((rhs & 63) as u32) as u64;
                self.flags = Flags::from_logic(r);
                r
            }
            AluOp::Mul => {
                let r = lhs.wrapping_mul(rhs);
                self.flags = Flags::from_logic(r);
                r
            }
            AluOp::UDiv => {
                if rhs == 0 {
                    return Err(Fault::DivideError { pc: self.pc });
                }
                let r = lhs / rhs;
                self.flags = Flags::from_logic(r);
                r
            }
            AluOp::SDiv => {
                let (l, r64) = (lhs as i64, rhs as i64);
                if r64 == 0 || (l == i64::MIN && r64 == -1) {
                    return Err(Fault::DivideError { pc: self.pc });
                }
                let r = (l / r64) as u64;
                self.flags = Flags::from_logic(r);
                r
            }
            AluOp::URem => {
                if rhs == 0 {
                    return Err(Fault::DivideError { pc: self.pc });
                }
                let r = lhs % rhs;
                self.flags = Flags::from_logic(r);
                r
            }
            AluOp::SRem => {
                let (l, r64) = (lhs as i64, rhs as i64);
                if r64 == 0 || (l == i64::MIN && r64 == -1) {
                    return Err(Fault::DivideError { pc: self.pc });
                }
                let r = (l % r64) as u64;
                self.flags = Flags::from_logic(r);
                r
            }
        };
        self.set(dst, result);
        Ok(())
    }

    /// Executes an already-decoded instruction whose encoding ends at
    /// `next`. Callers (the step path and the icache dispatch loop) must
    /// pass the `(inst, next)` pair the bytes at `pc` currently decode to.
    pub(crate) fn execute(
        &mut self,
        inst: Inst,
        next: u64,
        mem: &mut Memory,
    ) -> Result<StepEvent, Fault> {
        let rel_target = |rel: i32| next.wrapping_add(rel as i64 as u64);
        match inst {
            Inst::Nop => {}
            Inst::Halt => return Ok(StepEvent::Halted),
            Inst::Abort { code } => return Ok(StepEvent::PolicyAbort(code)),
            Inst::Ocall { code } => {
                self.pc = next;
                return Ok(StepEvent::Ocall(code));
            }
            Inst::AexProbe => {
                self.pc = next;
                return Ok(StepEvent::AexProbe);
            }
            Inst::MovRR { dst, src } => {
                let v = self.get(src);
                self.set(dst, v);
            }
            Inst::MovRI { dst, imm } => self.set(dst, imm),
            Inst::Lea { dst, mem: m } => {
                let ea = self.effective_address(&m);
                self.set(dst, ea);
            }
            Inst::Load { dst, mem: m } => {
                let v = mem.load(self.effective_address(&m), 8)?;
                self.set(dst, v);
            }
            Inst::Load8 { dst, mem: m } => {
                let v = mem.load(self.effective_address(&m), 1)?;
                self.set(dst, v);
            }
            Inst::Store { mem: m, src } => {
                mem.store(self.effective_address(&m), 8, self.get(src))?;
            }
            Inst::Store8 { mem: m, src } => {
                mem.store(self.effective_address(&m), 1, self.get(src) & 0xFF)?;
            }
            Inst::StoreImm { mem: m, imm } => {
                mem.store(self.effective_address(&m), 8, imm as i64 as u64)?;
            }
            Inst::CmpMem { reg, mem: m } => {
                let rhs = mem.load(self.effective_address(&m), 8)?;
                self.flags = Flags::from_cmp(self.get(reg), rhs);
            }
            Inst::AluRR { op, dst, src } => {
                let rhs = self.get(src);
                self.alu(op, dst, rhs)?;
            }
            Inst::AluRI { op, dst, imm } => self.alu(op, dst, imm as u64)?,
            Inst::Neg { reg } => {
                let v = (self.get(reg) as i64).wrapping_neg() as u64;
                self.flags = Flags::from_logic(v);
                self.set(reg, v);
            }
            Inst::Not { reg } => {
                let v = !self.get(reg);
                self.set(reg, v);
            }
            Inst::CmpRR { lhs, rhs } => {
                self.flags = Flags::from_cmp(self.get(lhs), self.get(rhs));
            }
            Inst::CmpRI { lhs, imm } => {
                self.flags = Flags::from_cmp(self.get(lhs), imm as u64);
            }
            Inst::TestRR { lhs, rhs } => {
                self.flags = Flags::from_logic(self.get(lhs) & self.get(rhs));
            }
            Inst::SetCc { cc, dst } => {
                let v = cc.eval(self.flags) as u64;
                self.set(dst, v);
            }
            Inst::Jmp { rel } => {
                self.pc = rel_target(rel);
                return Ok(StepEvent::Continue);
            }
            Inst::Jcc { cc, rel } => {
                self.pc = if cc.eval(self.flags) { rel_target(rel) } else { next };
                return Ok(StepEvent::Continue);
            }
            Inst::JmpInd { reg } => {
                self.pc = self.get(reg);
                return Ok(StepEvent::Continue);
            }
            Inst::Call { rel } => {
                self.push(next, mem)?;
                self.pc = rel_target(rel);
                return Ok(StepEvent::Continue);
            }
            Inst::CallInd { reg } => {
                let target = self.get(reg);
                self.push(next, mem)?;
                self.pc = target;
                return Ok(StepEvent::Continue);
            }
            Inst::Ret => {
                self.pc = self.pop(mem)?;
                return Ok(StepEvent::Continue);
            }
            Inst::Push { reg } => {
                let v = self.get(reg);
                self.push(v, mem)?;
            }
            Inst::Pop { reg } => {
                let v = self.pop(mem)?;
                self.set(reg, v);
            }
            Inst::FpuRR { op, dst, src } => {
                let a = f64::from_bits(self.get(dst));
                let b = f64::from_bits(self.get(src));
                let r = match op {
                    FpuOp::FAdd => a + b,
                    FpuOp::FSub => a - b,
                    FpuOp::FMul => a * b,
                    FpuOp::FDiv => a / b,
                };
                self.set(dst, r.to_bits());
            }
            Inst::FCmp { lhs, rhs } => {
                self.flags =
                    Flags::from_fcmp(f64::from_bits(self.get(lhs)), f64::from_bits(self.get(rhs)));
            }
            Inst::CvtIF { dst, src } => {
                let v = self.get(src) as i64 as f64;
                self.set(dst, v.to_bits());
            }
            Inst::CvtFI { dst, src } => {
                // Rust's `as` conversion saturates, matching the documented
                // semantics.
                let v = f64::from_bits(self.get(src)) as i64;
                self.set(dst, v as u64);
            }
            Inst::FSqrt { dst, src } => {
                let v = f64::from_bits(self.get(src)).sqrt();
                self.set(dst, v.to_bits());
            }
            Inst::FNeg { dst, src } => {
                let v = -f64::from_bits(self.get(src));
                self.set(dst, v.to_bits());
            }
        }
        self.pc = next;
        Ok(StepEvent::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{EnclaveLayout, MemConfig};
    use deflection_isa::{encode_program, CondCode};

    fn setup(prog: &[Inst]) -> (Cpu, Memory, Vec<usize>) {
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut mem = Memory::new(layout.clone());
        let (bytes, offsets) = encode_program(prog);
        mem.poke_bytes(layout.code.start, &bytes).unwrap();
        let mut cpu = Cpu::new(layout.code.start);
        cpu.set(Reg::RSP, layout.initial_rsp());
        (cpu, mem, offsets)
    }

    fn run_to_halt(cpu: &mut Cpu, mem: &mut Memory) -> u64 {
        for _ in 0..100_000 {
            match cpu.step(mem).unwrap() {
                StepEvent::Continue => {}
                StepEvent::Halted => return cpu.get(Reg::RAX),
                other => panic!("unexpected event {other:?}"),
            }
        }
        panic!("did not halt");
    }

    #[test]
    fn arithmetic_and_halt() {
        let (mut cpu, mut mem, _) = setup(&[
            Inst::MovRI { dst: Reg::RAX, imm: 40 },
            Inst::AluRI { op: AluOp::Add, dst: Reg::RAX, imm: 2 },
            Inst::Halt,
        ]);
        assert_eq!(run_to_halt(&mut cpu, &mut mem), 42);
    }

    #[test]
    fn loop_with_conditional_branch() {
        // rax = 0; rcx = 5; loop { rax += rcx; rcx -= 1; } while rcx != 0
        let (mut cpu, mut mem, _) = setup(&[
            Inst::MovRI { dst: Reg::RAX, imm: 0 },
            Inst::MovRI { dst: Reg::RCX, imm: 5 },
            Inst::AluRR { op: AluOp::Add, dst: Reg::RAX, src: Reg::RCX }, // loop head
            Inst::AluRI { op: AluOp::Sub, dst: Reg::RCX, imm: 1 },
            Inst::CmpRI { lhs: Reg::RCX, imm: 0 },
            Inst::Jcc { cc: CondCode::Ne, rel: -(2 + 10 + 10 + 5) },
            Inst::Halt,
        ]);
        assert_eq!(run_to_halt(&mut cpu, &mut mem), 15);
    }

    #[test]
    fn call_and_ret() {
        // main: call f; halt --- f: mov rax, 7; ret
        let prog = [
            Inst::Call { rel: 1 },                 // next=5, target=6
            Inst::Halt,                            // 5
            Inst::MovRI { dst: Reg::RAX, imm: 7 }, // 6
            Inst::Ret,
        ];
        let (mut cpu, mut mem, _) = setup(&prog);
        assert_eq!(run_to_halt(&mut cpu, &mut mem), 7);
    }

    #[test]
    fn push_pop_roundtrip_and_rsp_motion() {
        let (mut cpu, mut mem, _) = setup(&[
            Inst::MovRI { dst: Reg::RBX, imm: 0x1234 },
            Inst::Push { reg: Reg::RBX },
            Inst::MovRI { dst: Reg::RBX, imm: 0 },
            Inst::Pop { reg: Reg::RAX },
            Inst::Halt,
        ]);
        let rsp0 = cpu.get(Reg::RSP);
        assert_eq!(run_to_halt(&mut cpu, &mut mem), 0x1234);
        assert_eq!(cpu.get(Reg::RSP), rsp0);
    }

    #[test]
    fn memory_load_store_with_sib() {
        let layout = EnclaveLayout::new(MemConfig::small());
        let heap = layout.heap.start;
        let (mut cpu, mut mem, _) = setup(&[
            Inst::MovRI { dst: Reg::RDI, imm: heap },
            Inst::MovRI { dst: Reg::RCX, imm: 3 },
            Inst::MovRI { dst: Reg::RAX, imm: 99 },
            // [rdi + rcx*8 + 16]
            Inst::Store { mem: MemOperand::base_index(Reg::RDI, Reg::RCX, 8, 16), src: Reg::RAX },
            Inst::Load { dst: Reg::RBX, mem: MemOperand::base_index(Reg::RDI, Reg::RCX, 8, 16) },
            Inst::MovRR { dst: Reg::RAX, src: Reg::RBX },
            Inst::Halt,
        ]);
        assert_eq!(run_to_halt(&mut cpu, &mut mem), 99);
        assert_eq!(mem.load(heap + 3 * 8 + 16, 8).unwrap(), 99);
    }

    #[test]
    fn byte_ops_zero_extend() {
        let layout = EnclaveLayout::new(MemConfig::small());
        let heap = layout.heap.start;
        let (mut cpu, mut mem, _) = setup(&[
            Inst::MovRI { dst: Reg::RDI, imm: heap },
            Inst::MovRI { dst: Reg::RAX, imm: 0x1FF }, // only 0xFF stored
            Inst::Store8 { mem: MemOperand::base_disp(Reg::RDI, 0), src: Reg::RAX },
            Inst::MovRI { dst: Reg::RAX, imm: 0 },
            Inst::Load8 { dst: Reg::RAX, mem: MemOperand::base_disp(Reg::RDI, 0) },
            Inst::Halt,
        ]);
        assert_eq!(run_to_halt(&mut cpu, &mut mem), 0xFF);
    }

    #[test]
    fn setcc_materializes_comparison() {
        use deflection_isa::CondCode;
        let (mut cpu, mut mem, _) = setup(&[
            Inst::MovRI { dst: Reg::RBX, imm: 3 },
            Inst::MovRI { dst: Reg::RCX, imm: 5 },
            Inst::CmpRR { lhs: Reg::RBX, rhs: Reg::RCX },
            Inst::SetCc { cc: CondCode::L, dst: Reg::RAX },
            Inst::Halt,
        ]);
        assert_eq!(run_to_halt(&mut cpu, &mut mem), 1);
        let (mut cpu, mut mem, _) = setup(&[
            Inst::MovRI { dst: Reg::RBX, imm: 9 },
            Inst::MovRI { dst: Reg::RCX, imm: 5 },
            Inst::CmpRR { lhs: Reg::RBX, rhs: Reg::RCX },
            Inst::SetCc { cc: CondCode::L, dst: Reg::RAX },
            Inst::Halt,
        ]);
        assert_eq!(run_to_halt(&mut cpu, &mut mem), 0);
    }

    #[test]
    fn divide_by_zero_faults() {
        let (mut cpu, mut mem, _) = setup(&[
            Inst::MovRI { dst: Reg::RAX, imm: 10 },
            Inst::MovRI { dst: Reg::RBX, imm: 0 },
            Inst::AluRR { op: AluOp::UDiv, dst: Reg::RAX, src: Reg::RBX },
            Inst::Halt,
        ]);
        cpu.step(&mut mem).unwrap();
        cpu.step(&mut mem).unwrap();
        assert!(matches!(cpu.step(&mut mem), Err(Fault::DivideError { .. })));
    }

    #[test]
    fn signed_division_overflow_faults() {
        let (mut cpu, mut mem, _) = setup(&[
            Inst::MovRI { dst: Reg::RAX, imm: i64::MIN as u64 },
            Inst::MovRI { dst: Reg::RBX, imm: -1i64 as u64 },
            Inst::AluRR { op: AluOp::SDiv, dst: Reg::RAX, src: Reg::RBX },
            Inst::Halt,
        ]);
        cpu.step(&mut mem).unwrap();
        cpu.step(&mut mem).unwrap();
        assert!(matches!(cpu.step(&mut mem), Err(Fault::DivideError { .. })));
    }

    #[test]
    fn float_pipeline() {
        // (3.0 + 4.0) * 2.0 = 14.0 -> as int
        let (mut cpu, mut mem, _) = setup(&[
            Inst::MovRI { dst: Reg::RAX, imm: 3.0f64.to_bits() },
            Inst::MovRI { dst: Reg::RBX, imm: 4.0f64.to_bits() },
            Inst::FpuRR { op: FpuOp::FAdd, dst: Reg::RAX, src: Reg::RBX },
            Inst::MovRI { dst: Reg::RCX, imm: 2.0f64.to_bits() },
            Inst::FpuRR { op: FpuOp::FMul, dst: Reg::RAX, src: Reg::RCX },
            Inst::CvtFI { dst: Reg::RAX, src: Reg::RAX },
            Inst::Halt,
        ]);
        assert_eq!(run_to_halt(&mut cpu, &mut mem), 14);
    }

    #[test]
    fn fsqrt_and_fneg() {
        let (mut cpu, mut mem, _) = setup(&[
            Inst::MovRI { dst: Reg::RAX, imm: 81.0f64.to_bits() },
            Inst::FSqrt { dst: Reg::RAX, src: Reg::RAX },
            Inst::FNeg { dst: Reg::RAX, src: Reg::RAX },
            Inst::Halt,
        ]);
        run_to_halt(&mut cpu, &mut mem);
        assert_eq!(f64::from_bits(cpu.get(Reg::RAX)), -9.0);
    }

    #[test]
    fn cvt_fi_saturates() {
        let (mut cpu, mut mem, _) = setup(&[
            Inst::MovRI { dst: Reg::RAX, imm: 1e300f64.to_bits() },
            Inst::CvtFI { dst: Reg::RAX, src: Reg::RAX },
            Inst::Halt,
        ]);
        assert_eq!(run_to_halt(&mut cpu, &mut mem), i64::MAX as u64);
    }

    #[test]
    fn stack_overflow_hits_guard_page() {
        // Point RSP at the bottom of the stack; one more push lands on the
        // guard page and faults — the paper's implicit-RSP protection.
        let layout = EnclaveLayout::new(MemConfig::small());
        let (mut cpu, mut mem, _) = setup(&[Inst::Push { reg: Reg::RAX }, Inst::Halt]);
        cpu.set(Reg::RSP, layout.stack.start);
        assert!(matches!(cpu.step(&mut mem), Err(Fault::WriteViolation { .. })));
    }

    #[test]
    fn indirect_jump_goes_to_register_value() {
        let prog = [
            Inst::MovRI { dst: Reg::RAX, imm: 0 }, // patched below
            Inst::JmpInd { reg: Reg::RAX },
            Inst::Halt, // skipped
            Inst::MovRI { dst: Reg::RAX, imm: 5 },
            Inst::Halt,
        ];
        let layout = EnclaveLayout::new(MemConfig::small());
        let (bytes, offsets) = encode_program(&prog);
        let mut mem = Memory::new(layout.clone());
        let mut patched = bytes.clone();
        let target = layout.code.start + offsets[3] as u64;
        patched[2..10].copy_from_slice(&target.to_le_bytes());
        mem.poke_bytes(layout.code.start, &patched).unwrap();
        let mut cpu = Cpu::new(layout.code.start);
        cpu.set(Reg::RSP, layout.initial_rsp());
        assert_eq!(run_to_halt(&mut cpu, &mut mem), 5);
    }

    #[test]
    fn ocall_event_reports_code_and_advances_pc() {
        let (mut cpu, mut mem, offsets) = setup(&[Inst::Ocall { code: 1 }, Inst::Halt]);
        let ev = cpu.step(&mut mem).unwrap();
        assert_eq!(ev, StepEvent::Ocall(1));
        let layout = EnclaveLayout::new(MemConfig::small());
        assert_eq!(cpu.pc, layout.code.start + offsets[1] as u64);
    }

    #[test]
    fn abort_reports_policy_code() {
        let (mut cpu, mut mem, _) = setup(&[Inst::Abort { code: 2 }]);
        assert_eq!(cpu.step(&mut mem).unwrap(), StepEvent::PolicyAbort(2));
    }

    #[test]
    fn executing_heap_data_faults() {
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut mem = Memory::new(layout.clone());
        let mut cpu = Cpu::new(layout.heap.start);
        assert!(matches!(cpu.step(&mut mem), Err(Fault::NotExecutable { .. })));
    }

    #[test]
    fn decode_fault_reports_pc() {
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut mem = Memory::new(layout.clone());
        mem.poke_bytes(layout.code.start, &[0xFF]).unwrap();
        let mut cpu = Cpu::new(layout.code.start);
        match cpu.step(&mut mem) {
            Err(Fault::Decode(e)) => assert_eq!(e.offset as u64, layout.code.start),
            other => panic!("expected decode fault, got {other:?}"),
        }
    }
}
