//! Asynchronous Enclave Exit (AEX) injection.
//!
//! On real SGX, any interrupt or exception while the enclave runs triggers an
//! AEX: the hardware saves the enclave context (registers, RIP) into the
//! State Save Area and exits to the untrusted OS. This is both how the
//! controlled-channel attacker (Xu et al.) gains its foothold — forcing
//! frequent exits to observe page faults — and how HyperRace/DEFLECTION's P6
//! policy *detects* it: the saved context clobbers a marker the annotation
//! code planted in the SSA.
//!
//! The injector fires AEX events on a configurable schedule and performs the
//! context dump, so the P6 annotations in instrumented binaries observe
//! exactly the architectural effect they were designed around.

use crate::cpu::Cpu;
use crate::mem::Memory;
use deflection_crypto::drbg::HmacDrbg;

/// When AEX events fire, measured in executed instructions.
#[derive(Debug, Clone)]
pub enum AexSchedule {
    /// No asynchronous exits (ideal, interference-free execution).
    None,
    /// A benign periodic timer interrupt every `interval` instructions
    /// (e.g. the OS scheduler tick).
    Periodic {
        /// Instructions between exits.
        interval: u64,
    },
    /// Poisson-like random exits with probability `per_inst_prob` per
    /// instruction, from a deterministic generator.
    Random {
        /// Per-instruction firing probability.
        per_inst_prob: f64,
        /// Seed for the deterministic generator.
        seed: u64,
    },
    /// A controlled-channel attacker forcing exits every `interval`
    /// instructions — far more frequent than any benign schedule.
    Attack {
        /// Instructions between forced exits.
        interval: u64,
    },
}

/// Stateful AEX injector.
#[derive(Debug)]
pub struct AexInjector {
    schedule: AexSchedule,
    drbg: Option<HmacDrbg>,
    /// Number of AEX events delivered so far.
    pub delivered: u64,
}

impl AexInjector {
    /// Creates an injector for `schedule`.
    #[must_use]
    pub fn new(schedule: AexSchedule) -> Self {
        let drbg = match &schedule {
            AexSchedule::Random { seed, .. } => Some(HmacDrbg::new(&seed.to_le_bytes())),
            _ => None,
        };
        AexInjector { schedule, drbg, delivered: 0 }
    }

    /// An injector that never fires.
    #[must_use]
    pub fn none() -> Self {
        AexInjector::new(AexSchedule::None)
    }

    /// Decides whether an AEX fires before instruction number `icount`.
    #[must_use]
    pub fn should_fire(&mut self, icount: u64) -> bool {
        match &self.schedule {
            AexSchedule::None => false,
            AexSchedule::Periodic { interval } | AexSchedule::Attack { interval } => {
                *interval > 0 && icount > 0 && icount.is_multiple_of(*interval)
            }
            AexSchedule::Random { per_inst_prob, .. } => {
                let drbg = self.drbg.as_mut().expect("random schedule has drbg");
                drbg.next_f64() < *per_inst_prob
            }
        }
    }

    /// Plans the next dispatch block: returns whether an AEX fires before
    /// the next instruction (number `executed + 1`) and how many
    /// instructions can then run back-to-back with no further schedule
    /// check. Consumes exactly the same generator state per instruction as
    /// [`AexInjector::should_fire`] would: deterministic schedules compute
    /// the distance to their next multiple, while `Random` degrades to
    /// one-instruction blocks so its DRBG draws stay bit-identical to the
    /// reference per-step path.
    #[must_use]
    pub fn plan(&mut self, executed: u64, remaining: u64) -> (bool, u64) {
        debug_assert!(remaining > 0);
        let next = executed.saturating_add(1);
        match &self.schedule {
            AexSchedule::None => (false, remaining),
            AexSchedule::Periodic { interval } | AexSchedule::Attack { interval } => {
                if *interval == 0 {
                    return (false, remaining);
                }
                let fire = next.is_multiple_of(*interval);
                let next_fire = (next / *interval).saturating_add(1).saturating_mul(*interval);
                (fire, remaining.min(next_fire - next).max(1))
            }
            AexSchedule::Random { per_inst_prob, .. } => {
                let drbg = self.drbg.as_mut().expect("random schedule has drbg");
                (drbg.next_f64() < *per_inst_prob, 1)
            }
        }
    }

    /// Delivers an AEX: dumps the enclave context into the SSA (clobbering
    /// the P6 marker slot, which holds the saved `pc`), exactly as EENTER's
    /// resume path would find it.
    pub fn deliver(&mut self, cpu: &Cpu, mem: &mut Memory) {
        let base = mem.layout().ssa.start;
        // GPRSGX-style dump: RIP first (over the marker slot), then registers.
        let _ = mem.poke_u64(base, cpu.pc);
        for (i, reg) in cpu.regs.iter().enumerate() {
            let _ = mem.poke_u64(base + 8 + (i as u64) * 8, *reg);
        }
        self.delivered += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{EnclaveLayout, MemConfig};
    use deflection_isa::Reg;

    #[test]
    fn none_never_fires() {
        let mut inj = AexInjector::none();
        for i in 0..1000 {
            assert!(!inj.should_fire(i));
        }
    }

    #[test]
    fn periodic_fires_on_schedule() {
        let mut inj = AexInjector::new(AexSchedule::Periodic { interval: 100 });
        let fired: Vec<u64> = (0..1000).filter(|&i| inj.should_fire(i)).collect();
        assert_eq!(fired, vec![100, 200, 300, 400, 500, 600, 700, 800, 900]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut a = AexInjector::new(AexSchedule::Random { per_inst_prob: 0.1, seed: 7 });
        let mut b = AexInjector::new(AexSchedule::Random { per_inst_prob: 0.1, seed: 7 });
        let fa: Vec<bool> = (0..500).map(|i| a.should_fire(i)).collect();
        let fb: Vec<bool> = (0..500).map(|i| b.should_fire(i)).collect();
        assert_eq!(fa, fb);
        assert!(fa.iter().any(|&f| f), "10% rate must fire within 500 tries");
    }

    /// Replays `fuel` instructions through both APIs and checks `plan`
    /// fires on exactly the instruction numbers `should_fire` does.
    fn assert_plan_matches_should_fire(schedule: AexSchedule, fuel: u64) {
        let mut step = AexInjector::new(schedule.clone());
        let mut block = AexInjector::new(schedule);
        let step_fires: Vec<u64> = (1..=fuel).filter(|&i| step.should_fire(i)).collect();
        let mut block_fires = Vec::new();
        let mut executed = 0u64;
        while executed < fuel {
            let (fire, len) = block.plan(executed, fuel - executed);
            if fire {
                block_fires.push(executed + 1);
            }
            // A block of `len` instructions runs with no further checks;
            // none of them may be a fire point except the first.
            executed += len;
        }
        assert_eq!(executed, fuel, "blocks must tile the fuel budget exactly");
        assert_eq!(step_fires, block_fires);
    }

    #[test]
    fn plan_fires_exactly_where_should_fire_does() {
        assert_plan_matches_should_fire(AexSchedule::None, 500);
        assert_plan_matches_should_fire(AexSchedule::Periodic { interval: 1 }, 50);
        assert_plan_matches_should_fire(AexSchedule::Periodic { interval: 7 }, 500);
        assert_plan_matches_should_fire(AexSchedule::Periodic { interval: 0 }, 100);
        assert_plan_matches_should_fire(AexSchedule::Attack { interval: 3 }, 500);
        assert_plan_matches_should_fire(AexSchedule::Random { per_inst_prob: 0.05, seed: 11 }, 500);
    }

    #[test]
    fn plan_blocks_never_span_a_fire_point() {
        let mut inj = AexInjector::new(AexSchedule::Periodic { interval: 10 });
        // From 5 executed, the next fire is instruction 10: block may cover
        // instructions 6..=9 only.
        let (fire, len) = inj.plan(5, 1000);
        assert!(!fire);
        assert_eq!(len, 4);
        // At a fire point the block extends one full interval.
        let (fire, len) = inj.plan(9, 1000);
        assert!(fire);
        assert_eq!(len, 10);
        // Fuel caps the block.
        let (_, len) = inj.plan(9, 3);
        assert_eq!(len, 3);
    }

    use proptest::prelude::*;

    /// A schedule generator covering every variant the VM dispatches on.
    fn any_schedule() -> impl Strategy<Value = AexSchedule> {
        prop_oneof![
            Just(AexSchedule::None),
            (0u64..64).prop_map(|interval| AexSchedule::Periodic { interval }),
            (1u64..32).prop_map(|interval| AexSchedule::Attack { interval }),
            (0u64..600, 0u64..1000).prop_map(|(millis, seed)| AexSchedule::Random {
                per_inst_prob: millis as f64 / 1000.0,
                seed,
            }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64 })]

        /// Replays the traced dispatcher's consumption pattern against the
        /// per-instruction reference: plan blocks are consumed in
        /// arbitrary trace-sized sub-chunks with **no** schedule queries
        /// in between, the program may halt mid-block (`horizon`), and
        /// fuel lands at 1, mid-trace, on a trace boundary, or at
        /// effectively-infinite. Whatever the trace partition, the fire
        /// points and the total instruction count must be bit-identical
        /// to calling `should_fire` once per instruction — the trace
        /// layer must be invisible to the AEX schedule.
        #[test]
        fn plan_matches_should_fire_over_any_trace_partition(
            schedule in any_schedule(),
            traces in proptest::collection::vec(1u64..=64, 1..8),
            horizon in 1u64..3_000,
            fuel in prop_oneof![
                Just(1u64),                             // exactly one instruction
                2u64..5_000,                            // lands mid-trace
                (1u64..64).prop_map(|n| n * 64),        // lands on a trace boundary
                Just(u64::MAX / 2),                     // effectively infinite
            ],
        ) {
            let end = fuel.min(horizon);
            let mut step = AexInjector::new(schedule.clone());
            let step_fires: Vec<u64> = (1..=end).filter(|&i| step.should_fire(i)).collect();

            let mut block = AexInjector::new(schedule);
            let mut block_fires = Vec::new();
            let mut executed = 0u64;
            let mut t = 0usize;
            while executed < end {
                let (fire, len) = block.plan(executed, fuel - executed);
                if fire {
                    block_fires.push(executed + 1);
                }
                // The dispatcher runs the block as a sequence of trace
                // fragments; the program may halt before the block ends.
                let mut left = len.min(end - executed);
                while left > 0 {
                    let run = traces[t % traces.len()].min(left);
                    executed += run;
                    left -= run;
                    t += 1;
                }
            }
            prop_assert_eq!(executed, end, "blocks must tile the budget exactly");
            prop_assert_eq!(step_fires, block_fires);
        }
    }

    #[test]
    fn delivery_clobbers_ssa_marker() {
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut mem = Memory::new(layout.clone());
        let marker = layout.ssa_marker_slot();
        mem.poke_u64(marker, 0x5A5A_5A5A).unwrap();
        let mut cpu = Cpu::new(layout.code.start + 123);
        cpu.set(Reg::RAX, 0xAB);
        let mut inj = AexInjector::none();
        inj.deliver(&cpu, &mut mem);
        assert_eq!(inj.delivered, 1);
        // Marker replaced by the saved pc.
        assert_eq!(mem.peek_u64(marker).unwrap(), layout.code.start + 123);
        // Register dump follows.
        assert_eq!(mem.peek_u64(marker + 8).unwrap(), 0xAB);
    }
}
