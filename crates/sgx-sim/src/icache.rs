//! A software instruction cache with generation-based coherence.
//!
//! Real x86 hardware decodes each instruction once into a decoded-µop/trace
//! cache and *snoops stores* to keep it coherent with self-modifying code.
//! This module gives the simulated machine the same structure: a dense
//! per-page map from code offsets to predecoded `(Inst, len)` entries,
//! filled on first fetch (or pre-warmed at install time from the verifier's
//! own disassembly), and invalidated by comparing a per-page fill stamp
//! against [`Memory`]'s monotonic code-write generation.
//!
//! Coherence is load-bearing, not an optimisation nicety: the in-enclave
//! rewriter patches immediates into the RWX code window *after*
//! verification, and SGXv1 cannot stop the target from modifying its own
//! code. A stale cached decode would execute instructions that no longer
//! exist in memory — so any `store`/`poke_bytes`/permission change touching
//! an executable page bumps the generation and the next lookup on that page
//! misses and re-decodes (see `DESIGN.md` §5f).
//!
//! Instructions that straddle a page boundary are deliberately never
//! cached: a single-page generation check could not prove their trailing
//! bytes unchanged, so they always take the decode slow path instead.
//!
//! # Superblock traces
//!
//! On top of the per-instruction map, the cache forms **superblock
//! traces**: bounded runs of predecoded [`PredInst`] elements that follow
//! fallthrough *and direct branches* (`Jmp` always, `Jcc` by
//! backward-taken/forward-not-taken speculation, `Call` into the callee),
//! so the dispatch loop crosses direct control flow without re-entering
//! the lookup path. A trace never crosses an executable-page boundary and
//! never follows an indirect edge (`JmpInd`/`CallInd`/`Ret` end it — their
//! targets are runtime values no formation-time prediction can certify).
//! Each trace records the code-write generation of its single page;
//! elements that can write memory carry a stamp re-check so a store into
//! the trace's own page kills it *mid-run*, and speculated `Jcc` elements
//! carry a pc re-check whose mismatch side-exits the trace. See
//! `DESIGN.md` §5h for the correctness argument.

use crate::cpu::PredInst;
use crate::layout::PAGE_SIZE;
use crate::mem::Memory;
use deflection_isa::Inst;
use std::collections::HashMap;
use std::sync::Arc;

const PAGE: usize = PAGE_SIZE as usize;

/// Upper bound on trace length, in instructions. Long enough to swallow
/// whole nBench loop bodies, short enough that a kill from one stray store
/// throws away bounded decode work.
pub(crate) const MAX_TRACE_LEN: usize = 64;

/// After executing this element, re-check that `cpu.pc` equals the
/// element's predicted successor; mismatch side-exits the trace.
pub(crate) const CHECK_PC: u8 = 1 << 0;
/// After executing this element (which may have written memory), re-check
/// the trace page's code-write stamp; mismatch kills the trace.
pub(crate) const CHECK_GEN: u8 = 1 << 1;
/// The trace ends after this element (terminator or indirect edge).
pub(crate) const END: u8 = 1 << 2;

/// One predecoded element of a superblock trace.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TraceElem {
    /// Address this element was decoded from — the dispatch invariant is
    /// `cpu.pc == elem.pc` on entry.
    pub pc: u64,
    /// Predicted successor address (the next element's `pc`, when any).
    pub pred: u64,
    /// `CHECK_PC` / `CHECK_GEN` / `END` bits.
    pub flags: u8,
    /// The predecoded operation.
    pub op: PredInst,
}

/// A superblock trace: a single-page run of predecoded instructions,
/// stamped with the code-write generation it was decoded against.
#[derive(Debug)]
pub(crate) struct Trace {
    /// Entry address (key in the trace map).
    pub entry: u64,
    /// ELRANGE page index every element lives on.
    pub page: usize,
    /// Code-write generation of `page` at formation time.
    pub gen: u64,
    /// The predecoded run, entry first.
    pub elems: Box<[TraceElem]>,
    /// Element addresses sorted by pc, for in-trace recovery: a side exit
    /// or cycle-closing successor whose target lies inside this trace
    /// re-enters by binary search without leaving the dispatch loop.
    by_pc: Box<[(u64, u32)]>,
}

impl Trace {
    /// The element index holding `pc`, if this trace covers it.
    #[inline]
    pub(crate) fn find(&self, pc: u64) -> Option<usize> {
        self.by_pc.binary_search_by_key(&pc, |&(p, _)| p).ok().map(|i| self.by_pc[i].1 as usize)
    }
}

/// Trace-cache event counters. Like [`ICacheStats`] these live outside
/// `ExecStats` so differential tests can require bit-identical execution
/// counters across modes while trace behaviour legitimately differs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Traces formed on demand during dispatch.
    pub formed: u64,
    /// Traces formed at install time from the verifier's disassembly.
    pub prewarmed: u64,
    /// Trace-to-trace transitions (including a trace wrapping onto its own
    /// entry) that never fell back to single-step dispatch.
    pub chained: u64,
    /// Mid-trace exits from a `Jcc` speculation mismatch (or a host call
    /// that moved `pc` off the predicted successor).
    pub side_exits: u64,
    /// Traces killed on a code-write stamp mismatch — at lookup or, for
    /// self-modifying stores into the trace's own page, mid-run.
    pub invalidated: u64,
}

/// How far `build_trace` walked and what it decided for one instruction.
fn classify(inst: Inst, next: u64) -> (PredInst, u64, u8, Option<u64>) {
    let rel_target = |rel: i32| next.wrapping_add(rel as i64 as u64);
    match inst {
        Inst::Jmp { rel } => {
            let target = rel_target(rel);
            (PredInst::Jmp { target }, target, 0, Some(target))
        }
        Inst::Jcc { cc, rel } => {
            // Speculation is refined by `build_trace` (which can peek the
            // fallthrough): this default is backward-taken/forward-not-taken.
            // Either choice is safe — CHECK_PC side-exits on a miss.
            let target = rel_target(rel);
            let pred = if rel < 0 { target } else { next };
            (PredInst::Jcc { cc, taken: target, fall: next }, pred, CHECK_PC, Some(pred))
        }
        Inst::Call { rel } => {
            // The return-address push can land anywhere — including an
            // executable page — so the stamp must be re-checked.
            let target = rel_target(rel);
            (PredInst::Call { target, ret: next }, target, CHECK_GEN, Some(target))
        }
        // Run terminators: the dispatcher exits on their events, END is
        // only reached if a host ever resumes past them.
        Inst::Halt | Inst::Abort { .. } => (PredInst::Line { inst, next }, next, END, None),
        // Indirect edges never extend a trace: their successor is a runtime
        // value. The trace ends and the dispatcher re-looks-up at the
        // dynamic target (natural trace-to-trace chaining).
        Inst::JmpInd { .. } | Inst::Ret => (PredInst::Line { inst, next }, next, END, None),
        Inst::CallInd { .. } => (PredInst::Line { inst, next }, next, CHECK_GEN | END, None),
        // The OCall host handler gets `&mut Cpu`/`&mut Memory`: it may poke
        // executable pages and (in principle) move pc, so both re-checks.
        Inst::Ocall { .. } => {
            (PredInst::Line { inst, next }, next, CHECK_GEN | CHECK_PC, Some(next))
        }
        Inst::AexProbe => (PredInst::Line { inst, next }, next, CHECK_PC, Some(next)),
        // Store-capable straight-line instructions: self-modifying code is
        // legal in the RWX window, so re-check the trace page's stamp.
        Inst::Store { .. } | Inst::Store8 { .. } | Inst::StoreImm { .. } | Inst::Push { .. } => {
            (PredInst::Line { inst, next }, next, CHECK_GEN, Some(next))
        }
        _ => (PredInst::Line { inst, next }, next, 0, Some(next)),
    }
}

/// Forms a trace starting at `entry`, pulling decodes from `fetch` (the
/// demand path decodes from memory and fills the per-instruction cache;
/// the prewarm path serves the verifier's disassembly). Returns `None`
/// when not even the entry instruction is cacheable (out of ELRANGE,
/// page-straddling, or undecodable) — callers fall back to single-step.
fn build_trace(
    entry: u64,
    mem: &Memory,
    fetch: &mut dyn FnMut(u64) -> Option<(Inst, u8)>,
) -> Option<Trace> {
    let page = mem.page_index(entry)?;
    let gen = mem.page_code_gen(page)?;
    let mut elems: Vec<TraceElem> = Vec::new();
    let mut pc = entry;
    loop {
        if elems.len() >= MAX_TRACE_LEN || elems.iter().any(|e| e.pc == pc) {
            // Length bound, or the walk closed a cycle back into the trace:
            // stop and let the dispatcher wrap/chain at runtime.
            break;
        }
        if mem.page_index(pc) != Some(page) {
            break; // crossed the executable-page boundary
        }
        let Some((inst, len)) = fetch(pc) else { break };
        if mem.page_index(pc.wrapping_add(u64::from(len) - 1)) != Some(page) {
            break; // straddling tail — a single stamp cannot cover it
        }
        let next = pc.wrapping_add(u64::from(len));
        let (op, mut pred, flags, mut cont) = classify(inst, next);
        if let Inst::Jcc { rel, .. } = inst {
            // Never speculate into an abort: the annotation guards are all
            // `jcc ok; abort; ok:` — a forward branch that is taken on
            // every policy-compliant execution. BTFN alone would predict
            // the (cold-by-construction) abort arm and side-exit the trace
            // at every guard, so peek the fallthrough and flip a forward
            // branch to predicted-taken when it lands on an `Abort`.
            if rel >= 0 && matches!(fetch(next), Some((Inst::Abort { .. }, _))) {
                let target = next.wrapping_add(rel as i64 as u64);
                pred = target;
                cont = Some(target);
            }
        }
        elems.push(TraceElem { pc, pred, flags, op });
        match cont {
            Some(target) => pc = target,
            None => break,
        }
    }
    if elems.is_empty() {
        return None;
    }
    let mut by_pc: Vec<(u64, u32)> =
        elems.iter().enumerate().map(|(i, e)| (e.pc, i as u32)).collect();
    by_pc.sort_unstable_by_key(|&(p, _)| p);
    Some(Trace {
        entry,
        page,
        gen,
        elems: elems.into_boxed_slice(),
        by_pc: by_pc.into_boxed_slice(),
    })
}

/// Local (non-atomic) icache event counters. These live outside
/// [`crate::vm::ExecStats`] on purpose: differential tests assert cached and
/// reference execution produce bit-identical `ExecStats`, while cache
/// behaviour legitimately differs between the two modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ICacheStats {
    /// Lookups served from a cached decode.
    pub hits: u64,
    /// Entries inserted after a demand decode.
    pub fills: u64,
    /// Entries inserted from the verifier's disassembly at install time.
    pub prewarms: u64,
    /// Pages dropped on a code-write generation mismatch.
    pub invalidations: u64,
}

/// One cached page of predecoded instructions, stamped with the code-write
/// generation it was decoded against.
#[derive(Debug)]
struct CachedPage {
    gen: u64,
    /// Page-relative byte offset → predecoded entry. Dense so overlapping
    /// decodes (a jump into the middle of an instruction) each get their
    /// own slot, exactly like per-address decode in the reference path.
    entries: Box<[Option<(Inst, u8)>]>,
}

impl CachedPage {
    fn new(gen: u64) -> Self {
        CachedPage { gen, entries: vec![None; PAGE].into_boxed_slice() }
    }
}

/// Empty sentinel in a [`TracePage`] slot.
const NO_TRACE: u32 = u32::MAX;

/// Direct-mapped per-page trace index: page-relative byte offset →
/// `(arena id, element index)`, [`NO_TRACE`] when no live trace covers the
/// offset. Dense like [`CachedPage`] so the dispatch hot path is two array
/// loads — no hashing — per trace transition.
type TracePage = Box<[(u32, u32)]>;

/// The decode-once cache. Indexed by page within ELRANGE; pages allocate
/// lazily on first fill, so cost scales with code actually executed.
#[derive(Debug)]
pub struct ICache {
    base: u64,
    pages: Vec<Option<CachedPage>>,
    /// Event counters (reported to telemetry by the VM at run exit).
    pub stats: ICacheStats,
    /// Live traces, keyed by the arena ids the page slots hold. `None`
    /// slots are free (recycled through `free_ids`).
    traces: Vec<Option<Arc<Trace>>>,
    /// Recycled arena ids.
    free_ids: Vec<u32>,
    /// Per-page direct-mapped index over every element address of every
    /// live trace, so dispatch can enter a trace mid-run — AEX block
    /// boundaries stop at arbitrary pcs and must not forfeit the rest of
    /// the trace.
    trace_pages: Vec<Option<TracePage>>,
    /// Trace event counters (reported to telemetry by the VM at run exit).
    pub trace_stats: TraceStats,
}

impl ICache {
    /// Creates an empty cache covering `mem`'s ELRANGE.
    #[must_use]
    pub fn new(mem: &Memory) -> Self {
        let pages = (mem.layout().elrange.len() / PAGE_SIZE) as usize;
        let mut v = Vec::with_capacity(pages);
        v.resize_with(pages, || None);
        let mut tp = Vec::with_capacity(pages);
        tp.resize_with(pages, || None);
        ICache {
            base: mem.layout().elrange.start,
            pages: v,
            stats: ICacheStats::default(),
            traces: Vec::new(),
            free_ids: Vec::new(),
            trace_pages: tp,
            trace_stats: TraceStats::default(),
        }
    }

    /// Looks up a predecoded instruction at `pc`, enforcing coherence: a
    /// page whose fill stamp trails `mem`'s code-write generation is dropped
    /// and the lookup misses (the caller re-decodes from current bytes).
    #[inline]
    pub fn lookup(&mut self, pc: u64, mem: &Memory) -> Option<(Inst, u8)> {
        let off = pc.checked_sub(self.base)? as usize;
        let page = off / PAGE;
        let slot = self.pages.get_mut(page)?;
        let cached = slot.as_mut()?;
        if cached.gen != mem.page_code_gen(page)? {
            self.stats.invalidations += 1;
            *slot = None;
            return None;
        }
        let entry = cached.entries[off % PAGE];
        if entry.is_some() {
            self.stats.hits += 1;
        }
        entry
    }

    /// Inserts a freshly decoded instruction. No-op when the instruction
    /// straddles a page boundary (see module docs) or `pc` is out of range.
    pub fn fill(&mut self, pc: u64, inst: Inst, len: u8, mem: &Memory) {
        if self.insert(pc, inst, len, mem) {
            self.stats.fills += 1;
        }
    }

    /// Pre-warms the cache from already-decoded instructions (the
    /// verifier's disassembly, patched to post-rewrite immediates), so the
    /// first run after `install` starts hot without a third decode pass.
    pub fn prewarm(&mut self, mem: &Memory, entries: impl IntoIterator<Item = (u64, Inst, u8)>) {
        for (pc, inst, len) in entries {
            if self.insert(pc, inst, len, mem) {
                self.stats.prewarms += 1;
            }
        }
    }

    /// Looks up a live trace covering `pc` (at its entry or mid-trace),
    /// enforcing coherence: a trace whose page stamp trails the current
    /// code-write generation is killed and the lookup misses.
    #[inline]
    pub(crate) fn lookup_trace(&mut self, pc: u64, mem: &Memory) -> Option<(Arc<Trace>, usize)> {
        let off = pc.checked_sub(self.base)? as usize;
        let (id, idx) = *self.trace_pages.get(off / PAGE)?.as_ref()?.get(off % PAGE)?;
        if id == NO_TRACE {
            return None;
        }
        let trace = self.traces[id as usize].as_ref().expect("indexed ids are live");
        debug_assert_eq!(trace.elems[idx as usize].pc, pc);
        let (page, gen) = (trace.page, trace.gen);
        let trace = Arc::clone(trace);
        if !mem.stamp_current(page, gen) {
            self.kill_id(id);
            return None;
        }
        Some((trace, idx as usize))
    }

    /// Forms (and registers) a trace at `entry` on demand, decoding through
    /// the per-instruction cache — a decode served from a cached entry
    /// counts a hit, a fresh decode fills the cache, exactly like the
    /// single-step miss path.
    pub(crate) fn form_trace(&mut self, entry: u64, mem: &Memory) -> Option<Arc<Trace>> {
        let trace = build_trace(entry, mem, &mut |pc| {
            if let Some(hit) = self.lookup(pc, mem) {
                return Some(hit);
            }
            match crate::cpu::fetch_decode_at(mem, pc) {
                Ok((inst, len)) => {
                    self.fill(pc, inst, len, mem);
                    Some((inst, len))
                }
                Err(_) => None, // the dispatcher's fallback step surfaces the fault
            }
        })?;
        self.trace_stats.formed += 1;
        Some(self.insert_trace(trace))
    }

    /// Forms traces at install time: a greedy cover over the verifier's
    /// disassembly, one trace per instruction address not already inside a
    /// live trace. Decodes come exclusively from `entries` (the same
    /// patched stream [`ICache::prewarm`] was fed), never from raw memory
    /// and never through the hit-counting demand path — install-time work
    /// is accounted as `prewarmed`, not as hits or fills. Returns the
    /// formed trace lengths for the caller to fold into telemetry.
    pub(crate) fn prewarm_traces(
        &mut self,
        mem: &Memory,
        entries: &[(u64, Inst, u8)],
    ) -> Vec<usize> {
        let by_pc: HashMap<u64, (Inst, u8)> =
            entries.iter().map(|&(pc, inst, len)| (pc, (inst, len))).collect();
        let mut lens = Vec::new();
        for &(pc, _, _) in entries {
            if self.slot(pc).is_some_and(|&(id, _)| id != NO_TRACE) {
                continue;
            }
            let trace = build_trace(pc, mem, &mut |p| by_pc.get(&p).copied());
            if let Some(trace) = trace {
                lens.push(trace.elems.len());
                self.trace_stats.prewarmed += 1;
                self.insert_trace(trace);
            }
        }
        lens
    }

    /// Removes the trace whose entry address is `entry` (and every index
    /// slot pointing at it), counting one invalidation. No-op if `entry`
    /// is not a live trace's entry.
    pub(crate) fn kill_trace(&mut self, entry: u64) {
        // The entry slot is authoritative (`insert_trace` overwrites it),
        // so it resolves the arena id when the trace is live.
        if let Some(&(id, idx)) = self.slot(entry) {
            if id != NO_TRACE
                && idx == 0
                && self.traces[id as usize].as_ref().is_some_and(|t| t.entry == entry)
            {
                self.kill_id(id);
            }
        }
    }

    /// Removes arena trace `id`, clearing exactly the index slots it owns.
    fn kill_id(&mut self, id: u32) {
        let trace = self.traces[id as usize].take().expect("killing a live id");
        for elem in &trace.elems {
            if let Some(slot) = self.slot_mut(elem.pc) {
                if slot.0 == id {
                    *slot = (NO_TRACE, 0);
                }
            }
        }
        self.free_ids.push(id);
        self.trace_stats.invalidated += 1;
    }

    /// The direct-mapped index slot for `pc`, if its page is materialised.
    #[inline]
    fn slot(&self, pc: u64) -> Option<&(u32, u32)> {
        let off = pc.checked_sub(self.base)? as usize;
        self.trace_pages.get(off / PAGE)?.as_ref()?.get(off % PAGE)
    }

    #[inline]
    fn slot_mut(&mut self, pc: u64) -> Option<&mut (u32, u32)> {
        let off = pc.checked_sub(self.base)? as usize;
        self.trace_pages.get_mut(off / PAGE)?.as_mut()?.get_mut(off % PAGE)
    }

    fn insert_trace(&mut self, trace: Trace) -> Arc<Trace> {
        debug_assert!(
            !self.traces.iter().flatten().any(|t| t.entry == trace.entry && t.page == trace.page),
            "insert over a live trace with the same entry"
        );
        let trace = Arc::new(trace);
        let id = match self.free_ids.pop() {
            Some(id) => {
                self.traces[id as usize] = Some(Arc::clone(&trace));
                id
            }
            None => {
                self.traces.push(Some(Arc::clone(&trace)));
                (self.traces.len() - 1) as u32
            }
        };
        // Materialise the page's slot array on first use.
        let page = trace.page;
        let slots = self.trace_pages[page]
            .get_or_insert_with(|| vec![(NO_TRACE, 0); PAGE].into_boxed_slice());
        let page_base = self.base + (page as u64) * PAGE_SIZE;
        for (i, elem) in trace.elems.iter().enumerate() {
            let off = (elem.pc - page_base) as usize;
            if i == 0 {
                // The entry mapping is authoritative (see kill_trace's
                // resolution of entry → arena id).
                slots[off] = (id, 0);
            } else if slots[off].0 == NO_TRACE {
                // Overlapping traces may share interior addresses; first
                // owner wins — both decode identically under the same
                // generation, so either dispatch is correct.
                slots[off] = (id, i as u32);
            }
        }
        trace
    }

    fn insert(&mut self, pc: u64, inst: Inst, len: u8, mem: &Memory) -> bool {
        debug_assert!(len >= 1);
        let Some(off) = pc.checked_sub(self.base) else { return false };
        let off = off as usize;
        let page = off / PAGE;
        // Never cache a page-straddling instruction: its tail lives under a
        // different page generation, which a single stamp cannot cover.
        if off % PAGE + len as usize > PAGE {
            return false;
        }
        let Some(gen) = mem.page_code_gen(page) else { return false };
        let slot = &mut self.pages[page];
        match slot {
            Some(cached) if cached.gen == gen => {}
            Some(cached) => {
                // The page was written since its last fill; every existing
                // entry is suspect. Restart the page at the current stamp.
                self.stats.invalidations += 1;
                *cached = CachedPage::new(gen);
            }
            None => *slot = Some(CachedPage::new(gen)),
        }
        slot.as_mut().expect("just ensured").entries[off % PAGE] = Some((inst, len));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{EnclaveLayout, MemConfig};

    fn mem() -> Memory {
        Memory::new(EnclaveLayout::new(MemConfig::small()))
    }

    #[test]
    fn fill_then_hit() {
        let m = mem();
        let pc = m.layout().code.start;
        let mut ic = ICache::new(&m);
        assert_eq!(ic.lookup(pc, &m), None);
        ic.fill(pc, Inst::Halt, 1, &m);
        assert_eq!(ic.lookup(pc, &m), Some((Inst::Halt, 1)));
        assert_eq!(ic.stats.fills, 1);
        assert_eq!(ic.stats.hits, 1);
    }

    #[test]
    fn code_write_invalidates_page() {
        let mut m = mem();
        let pc = m.layout().code.start;
        let mut ic = ICache::new(&m);
        ic.fill(pc, Inst::Halt, 1, &m);
        // A store into the same code page must drop the cached decode.
        m.store(pc + 64, 8, 0x1234).unwrap();
        assert_eq!(ic.lookup(pc, &m), None);
        assert_eq!(ic.stats.invalidations, 1);
        // The page refills against the new generation and hits again.
        ic.fill(pc, Inst::Nop, 1, &m);
        assert_eq!(ic.lookup(pc, &m), Some((Inst::Nop, 1)));
    }

    #[test]
    fn writes_to_other_pages_do_not_invalidate() {
        let mut m = mem();
        let pc = m.layout().code.start;
        let mut ic = ICache::new(&m);
        ic.fill(pc, Inst::Halt, 1, &m);
        m.store(m.layout().heap.start, 8, 7).unwrap();
        m.store(pc + PAGE_SIZE + 8, 8, 7).unwrap(); // next code page
        assert_eq!(ic.lookup(pc, &m), Some((Inst::Halt, 1)));
        assert_eq!(ic.stats.invalidations, 0);
    }

    #[test]
    fn straddling_instructions_are_never_cached() {
        let m = mem();
        let pc = m.layout().code.start + PAGE_SIZE - 2;
        let mut ic = ICache::new(&m);
        ic.fill(pc, Inst::Nop, 10, &m); // would spill 8 bytes into next page
        assert_eq!(ic.lookup(pc, &m), None);
        assert_eq!(ic.stats.fills, 0);
    }

    #[test]
    fn out_of_range_pcs_miss_harmlessly() {
        let m = mem();
        let mut ic = ICache::new(&m);
        assert_eq!(ic.lookup(0, &m), None); // untrusted memory
        assert_eq!(ic.lookup(u64::MAX, &m), None);
        ic.fill(0, Inst::Halt, 1, &m);
        ic.fill(m.layout().elrange.end, Inst::Halt, 1, &m);
        assert_eq!(ic.stats.fills, 0);
    }

    #[test]
    fn prewarm_hits_without_demand_fill() {
        let m = mem();
        let pc = m.layout().code.start;
        let mut ic = ICache::new(&m);
        ic.prewarm(&m, [(pc, Inst::Nop, 1), (pc + 1, Inst::Halt, 1)]);
        assert_eq!(ic.stats.prewarms, 2);
        assert_eq!(ic.lookup(pc, &m), Some((Inst::Nop, 1)));
        assert_eq!(ic.lookup(pc + 1, &m), Some((Inst::Halt, 1)));
        assert_eq!(ic.stats.fills, 0);
    }

    #[test]
    fn traces_cross_direct_edges_and_stop_at_indirect_ones() {
        use deflection_isa::Reg;
        let m = mem();
        let base = m.layout().code.start;
        let mut ic = ICache::new(&m);
        // jmp +10 (len 5, target base+15); mov (len 10); ret (len 1).
        let entries = [
            (base, Inst::Jmp { rel: 10 }, 5u8),
            (base + 15, Inst::MovRI { dst: Reg::RAX, imm: 1 }, 10),
            (base + 25, Inst::Ret, 1),
        ];
        let lens = ic.prewarm_traces(&m, &entries);
        assert_eq!(lens, vec![3], "one trace covers all three instructions");
        assert_eq!(ic.trace_stats.prewarmed, 1);
        let (t, idx) = ic.lookup_trace(base, &m).expect("entry lookup");
        assert_eq!((t.elems.len(), idx), (3, 0));
        assert_eq!(t.elems[2].flags & END, END, "ret ends the trace");
        // Mid-trace entry through the index (AEX block boundaries need it).
        let (_, idx) = ic.lookup_trace(base + 15, &m).expect("mid-trace lookup");
        assert_eq!(idx, 1);
        assert!(ic.lookup_trace(base + 1, &m).is_none(), "uncovered pcs miss");
    }

    #[test]
    fn backward_jcc_speculates_taken_and_closes_the_loop() {
        use deflection_isa::{CondCode, Reg};
        let m = mem();
        let base = m.layout().code.start;
        let mut ic = ICache::new(&m);
        // cmp (len 10) then jcc back to the cmp (len 6, rel -16).
        let entries = [
            (base, Inst::CmpRI { lhs: Reg::RAX, imm: 3 }, 10u8),
            (base + 10, Inst::Jcc { cc: CondCode::Ne, rel: -16 }, 6),
        ];
        ic.prewarm_traces(&m, &entries);
        let (t, _) = ic.lookup_trace(base, &m).expect("loop trace");
        // The walk stops when the predicted successor closes the cycle.
        assert_eq!(t.elems.len(), 2);
        let jcc = &t.elems[1];
        assert_eq!(jcc.flags & CHECK_PC, CHECK_PC);
        assert_eq!(jcc.pred, base, "backward branch predicts taken");
    }

    #[test]
    fn code_write_kills_traces_at_lookup() {
        let mut m = mem();
        let base = m.layout().code.start;
        let mut ic = ICache::new(&m);
        ic.prewarm_traces(&m, &[(base, Inst::Nop, 1), (base + 1, Inst::Halt, 1)]);
        assert!(ic.lookup_trace(base, &m).is_some());
        m.store(base + 64, 8, 0x1234).unwrap();
        assert!(ic.lookup_trace(base, &m).is_none());
        assert_eq!(ic.trace_stats.invalidated, 1);
        // The index was purged with the trace: mid-trace pcs miss too.
        assert!(ic.lookup_trace(base + 1, &m).is_none());
        assert_eq!(ic.trace_stats.invalidated, 1, "a dead trace dies once");
    }

    #[test]
    fn trace_formation_is_length_bounded() {
        let m = mem();
        let base = m.layout().code.start;
        let mut ic = ICache::new(&m);
        let entries: Vec<(u64, Inst, u8)> = (0..200).map(|i| (base + i, Inst::Nop, 1u8)).collect();
        let lens = ic.prewarm_traces(&m, &entries);
        assert_eq!(lens[0], MAX_TRACE_LEN);
        // The greedy cover picks up where the bounded trace stopped.
        assert!(ic.lookup_trace(base + MAX_TRACE_LEN as u64, &m).is_some());
    }

    #[test]
    fn traces_never_cross_an_executable_page_boundary() {
        let m = mem();
        let base = m.layout().code.start;
        let mut ic = ICache::new(&m);
        let start = base + PAGE_SIZE - 2;
        let entries: Vec<(u64, Inst, u8)> = (0..4).map(|i| (start + i, Inst::Nop, 1u8)).collect();
        let lens = ic.prewarm_traces(&m, &entries);
        // Two single-page traces: [.., page end) and [next page, ..).
        assert_eq!(lens, vec![2, 2]);
        let (t, _) = ic.lookup_trace(start, &m).expect("first-page trace");
        assert_eq!(t.elems.len(), 2);
    }

    #[test]
    fn permission_change_invalidates() {
        let mut m = mem();
        let pc = m.layout().code.start;
        let mut ic = ICache::new(&m);
        ic.fill(pc, Inst::Halt, 1, &m);
        m.set_region_perm(m.layout().code, crate::mem::PagePerm::RW);
        assert_eq!(ic.lookup(pc, &m), None);
        assert_eq!(ic.stats.invalidations, 1);
    }
}
