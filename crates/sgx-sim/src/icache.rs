//! A software instruction cache with generation-based coherence.
//!
//! Real x86 hardware decodes each instruction once into a decoded-µop/trace
//! cache and *snoops stores* to keep it coherent with self-modifying code.
//! This module gives the simulated machine the same structure: a dense
//! per-page map from code offsets to predecoded `(Inst, len)` entries,
//! filled on first fetch (or pre-warmed at install time from the verifier's
//! own disassembly), and invalidated by comparing a per-page fill stamp
//! against [`Memory`]'s monotonic code-write generation.
//!
//! Coherence is load-bearing, not an optimisation nicety: the in-enclave
//! rewriter patches immediates into the RWX code window *after*
//! verification, and SGXv1 cannot stop the target from modifying its own
//! code. A stale cached decode would execute instructions that no longer
//! exist in memory — so any `store`/`poke_bytes`/permission change touching
//! an executable page bumps the generation and the next lookup on that page
//! misses and re-decodes (see `DESIGN.md` §5f).
//!
//! Instructions that straddle a page boundary are deliberately never
//! cached: a single-page generation check could not prove their trailing
//! bytes unchanged, so they always take the decode slow path instead.

use crate::layout::PAGE_SIZE;
use crate::mem::Memory;
use deflection_isa::Inst;

const PAGE: usize = PAGE_SIZE as usize;

/// Local (non-atomic) icache event counters. These live outside
/// [`crate::vm::ExecStats`] on purpose: differential tests assert cached and
/// reference execution produce bit-identical `ExecStats`, while cache
/// behaviour legitimately differs between the two modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ICacheStats {
    /// Lookups served from a cached decode.
    pub hits: u64,
    /// Entries inserted after a demand decode.
    pub fills: u64,
    /// Entries inserted from the verifier's disassembly at install time.
    pub prewarms: u64,
    /// Pages dropped on a code-write generation mismatch.
    pub invalidations: u64,
}

/// One cached page of predecoded instructions, stamped with the code-write
/// generation it was decoded against.
#[derive(Debug)]
struct CachedPage {
    gen: u64,
    /// Page-relative byte offset → predecoded entry. Dense so overlapping
    /// decodes (a jump into the middle of an instruction) each get their
    /// own slot, exactly like per-address decode in the reference path.
    entries: Box<[Option<(Inst, u8)>]>,
}

impl CachedPage {
    fn new(gen: u64) -> Self {
        CachedPage { gen, entries: vec![None; PAGE].into_boxed_slice() }
    }
}

/// The decode-once cache. Indexed by page within ELRANGE; pages allocate
/// lazily on first fill, so cost scales with code actually executed.
#[derive(Debug)]
pub struct ICache {
    base: u64,
    pages: Vec<Option<CachedPage>>,
    /// Event counters (reported to telemetry by the VM at run exit).
    pub stats: ICacheStats,
}

impl ICache {
    /// Creates an empty cache covering `mem`'s ELRANGE.
    #[must_use]
    pub fn new(mem: &Memory) -> Self {
        let pages = (mem.layout().elrange.len() / PAGE_SIZE) as usize;
        let mut v = Vec::with_capacity(pages);
        v.resize_with(pages, || None);
        ICache { base: mem.layout().elrange.start, pages: v, stats: ICacheStats::default() }
    }

    /// Looks up a predecoded instruction at `pc`, enforcing coherence: a
    /// page whose fill stamp trails `mem`'s code-write generation is dropped
    /// and the lookup misses (the caller re-decodes from current bytes).
    #[inline]
    pub fn lookup(&mut self, pc: u64, mem: &Memory) -> Option<(Inst, u8)> {
        let off = pc.checked_sub(self.base)? as usize;
        let page = off / PAGE;
        let slot = self.pages.get_mut(page)?;
        let cached = slot.as_mut()?;
        if cached.gen != mem.page_code_gen(page)? {
            self.stats.invalidations += 1;
            *slot = None;
            return None;
        }
        let entry = cached.entries[off % PAGE];
        if entry.is_some() {
            self.stats.hits += 1;
        }
        entry
    }

    /// Inserts a freshly decoded instruction. No-op when the instruction
    /// straddles a page boundary (see module docs) or `pc` is out of range.
    pub fn fill(&mut self, pc: u64, inst: Inst, len: u8, mem: &Memory) {
        if self.insert(pc, inst, len, mem) {
            self.stats.fills += 1;
        }
    }

    /// Pre-warms the cache from already-decoded instructions (the
    /// verifier's disassembly, patched to post-rewrite immediates), so the
    /// first run after `install` starts hot without a third decode pass.
    pub fn prewarm(&mut self, mem: &Memory, entries: impl IntoIterator<Item = (u64, Inst, u8)>) {
        for (pc, inst, len) in entries {
            if self.insert(pc, inst, len, mem) {
                self.stats.prewarms += 1;
            }
        }
    }

    fn insert(&mut self, pc: u64, inst: Inst, len: u8, mem: &Memory) -> bool {
        debug_assert!(len >= 1);
        let Some(off) = pc.checked_sub(self.base) else { return false };
        let off = off as usize;
        let page = off / PAGE;
        // Never cache a page-straddling instruction: its tail lives under a
        // different page generation, which a single stamp cannot cover.
        if off % PAGE + len as usize > PAGE {
            return false;
        }
        let Some(gen) = mem.page_code_gen(page) else { return false };
        let slot = &mut self.pages[page];
        match slot {
            Some(cached) if cached.gen == gen => {}
            Some(cached) => {
                // The page was written since its last fill; every existing
                // entry is suspect. Restart the page at the current stamp.
                self.stats.invalidations += 1;
                *cached = CachedPage::new(gen);
            }
            None => *slot = Some(CachedPage::new(gen)),
        }
        slot.as_mut().expect("just ensured").entries[off % PAGE] = Some((inst, len));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{EnclaveLayout, MemConfig};

    fn mem() -> Memory {
        Memory::new(EnclaveLayout::new(MemConfig::small()))
    }

    #[test]
    fn fill_then_hit() {
        let m = mem();
        let pc = m.layout().code.start;
        let mut ic = ICache::new(&m);
        assert_eq!(ic.lookup(pc, &m), None);
        ic.fill(pc, Inst::Halt, 1, &m);
        assert_eq!(ic.lookup(pc, &m), Some((Inst::Halt, 1)));
        assert_eq!(ic.stats.fills, 1);
        assert_eq!(ic.stats.hits, 1);
    }

    #[test]
    fn code_write_invalidates_page() {
        let mut m = mem();
        let pc = m.layout().code.start;
        let mut ic = ICache::new(&m);
        ic.fill(pc, Inst::Halt, 1, &m);
        // A store into the same code page must drop the cached decode.
        m.store(pc + 64, 8, 0x1234).unwrap();
        assert_eq!(ic.lookup(pc, &m), None);
        assert_eq!(ic.stats.invalidations, 1);
        // The page refills against the new generation and hits again.
        ic.fill(pc, Inst::Nop, 1, &m);
        assert_eq!(ic.lookup(pc, &m), Some((Inst::Nop, 1)));
    }

    #[test]
    fn writes_to_other_pages_do_not_invalidate() {
        let mut m = mem();
        let pc = m.layout().code.start;
        let mut ic = ICache::new(&m);
        ic.fill(pc, Inst::Halt, 1, &m);
        m.store(m.layout().heap.start, 8, 7).unwrap();
        m.store(pc + PAGE_SIZE + 8, 8, 7).unwrap(); // next code page
        assert_eq!(ic.lookup(pc, &m), Some((Inst::Halt, 1)));
        assert_eq!(ic.stats.invalidations, 0);
    }

    #[test]
    fn straddling_instructions_are_never_cached() {
        let m = mem();
        let pc = m.layout().code.start + PAGE_SIZE - 2;
        let mut ic = ICache::new(&m);
        ic.fill(pc, Inst::Nop, 10, &m); // would spill 8 bytes into next page
        assert_eq!(ic.lookup(pc, &m), None);
        assert_eq!(ic.stats.fills, 0);
    }

    #[test]
    fn out_of_range_pcs_miss_harmlessly() {
        let m = mem();
        let mut ic = ICache::new(&m);
        assert_eq!(ic.lookup(0, &m), None); // untrusted memory
        assert_eq!(ic.lookup(u64::MAX, &m), None);
        ic.fill(0, Inst::Halt, 1, &m);
        ic.fill(m.layout().elrange.end, Inst::Halt, 1, &m);
        assert_eq!(ic.stats.fills, 0);
    }

    #[test]
    fn prewarm_hits_without_demand_fill() {
        let m = mem();
        let pc = m.layout().code.start;
        let mut ic = ICache::new(&m);
        ic.prewarm(&m, [(pc, Inst::Nop, 1), (pc + 1, Inst::Halt, 1)]);
        assert_eq!(ic.stats.prewarms, 2);
        assert_eq!(ic.lookup(pc, &m), Some((Inst::Nop, 1)));
        assert_eq!(ic.lookup(pc + 1, &m), Some((Inst::Halt, 1)));
        assert_eq!(ic.stats.fills, 0);
    }

    #[test]
    fn permission_change_invalidates() {
        let mut m = mem();
        let pc = m.layout().code.start;
        let mut ic = ICache::new(&m);
        ic.fill(pc, Inst::Halt, 1, &m);
        m.set_region_perm(m.layout().code, crate::mem::PagePerm::RW);
        assert_eq!(ic.lookup(pc, &m), None);
        assert_eq!(ic.stats.invalidations, 1);
    }
}
