//! Hardware-level faults raised by the simulated CPU and memory.

use deflection_isa::DecodeError;
use std::error::Error as StdError;
use std::fmt;

/// A fault that terminates target-binary execution.
///
/// In the DEFLECTION threat model a fault is always *contained*: it stops
/// the computation without letting data out (the runtime reports the fault
/// to the data owner over the encrypted channel).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// The instruction at `pc` failed to decode.
    Decode(DecodeError),
    /// Instruction fetch from a non-executable or out-of-enclave page.
    NotExecutable {
        /// The faulting address.
        addr: u64,
    },
    /// Read from a page without read permission.
    ReadViolation {
        /// The faulting address.
        addr: u64,
    },
    /// Write to a page without write permission (e.g. a stack guard page —
    /// the paper's defense against implicit RSP overflows).
    WriteViolation {
        /// The faulting address.
        addr: u64,
    },
    /// Access to an address mapped by neither the untrusted region nor the
    /// enclave.
    Unmapped {
        /// The faulting address.
        addr: u64,
    },
    /// Integer division by zero or signed overflow (`MIN / -1`).
    DivideError {
        /// Address of the faulting instruction.
        pc: u64,
    },
    /// The manifest does not allow this OCall (policy P0).
    OcallDenied {
        /// The requested service code.
        code: u8,
    },
    /// An allowed OCall failed inside its wrapper.
    OcallFailed {
        /// The requested service code.
        code: u8,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Decode(e) => write!(f, "instruction decode fault: {e}"),
            Fault::NotExecutable { addr } => write!(f, "fetch from non-executable {addr:#x}"),
            Fault::ReadViolation { addr } => write!(f, "read violation at {addr:#x}"),
            Fault::WriteViolation { addr } => write!(f, "write violation at {addr:#x}"),
            Fault::Unmapped { addr } => write!(f, "unmapped address {addr:#x}"),
            Fault::DivideError { pc } => write!(f, "divide error at {pc:#x}"),
            Fault::OcallDenied { code } => write!(f, "ocall {code} denied by manifest"),
            Fault::OcallFailed { code, reason } => write!(f, "ocall {code} failed: {reason}"),
        }
    }
}

impl StdError for Fault {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Fault::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for Fault {
    fn from(e: DecodeError) -> Self {
        Fault::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let f = Fault::WriteViolation { addr: 0x1000 };
        assert!(f.to_string().contains("0x1000"));
        let f = Fault::OcallDenied { code: 9 };
        assert!(f.to_string().contains('9'));
    }
}
