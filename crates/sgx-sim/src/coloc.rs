//! HyperRace-style co-location testing (policy P6 support).
//!
//! When a P6 annotation detects an AEX (clobbered SSA marker), DEFLECTION
//! runs a *co-location test*: a contrived data race between the enclave's
//! two hyper-threads whose timing distinguishes "my sibling is my own
//! protection thread" from "the OS scheduled something else (an attacker)
//! on my physical core". The paper (Section IV-C) evaluates the test's
//! false-positive rate α on four CPUs over 25.6 M trials and treats it as a
//! tunable parameter; we model the probe as a Bernoulli process with the
//! published per-CPU α characteristics and a configurable attacker.

use deflection_crypto::drbg::HmacDrbg;

/// Timing characteristics of a CPU model for the data-race probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuProfile {
    /// Marketing name of the processor.
    pub name: &'static str,
    /// False-positive rate α: probability that a *benign*, co-located pair
    /// still fails the test (same order of magnitude across the paper's
    /// four processors).
    pub alpha: f64,
    /// Miss rate β: probability a non-co-located (attacked) pair passes.
    pub beta: f64,
}

/// The four processors of the paper's accuracy experiment.
pub const PROFILES: [CpuProfile; 4] = [
    CpuProfile { name: "i7-6700", alpha: 1.2e-4, beta: 1e-3 },
    CpuProfile { name: "E3-1280 v5", alpha: 0.9e-4, beta: 1e-3 },
    CpuProfile { name: "i7-7700HQ", alpha: 2.1e-4, beta: 1e-3 },
    CpuProfile { name: "i5-6200U", alpha: 3.4e-4, beta: 1e-3 },
];

/// A deterministic co-location tester bound to one CPU profile.
#[derive(Debug, Clone)]
pub struct ColocationTester {
    profile: CpuProfile,
    drbg: HmacDrbg,
    /// Whether an attacker currently occupies the sibling hyper-thread.
    pub attacker_present: bool,
    /// Probes run.
    pub probes: u64,
    /// Probes that raised an alarm.
    pub alarms: u64,
}

impl ColocationTester {
    /// Creates a tester for `profile`, seeded for reproducibility.
    #[must_use]
    pub fn new(profile: CpuProfile, seed: u64) -> Self {
        ColocationTester {
            profile,
            drbg: HmacDrbg::new(&seed.to_le_bytes()),
            attacker_present: false,
            probes: 0,
            alarms: 0,
        }
    }

    /// The profile in use.
    #[must_use]
    pub fn profile(&self) -> CpuProfile {
        self.profile
    }

    /// Runs one probe. Returns `true` when the test passes (threads deemed
    /// co-located), `false` on alarm.
    pub fn probe(&mut self) -> bool {
        self.probes += 1;
        let u = self.drbg.next_f64();
        let pass = if self.attacker_present {
            // Non-co-located: passes only with the (small) miss rate β.
            u < self.profile.beta
        } else {
            // Benign: fails only with the false-positive rate α.
            u >= self.profile.alpha
        };
        if !pass {
            self.alarms += 1;
        }
        pass
    }

    /// Empirically estimates α over `trials` benign probes (the experiment
    /// behind the paper's Section IV-C accuracy numbers).
    pub fn estimate_alpha(&mut self, trials: u64) -> f64 {
        let was = self.attacker_present;
        self.attacker_present = false;
        let mut alarms = 0u64;
        for _ in 0..trials {
            if !self.probe() {
                alarms += 1;
            }
        }
        self.attacker_present = was;
        alarms as f64 / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_probes_mostly_pass() {
        let mut t = ColocationTester::new(PROFILES[0], 1);
        let passes = (0..10_000).filter(|_| t.probe()).count();
        assert!(passes > 9_950, "expected almost all passes, got {passes}");
    }

    #[test]
    fn attacked_probes_mostly_alarm() {
        let mut t = ColocationTester::new(PROFILES[0], 2);
        t.attacker_present = true;
        let passes = (0..10_000).filter(|_| t.probe()).count();
        assert!(passes < 50, "expected almost all alarms, got {passes} passes");
    }

    #[test]
    fn alpha_estimate_matches_profile_order_of_magnitude() {
        // The paper uses 25.6 M trials; 300 k keeps the debug-mode test fast
        // while still pinning the order of magnitude (≈ 100 expected alarms
        // for the i7-7700HQ profile).
        let mut t = ColocationTester::new(PROFILES[2], 3);
        let alpha = t.estimate_alpha(300_000);
        let expected = PROFILES[2].alpha;
        assert!(
            alpha > expected / 3.0 && alpha < expected * 3.0,
            "estimated α {alpha} too far from {expected}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ColocationTester::new(PROFILES[1], 42);
        let mut b = ColocationTester::new(PROFILES[1], 42);
        let ra: Vec<bool> = (0..1000).map(|_| a.probe()).collect();
        let rb: Vec<bool> = (0..1000).map(|_| b.probe()).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn profiles_cover_four_cpus() {
        assert_eq!(PROFILES.len(), 4);
        for p in PROFILES {
            assert!(p.alpha > 0.0 && p.alpha < 1e-3);
            assert!(p.beta > 0.0 && p.beta < 1e-2);
        }
    }
}
