//! The virtual machine: couples the CPU, memory, AEX injection and a host
//! for OCall service, and runs the target binary under an instruction
//! budget.

use crate::aex::AexInjector;
use crate::cpu::{Cpu, StepEvent};
use crate::icache::{ICache, ICacheStats, Trace, TraceStats, CHECK_GEN, CHECK_PC, END};
use crate::mem::Memory;
use crate::Fault;
use deflection_isa::{Inst, Reg};
use deflection_telemetry::{LocalHistogram, METRICS};
use std::sync::Arc;

/// Host services the running enclave can reach.
///
/// Implemented by the bootstrap enclave runtime in `deflection-core`, where
/// OCall wrappers enforce policy P0 (allowed calls only, encryption,
/// fixed-length padding) and the probe runs the HyperRace co-location test.
pub trait VmHost {
    /// Handles OCall `code`; arguments in `rdi`/`rsi`/`rdx`, result in `rax`.
    ///
    /// # Errors
    ///
    /// Returning a [`Fault`] terminates execution (e.g.
    /// [`Fault::OcallDenied`] for calls outside the manifest).
    fn ocall(&mut self, code: u8, cpu: &mut Cpu, mem: &mut Memory) -> Result<(), Fault>;

    /// Runs the co-location probe; `true` means the sibling-thread test
    /// passed (no alarm).
    fn aex_probe(&mut self) -> bool;
}

/// A host that denies every OCall and always passes the probe — the default
/// fail-closed configuration.
#[derive(Debug, Clone, Default)]
pub struct NullHost;

impl VmHost for NullHost {
    fn ocall(&mut self, code: u8, _cpu: &mut Cpu, _mem: &mut Memory) -> Result<(), Fault> {
        Err(Fault::OcallDenied { code })
    }

    fn aex_probe(&mut self) -> bool {
        true
    }
}

/// Counters collected while running.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed.
    pub instructions: u64,
    /// AEX events injected.
    pub aex_injected: u64,
    /// OCalls serviced.
    pub ocalls: u64,
    /// Co-location probes executed.
    pub probes: u64,
}

/// Why `run` returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunExit {
    /// `halt` executed; value of `rax` at exit.
    Halted {
        /// The exit value.
        exit: u64,
    },
    /// A security annotation aborted the program (policy violation).
    PolicyAbort {
        /// The policy abort code.
        code: u8,
    },
    /// A hardware-level fault terminated execution.
    Fault(Fault),
    /// The instruction budget was exhausted.
    OutOfFuel,
}

impl RunExit {
    /// Convenience: the exit value if the program halted normally.
    #[must_use]
    pub fn exit_value(&self) -> Option<u64> {
        match self {
            RunExit::Halted { exit } => Some(*exit),
            _ => None,
        }
    }
}

/// How the run loop dispatches instructions. All three modes are proven
/// observationally identical by `tests/icache_differential.rs`; the
/// non-default modes exist as auditable oracles and ablation baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Superblock trace dispatch (the default): predecoded multi-branch
    /// traces with trace-to-trace chaining and in-trace side-exit checks.
    Traced,
    /// Per-instruction icache dispatch in AEX-sized blocks — the PR-5
    /// mid-tier, kept as the ablation baseline traces must beat.
    Block,
    /// Fetch + decode every step from raw bytes, check the AEX schedule
    /// every step — the pre-icache reference semantics.
    Reference,
}

/// How a trace run ended (other than by ending the whole run).
enum TraceEnd {
    /// Ran off the end of the trace (or an `END` element) with `pc` at the
    /// natural successor — eligible for chaining.
    Completed,
    /// A speculated element's pc re-check missed; `pc` holds the actual
    /// successor.
    SideExit,
    /// A stamp re-check caught a write into the trace's own page; the
    /// caller must kill the trace.
    Killed,
    /// The AEX block budget ran out mid-trace.
    Budget,
    /// The run is over.
    Exit(RunExit),
}

/// Heatmap vectors are capped here so a pathological run (every
/// instruction a side exit) cannot grow the profile without bound.
const PROFILE_HEATMAP_CAP: usize = 4096;

/// PC samples and event heatmaps accumulated by the in-run sampling
/// profiler — a plain local buffer, no atomics, never shared while the run
/// is live (the same fold-at-exit discipline as [`LocalHistogram`], see
/// DESIGN.md §5e/§5j): the host retrieves it with [`Vm::take_profile`]
/// after the run returns, at a boundary it already witnesses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VmProfile {
    /// `(pc, weight)` samples: each entry attributes `weight` executed
    /// instructions — the gap since the previous sample — to the code at
    /// `pc`. Weights sum to exactly the instructions executed while the
    /// profiler was enabled (the final gap is flushed at run exit), so
    /// per-function aggregation is exact in total, sampled in placement.
    pub samples: Vec<(u64, u64)>,
    /// PCs at trace side exits (mispredicted guards), capped at
    /// `PROFILE_HEATMAP_CAP` (4096).
    pub side_exit_pcs: Vec<u64>,
    /// PCs at guard trips — policy aborts and faults — capped at
    /// `PROFILE_HEATMAP_CAP` (4096).
    pub guard_trip_pcs: Vec<u64>,
}

impl VmProfile {
    /// Total attributed instruction weight.
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.samples.iter().map(|&(_, w)| w).sum()
    }
}

/// A ready-to-run virtual machine.
#[derive(Debug)]
pub struct Vm {
    /// CPU state.
    pub cpu: Cpu,
    /// Memory state.
    pub mem: Memory,
    /// AEX injector.
    pub aex: AexInjector,
    /// Execution counters.
    pub stats: ExecStats,
    /// Predecoded instruction + trace cache (see [`crate::icache`]).
    icache: ICache,
    /// Active dispatch mode.
    mode: ExecMode,
    /// Local block-length accumulator: the dispatch loop records here with
    /// no atomics, and `run` folds it into the collector once at exit.
    block_lens: LocalHistogram,
    /// Local trace-length accumulator, folded like `block_lens`.
    trace_lens: LocalHistogram,
    /// Absolute instruction count at which the next profiler sample is
    /// due; `u64::MAX` means the profiler is off, making the disabled-path
    /// cost of every dispatch loop a single always-false compare.
    sample_due: u64,
    /// Profiler sampling interval in instructions.
    sample_interval: u64,
    /// Instruction count already attributed to a sample.
    last_attributed: u64,
    /// The accumulating profile (empty while the profiler is off).
    profile: VmProfile,
}

/// Process-wide default dispatch mode, read once from the environment:
/// `DEFLECTION_DECODE_EVERY_STEP` forces [`ExecMode::Reference`],
/// `DEFLECTION_BLOCK_DISPATCH` forces [`ExecMode::Block`], otherwise
/// [`ExecMode::Traced`].
fn exec_mode_default() -> ExecMode {
    use std::sync::OnceLock;
    static DEFAULT: OnceLock<ExecMode> = OnceLock::new();
    let set =
        |var: &str| std::env::var(var).is_ok_and(|v| !v.is_empty() && v != "0" && v != "false");
    *DEFAULT.get_or_init(|| {
        if set("DEFLECTION_DECODE_EVERY_STEP") {
            ExecMode::Reference
        } else if set("DEFLECTION_BLOCK_DISPATCH") {
            ExecMode::Block
        } else {
            ExecMode::Traced
        }
    })
}

impl Vm {
    /// Creates a VM over `mem` with `pc` at `entry` and `rsp` at the top of
    /// the target stack.
    #[must_use]
    pub fn new(mem: Memory, entry: u64) -> Self {
        let mut cpu = Cpu::new(entry);
        cpu.set(Reg::RSP, mem.layout().initial_rsp());
        let icache = ICache::new(&mem);
        Vm {
            cpu,
            mem,
            aex: AexInjector::none(),
            stats: ExecStats::default(),
            icache,
            mode: exec_mode_default(),
            block_lens: LocalHistogram::new(),
            trace_lens: LocalHistogram::new(),
            sample_due: u64::MAX,
            sample_interval: u64::MAX,
            last_attributed: 0,
            profile: VmProfile::default(),
        }
    }

    /// Turns on instruction-count-triggered PC sampling: every `interval`
    /// executed instructions the profiler attributes the elapsed gap to
    /// the current pc. Purely observational — execution, counters and
    /// exits are bit-identical with the profiler on or off — and wall-
    /// clock-free in-run (the trigger is the architectural instruction
    /// counter, never a timer).
    pub fn enable_profiler(&mut self, interval: u64) {
        let interval = interval.max(1);
        self.sample_interval = interval;
        self.last_attributed = self.stats.instructions;
        self.sample_due = self.stats.instructions.saturating_add(interval);
    }

    /// Whether the sampling profiler is on.
    #[must_use]
    pub fn profiler_enabled(&self) -> bool {
        self.sample_due != u64::MAX
    }

    /// Takes the accumulated profile, leaving an empty one in place. Call
    /// after [`Vm::run`] returns — the profiler flushes its final gap at
    /// run exit, so the taken samples sum to exactly the instructions
    /// executed under the profiler so far.
    pub fn take_profile(&mut self) -> VmProfile {
        std::mem::take(&mut self.profile)
    }

    /// Attributes the instructions executed since the last sample to the
    /// current pc and schedules the next sample.
    #[cold]
    fn profile_sample(&mut self) {
        let gap = self.stats.instructions - self.last_attributed;
        if gap > 0 {
            self.profile.samples.push((self.cpu.pc, gap));
        }
        self.last_attributed = self.stats.instructions;
        self.sample_due = self.stats.instructions.saturating_add(self.sample_interval);
    }

    /// Records `pc` into a heatmap vector, respecting the cap.
    fn profile_heat(v: &mut Vec<u64>, pc: u64) {
        if v.len() < PROFILE_HEATMAP_CAP {
            v.push(pc);
        }
    }

    /// Replaces the AEX injector.
    pub fn set_aex(&mut self, aex: AexInjector) {
        self.aex = aex;
    }

    /// Selects the dispatch mode. All modes must be observationally
    /// identical; the non-default ones exist for differential tests and
    /// the `ablation_icache` bench.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// The active dispatch mode.
    #[must_use]
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// Compatibility shim: `true` selects [`ExecMode::Reference`], `false`
    /// the default [`ExecMode::Traced`].
    pub fn set_decode_every_step(&mut self, on: bool) {
        self.mode = if on { ExecMode::Reference } else { ExecMode::Traced };
    }

    /// Whether the reference (decode-every-step) mode is active.
    #[must_use]
    pub fn decode_every_step(&self) -> bool {
        self.mode == ExecMode::Reference
    }

    /// Icache event counters accumulated so far.
    #[must_use]
    pub fn icache_stats(&self) -> ICacheStats {
        self.icache.stats
    }

    /// Trace-cache event counters accumulated so far.
    #[must_use]
    pub fn trace_stats(&self) -> TraceStats {
        self.icache.trace_stats
    }

    /// Seeds the icache with already-decoded instructions — the install
    /// path feeds it the verifier's own disassembly (patched to the
    /// post-rewrite immediates) so the first run starts hot.
    pub fn prewarm_icache(&mut self, entries: impl IntoIterator<Item = (u64, Inst, u8)>) {
        self.icache.prewarm(&self.mem, entries);
    }

    /// Forms superblock traces over the verifier's disassembly at install
    /// time (greedy cover, one trace per address not already covered), so a
    /// full-policy run needs no demand formations at all. Decodes come
    /// exclusively from `entries`; install-time work is accounted as
    /// `prewarmed`, never as demand hits or fills.
    pub fn prewarm_traces(&mut self, entries: &[(u64, Inst, u8)]) {
        let lens = self.icache.prewarm_traces(&self.mem, entries);
        // Install time is a host-witnessed boundary: fold directly.
        let mut local = LocalHistogram::new();
        for len in lens {
            local.observe(len as u64);
        }
        METRICS.vm_trace_len.merge(&local);
    }

    /// Runs until halt, abort, fault or fuel exhaustion.
    pub fn run(&mut self, fuel: u64, host: &mut dyn VmHost) -> RunExit {
        let before = self.icache.stats;
        let tbefore = self.icache.trace_stats;
        let exit = match self.mode {
            ExecMode::Traced => self.run_traced(fuel, host),
            ExecMode::Block => self.run_cached(fuel, host),
            ExecMode::Reference => self.run_reference(fuel, host),
        };
        // Flush hardware-model counters once per ECall-like boundary; the
        // hot loops above never touch the host metrics plane themselves —
        // block/trace lengths accumulate in local histograms and fold in
        // here, after the run, on the host side (see DESIGN.md §5f).
        let after = self.icache.stats;
        METRICS.vm_icache_hits.add(after.hits - before.hits);
        METRICS.vm_icache_fills.add(after.fills - before.fills);
        METRICS.vm_icache_invalidations.add(after.invalidations - before.invalidations);
        let tafter = self.icache.trace_stats;
        METRICS.vm_trace_formed.add(tafter.formed - tbefore.formed);
        METRICS.vm_trace_chained.add(tafter.chained - tbefore.chained);
        METRICS.vm_trace_side_exits.add(tafter.side_exits - tbefore.side_exits);
        METRICS.vm_trace_invalidated.add(tafter.invalidated - tbefore.invalidated);
        METRICS.vm_dispatch_block_len.merge(&self.block_lens);
        self.block_lens.clear();
        METRICS.vm_trace_len.merge(&self.trace_lens);
        self.trace_lens.clear();
        // Profiler fold-at-exit: attribute the instructions since the last
        // sample point to the final pc, so the profile's weights sum to
        // exactly the instructions executed (nothing in-run reads a clock
        // or touches shared state; this flush happens after the run, at
        // the boundary the host already witnesses).
        if self.sample_due != u64::MAX {
            self.profile_sample();
        }
        exit
    }

    /// Superblock trace dispatch: like the block mode, the AEX plan bounds
    /// how many instructions run unchecked, but within a block execution
    /// threads through predecoded traces — crossing direct branches without
    /// re-entering the lookup path, chaining trace to trace, and falling
    /// back to single-step dispatch only where no trace can form.
    fn run_traced(&mut self, fuel: u64, host: &mut dyn VmHost) -> RunExit {
        let mut remaining = fuel;
        // Whether the previous trace completed onto its successor without
        // leaving trace dispatch — the "chained" transition telemetry.
        let mut completed = false;
        while remaining > 0 {
            let (fire, block) = self.aex.plan(self.stats.instructions, remaining);
            if fire {
                self.aex.deliver(&self.cpu, &mut self.mem);
                self.stats.aex_injected += 1;
            }
            self.block_lens.observe(block);
            let mut budget = block;
            while budget > 0 {
                // Profiler check + budget clamp: the clamp keeps a trace
                // run from sailing past the next sample point, so traced
                // dispatch pays no per-element profiler cost — one compare
                // and one min per trace entry (both no-ops at u64::MAX
                // when the profiler is off).
                if self.stats.instructions >= self.sample_due {
                    self.profile_sample();
                }
                let allow = budget.min(self.sample_due.saturating_sub(self.stats.instructions));
                let found = self.icache.lookup_trace(self.cpu.pc, &self.mem);
                let (trace, idx) = match found {
                    Some((trace, idx)) => {
                        if completed {
                            self.icache.trace_stats.chained += 1;
                        }
                        (trace, idx)
                    }
                    None => match self.icache.form_trace(self.cpu.pc, &self.mem) {
                        Some(trace) => {
                            self.trace_lens.observe(trace.elems.len() as u64);
                            (trace, 0)
                        }
                        None => {
                            // Straddling or undecodable entry: single-step
                            // (faults surface here with reference-identical
                            // pc state).
                            completed = false;
                            self.stats.instructions += 1;
                            budget -= 1;
                            let event = match self.icache.lookup(self.cpu.pc, &self.mem) {
                                Some((inst, len)) => {
                                    let next = self.cpu.pc.wrapping_add(u64::from(len));
                                    self.cpu.execute(inst, next, &mut self.mem)
                                }
                                None => self.step_on_miss(),
                            };
                            if let Some(exit) = self.dispatch_event(event, host) {
                                return exit;
                            }
                            continue;
                        }
                    },
                };
                let (executed, end) = self.run_trace(&trace, idx, allow, host);
                budget -= executed;
                match end {
                    TraceEnd::Exit(exit) => return exit,
                    TraceEnd::Completed => completed = true,
                    TraceEnd::SideExit => {
                        self.icache.trace_stats.side_exits += 1;
                        if self.sample_due != u64::MAX {
                            Self::profile_heat(&mut self.profile.side_exit_pcs, self.cpu.pc);
                        }
                        completed = false;
                    }
                    TraceEnd::Killed => {
                        self.icache.kill_trace(trace.entry);
                        completed = false;
                    }
                    TraceEnd::Budget => completed = false,
                }
            }
            remaining -= block;
        }
        RunExit::OutOfFuel
    }

    /// Executes up to `budget` elements of `trace` starting at `idx`,
    /// returning how many instructions ran and why the trace ended.
    fn run_trace(
        &mut self,
        trace: &Arc<Trace>,
        mut idx: usize,
        budget: u64,
        host: &mut dyn VmHost,
    ) -> (u64, TraceEnd) {
        let elems = &trace.elems;
        // The architectural instruction counter is flushed at every exit
        // from this loop rather than bumped per element — nothing inside
        // the loop observes it (hosts see only `Cpu`/`Memory`).
        let base = self.stats.instructions;
        let mut executed = 0u64;
        let end = 'run: loop {
            if executed >= budget {
                break 'run TraceEnd::Budget;
            }
            let elem = &elems[idx];
            debug_assert_eq!(self.cpu.pc, elem.pc, "trace dispatch invariant");
            executed += 1;
            let event = self.cpu.execute_pred(&elem.op, &mut self.mem);
            if !matches!(event, Ok(StepEvent::Continue)) {
                self.stats.instructions = base + executed;
                if let Some(exit) = self.dispatch_event(event, host) {
                    break 'run TraceEnd::Exit(exit);
                }
            }
            let flags = elem.flags;
            if flags != 0 {
                if flags & CHECK_GEN != 0 && !self.mem.stamp_current(trace.page, trace.gen) {
                    break 'run TraceEnd::Killed;
                }
                if flags & END != 0 {
                    break 'run TraceEnd::Completed;
                }
                if flags & CHECK_PC != 0 && self.cpu.pc != elem.pred {
                    // In-trace recovery: a mispredicted branch whose real
                    // target lies inside this very trace (the common loop
                    // diamond) re-enters by local search instead of
                    // bouncing through the dispatcher's lookup.
                    if let Some(j) = trace.find(self.cpu.pc) {
                        self.icache.trace_stats.side_exits += 1;
                        if self.sample_due != u64::MAX {
                            Self::profile_heat(&mut self.profile.side_exit_pcs, self.cpu.pc);
                        }
                        idx = j;
                        continue;
                    }
                    break 'run TraceEnd::SideExit;
                }
            }
            idx += 1;
            if idx == elems.len() {
                // The walk ended mid-flow (length bound or a cycle closing
                // back into the trace): chain in place when the successor
                // is one of our own elements — the entry wrap (a loop body
                // that is exactly this trace) is the hot case.
                if self.cpu.pc == trace.entry {
                    idx = 0;
                    self.icache.trace_stats.chained += 1;
                } else if let Some(j) = trace.find(self.cpu.pc) {
                    idx = j;
                    self.icache.trace_stats.chained += 1;
                } else {
                    break 'run TraceEnd::Completed;
                }
            }
        };
        self.stats.instructions = base + executed;
        (executed, end)
    }

    /// Block dispatch: between two AEX fire points no per-step schedule
    /// check is needed, so instructions dispatch straight out of the icache
    /// in a tight loop, falling back to fetch+decode (and filling the
    /// cache) only on a miss.
    fn run_cached(&mut self, fuel: u64, host: &mut dyn VmHost) -> RunExit {
        let mut remaining = fuel;
        while remaining > 0 {
            let (fire, block) = self.aex.plan(self.stats.instructions, remaining);
            if fire {
                self.aex.deliver(&self.cpu, &mut self.mem);
                self.stats.aex_injected += 1;
            }
            self.block_lens.observe(block);
            for _ in 0..block {
                if self.stats.instructions >= self.sample_due {
                    self.profile_sample();
                }
                self.stats.instructions += 1;
                let event = match self.icache.lookup(self.cpu.pc, &self.mem) {
                    Some((inst, len)) => {
                        let next = self.cpu.pc.wrapping_add(len as u64);
                        self.cpu.execute(inst, next, &mut self.mem)
                    }
                    None => self.step_on_miss(),
                };
                if let Some(exit) = self.dispatch_event(event, host) {
                    return exit;
                }
            }
            remaining -= block;
        }
        RunExit::OutOfFuel
    }

    /// Decode slow path: fetch + decode once, fill the cache, execute.
    fn step_on_miss(&mut self) -> Result<StepEvent, Fault> {
        let pc = self.cpu.pc;
        let (inst, len) = self.cpu.fetch_decode(&self.mem)?;
        self.icache.fill(pc, inst, len, &self.mem);
        let next = pc.wrapping_add(len as u64);
        self.cpu.execute(inst, next, &mut self.mem)
    }

    /// Reference semantics: fetch + decode every instruction, check the
    /// AEX schedule every instruction.
    fn run_reference(&mut self, fuel: u64, host: &mut dyn VmHost) -> RunExit {
        for _ in 0..fuel {
            if self.stats.instructions >= self.sample_due {
                self.profile_sample();
            }
            self.stats.instructions += 1;
            if self.aex.should_fire(self.stats.instructions) {
                self.aex.deliver(&self.cpu, &mut self.mem);
                self.stats.aex_injected += 1;
            }
            let event = self.cpu.step(&mut self.mem);
            if let Some(exit) = self.dispatch_event(event, host) {
                return exit;
            }
        }
        RunExit::OutOfFuel
    }

    /// Folds one step outcome into counters and host service; `Some` means
    /// the run is over.
    fn dispatch_event(
        &mut self,
        event: Result<StepEvent, Fault>,
        host: &mut dyn VmHost,
    ) -> Option<RunExit> {
        match event {
            Ok(StepEvent::Continue) => None,
            Ok(StepEvent::Halted) => Some(RunExit::Halted { exit: self.cpu.get(Reg::RAX) }),
            Ok(StepEvent::PolicyAbort(code)) => {
                if self.sample_due != u64::MAX {
                    Self::profile_heat(&mut self.profile.guard_trip_pcs, self.cpu.pc);
                }
                Some(RunExit::PolicyAbort { code })
            }
            Ok(StepEvent::Ocall(code)) => {
                self.stats.ocalls += 1;
                match host.ocall(code, &mut self.cpu, &mut self.mem) {
                    Ok(()) => None,
                    Err(f) => Some(RunExit::Fault(f)),
                }
            }
            Ok(StepEvent::AexProbe) => {
                self.stats.probes += 1;
                let ok = host.aex_probe();
                self.cpu.set(Reg::RAX, ok as u64);
                None
            }
            Err(f) => {
                if self.sample_due != u64::MAX {
                    Self::profile_heat(&mut self.profile.guard_trip_pcs, self.cpu.pc);
                }
                Some(RunExit::Fault(f))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aex::AexSchedule;
    use crate::layout::{EnclaveLayout, MemConfig};
    use deflection_isa::{encode_program, Inst};

    fn vm_with(prog: &[Inst]) -> Vm {
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut mem = Memory::new(layout.clone());
        let (bytes, _) = encode_program(prog);
        mem.poke_bytes(layout.code.start, &bytes).unwrap();
        Vm::new(mem, layout.code.start)
    }

    #[test]
    fn runs_to_halt() {
        let mut vm = vm_with(&[Inst::MovRI { dst: Reg::RAX, imm: 11 }, Inst::Halt]);
        let exit = vm.run(100, &mut NullHost);
        assert_eq!(exit, RunExit::Halted { exit: 11 });
        assert_eq!(vm.stats.instructions, 2);
    }

    #[test]
    fn fuel_limit_enforced() {
        // Infinite loop: jmp -5 (back onto itself).
        let mut vm = vm_with(&[Inst::Jmp { rel: -5 }]);
        let exit = vm.run(1000, &mut NullHost);
        assert_eq!(exit, RunExit::OutOfFuel);
        assert_eq!(vm.stats.instructions, 1000);
    }

    #[test]
    fn null_host_denies_ocalls() {
        let mut vm = vm_with(&[Inst::Ocall { code: 0 }, Inst::Halt]);
        let exit = vm.run(100, &mut NullHost);
        assert_eq!(exit, RunExit::Fault(Fault::OcallDenied { code: 0 }));
    }

    #[test]
    fn probe_result_lands_in_rax() {
        struct AlarmHost;
        impl VmHost for AlarmHost {
            fn ocall(&mut self, code: u8, _: &mut Cpu, _: &mut Memory) -> Result<(), Fault> {
                Err(Fault::OcallDenied { code })
            }
            fn aex_probe(&mut self) -> bool {
                false
            }
        }
        let mut vm = vm_with(&[Inst::AexProbe, Inst::Halt]);
        let exit = vm.run(100, &mut AlarmHost);
        assert_eq!(exit, RunExit::Halted { exit: 0 });
        assert_eq!(vm.stats.probes, 1);
    }

    #[test]
    fn aex_injection_counts_and_clobbers_marker() {
        let mut vm = vm_with(&[
            Inst::Jmp { rel: -5 }, // spin
        ]);
        let layout = vm.mem.layout().clone();
        vm.mem.poke_u64(layout.ssa_marker_slot(), 0x5A5A).unwrap();
        vm.set_aex(AexInjector::new(AexSchedule::Periodic { interval: 10 }));
        let _ = vm.run(100, &mut NullHost);
        assert_eq!(vm.stats.aex_injected, 10);
        assert_ne!(vm.mem.peek_u64(layout.ssa_marker_slot()).unwrap(), 0x5A5A);
    }

    #[test]
    fn all_three_modes_agree_under_aex() {
        // A loop with periodic AEX: traced, block and reference dispatch
        // must land on exactly the same counters and exit.
        let build = |rel: i32| {
            vec![
                Inst::AluRI { op: deflection_isa::AluOp::Add, dst: Reg::RBX, imm: 1 },
                Inst::CmpRI { lhs: Reg::RBX, imm: 40 },
                Inst::Jcc { cc: deflection_isa::CondCode::B, rel },
                Inst::MovRI { dst: Reg::RAX, imm: 7 },
                Inst::Halt,
            ]
        };
        let (_, offs) = encode_program(&build(0));
        let prog = build(-(offs[3] as i32)); // back to the add
        let run_mode = |mode: ExecMode| {
            let mut vm = vm_with(&prog);
            vm.set_exec_mode(mode);
            vm.set_aex(AexInjector::new(AexSchedule::Periodic { interval: 13 }));
            let exit = vm.run(10_000, &mut NullHost);
            (exit, vm.stats, vm.icache_stats(), vm.trace_stats())
        };
        let (exit_t, stats_t, _, traces_t) = run_mode(ExecMode::Traced);
        let (exit_b, stats_b, icache_b, traces_b) = run_mode(ExecMode::Block);
        let (exit_r, stats_r, icache_r, traces_r) = run_mode(ExecMode::Reference);
        assert_eq!(exit_t, RunExit::Halted { exit: 7 });
        assert_eq!(exit_t, exit_b);
        assert_eq!(exit_t, exit_r);
        assert_eq!(stats_t, stats_b);
        assert_eq!(stats_t, stats_r);
        // Traced mode really traced: the backward Jcc kept the loop inside
        // one trace (wrapping counts as chaining) and the final fallthrough
        // side-exited it exactly once.
        assert!(traces_t.formed >= 1);
        assert!(traces_t.chained > 0);
        assert_eq!(traces_t.side_exits, 1);
        // Block mode really cached, and neither baseline touched traces.
        assert!(icache_b.hits > icache_b.fills);
        assert_eq!(traces_b, TraceStats::default());
        assert_eq!(icache_r, crate::icache::ICacheStats::default());
        assert_eq!(traces_r, TraceStats::default());
    }

    #[test]
    fn trace_crosses_direct_branches_in_one_formation() {
        // jmp over a dead mov, then a call/ret pair: Jmp and Call both stay
        // inside one trace; Ret ends it and chains back through the index.
        let build = |jmp_rel: i32, call_rel: i32| {
            vec![
                Inst::Jmp { rel: jmp_rel },             // 0: over the dead mov
                Inst::MovRI { dst: Reg::RAX, imm: 99 }, // 1: dead
                Inst::Call { rel: call_rel },           // 2
                Inst::Halt,                             // 3
                Inst::MovRI { dst: Reg::RAX, imm: 21 }, // 4: callee
                Inst::Ret,                              // 5
            ]
        };
        let (_, offs) = encode_program(&build(0, 0));
        let prog = build(
            (offs[2] - offs[1]) as i32, // jmp → call
            (offs[4] - offs[3]) as i32, // call → callee
        );
        let mut vm = vm_with(&prog);
        vm.set_exec_mode(ExecMode::Traced);
        assert_eq!(vm.run(100, &mut NullHost), RunExit::Halted { exit: 21 });
        let t = vm.trace_stats();
        // One trace covers jmp→call→mov→ret (crossing two direct edges);
        // the Ret ends it and the Halt continuation chains or forms anew.
        assert!(t.formed >= 1);
        assert!(t.formed <= 2, "direct edges must not fragment the trace: {t:?}");
        assert_eq!(vm.stats.instructions, 5);
    }

    #[test]
    fn store_into_own_trace_page_kills_it_mid_run() {
        // A store patches the immediate of the *following* instruction in
        // the same trace. The stamp re-check after the store must kill the
        // trace before the stale successor executes.
        use deflection_isa::MemOperand;
        let layout = EnclaveLayout::new(MemConfig::small());
        let (_, offs) = encode_program(&[
            Inst::MovRI { dst: Reg::RBX, imm: 0 },
            Inst::Store { mem: MemOperand::abs(0), src: Reg::RBX },
            Inst::MovRI { dst: Reg::RAX, imm: 1 },
            Inst::Halt,
        ]);
        // Patch target: the imm field (at +2) of the MovRI after the store.
        let patch = layout.code.start + offs[2] as u64 + 2;
        let prog = [
            Inst::MovRI { dst: Reg::RBX, imm: 77 },
            Inst::Store { mem: MemOperand::abs(patch as i32), src: Reg::RBX },
            Inst::MovRI { dst: Reg::RAX, imm: 1 }, // becomes imm: 77 at runtime
            Inst::Halt,
        ];
        for mode in [ExecMode::Traced, ExecMode::Block, ExecMode::Reference] {
            let mut vm = vm_with(&prog);
            vm.set_exec_mode(mode);
            let exit = vm.run(100, &mut NullHost);
            assert_eq!(exit, RunExit::Halted { exit: 77 }, "{mode:?}");
            if mode == ExecMode::Traced {
                assert!(vm.trace_stats().invalidated >= 1, "store must kill the live trace");
            }
        }
    }

    #[test]
    fn prewarmed_traces_need_no_demand_formation() {
        let prog = [Inst::MovRI { dst: Reg::RAX, imm: 9 }, Inst::Nop, Inst::Nop, Inst::Halt];
        let mut vm = vm_with(&prog);
        vm.set_exec_mode(ExecMode::Traced);
        let (_, offs) = encode_program(&prog);
        let base = vm.mem.layout().code.start;
        let entries: Vec<(u64, Inst, u8)> = prog
            .iter()
            .enumerate()
            .map(|(i, &inst)| {
                let end = if i + 1 < offs.len() { offs[i + 1] } else { offs[i] + 1 };
                (base + offs[i] as u64, inst, (end - offs[i]) as u8)
            })
            .collect();
        vm.prewarm_icache(entries.iter().copied());
        vm.prewarm_traces(&entries);
        let warmed = vm.trace_stats();
        assert!(warmed.prewarmed >= 1);
        assert_eq!(warmed.formed, 0);
        assert_eq!(vm.run(100, &mut NullHost), RunExit::Halted { exit: 9 });
        assert_eq!(vm.trace_stats().formed, 0, "prewarmed cover must serve the whole run");
        assert_eq!(vm.icache_stats().fills, 0);
    }

    #[test]
    fn self_modifying_code_re_decodes_through_the_icache() {
        // The program patches the immediate of its own first instruction
        // (exactly what the in-enclave rewriter does post-verification, here
        // done by the target itself mid-run) and loops back. Stale cached
        // decodes would spin forever; coherent ones observe the new value.
        use deflection_isa::{CondCode, MemOperand};
        let layout = EnclaveLayout::new(MemConfig::small());
        let patch_addr = layout.code.start + 2; // MovRI imm bytes live at +2
        let build = |jcc_rel: i32, jmp_rel: i32| {
            vec![
                Inst::MovRI { dst: Reg::RAX, imm: 0x11 },
                Inst::CmpRI { lhs: Reg::RAX, imm: 0x22 },
                Inst::Jcc { cc: CondCode::E, rel: jcc_rel },
                Inst::MovRI { dst: Reg::RBX, imm: 0x22 },
                Inst::Store { mem: MemOperand::abs(patch_addr as i32), src: Reg::RBX },
                Inst::Jmp { rel: jmp_rel },
                Inst::Halt,
            ]
        };
        let (_, offs) = encode_program(&build(0, 0));
        let prog = build(
            (offs[6] - offs[3]) as i32,    // Jcc → Halt
            -((offs[6] - offs[0]) as i32), // Jmp → back to the MovRI
        );
        for reference in [false, true] {
            let mut vm = vm_with(&prog);
            vm.set_decode_every_step(reference);
            let exit = vm.run(1000, &mut NullHost);
            assert_eq!(exit, RunExit::Halted { exit: 0x22 }, "reference={reference}");
            if !reference {
                assert!(vm.icache_stats().invalidations >= 1);
            }
        }
    }

    #[test]
    fn prewarmed_icache_needs_no_demand_fills() {
        let prog = [Inst::MovRI { dst: Reg::RAX, imm: 9 }, Inst::Nop, Inst::Nop, Inst::Halt];
        let mut vm = vm_with(&prog);
        let (_, offs) = encode_program(&prog);
        let base = vm.mem.layout().code.start;
        let entries: Vec<(u64, Inst, u8)> = prog
            .iter()
            .enumerate()
            .map(|(i, &inst)| {
                let end = if i + 1 < offs.len() { offs[i + 1] } else { offs[i] + 1 };
                (base + offs[i] as u64, inst, (end - offs[i]) as u8)
            })
            .collect();
        vm.prewarm_icache(entries);
        assert_eq!(vm.icache_stats().prewarms, 4);
        assert_eq!(vm.run(100, &mut NullHost), RunExit::Halted { exit: 9 });
        assert_eq!(vm.icache_stats().fills, 0);
        assert_eq!(vm.icache_stats().hits, 4);
    }

    #[test]
    fn profiler_attribution_sums_to_executed_instructions_in_every_mode() {
        let build = |rel: i32| {
            vec![
                Inst::AluRI { op: deflection_isa::AluOp::Add, dst: Reg::RBX, imm: 1 },
                Inst::CmpRI { lhs: Reg::RBX, imm: 200 },
                Inst::Jcc { cc: deflection_isa::CondCode::B, rel },
                Inst::MovRI { dst: Reg::RAX, imm: 7 },
                Inst::Halt,
            ]
        };
        let (_, offs) = encode_program(&build(0));
        let prog = build(-(offs[3] as i32));
        for mode in [ExecMode::Traced, ExecMode::Block, ExecMode::Reference] {
            // Baseline without the profiler: identical exit and stats.
            let mut base = vm_with(&prog);
            base.set_exec_mode(mode);
            let base_exit = base.run(10_000, &mut NullHost);
            let mut vm = vm_with(&prog);
            vm.set_exec_mode(mode);
            vm.enable_profiler(17);
            let exit = vm.run(10_000, &mut NullHost);
            assert_eq!(exit, base_exit, "{mode:?}: profiler changed the exit");
            assert_eq!(vm.stats, base.stats, "{mode:?}: profiler changed the counters");
            let profile = vm.take_profile();
            assert_eq!(
                profile.total_weight(),
                vm.stats.instructions,
                "{mode:?}: attribution must sum to executed instructions"
            );
            assert!(profile.samples.len() > 1, "{mode:?}: interval 17 must sample repeatedly");
            // Sampled pcs land inside the code window.
            let code = vm.mem.layout().code;
            for &(pc, _) in &profile.samples {
                assert!(code.contains(pc), "{mode:?}: sample pc {pc:#x} outside code");
            }
            // A second take is empty (take_profile drains).
            assert_eq!(vm.take_profile(), VmProfile::default());
        }
    }

    #[test]
    fn profiler_records_guard_trip_heatmap_on_abort() {
        let mut vm = vm_with(&[Inst::Abort { code: 9 }]);
        vm.enable_profiler(1000);
        assert_eq!(vm.run(10, &mut NullHost), RunExit::PolicyAbort { code: 9 });
        let profile = vm.take_profile();
        assert_eq!(profile.guard_trip_pcs.len(), 1);
        assert_eq!(profile.total_weight(), vm.stats.instructions);
    }

    #[test]
    fn disabled_profiler_accumulates_nothing() {
        let mut vm = vm_with(&[Inst::MovRI { dst: Reg::RAX, imm: 1 }, Inst::Halt]);
        assert!(!vm.profiler_enabled());
        let _ = vm.run(100, &mut NullHost);
        assert_eq!(vm.take_profile(), VmProfile::default());
    }

    #[test]
    fn policy_abort_surfaces_code() {
        let mut vm = vm_with(&[Inst::Abort { code: 5 }]);
        assert_eq!(vm.run(10, &mut NullHost), RunExit::PolicyAbort { code: 5 });
    }

    #[test]
    fn exit_value_helper() {
        assert_eq!(RunExit::Halted { exit: 3 }.exit_value(), Some(3));
        assert_eq!(RunExit::OutOfFuel.exit_value(), None);
    }
}
