//! The virtual machine: couples the CPU, memory, AEX injection and a host
//! for OCall service, and runs the target binary under an instruction
//! budget.

use crate::aex::AexInjector;
use crate::cpu::{Cpu, StepEvent};
use crate::mem::Memory;
use crate::Fault;
use deflection_isa::Reg;

/// Host services the running enclave can reach.
///
/// Implemented by the bootstrap enclave runtime in `deflection-core`, where
/// OCall wrappers enforce policy P0 (allowed calls only, encryption,
/// fixed-length padding) and the probe runs the HyperRace co-location test.
pub trait VmHost {
    /// Handles OCall `code`; arguments in `rdi`/`rsi`/`rdx`, result in `rax`.
    ///
    /// # Errors
    ///
    /// Returning a [`Fault`] terminates execution (e.g.
    /// [`Fault::OcallDenied`] for calls outside the manifest).
    fn ocall(&mut self, code: u8, cpu: &mut Cpu, mem: &mut Memory) -> Result<(), Fault>;

    /// Runs the co-location probe; `true` means the sibling-thread test
    /// passed (no alarm).
    fn aex_probe(&mut self) -> bool;
}

/// A host that denies every OCall and always passes the probe — the default
/// fail-closed configuration.
#[derive(Debug, Clone, Default)]
pub struct NullHost;

impl VmHost for NullHost {
    fn ocall(&mut self, code: u8, _cpu: &mut Cpu, _mem: &mut Memory) -> Result<(), Fault> {
        Err(Fault::OcallDenied { code })
    }

    fn aex_probe(&mut self) -> bool {
        true
    }
}

/// Counters collected while running.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed.
    pub instructions: u64,
    /// AEX events injected.
    pub aex_injected: u64,
    /// OCalls serviced.
    pub ocalls: u64,
    /// Co-location probes executed.
    pub probes: u64,
}

/// Why `run` returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunExit {
    /// `halt` executed; value of `rax` at exit.
    Halted {
        /// The exit value.
        exit: u64,
    },
    /// A security annotation aborted the program (policy violation).
    PolicyAbort {
        /// The policy abort code.
        code: u8,
    },
    /// A hardware-level fault terminated execution.
    Fault(Fault),
    /// The instruction budget was exhausted.
    OutOfFuel,
}

impl RunExit {
    /// Convenience: the exit value if the program halted normally.
    #[must_use]
    pub fn exit_value(&self) -> Option<u64> {
        match self {
            RunExit::Halted { exit } => Some(*exit),
            _ => None,
        }
    }
}

/// A ready-to-run virtual machine.
#[derive(Debug)]
pub struct Vm {
    /// CPU state.
    pub cpu: Cpu,
    /// Memory state.
    pub mem: Memory,
    /// AEX injector.
    pub aex: AexInjector,
    /// Execution counters.
    pub stats: ExecStats,
}

impl Vm {
    /// Creates a VM over `mem` with `pc` at `entry` and `rsp` at the top of
    /// the target stack.
    #[must_use]
    pub fn new(mem: Memory, entry: u64) -> Self {
        let mut cpu = Cpu::new(entry);
        cpu.set(Reg::RSP, mem.layout().initial_rsp());
        Vm { cpu, mem, aex: AexInjector::none(), stats: ExecStats::default() }
    }

    /// Replaces the AEX injector.
    pub fn set_aex(&mut self, aex: AexInjector) {
        self.aex = aex;
    }

    /// Runs until halt, abort, fault or fuel exhaustion.
    pub fn run(&mut self, fuel: u64, host: &mut dyn VmHost) -> RunExit {
        let layout = self.mem.layout().clone();
        for _ in 0..fuel {
            self.stats.instructions += 1;
            if self.aex.should_fire(self.stats.instructions) {
                self.aex.deliver(&self.cpu, &mut self.mem, &layout);
                self.stats.aex_injected += 1;
            }
            match self.cpu.step(&mut self.mem) {
                Ok(StepEvent::Continue) => {}
                Ok(StepEvent::Halted) => return RunExit::Halted { exit: self.cpu.get(Reg::RAX) },
                Ok(StepEvent::PolicyAbort(code)) => return RunExit::PolicyAbort { code },
                Ok(StepEvent::Ocall(code)) => {
                    self.stats.ocalls += 1;
                    if let Err(f) = host.ocall(code, &mut self.cpu, &mut self.mem) {
                        return RunExit::Fault(f);
                    }
                }
                Ok(StepEvent::AexProbe) => {
                    self.stats.probes += 1;
                    let ok = host.aex_probe();
                    self.cpu.set(Reg::RAX, ok as u64);
                }
                Err(f) => return RunExit::Fault(f),
            }
        }
        RunExit::OutOfFuel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aex::AexSchedule;
    use crate::layout::{EnclaveLayout, MemConfig};
    use deflection_isa::{encode_program, Inst};

    fn vm_with(prog: &[Inst]) -> Vm {
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut mem = Memory::new(layout.clone());
        let (bytes, _) = encode_program(prog);
        mem.poke_bytes(layout.code.start, &bytes).unwrap();
        Vm::new(mem, layout.code.start)
    }

    #[test]
    fn runs_to_halt() {
        let mut vm = vm_with(&[Inst::MovRI { dst: Reg::RAX, imm: 11 }, Inst::Halt]);
        let exit = vm.run(100, &mut NullHost);
        assert_eq!(exit, RunExit::Halted { exit: 11 });
        assert_eq!(vm.stats.instructions, 2);
    }

    #[test]
    fn fuel_limit_enforced() {
        // Infinite loop: jmp -5 (back onto itself).
        let mut vm = vm_with(&[Inst::Jmp { rel: -5 }]);
        let exit = vm.run(1000, &mut NullHost);
        assert_eq!(exit, RunExit::OutOfFuel);
        assert_eq!(vm.stats.instructions, 1000);
    }

    #[test]
    fn null_host_denies_ocalls() {
        let mut vm = vm_with(&[Inst::Ocall { code: 0 }, Inst::Halt]);
        let exit = vm.run(100, &mut NullHost);
        assert_eq!(exit, RunExit::Fault(Fault::OcallDenied { code: 0 }));
    }

    #[test]
    fn probe_result_lands_in_rax() {
        struct AlarmHost;
        impl VmHost for AlarmHost {
            fn ocall(&mut self, code: u8, _: &mut Cpu, _: &mut Memory) -> Result<(), Fault> {
                Err(Fault::OcallDenied { code })
            }
            fn aex_probe(&mut self) -> bool {
                false
            }
        }
        let mut vm = vm_with(&[Inst::AexProbe, Inst::Halt]);
        let exit = vm.run(100, &mut AlarmHost);
        assert_eq!(exit, RunExit::Halted { exit: 0 });
        assert_eq!(vm.stats.probes, 1);
    }

    #[test]
    fn aex_injection_counts_and_clobbers_marker() {
        let mut vm = vm_with(&[
            Inst::Jmp { rel: -5 }, // spin
        ]);
        let layout = vm.mem.layout().clone();
        vm.mem.poke_u64(layout.ssa_marker_slot(), 0x5A5A).unwrap();
        vm.set_aex(AexInjector::new(AexSchedule::Periodic { interval: 10 }));
        let _ = vm.run(100, &mut NullHost);
        assert_eq!(vm.stats.aex_injected, 10);
        assert_ne!(vm.mem.peek_u64(layout.ssa_marker_slot()).unwrap(), 0x5A5A);
    }

    #[test]
    fn policy_abort_surfaces_code() {
        let mut vm = vm_with(&[Inst::Abort { code: 5 }]);
        assert_eq!(vm.run(10, &mut NullHost), RunExit::PolicyAbort { code: 5 });
    }

    #[test]
    fn exit_value_helper() {
        assert_eq!(RunExit::Halted { exit: 3 }.exit_value(), Some(3));
        assert_eq!(RunExit::OutOfFuel.exit_value(), None);
    }
}
