//! The virtual machine: couples the CPU, memory, AEX injection and a host
//! for OCall service, and runs the target binary under an instruction
//! budget.

use crate::aex::AexInjector;
use crate::cpu::{Cpu, StepEvent};
use crate::icache::{ICache, ICacheStats};
use crate::mem::Memory;
use crate::Fault;
use deflection_isa::{Inst, Reg};
use deflection_telemetry::{LocalHistogram, METRICS};

/// Host services the running enclave can reach.
///
/// Implemented by the bootstrap enclave runtime in `deflection-core`, where
/// OCall wrappers enforce policy P0 (allowed calls only, encryption,
/// fixed-length padding) and the probe runs the HyperRace co-location test.
pub trait VmHost {
    /// Handles OCall `code`; arguments in `rdi`/`rsi`/`rdx`, result in `rax`.
    ///
    /// # Errors
    ///
    /// Returning a [`Fault`] terminates execution (e.g.
    /// [`Fault::OcallDenied`] for calls outside the manifest).
    fn ocall(&mut self, code: u8, cpu: &mut Cpu, mem: &mut Memory) -> Result<(), Fault>;

    /// Runs the co-location probe; `true` means the sibling-thread test
    /// passed (no alarm).
    fn aex_probe(&mut self) -> bool;
}

/// A host that denies every OCall and always passes the probe — the default
/// fail-closed configuration.
#[derive(Debug, Clone, Default)]
pub struct NullHost;

impl VmHost for NullHost {
    fn ocall(&mut self, code: u8, _cpu: &mut Cpu, _mem: &mut Memory) -> Result<(), Fault> {
        Err(Fault::OcallDenied { code })
    }

    fn aex_probe(&mut self) -> bool {
        true
    }
}

/// Counters collected while running.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed.
    pub instructions: u64,
    /// AEX events injected.
    pub aex_injected: u64,
    /// OCalls serviced.
    pub ocalls: u64,
    /// Co-location probes executed.
    pub probes: u64,
}

/// Why `run` returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunExit {
    /// `halt` executed; value of `rax` at exit.
    Halted {
        /// The exit value.
        exit: u64,
    },
    /// A security annotation aborted the program (policy violation).
    PolicyAbort {
        /// The policy abort code.
        code: u8,
    },
    /// A hardware-level fault terminated execution.
    Fault(Fault),
    /// The instruction budget was exhausted.
    OutOfFuel,
}

impl RunExit {
    /// Convenience: the exit value if the program halted normally.
    #[must_use]
    pub fn exit_value(&self) -> Option<u64> {
        match self {
            RunExit::Halted { exit } => Some(*exit),
            _ => None,
        }
    }
}

/// A ready-to-run virtual machine.
#[derive(Debug)]
pub struct Vm {
    /// CPU state.
    pub cpu: Cpu,
    /// Memory state.
    pub mem: Memory,
    /// AEX injector.
    pub aex: AexInjector,
    /// Execution counters.
    pub stats: ExecStats,
    /// Predecoded instruction cache (see [`crate::icache`]).
    icache: ICache,
    /// When set, every step re-fetches and re-decodes from raw bytes — the
    /// pre-icache reference semantics differential tests diff against.
    decode_every_step: bool,
    /// Local block-length accumulator: the dispatch loop records here with
    /// no atomics, and `run` folds it into the collector once at exit.
    block_lens: LocalHistogram,
}

/// Process-wide default for the reference mode, read once from the
/// `DEFLECTION_DECODE_EVERY_STEP` environment variable.
fn decode_every_step_default() -> bool {
    use std::sync::OnceLock;
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("DEFLECTION_DECODE_EVERY_STEP")
            .is_ok_and(|v| !v.is_empty() && v != "0" && v != "false")
    })
}

impl Vm {
    /// Creates a VM over `mem` with `pc` at `entry` and `rsp` at the top of
    /// the target stack.
    #[must_use]
    pub fn new(mem: Memory, entry: u64) -> Self {
        let mut cpu = Cpu::new(entry);
        cpu.set(Reg::RSP, mem.layout().initial_rsp());
        let icache = ICache::new(&mem);
        Vm {
            cpu,
            mem,
            aex: AexInjector::none(),
            stats: ExecStats::default(),
            icache,
            decode_every_step: decode_every_step_default(),
            block_lens: LocalHistogram::new(),
        }
    }

    /// Replaces the AEX injector.
    pub fn set_aex(&mut self, aex: AexInjector) {
        self.aex = aex;
    }

    /// Switches between icache dispatch (default) and the decode-every-step
    /// reference mode. Both must be observationally identical; the flag
    /// exists for differential tests and the `ablation_icache` bench.
    pub fn set_decode_every_step(&mut self, on: bool) {
        self.decode_every_step = on;
    }

    /// Whether the reference (decode-every-step) mode is active.
    #[must_use]
    pub fn decode_every_step(&self) -> bool {
        self.decode_every_step
    }

    /// Icache event counters accumulated so far.
    #[must_use]
    pub fn icache_stats(&self) -> ICacheStats {
        self.icache.stats
    }

    /// Seeds the icache with already-decoded instructions — the install
    /// path feeds it the verifier's own disassembly (patched to the
    /// post-rewrite immediates) so the first run starts hot.
    pub fn prewarm_icache(&mut self, entries: impl IntoIterator<Item = (u64, Inst, u8)>) {
        self.icache.prewarm(&self.mem, entries);
    }

    /// Runs until halt, abort, fault or fuel exhaustion.
    pub fn run(&mut self, fuel: u64, host: &mut dyn VmHost) -> RunExit {
        let before = self.icache.stats;
        let exit = if self.decode_every_step {
            self.run_reference(fuel, host)
        } else {
            self.run_cached(fuel, host)
        };
        // Flush hardware-model counters once per ECall-like boundary; the
        // hot loops above never touch the host metrics plane themselves —
        // block lengths accumulate in a local histogram and fold in here,
        // after the run, on the host side (see DESIGN.md §5f).
        let after = self.icache.stats;
        METRICS.vm_icache_hits.add(after.hits - before.hits);
        METRICS.vm_icache_fills.add(after.fills - before.fills);
        METRICS.vm_icache_invalidations.add(after.invalidations - before.invalidations);
        METRICS.vm_dispatch_block_len.merge(&self.block_lens);
        self.block_lens.clear();
        exit
    }

    /// Block dispatch: between two AEX fire points no per-step schedule
    /// check is needed, so instructions dispatch straight out of the icache
    /// in a tight loop, falling back to fetch+decode (and filling the
    /// cache) only on a miss.
    fn run_cached(&mut self, fuel: u64, host: &mut dyn VmHost) -> RunExit {
        let mut remaining = fuel;
        while remaining > 0 {
            let (fire, block) = self.aex.plan(self.stats.instructions, remaining);
            if fire {
                self.aex.deliver(&self.cpu, &mut self.mem);
                self.stats.aex_injected += 1;
            }
            self.block_lens.observe(block);
            for _ in 0..block {
                self.stats.instructions += 1;
                let event = match self.icache.lookup(self.cpu.pc, &self.mem) {
                    Some((inst, len)) => {
                        let next = self.cpu.pc.wrapping_add(len as u64);
                        self.cpu.execute(inst, next, &mut self.mem)
                    }
                    None => self.step_on_miss(),
                };
                if let Some(exit) = self.dispatch_event(event, host) {
                    return exit;
                }
            }
            remaining -= block;
        }
        RunExit::OutOfFuel
    }

    /// Decode slow path: fetch + decode once, fill the cache, execute.
    fn step_on_miss(&mut self) -> Result<StepEvent, Fault> {
        let pc = self.cpu.pc;
        let (inst, len) = self.cpu.fetch_decode(&self.mem)?;
        self.icache.fill(pc, inst, len, &self.mem);
        let next = pc.wrapping_add(len as u64);
        self.cpu.execute(inst, next, &mut self.mem)
    }

    /// Reference semantics: fetch + decode every instruction, check the
    /// AEX schedule every instruction.
    fn run_reference(&mut self, fuel: u64, host: &mut dyn VmHost) -> RunExit {
        for _ in 0..fuel {
            self.stats.instructions += 1;
            if self.aex.should_fire(self.stats.instructions) {
                self.aex.deliver(&self.cpu, &mut self.mem);
                self.stats.aex_injected += 1;
            }
            let event = self.cpu.step(&mut self.mem);
            if let Some(exit) = self.dispatch_event(event, host) {
                return exit;
            }
        }
        RunExit::OutOfFuel
    }

    /// Folds one step outcome into counters and host service; `Some` means
    /// the run is over.
    fn dispatch_event(
        &mut self,
        event: Result<StepEvent, Fault>,
        host: &mut dyn VmHost,
    ) -> Option<RunExit> {
        match event {
            Ok(StepEvent::Continue) => None,
            Ok(StepEvent::Halted) => Some(RunExit::Halted { exit: self.cpu.get(Reg::RAX) }),
            Ok(StepEvent::PolicyAbort(code)) => Some(RunExit::PolicyAbort { code }),
            Ok(StepEvent::Ocall(code)) => {
                self.stats.ocalls += 1;
                match host.ocall(code, &mut self.cpu, &mut self.mem) {
                    Ok(()) => None,
                    Err(f) => Some(RunExit::Fault(f)),
                }
            }
            Ok(StepEvent::AexProbe) => {
                self.stats.probes += 1;
                let ok = host.aex_probe();
                self.cpu.set(Reg::RAX, ok as u64);
                None
            }
            Err(f) => Some(RunExit::Fault(f)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aex::AexSchedule;
    use crate::layout::{EnclaveLayout, MemConfig};
    use deflection_isa::{encode_program, Inst};

    fn vm_with(prog: &[Inst]) -> Vm {
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut mem = Memory::new(layout.clone());
        let (bytes, _) = encode_program(prog);
        mem.poke_bytes(layout.code.start, &bytes).unwrap();
        Vm::new(mem, layout.code.start)
    }

    #[test]
    fn runs_to_halt() {
        let mut vm = vm_with(&[Inst::MovRI { dst: Reg::RAX, imm: 11 }, Inst::Halt]);
        let exit = vm.run(100, &mut NullHost);
        assert_eq!(exit, RunExit::Halted { exit: 11 });
        assert_eq!(vm.stats.instructions, 2);
    }

    #[test]
    fn fuel_limit_enforced() {
        // Infinite loop: jmp -5 (back onto itself).
        let mut vm = vm_with(&[Inst::Jmp { rel: -5 }]);
        let exit = vm.run(1000, &mut NullHost);
        assert_eq!(exit, RunExit::OutOfFuel);
        assert_eq!(vm.stats.instructions, 1000);
    }

    #[test]
    fn null_host_denies_ocalls() {
        let mut vm = vm_with(&[Inst::Ocall { code: 0 }, Inst::Halt]);
        let exit = vm.run(100, &mut NullHost);
        assert_eq!(exit, RunExit::Fault(Fault::OcallDenied { code: 0 }));
    }

    #[test]
    fn probe_result_lands_in_rax() {
        struct AlarmHost;
        impl VmHost for AlarmHost {
            fn ocall(&mut self, code: u8, _: &mut Cpu, _: &mut Memory) -> Result<(), Fault> {
                Err(Fault::OcallDenied { code })
            }
            fn aex_probe(&mut self) -> bool {
                false
            }
        }
        let mut vm = vm_with(&[Inst::AexProbe, Inst::Halt]);
        let exit = vm.run(100, &mut AlarmHost);
        assert_eq!(exit, RunExit::Halted { exit: 0 });
        assert_eq!(vm.stats.probes, 1);
    }

    #[test]
    fn aex_injection_counts_and_clobbers_marker() {
        let mut vm = vm_with(&[
            Inst::Jmp { rel: -5 }, // spin
        ]);
        let layout = vm.mem.layout().clone();
        vm.mem.poke_u64(layout.ssa_marker_slot(), 0x5A5A).unwrap();
        vm.set_aex(AexInjector::new(AexSchedule::Periodic { interval: 10 }));
        let _ = vm.run(100, &mut NullHost);
        assert_eq!(vm.stats.aex_injected, 10);
        assert_ne!(vm.mem.peek_u64(layout.ssa_marker_slot()).unwrap(), 0x5A5A);
    }

    #[test]
    fn cached_and_reference_execution_agree_under_aex() {
        // A spin loop with periodic AEX: the block-dispatch path must land
        // on exactly the same counters and exit as decode-every-step.
        let build = |rel: i32| {
            vec![
                Inst::AluRI { op: deflection_isa::AluOp::Add, dst: Reg::RBX, imm: 1 },
                Inst::CmpRI { lhs: Reg::RBX, imm: 40 },
                Inst::Jcc { cc: deflection_isa::CondCode::B, rel },
                Inst::MovRI { dst: Reg::RAX, imm: 7 },
                Inst::Halt,
            ]
        };
        let (_, offs) = encode_program(&build(0));
        let prog = build(-(offs[3] as i32)); // back to the add
        let run_mode = |reference: bool| {
            let mut vm = vm_with(&prog);
            vm.set_decode_every_step(reference);
            vm.set_aex(AexInjector::new(AexSchedule::Periodic { interval: 13 }));
            let exit = vm.run(10_000, &mut NullHost);
            (exit, vm.stats, vm.icache_stats())
        };
        let (exit_c, stats_c, icache_c) = run_mode(false);
        let (exit_r, stats_r, icache_r) = run_mode(true);
        assert_eq!(exit_c, RunExit::Halted { exit: 7 });
        assert_eq!(exit_c, exit_r);
        assert_eq!(stats_c, stats_r);
        // The cached mode actually cached: the loop body re-dispatched from
        // predecoded entries; the reference mode never touched the cache.
        assert!(icache_c.hits > icache_c.fills);
        assert_eq!(icache_r, crate::icache::ICacheStats::default());
    }

    #[test]
    fn self_modifying_code_re_decodes_through_the_icache() {
        // The program patches the immediate of its own first instruction
        // (exactly what the in-enclave rewriter does post-verification, here
        // done by the target itself mid-run) and loops back. Stale cached
        // decodes would spin forever; coherent ones observe the new value.
        use deflection_isa::{CondCode, MemOperand};
        let layout = EnclaveLayout::new(MemConfig::small());
        let patch_addr = layout.code.start + 2; // MovRI imm bytes live at +2
        let build = |jcc_rel: i32, jmp_rel: i32| {
            vec![
                Inst::MovRI { dst: Reg::RAX, imm: 0x11 },
                Inst::CmpRI { lhs: Reg::RAX, imm: 0x22 },
                Inst::Jcc { cc: CondCode::E, rel: jcc_rel },
                Inst::MovRI { dst: Reg::RBX, imm: 0x22 },
                Inst::Store { mem: MemOperand::abs(patch_addr as i32), src: Reg::RBX },
                Inst::Jmp { rel: jmp_rel },
                Inst::Halt,
            ]
        };
        let (_, offs) = encode_program(&build(0, 0));
        let prog = build(
            (offs[6] - offs[3]) as i32,    // Jcc → Halt
            -((offs[6] - offs[0]) as i32), // Jmp → back to the MovRI
        );
        for reference in [false, true] {
            let mut vm = vm_with(&prog);
            vm.set_decode_every_step(reference);
            let exit = vm.run(1000, &mut NullHost);
            assert_eq!(exit, RunExit::Halted { exit: 0x22 }, "reference={reference}");
            if !reference {
                assert!(vm.icache_stats().invalidations >= 1);
            }
        }
    }

    #[test]
    fn prewarmed_icache_needs_no_demand_fills() {
        let prog = [Inst::MovRI { dst: Reg::RAX, imm: 9 }, Inst::Nop, Inst::Nop, Inst::Halt];
        let mut vm = vm_with(&prog);
        let (_, offs) = encode_program(&prog);
        let base = vm.mem.layout().code.start;
        let entries: Vec<(u64, Inst, u8)> = prog
            .iter()
            .enumerate()
            .map(|(i, &inst)| {
                let end = if i + 1 < offs.len() { offs[i + 1] } else { offs[i] + 1 };
                (base + offs[i] as u64, inst, (end - offs[i]) as u8)
            })
            .collect();
        vm.prewarm_icache(entries);
        assert_eq!(vm.icache_stats().prewarms, 4);
        assert_eq!(vm.run(100, &mut NullHost), RunExit::Halted { exit: 9 });
        assert_eq!(vm.icache_stats().fills, 0);
        assert_eq!(vm.icache_stats().hits, 4);
    }

    #[test]
    fn policy_abort_surfaces_code() {
        let mut vm = vm_with(&[Inst::Abort { code: 5 }]);
        assert_eq!(vm.run(10, &mut NullHost), RunExit::PolicyAbort { code: 5 });
    }

    #[test]
    fn exit_value_helper() {
        assert_eq!(RunExit::Halted { exit: 3 }.exit_value(), Some(3));
        assert_eq!(RunExit::OutOfFuel.exit_value(), None);
    }
}
