//! Enclave memory layout.
//!
//! Mirrors the bootstrap enclave's memory plan from the paper (Section V-B):
//! "The memory size of our bootstrap enclave when initialing is about 96 MB
//! by default, including 1 MB reserved for shadow stack, 1 MB for indirect
//! branch targets, 64 MB for data, 28 MB for service binary code, and less
//! than 2 MB of the loader/verifier." The sizes here are configurable so
//! tests can run with small enclaves while the benches can use paper-scale
//! ones; the *relative structure* (which regions exist, which are guarded,
//! which fall inside the P1 store window) is fixed.

use std::fmt;

/// Page size used by the simulated EPC.
pub const PAGE_SIZE: u64 = 4096;

/// A half-open address range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// First address of the region.
    pub start: u64,
    /// One past the last address.
    pub end: u64,
}

impl Region {
    /// Creates a region; `end` must not precede `start`.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    #[must_use]
    pub fn new(start: u64, end: u64) -> Self {
        assert!(end >= start, "region end before start");
        Region { start, end }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the region is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Whether `addr` falls inside the region.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Whether the `len`-byte access at `addr` is entirely inside the region.
    #[must_use]
    pub fn contains_range(&self, addr: u64, len: u64) -> bool {
        match addr.checked_add(len) {
            Some(end) => addr >= self.start && end <= self.end,
            None => false,
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start, self.end)
    }
}

/// Sizing knobs for the simulated enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Bytes of untrusted (non-enclave) memory starting at address 0.
    pub untrusted_size: u64,
    /// Base virtual address of the enclave (start of ELRANGE).
    pub enclave_base: u64,
    /// Reserved image of the loader/verifier (the public consumer), RX.
    pub consumer_size: u64,
    /// State-save area (AEX context dumps land here), RW.
    pub ssa_size: u64,
    /// Control page holding the shadow-stack pointer and AEX counter, RW.
    pub control_size: u64,
    /// Indirect-branch target table, read-only after loading.
    pub branch_table_size: u64,
    /// Shadow stack for policy P5 return-edge protection, RW.
    pub shadow_stack_size: u64,
    /// Target binary code window, RWX (SGXv1 cannot change perms post-init).
    pub code_size: u64,
    /// Heap/data window for globals, user data and scratch, RW.
    pub heap_size: u64,
    /// Target program stack, RW, wrapped in guard pages.
    pub stack_size: u64,
}

impl MemConfig {
    /// A small configuration suitable for unit tests.
    #[must_use]
    pub fn small() -> Self {
        MemConfig {
            untrusted_size: 1 << 20,
            enclave_base: 0x1000_0000,
            consumer_size: 4 * PAGE_SIZE,
            ssa_size: PAGE_SIZE,
            control_size: PAGE_SIZE,
            branch_table_size: 4 * PAGE_SIZE,
            shadow_stack_size: 16 * PAGE_SIZE,
            code_size: 1 << 20,
            heap_size: 4 << 20,
            stack_size: 64 * PAGE_SIZE,
        }
    }

    /// The paper's default 96 MB-class bootstrap enclave: 1 MB shadow stack,
    /// 1 MB branch targets, 64 MB data, 28 MB service binary code.
    #[must_use]
    pub fn paper() -> Self {
        MemConfig {
            untrusted_size: 8 << 20,
            enclave_base: 0x1000_0000,
            consumer_size: 2 << 20,
            ssa_size: PAGE_SIZE,
            control_size: PAGE_SIZE,
            branch_table_size: 1 << 20,
            shadow_stack_size: 1 << 20,
            code_size: 28 << 20,
            heap_size: 64 << 20,
            stack_size: 1 << 20,
        }
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::small()
    }
}

/// The concrete enclave layout computed from a [`MemConfig`].
///
/// Regions are laid out contiguously from [`MemConfig::enclave_base`]:
/// consumer, SSA, control, branch table, shadow stack, code, heap,
/// guard page, stack, guard page. The P1 store window is
/// `[heap.start, stack.end)` — everything below it (code pages, shadow
/// stack, branch table, control, SSA, consumer) is unwritable by policy,
/// which is how P3 (critical data) and P4 (software DEP) reuse the P1
/// check with different boundaries, exactly as the paper describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnclaveLayout {
    /// The configuration the layout was computed from.
    pub config: MemConfig,
    /// Entire enclave range (ELRANGE).
    pub elrange: Region,
    /// Loader/verifier image (RX).
    pub consumer: Region,
    /// State-save area (RW).
    pub ssa: Region,
    /// Control page (RW): shadow-stack pointer at +0, AEX counter at +8.
    pub control: Region,
    /// Indirect-branch table (read-only after load).
    pub branch_table: Region,
    /// Shadow stack (RW).
    pub shadow_stack: Region,
    /// Target code window (RWX).
    pub code: Region,
    /// Heap/data window (RW).
    pub heap: Region,
    /// Guard page below the stack.
    pub guard_lo: Region,
    /// Target stack (RW).
    pub stack: Region,
    /// Guard page above the stack.
    pub guard_hi: Region,
}

/// Offset of the shadow-stack top pointer inside the control page.
pub const CTRL_SHADOW_SP: u64 = 0;
/// Offset of the AEX counter inside the control page.
pub const CTRL_AEX_COUNT: u64 = 8;

impl EnclaveLayout {
    /// Computes the layout for `config`.
    ///
    /// # Panics
    ///
    /// Panics if any region size is not page-aligned.
    #[must_use]
    pub fn new(config: MemConfig) -> Self {
        for (name, v) in [
            ("untrusted_size", config.untrusted_size),
            ("enclave_base", config.enclave_base),
            ("consumer_size", config.consumer_size),
            ("ssa_size", config.ssa_size),
            ("control_size", config.control_size),
            ("branch_table_size", config.branch_table_size),
            ("shadow_stack_size", config.shadow_stack_size),
            ("code_size", config.code_size),
            ("heap_size", config.heap_size),
            ("stack_size", config.stack_size),
        ] {
            assert!(v % PAGE_SIZE == 0, "{name} must be page aligned");
        }
        assert!(
            config.enclave_base >= config.untrusted_size,
            "enclave must not overlap untrusted memory"
        );
        let mut cursor = config.enclave_base;
        let mut take = |len: u64| {
            let r = Region::new(cursor, cursor + len);
            cursor += len;
            r
        };
        let consumer = take(config.consumer_size);
        let ssa = take(config.ssa_size);
        let control = take(config.control_size);
        let branch_table = take(config.branch_table_size);
        let shadow_stack = take(config.shadow_stack_size);
        let code = take(config.code_size);
        let heap = take(config.heap_size);
        let guard_lo = take(PAGE_SIZE);
        let stack = take(config.stack_size);
        let guard_hi = take(PAGE_SIZE);
        let elrange = Region::new(config.enclave_base, cursor);
        EnclaveLayout {
            config,
            elrange,
            consumer,
            ssa,
            control,
            branch_table,
            shadow_stack,
            code,
            heap,
            guard_lo,
            stack,
            guard_hi,
        }
    }

    /// The window policy P1 permits stores into: heap through stack.
    /// Guard pages inside the window still fault at the page level.
    #[must_use]
    pub fn store_window(&self) -> Region {
        Region::new(self.heap.start, self.stack.end)
    }

    /// The window policy P2 requires `rsp` to stay within.
    #[must_use]
    pub fn stack_window(&self) -> Region {
        self.stack
    }

    /// Address of the shadow-stack top pointer slot.
    #[must_use]
    pub fn shadow_sp_slot(&self) -> u64 {
        self.control.start + CTRL_SHADOW_SP
    }

    /// Address of the AEX counter slot.
    #[must_use]
    pub fn aex_count_slot(&self) -> u64 {
        self.control.start + CTRL_AEX_COUNT
    }

    /// Address of the SSA marker slot (start of the SSA GPR dump area, which
    /// an AEX clobbers with the saved context).
    #[must_use]
    pub fn ssa_marker_slot(&self) -> u64 {
        self.ssa.start
    }

    /// Initial `rsp` for the target program (top of stack).
    #[must_use]
    pub fn initial_rsp(&self) -> u64 {
        self.stack.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_contiguous_and_disjoint() {
        let l = EnclaveLayout::new(MemConfig::small());
        let regions = [
            l.consumer,
            l.ssa,
            l.control,
            l.branch_table,
            l.shadow_stack,
            l.code,
            l.heap,
            l.guard_lo,
            l.stack,
            l.guard_hi,
        ];
        for w in regions.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(regions[0].start, l.elrange.start);
        assert_eq!(regions.last().unwrap().end, l.elrange.end);
    }

    #[test]
    fn store_window_excludes_code_and_critical_regions() {
        let l = EnclaveLayout::new(MemConfig::small());
        let w = l.store_window();
        assert!(!w.contains(l.code.start));
        assert!(!w.contains(l.ssa.start));
        assert!(!w.contains(l.shadow_stack.start));
        assert!(!w.contains(l.branch_table.start));
        assert!(!w.contains(l.control.start));
        assert!(w.contains(l.heap.start));
        assert!(w.contains(l.stack.start));
        assert!(w.contains(l.stack.end - 1));
        assert!(!w.contains(l.stack.end)); // guard_hi
    }

    #[test]
    fn paper_config_matches_published_sizes() {
        let c = MemConfig::paper();
        assert_eq!(c.shadow_stack_size, 1 << 20);
        assert_eq!(c.branch_table_size, 1 << 20);
        assert_eq!(c.heap_size, 64 << 20);
        assert_eq!(c.code_size, 28 << 20);
        let l = EnclaveLayout::new(c);
        // ~96 MB total.
        assert!(l.elrange.len() > 94 << 20 && l.elrange.len() < 100 << 20);
    }

    #[test]
    fn region_contains_range_handles_overflow() {
        let r = Region::new(0, 100);
        assert!(r.contains_range(90, 10));
        assert!(!r.contains_range(90, 11));
        assert!(!r.contains_range(u64::MAX, 2));
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn unaligned_config_panics() {
        let mut c = MemConfig::small();
        c.heap_size += 1;
        let _ = EnclaveLayout::new(c);
    }

    #[test]
    fn control_slots() {
        let l = EnclaveLayout::new(MemConfig::small());
        assert_eq!(l.shadow_sp_slot(), l.control.start);
        assert_eq!(l.aex_count_slot(), l.control.start + 8);
        assert!(l.ssa.contains(l.ssa_marker_slot()));
    }
}
