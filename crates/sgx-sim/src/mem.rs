//! The simulated physical memory: untrusted host memory plus the paged,
//! permission-checked EPC.
//!
//! A real enclave *can* write to untrusted memory — that is precisely the
//! leak channel policy P1 exists to close — so stores outside ELRANGE
//! succeed here but are counted and (up to a cap) recorded, letting tests
//! and benches observe exfiltration attempts. Inside ELRANGE, per-page
//! R/W/X permissions are enforced; guard pages have no permissions at all.

use crate::layout::{EnclaveLayout, Region, PAGE_SIZE};
use crate::Fault;

/// Per-page permission bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PagePerm {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl PagePerm {
    /// No access (guard page).
    pub const NONE: PagePerm = PagePerm { r: false, w: false, x: false };
    /// Read-only.
    pub const R: PagePerm = PagePerm { r: true, w: false, x: false };
    /// Read-write.
    pub const RW: PagePerm = PagePerm { r: true, w: true, x: false };
    /// Read-execute.
    pub const RX: PagePerm = PagePerm { r: true, w: false, x: true };
    /// Read-write-execute (the target code window under SGXv1).
    pub const RWX: PagePerm = PagePerm { r: true, w: true, x: true };
}

/// Kind of access, for fault reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Instruction fetch.
    Fetch,
    /// Data read.
    Read,
    /// Data write.
    Write,
}

/// An observed store from enclave code to untrusted memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeakRecord {
    /// Destination address outside ELRANGE.
    pub addr: u64,
    /// Number of bytes written.
    pub len: u8,
}

const MAX_LEAK_LOG: usize = 1024;

/// Simulated memory: one untrusted region at address 0 and the enclave.
#[derive(Debug, Clone)]
pub struct Memory {
    layout: EnclaveLayout,
    untrusted: Vec<u8>,
    enclave: Vec<u8>,
    perms: Vec<PagePerm>,
    /// Monotonic code-write generation: bumped once per write or permission
    /// change that touches at least one executable page. The software icache
    /// compares its per-page fill stamp against [`Memory::page_code_gen`] to
    /// detect stale decodes — the coherence protocol a real icache runs in
    /// hardware (SMC snooping).
    code_gen: u64,
    /// Per-page stamp of the last code-write generation that touched it.
    page_code_gen: Vec<u64>,
    /// Count of enclave-initiated writes that landed outside ELRANGE.
    pub untrusted_write_count: u64,
    /// The first 1024 such writes (capped).
    pub leak_log: Vec<LeakRecord>,
}

impl Memory {
    /// Allocates memory for `layout` and applies the region permissions.
    #[must_use]
    pub fn new(layout: EnclaveLayout) -> Self {
        let enclave_len = layout.elrange.len() as usize;
        let pages = enclave_len / PAGE_SIZE as usize;
        let mut mem = Memory {
            untrusted: vec![0; layout.config.untrusted_size as usize],
            enclave: vec![0; enclave_len],
            perms: vec![PagePerm::NONE; pages],
            code_gen: 0,
            page_code_gen: vec![0; pages],
            untrusted_write_count: 0,
            leak_log: Vec::new(),
            layout,
        };
        let l = mem.layout.clone();
        mem.set_region_perm(l.consumer, PagePerm::RX);
        mem.set_region_perm(l.ssa, PagePerm::RW);
        mem.set_region_perm(l.control, PagePerm::RW);
        // Branch table is RW until the loader seals it.
        mem.set_region_perm(l.branch_table, PagePerm::RW);
        mem.set_region_perm(l.shadow_stack, PagePerm::RW);
        mem.set_region_perm(l.code, PagePerm::RWX);
        mem.set_region_perm(l.heap, PagePerm::RW);
        mem.set_region_perm(l.guard_lo, PagePerm::NONE);
        mem.set_region_perm(l.stack, PagePerm::RW);
        mem.set_region_perm(l.guard_hi, PagePerm::NONE);
        mem
    }

    /// The layout this memory was built for.
    #[must_use]
    pub fn layout(&self) -> &EnclaveLayout {
        &self.layout
    }

    /// Sets the permissions of every page in `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is not inside the enclave or not page-aligned.
    pub fn set_region_perm(&mut self, region: Region, perm: PagePerm) {
        assert!(
            region.start >= self.layout.elrange.start && region.end <= self.layout.elrange.end,
            "region outside enclave"
        );
        assert!(region.start.is_multiple_of(PAGE_SIZE) && region.end.is_multiple_of(PAGE_SIZE));
        let first = ((region.start - self.layout.elrange.start) / PAGE_SIZE) as usize;
        let last = ((region.end - self.layout.elrange.start) / PAGE_SIZE) as usize;
        for p in &mut self.perms[first..last] {
            *p = perm;
        }
        // A permission change can turn a page executable (exposing bytes the
        // icache never saw) or strip X (cached decodes must not outlive the
        // right to execute them) — stamp every page in the region either way.
        if first < last {
            self.code_gen += 1;
            for g in &mut self.page_code_gen[first..last] {
                *g = self.code_gen;
            }
        }
    }

    /// The global code-write generation (see [`Memory::page_code_gen`]).
    #[must_use]
    pub fn code_generation(&self) -> u64 {
        self.code_gen
    }

    /// The code-write generation stamp of enclave page `page` (an index
    /// relative to the start of ELRANGE), or `None` if out of range.
    #[must_use]
    pub fn page_code_gen(&self, page: usize) -> Option<u64> {
        self.page_code_gen.get(page).copied()
    }

    /// The enclave page index containing `addr`, or `None` outside ELRANGE.
    /// Trace formation keys its coherence stamps by this index.
    #[must_use]
    pub fn page_index(&self, addr: u64) -> Option<usize> {
        if self.layout.elrange.contains(addr) {
            Some(((addr - self.layout.elrange.start) / PAGE_SIZE) as usize)
        } else {
            None
        }
    }

    /// Trace-region stamp query: the code-write generation of the page
    /// containing `addr`, or `None` outside ELRANGE. A cached superblock
    /// trace records this stamp at formation and re-executes only while it
    /// still matches — the single load the trace dispatcher's mid-run
    /// self-modifying-code check performs.
    #[must_use]
    pub fn code_stamp(&self, addr: u64) -> Option<u64> {
        self.page_code_gen(self.page_index(addr)?)
    }

    /// Whether the page stamped `gen` at trace-formation time is still
    /// unchanged. `page` indexes ELRANGE pages like [`Memory::page_code_gen`].
    #[inline]
    #[must_use]
    pub fn stamp_current(&self, page: usize, gen: u64) -> bool {
        self.page_code_gen.get(page).copied() == Some(gen)
    }

    /// Stamps every executable page overlapping the enclave-relative byte
    /// range `off..off + len` with a fresh code-write generation.
    fn note_enclave_write(&mut self, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first = off / PAGE_SIZE as usize;
        let last = (off + len - 1) / PAGE_SIZE as usize;
        let mut bumped = false;
        for p in first..=last {
            if self.perms[p].x {
                if !bumped {
                    self.code_gen += 1;
                    bumped = true;
                }
                self.page_code_gen[p] = self.code_gen;
            }
        }
    }

    /// Translation fast path: the enclave-relative offset of `addr` when the
    /// `len64`-byte access lies entirely inside one enclave page — the moral
    /// equivalent of a direct-mapped TLB hit (one range compare plus one
    /// page-cross test, no per-page permission loop).
    #[inline]
    fn enclave_single_page_offset(&self, addr: u64, len64: u64) -> Option<usize> {
        let off = addr.checked_sub(self.layout.elrange.start)?;
        let end = off.checked_add(len64)?;
        if end > self.enclave.len() as u64 || off / PAGE_SIZE != (end - 1) / PAGE_SIZE {
            return None;
        }
        Some(off as usize)
    }

    /// Returns the permission of the page containing `addr` (enclave only).
    #[must_use]
    pub fn page_perm(&self, addr: u64) -> Option<PagePerm> {
        if !self.layout.elrange.contains(addr) {
            return None;
        }
        let idx = ((addr - self.layout.elrange.start) / PAGE_SIZE) as usize;
        Some(self.perms[idx])
    }

    fn check_enclave_perm(&self, addr: u64, len: u64, access: Access) -> Result<(), Fault> {
        let first = addr / PAGE_SIZE;
        let last = (addr + len - 1) / PAGE_SIZE;
        for page in first..=last {
            let page_addr = page * PAGE_SIZE;
            let perm = self.page_perm(page_addr).expect("in range");
            let ok = match access {
                Access::Fetch => perm.x,
                Access::Read => perm.r,
                Access::Write => perm.w,
            };
            if !ok {
                return Err(match access {
                    Access::Fetch => Fault::NotExecutable { addr: page_addr },
                    Access::Read => Fault::ReadViolation { addr },
                    Access::Write => Fault::WriteViolation { addr },
                });
            }
        }
        Ok(())
    }

    /// Reads `len` (1..=8) bytes at `addr` as a little-endian integer, with
    /// permission checks (the path the executing target binary uses).
    ///
    /// # Errors
    ///
    /// Faults on unmapped addresses and on enclave pages without read
    /// permission.
    pub fn load(&self, addr: u64, len: u8) -> Result<u64, Fault> {
        debug_assert!((1..=8).contains(&len));
        let len64 = len as u64;
        if let Some(off) = self.enclave_single_page_offset(addr, len64) {
            if !self.perms[off / PAGE_SIZE as usize].r {
                return Err(Fault::ReadViolation { addr });
            }
            return Ok(read_le(&self.enclave[off..off + len as usize]));
        }
        if self.layout.elrange.contains_range(addr, len64) {
            self.check_enclave_perm(addr, len64, Access::Read)?;
            let off = (addr - self.layout.elrange.start) as usize;
            Ok(read_le(&self.enclave[off..off + len as usize]))
        } else if Region::new(0, self.untrusted.len() as u64).contains_range(addr, len64) {
            Ok(read_le(&self.untrusted[addr as usize..addr as usize + len as usize]))
        } else {
            Err(Fault::Unmapped { addr })
        }
    }

    /// Writes `len` (1..=8) bytes at `addr`, with permission checks. Stores
    /// to untrusted memory succeed but are recorded as potential leaks.
    ///
    /// # Errors
    ///
    /// Faults on unmapped addresses and on enclave pages without write
    /// permission (guard pages, code-adjacent read-only pages, …).
    pub fn store(&mut self, addr: u64, len: u8, value: u64) -> Result<(), Fault> {
        debug_assert!((1..=8).contains(&len));
        let len64 = len as u64;
        if let Some(off) = self.enclave_single_page_offset(addr, len64) {
            let page = off / PAGE_SIZE as usize;
            let perm = self.perms[page];
            if !perm.w {
                return Err(Fault::WriteViolation { addr });
            }
            write_le(&mut self.enclave[off..off + len as usize], value);
            if perm.x {
                // Self-modifying code (the SGXv1 RWX window permits it):
                // invalidate any cached decodes of this page.
                self.code_gen += 1;
                self.page_code_gen[page] = self.code_gen;
            }
            return Ok(());
        }
        if self.layout.elrange.contains_range(addr, len64) {
            self.check_enclave_perm(addr, len64, Access::Write)?;
            let off = (addr - self.layout.elrange.start) as usize;
            write_le(&mut self.enclave[off..off + len as usize], value);
            self.note_enclave_write(off, len as usize);
            Ok(())
        } else if Region::new(0, self.untrusted.len() as u64).contains_range(addr, len64) {
            self.untrusted_write_count += 1;
            if self.leak_log.len() < MAX_LEAK_LOG {
                self.leak_log.push(LeakRecord { addr, len });
            }
            write_le(&mut self.untrusted[addr as usize..addr as usize + len as usize], value);
            Ok(())
        } else {
            Err(Fault::Unmapped { addr })
        }
    }

    /// Returns up to 16 bytes of code starting at `pc` for the decoder.
    /// The window is clamped to the contiguous run of executable pages, so
    /// an instruction that would spill past them decodes as truncated and
    /// the machine fails closed.
    ///
    /// # Errors
    ///
    /// Faults if `pc` is outside the enclave or on a non-executable page.
    pub fn fetch_window(&self, pc: u64) -> Result<&[u8], Fault> {
        if !self.layout.elrange.contains(pc) {
            return Err(Fault::NotExecutable { addr: pc });
        }
        let off = (pc - self.layout.elrange.start) as usize;
        let page = off / PAGE_SIZE as usize;
        if !self.perms[page].x {
            // Same fault address check_enclave_perm reported: the absolute
            // base of the offending page.
            return Err(Fault::NotExecutable { addr: pc & !(PAGE_SIZE - 1) });
        }
        let mut avail = ((self.layout.elrange.end - pc).min(16)) as usize;
        // Clamp at the first non-executable page. The in-range and X checks
        // above are hoisted out of this loop: pages are indexed directly in
        // the permission table instead of re-validating `contains` per page.
        let mut next_page_off = (page + 1) * PAGE_SIZE as usize;
        while next_page_off < off + avail {
            if !self.perms[next_page_off / PAGE_SIZE as usize].x {
                avail = next_page_off - off;
                break;
            }
            next_page_off += PAGE_SIZE as usize;
        }
        Ok(&self.enclave[off..off + avail])
    }

    /// Privileged read bypassing page permissions (the trusted consumer /
    /// runtime path). Still bounds-checked against the address map.
    ///
    /// # Errors
    ///
    /// Faults only on unmapped addresses.
    pub fn peek_bytes(&self, addr: u64, len: usize) -> Result<&[u8], Fault> {
        let len64 = len as u64;
        if self.layout.elrange.contains_range(addr, len64) {
            let off = (addr - self.layout.elrange.start) as usize;
            Ok(&self.enclave[off..off + len])
        } else if Region::new(0, self.untrusted.len() as u64).contains_range(addr, len64) {
            Ok(&self.untrusted[addr as usize..addr as usize + len])
        } else {
            Err(Fault::Unmapped { addr })
        }
    }

    /// Privileged write bypassing page permissions (loader/runtime path).
    ///
    /// # Errors
    ///
    /// Faults only on unmapped addresses.
    pub fn poke_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), Fault> {
        let len64 = bytes.len() as u64;
        if self.layout.elrange.contains_range(addr, len64) {
            let off = (addr - self.layout.elrange.start) as usize;
            self.enclave[off..off + bytes.len()].copy_from_slice(bytes);
            self.note_enclave_write(off, bytes.len());
            Ok(())
        } else if Region::new(0, self.untrusted.len() as u64).contains_range(addr, len64) {
            self.untrusted[addr as usize..addr as usize + bytes.len()].copy_from_slice(bytes);
            Ok(())
        } else {
            Err(Fault::Unmapped { addr })
        }
    }

    /// Privileged 64-bit read.
    ///
    /// # Errors
    ///
    /// Faults only on unmapped addresses.
    pub fn peek_u64(&self, addr: u64) -> Result<u64, Fault> {
        Ok(read_le(self.peek_bytes(addr, 8)?))
    }

    /// Privileged 64-bit write.
    ///
    /// # Errors
    ///
    /// Faults only on unmapped addresses.
    pub fn poke_u64(&mut self, addr: u64, value: u64) -> Result<(), Fault> {
        self.poke_bytes(addr, &value.to_le_bytes())
    }
}

fn read_le(bytes: &[u8]) -> u64 {
    let mut v = 0u64;
    for (i, b) in bytes.iter().enumerate() {
        v |= (*b as u64) << (8 * i);
    }
    v
}

fn write_le(bytes: &mut [u8], value: u64) {
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = (value >> (8 * i)) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::MemConfig;

    fn mem() -> Memory {
        Memory::new(EnclaveLayout::new(MemConfig::small()))
    }

    #[test]
    fn heap_read_write() {
        let mut m = mem();
        let addr = m.layout().heap.start + 24;
        m.store(addr, 8, 0xDEAD_BEEF_1234_5678).unwrap();
        assert_eq!(m.load(addr, 8).unwrap(), 0xDEAD_BEEF_1234_5678);
        m.store(addr, 1, 0xFF).unwrap();
        assert_eq!(m.load(addr, 1).unwrap(), 0xFF);
    }

    #[test]
    fn guard_pages_fault() {
        let mut m = mem();
        let g = m.layout().guard_lo.start;
        assert!(matches!(m.store(g, 8, 1), Err(Fault::WriteViolation { .. })));
        assert!(matches!(m.load(g, 8), Err(Fault::ReadViolation { .. })));
    }

    #[test]
    fn consumer_pages_not_writable() {
        let mut m = mem();
        let c = m.layout().consumer.start;
        assert!(matches!(m.store(c, 8, 1), Err(Fault::WriteViolation { .. })));
        assert_eq!(m.load(c, 8).unwrap(), 0);
    }

    #[test]
    fn code_pages_are_rwx_under_sgxv1() {
        let mut m = mem();
        let c = m.layout().code.start;
        // Hardware cannot stop self-modification — only the P1/P4 software
        // DEP annotations can, which is the point of the policy.
        m.store(c, 8, 0x90).unwrap();
        assert_eq!(m.load(c, 8).unwrap(), 0x90);
        assert!(m.fetch_window(c).is_ok());
    }

    #[test]
    fn heap_pages_not_executable() {
        let m = mem();
        let h = m.layout().heap.start;
        assert!(matches!(m.fetch_window(h), Err(Fault::NotExecutable { .. })));
    }

    #[test]
    fn untrusted_writes_succeed_but_are_recorded() {
        let mut m = mem();
        assert_eq!(m.untrusted_write_count, 0);
        m.store(0x100, 8, 42).unwrap();
        assert_eq!(m.load(0x100, 8).unwrap(), 42);
        assert_eq!(m.untrusted_write_count, 1);
        assert_eq!(m.leak_log[0], LeakRecord { addr: 0x100, len: 8 });
    }

    #[test]
    fn unmapped_addresses_fault() {
        let mut m = mem();
        let hole = m.layout().config.untrusted_size + 10; // between regions
        assert!(matches!(m.load(hole, 8), Err(Fault::Unmapped { .. })));
        assert!(matches!(m.store(hole, 8, 0), Err(Fault::Unmapped { .. })));
        let beyond = m.layout().elrange.end;
        assert!(matches!(m.load(beyond, 8), Err(Fault::Unmapped { .. })));
    }

    #[test]
    fn access_straddling_elrange_boundary_faults() {
        let m = mem();
        let edge = m.layout().elrange.end - 4;
        assert!(matches!(m.load(edge, 8), Err(Fault::Unmapped { .. })));
    }

    #[test]
    fn poke_bypasses_permissions_peek_reads_back() {
        let mut m = mem();
        let bt = m.layout().branch_table.start;
        m.set_region_perm(m.layout().branch_table, PagePerm::R);
        // The loader can still seal values in via the privileged path.
        m.poke_u64(bt, 77).unwrap();
        assert_eq!(m.peek_u64(bt).unwrap(), 77);
        // The target binary cannot write it.
        assert!(matches!(m.store(bt, 8, 1), Err(Fault::WriteViolation { .. })));
        // But can read it.
        assert_eq!(m.load(bt, 8).unwrap(), 77);
    }

    #[test]
    fn fetch_window_is_clamped_at_executable_boundary() {
        let m = mem();
        // Near the end of the code region the window shrinks to the bytes
        // remaining on executable pages instead of spilling into the heap.
        let end = m.layout().code.end - 4;
        let w = m.fetch_window(end).unwrap();
        assert_eq!(w.len(), 4);
        // A window fully inside code is the full 16 bytes.
        let w = m.fetch_window(m.layout().code.start).unwrap();
        assert_eq!(w.len(), 16);
        // Fetching from a non-executable page faults outright.
        assert!(matches!(m.fetch_window(m.layout().heap.start), Err(Fault::NotExecutable { .. })));
    }

    #[test]
    fn code_write_generation_tracks_executable_pages_only() {
        let mut m = mem();
        let code = m.layout().code.start;
        let heap = m.layout().heap.start;
        let page = ((code - m.layout().elrange.start) / PAGE_SIZE) as usize;
        let g0 = m.code_generation();
        // Data writes do not disturb code coherence.
        m.store(heap, 8, 1).unwrap();
        m.poke_u64(heap + 64, 2).unwrap();
        assert_eq!(m.code_generation(), g0);
        // A store into the RWX window bumps globally and stamps the page.
        m.store(code, 8, 0x90).unwrap();
        assert_eq!(m.code_generation(), g0 + 1);
        assert_eq!(m.page_code_gen(page), Some(g0 + 1));
        // A privileged poke spanning two code pages stamps both with one
        // generation (a single logical write event).
        m.poke_bytes(code + PAGE_SIZE - 4, &[0u8; 8]).unwrap();
        assert_eq!(m.code_generation(), g0 + 2);
        assert_eq!(m.page_code_gen(page), Some(g0 + 2));
        assert_eq!(m.page_code_gen(page + 1), Some(g0 + 2));
    }

    #[test]
    fn permission_change_stamps_generation() {
        let mut m = mem();
        let bt = m.layout().branch_table;
        let page = ((bt.start - m.layout().elrange.start) / PAGE_SIZE) as usize;
        let g0 = m.code_generation();
        m.set_region_perm(bt, PagePerm::R);
        assert_eq!(m.code_generation(), g0 + 1);
        assert_eq!(m.page_code_gen(page), Some(g0 + 1));
        assert_eq!(m.page_code_gen(usize::MAX), None);
    }

    #[test]
    fn page_straddling_access_matches_single_page_semantics() {
        let mut m = mem();
        // A write straddling two heap pages still round-trips and bumps no
        // code generation (exercises the slow path the fast path skips).
        let edge = m.layout().heap.start + PAGE_SIZE - 4;
        let g0 = m.code_generation();
        m.store(edge, 8, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.load(edge, 8).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.code_generation(), g0);
        // Straddling into a guard page faults exactly as before.
        let guard_edge = m.layout().stack.end - 4;
        assert!(matches!(m.store(guard_edge, 8, 1), Err(Fault::WriteViolation { .. })));
    }

    #[test]
    fn leak_log_is_capped() {
        let mut m = mem();
        for i in 0..(MAX_LEAK_LOG as u64 + 100) {
            m.store(i * 8, 8, i).unwrap();
        }
        assert_eq!(m.leak_log.len(), MAX_LEAK_LOG);
        assert_eq!(m.untrusted_write_count, MAX_LEAK_LOG as u64 + 100);
    }
}
