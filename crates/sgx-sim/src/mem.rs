//! The simulated physical memory: untrusted host memory plus the paged,
//! permission-checked EPC.
//!
//! A real enclave *can* write to untrusted memory — that is precisely the
//! leak channel policy P1 exists to close — so stores outside ELRANGE
//! succeed here but are counted and (up to a cap) recorded, letting tests
//! and benches observe exfiltration attempts. Inside ELRANGE, per-page
//! R/W/X permissions are enforced; guard pages have no permissions at all.

use crate::layout::{EnclaveLayout, Region, PAGE_SIZE};
use crate::Fault;

/// Per-page permission bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PagePerm {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl PagePerm {
    /// No access (guard page).
    pub const NONE: PagePerm = PagePerm { r: false, w: false, x: false };
    /// Read-only.
    pub const R: PagePerm = PagePerm { r: true, w: false, x: false };
    /// Read-write.
    pub const RW: PagePerm = PagePerm { r: true, w: true, x: false };
    /// Read-execute.
    pub const RX: PagePerm = PagePerm { r: true, w: false, x: true };
    /// Read-write-execute (the target code window under SGXv1).
    pub const RWX: PagePerm = PagePerm { r: true, w: true, x: true };
}

/// Kind of access, for fault reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Instruction fetch.
    Fetch,
    /// Data read.
    Read,
    /// Data write.
    Write,
}

/// An observed store from enclave code to untrusted memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeakRecord {
    /// Destination address outside ELRANGE.
    pub addr: u64,
    /// Number of bytes written.
    pub len: u8,
}

const MAX_LEAK_LOG: usize = 1024;

/// Simulated memory: one untrusted region at address 0 and the enclave.
#[derive(Debug, Clone)]
pub struct Memory {
    layout: EnclaveLayout,
    untrusted: Vec<u8>,
    enclave: Vec<u8>,
    perms: Vec<PagePerm>,
    /// Count of enclave-initiated writes that landed outside ELRANGE.
    pub untrusted_write_count: u64,
    /// The first 1024 such writes (capped).
    pub leak_log: Vec<LeakRecord>,
}

impl Memory {
    /// Allocates memory for `layout` and applies the region permissions.
    #[must_use]
    pub fn new(layout: EnclaveLayout) -> Self {
        let enclave_len = layout.elrange.len() as usize;
        let pages = enclave_len / PAGE_SIZE as usize;
        let mut mem = Memory {
            untrusted: vec![0; layout.config.untrusted_size as usize],
            enclave: vec![0; enclave_len],
            perms: vec![PagePerm::NONE; pages],
            untrusted_write_count: 0,
            leak_log: Vec::new(),
            layout,
        };
        let l = mem.layout.clone();
        mem.set_region_perm(l.consumer, PagePerm::RX);
        mem.set_region_perm(l.ssa, PagePerm::RW);
        mem.set_region_perm(l.control, PagePerm::RW);
        // Branch table is RW until the loader seals it.
        mem.set_region_perm(l.branch_table, PagePerm::RW);
        mem.set_region_perm(l.shadow_stack, PagePerm::RW);
        mem.set_region_perm(l.code, PagePerm::RWX);
        mem.set_region_perm(l.heap, PagePerm::RW);
        mem.set_region_perm(l.guard_lo, PagePerm::NONE);
        mem.set_region_perm(l.stack, PagePerm::RW);
        mem.set_region_perm(l.guard_hi, PagePerm::NONE);
        mem
    }

    /// The layout this memory was built for.
    #[must_use]
    pub fn layout(&self) -> &EnclaveLayout {
        &self.layout
    }

    /// Sets the permissions of every page in `region`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is not inside the enclave or not page-aligned.
    pub fn set_region_perm(&mut self, region: Region, perm: PagePerm) {
        assert!(
            region.start >= self.layout.elrange.start && region.end <= self.layout.elrange.end,
            "region outside enclave"
        );
        assert!(region.start.is_multiple_of(PAGE_SIZE) && region.end.is_multiple_of(PAGE_SIZE));
        let first = ((region.start - self.layout.elrange.start) / PAGE_SIZE) as usize;
        let last = ((region.end - self.layout.elrange.start) / PAGE_SIZE) as usize;
        for p in &mut self.perms[first..last] {
            *p = perm;
        }
    }

    /// Returns the permission of the page containing `addr` (enclave only).
    #[must_use]
    pub fn page_perm(&self, addr: u64) -> Option<PagePerm> {
        if !self.layout.elrange.contains(addr) {
            return None;
        }
        let idx = ((addr - self.layout.elrange.start) / PAGE_SIZE) as usize;
        Some(self.perms[idx])
    }

    fn check_enclave_perm(&self, addr: u64, len: u64, access: Access) -> Result<(), Fault> {
        let first = addr / PAGE_SIZE;
        let last = (addr + len - 1) / PAGE_SIZE;
        for page in first..=last {
            let page_addr = page * PAGE_SIZE;
            let perm = self.page_perm(page_addr).expect("in range");
            let ok = match access {
                Access::Fetch => perm.x,
                Access::Read => perm.r,
                Access::Write => perm.w,
            };
            if !ok {
                return Err(match access {
                    Access::Fetch => Fault::NotExecutable { addr: page_addr },
                    Access::Read => Fault::ReadViolation { addr },
                    Access::Write => Fault::WriteViolation { addr },
                });
            }
        }
        Ok(())
    }

    /// Reads `len` (1..=8) bytes at `addr` as a little-endian integer, with
    /// permission checks (the path the executing target binary uses).
    ///
    /// # Errors
    ///
    /// Faults on unmapped addresses and on enclave pages without read
    /// permission.
    pub fn load(&self, addr: u64, len: u8) -> Result<u64, Fault> {
        debug_assert!((1..=8).contains(&len));
        let len64 = len as u64;
        if self.layout.elrange.contains_range(addr, len64) {
            self.check_enclave_perm(addr, len64, Access::Read)?;
            let off = (addr - self.layout.elrange.start) as usize;
            Ok(read_le(&self.enclave[off..off + len as usize]))
        } else if Region::new(0, self.untrusted.len() as u64).contains_range(addr, len64) {
            Ok(read_le(&self.untrusted[addr as usize..addr as usize + len as usize]))
        } else {
            Err(Fault::Unmapped { addr })
        }
    }

    /// Writes `len` (1..=8) bytes at `addr`, with permission checks. Stores
    /// to untrusted memory succeed but are recorded as potential leaks.
    ///
    /// # Errors
    ///
    /// Faults on unmapped addresses and on enclave pages without write
    /// permission (guard pages, code-adjacent read-only pages, …).
    pub fn store(&mut self, addr: u64, len: u8, value: u64) -> Result<(), Fault> {
        debug_assert!((1..=8).contains(&len));
        let len64 = len as u64;
        if self.layout.elrange.contains_range(addr, len64) {
            self.check_enclave_perm(addr, len64, Access::Write)?;
            let off = (addr - self.layout.elrange.start) as usize;
            write_le(&mut self.enclave[off..off + len as usize], value);
            Ok(())
        } else if Region::new(0, self.untrusted.len() as u64).contains_range(addr, len64) {
            self.untrusted_write_count += 1;
            if self.leak_log.len() < MAX_LEAK_LOG {
                self.leak_log.push(LeakRecord { addr, len });
            }
            write_le(&mut self.untrusted[addr as usize..addr as usize + len as usize], value);
            Ok(())
        } else {
            Err(Fault::Unmapped { addr })
        }
    }

    /// Returns up to 16 bytes of code starting at `pc` for the decoder.
    /// The window is clamped to the contiguous run of executable pages, so
    /// an instruction that would spill past them decodes as truncated and
    /// the machine fails closed.
    ///
    /// # Errors
    ///
    /// Faults if `pc` is outside the enclave or on a non-executable page.
    pub fn fetch_window(&self, pc: u64) -> Result<&[u8], Fault> {
        if !self.layout.elrange.contains(pc) {
            return Err(Fault::NotExecutable { addr: pc });
        }
        self.check_enclave_perm(pc, 1, Access::Fetch)?;
        let mut avail = (self.layout.elrange.end - pc).min(16);
        // Clamp at the first non-executable page.
        let mut next_page = (pc / PAGE_SIZE + 1) * PAGE_SIZE;
        while next_page < pc + avail {
            let perm = self.page_perm(next_page).expect("in range");
            if !perm.x {
                avail = next_page - pc;
                break;
            }
            next_page += PAGE_SIZE;
        }
        let off = (pc - self.layout.elrange.start) as usize;
        Ok(&self.enclave[off..off + avail as usize])
    }

    /// Privileged read bypassing page permissions (the trusted consumer /
    /// runtime path). Still bounds-checked against the address map.
    ///
    /// # Errors
    ///
    /// Faults only on unmapped addresses.
    pub fn peek_bytes(&self, addr: u64, len: usize) -> Result<&[u8], Fault> {
        let len64 = len as u64;
        if self.layout.elrange.contains_range(addr, len64) {
            let off = (addr - self.layout.elrange.start) as usize;
            Ok(&self.enclave[off..off + len])
        } else if Region::new(0, self.untrusted.len() as u64).contains_range(addr, len64) {
            Ok(&self.untrusted[addr as usize..addr as usize + len])
        } else {
            Err(Fault::Unmapped { addr })
        }
    }

    /// Privileged write bypassing page permissions (loader/runtime path).
    ///
    /// # Errors
    ///
    /// Faults only on unmapped addresses.
    pub fn poke_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), Fault> {
        let len64 = bytes.len() as u64;
        if self.layout.elrange.contains_range(addr, len64) {
            let off = (addr - self.layout.elrange.start) as usize;
            self.enclave[off..off + bytes.len()].copy_from_slice(bytes);
            Ok(())
        } else if Region::new(0, self.untrusted.len() as u64).contains_range(addr, len64) {
            self.untrusted[addr as usize..addr as usize + bytes.len()].copy_from_slice(bytes);
            Ok(())
        } else {
            Err(Fault::Unmapped { addr })
        }
    }

    /// Privileged 64-bit read.
    ///
    /// # Errors
    ///
    /// Faults only on unmapped addresses.
    pub fn peek_u64(&self, addr: u64) -> Result<u64, Fault> {
        Ok(read_le(self.peek_bytes(addr, 8)?))
    }

    /// Privileged 64-bit write.
    ///
    /// # Errors
    ///
    /// Faults only on unmapped addresses.
    pub fn poke_u64(&mut self, addr: u64, value: u64) -> Result<(), Fault> {
        self.poke_bytes(addr, &value.to_le_bytes())
    }
}

fn read_le(bytes: &[u8]) -> u64 {
    let mut v = 0u64;
    for (i, b) in bytes.iter().enumerate() {
        v |= (*b as u64) << (8 * i);
    }
    v
}

fn write_le(bytes: &mut [u8], value: u64) {
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = (value >> (8 * i)) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::MemConfig;

    fn mem() -> Memory {
        Memory::new(EnclaveLayout::new(MemConfig::small()))
    }

    #[test]
    fn heap_read_write() {
        let mut m = mem();
        let addr = m.layout().heap.start + 24;
        m.store(addr, 8, 0xDEAD_BEEF_1234_5678).unwrap();
        assert_eq!(m.load(addr, 8).unwrap(), 0xDEAD_BEEF_1234_5678);
        m.store(addr, 1, 0xFF).unwrap();
        assert_eq!(m.load(addr, 1).unwrap(), 0xFF);
    }

    #[test]
    fn guard_pages_fault() {
        let mut m = mem();
        let g = m.layout().guard_lo.start;
        assert!(matches!(m.store(g, 8, 1), Err(Fault::WriteViolation { .. })));
        assert!(matches!(m.load(g, 8), Err(Fault::ReadViolation { .. })));
    }

    #[test]
    fn consumer_pages_not_writable() {
        let mut m = mem();
        let c = m.layout().consumer.start;
        assert!(matches!(m.store(c, 8, 1), Err(Fault::WriteViolation { .. })));
        assert_eq!(m.load(c, 8).unwrap(), 0);
    }

    #[test]
    fn code_pages_are_rwx_under_sgxv1() {
        let mut m = mem();
        let c = m.layout().code.start;
        // Hardware cannot stop self-modification — only the P1/P4 software
        // DEP annotations can, which is the point of the policy.
        m.store(c, 8, 0x90).unwrap();
        assert_eq!(m.load(c, 8).unwrap(), 0x90);
        assert!(m.fetch_window(c).is_ok());
    }

    #[test]
    fn heap_pages_not_executable() {
        let m = mem();
        let h = m.layout().heap.start;
        assert!(matches!(m.fetch_window(h), Err(Fault::NotExecutable { .. })));
    }

    #[test]
    fn untrusted_writes_succeed_but_are_recorded() {
        let mut m = mem();
        assert_eq!(m.untrusted_write_count, 0);
        m.store(0x100, 8, 42).unwrap();
        assert_eq!(m.load(0x100, 8).unwrap(), 42);
        assert_eq!(m.untrusted_write_count, 1);
        assert_eq!(m.leak_log[0], LeakRecord { addr: 0x100, len: 8 });
    }

    #[test]
    fn unmapped_addresses_fault() {
        let mut m = mem();
        let hole = m.layout().config.untrusted_size + 10; // between regions
        assert!(matches!(m.load(hole, 8), Err(Fault::Unmapped { .. })));
        assert!(matches!(m.store(hole, 8, 0), Err(Fault::Unmapped { .. })));
        let beyond = m.layout().elrange.end;
        assert!(matches!(m.load(beyond, 8), Err(Fault::Unmapped { .. })));
    }

    #[test]
    fn access_straddling_elrange_boundary_faults() {
        let m = mem();
        let edge = m.layout().elrange.end - 4;
        assert!(matches!(m.load(edge, 8), Err(Fault::Unmapped { .. })));
    }

    #[test]
    fn poke_bypasses_permissions_peek_reads_back() {
        let mut m = mem();
        let bt = m.layout().branch_table.start;
        m.set_region_perm(m.layout().branch_table, PagePerm::R);
        // The loader can still seal values in via the privileged path.
        m.poke_u64(bt, 77).unwrap();
        assert_eq!(m.peek_u64(bt).unwrap(), 77);
        // The target binary cannot write it.
        assert!(matches!(m.store(bt, 8, 1), Err(Fault::WriteViolation { .. })));
        // But can read it.
        assert_eq!(m.load(bt, 8).unwrap(), 77);
    }

    #[test]
    fn fetch_window_is_clamped_at_executable_boundary() {
        let m = mem();
        // Near the end of the code region the window shrinks to the bytes
        // remaining on executable pages instead of spilling into the heap.
        let end = m.layout().code.end - 4;
        let w = m.fetch_window(end).unwrap();
        assert_eq!(w.len(), 4);
        // A window fully inside code is the full 16 bytes.
        let w = m.fetch_window(m.layout().code.start).unwrap();
        assert_eq!(w.len(), 16);
        // Fetching from a non-executable page faults outright.
        assert!(matches!(m.fetch_window(m.layout().heap.start), Err(Fault::NotExecutable { .. })));
    }

    #[test]
    fn leak_log_is_capped() {
        let mut m = mem();
        for i in 0..(MAX_LEAK_LOG as u64 + 100) {
            m.store(i * 8, 8, i).unwrap();
        }
        assert_eq!(m.leak_log.len(), MAX_LEAK_LOG);
        assert_eq!(m.untrusted_write_count, MAX_LEAK_LOG as u64 + 100);
    }
}
