//! # deflection-sgx-sim
//!
//! A software model of the Intel SGX platform, faithful to the architectural
//! artifacts DEFLECTION's policies are defined over:
//!
//! * [`layout`] — the bootstrap enclave's memory plan (ELRANGE, SSA, shadow
//!   stack, branch table, RWX code window, heap, guarded stack), sized per
//!   the paper's 96 MB default or scaled down for tests;
//! * [`mem`] — paged EPC memory with R/W/X permissions and guard pages;
//!   stores to untrusted memory *succeed but are recorded*, because that is
//!   the leak channel policy P1 exists to close;
//! * [`cpu`] — the interpreter executing `deflection-isa` instructions with
//!   x86-64-style flags, stack and control-flow semantics;
//! * [`aex`] — asynchronous-exit injection that dumps context into the SSA,
//!   clobbering the P6 marker exactly as real hardware does;
//! * [`icache`] — a decode-once instruction cache with generation-based
//!   coherence, modelling the hardware icache (including self-modifying
//!   code snooping — see `DESIGN.md` §5f);
//! * [`vm`] — the block-dispatch run loop coupling CPU, memory, icache,
//!   AEX and a [`vm::VmHost`] providing OCall service;
//! * [`measure`] — MRENCLAVE-style measurement and platform quote signing;
//! * [`coloc`] — the HyperRace co-location probe model with the paper's
//!   four CPU profiles.
//!
//! # Example
//!
//! ```
//! use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};
//! use deflection_sgx_sim::mem::Memory;
//! use deflection_sgx_sim::vm::{NullHost, RunExit, Vm};
//! use deflection_isa::{encode_program, Inst, Reg};
//!
//! let layout = EnclaveLayout::new(MemConfig::small());
//! let mut mem = Memory::new(layout.clone());
//! let (code, _) = encode_program(&[
//!     Inst::MovRI { dst: Reg::RAX, imm: 42 },
//!     Inst::Halt,
//! ]);
//! mem.poke_bytes(layout.code.start, &code)?;
//! let mut vm = Vm::new(mem, layout.code.start);
//! assert_eq!(vm.run(100, &mut NullHost), RunExit::Halted { exit: 42 });
//! # Ok::<(), deflection_sgx_sim::Fault>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aex;
pub mod coloc;
pub mod cpu;
mod fault;
pub mod icache;
pub mod layout;
pub mod measure;
pub mod mem;
pub mod vm;

pub use fault::Fault;
