//! Enclave measurement and platform quote signing.
//!
//! On SGX the hardware extends MRENCLAVE with every page added at build time
//! and signs Quotes with a platform attestation key whose validity the Intel
//! Attestation Service vouches for. Here the measurement is a SHA-256 over
//! the consumer image and the enclave configuration, and the platform signs
//! reports with an HMAC key it shares with the (simulated) attestation
//! service at manufacturing time — preserving the trust topology of the
//! paper's Figure 1.

use crate::layout::EnclaveLayout;
use deflection_crypto::hmac::hmac_sha256;
use deflection_crypto::sha256::Sha256;

/// An MRENCLAVE-style enclave measurement.
pub type Measurement = [u8; 32];

/// Computes the measurement of a bootstrap enclave: the hash of its public
/// consumer image and the security-relevant configuration (layout sizes),
/// which is what both the data owner and the code provider agree on before
/// trusting the enclave (Section III-A, key agreement).
#[must_use]
pub fn measure_enclave(consumer_image: &[u8], layout: &EnclaveLayout) -> Measurement {
    let mut h = Sha256::new();
    h.update(b"deflection-mrenclave-v1");
    h.update(&(consumer_image.len() as u64).to_le_bytes());
    h.update(consumer_image);
    for region in [
        layout.consumer,
        layout.ssa,
        layout.control,
        layout.branch_table,
        layout.shadow_stack,
        layout.code,
        layout.heap,
        layout.stack,
    ] {
        h.update(&region.start.to_le_bytes());
        h.update(&region.end.to_le_bytes());
    }
    h.finalize()
}

/// Derives the enclave's sealing key from its measurement — the `EGETKEY`
/// analogue with `KEYPOLICY.MRENCLAVE`: only an enclave whose measurement
/// equals `measurement` can derive this key, so a MAC under it proves the
/// sealed data was produced by (and is only importable into) an enclave
/// with the same consumer image and layout. A different measurement yields
/// an unrelated key and every MAC check under it fails closed.
#[must_use]
pub fn sealing_key(measurement: &Measurement) -> [u8; 32] {
    hmac_sha256(measurement, b"deflection-sealing-key-v1")
}

/// The simulated SGX platform: owner of the attestation key.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Stable platform identifier (like an EPID group id).
    pub platform_id: u64,
    key: [u8; 32],
}

impl Platform {
    /// Creates a platform whose attestation key is derived from `seed`.
    #[must_use]
    pub fn new(platform_id: u64, seed: &[u8; 32]) -> Self {
        let key = hmac_sha256(seed, &platform_id.to_le_bytes());
        Platform { platform_id, key }
    }

    /// The attestation key, for registering with the attestation service
    /// (models the EPID provisioning step; never exposed to enclaves).
    #[must_use]
    pub fn attestation_key(&self) -> [u8; 32] {
        self.key
    }

    /// Signs a serialized report, producing the quote signature.
    #[must_use]
    pub fn sign_report(&self, report: &[u8]) -> [u8; 32] {
        hmac_sha256(&self.key, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::MemConfig;

    #[test]
    fn measurement_changes_with_image() {
        let layout = EnclaveLayout::new(MemConfig::small());
        let a = measure_enclave(b"consumer-v1", &layout);
        let b = measure_enclave(b"consumer-v2", &layout);
        assert_ne!(a, b);
    }

    #[test]
    fn measurement_changes_with_layout() {
        let a = measure_enclave(b"c", &EnclaveLayout::new(MemConfig::small()));
        let b = measure_enclave(b"c", &EnclaveLayout::new(MemConfig::paper()));
        assert_ne!(a, b);
    }

    #[test]
    fn measurement_is_deterministic() {
        let layout = EnclaveLayout::new(MemConfig::small());
        assert_eq!(measure_enclave(b"consumer", &layout), measure_enclave(b"consumer", &layout));
    }

    #[test]
    fn sealing_key_is_measurement_bound() {
        let a = measure_enclave(b"consumer-v1", &EnclaveLayout::new(MemConfig::small()));
        let b = measure_enclave(b"consumer-v2", &EnclaveLayout::new(MemConfig::small()));
        assert_eq!(sealing_key(&a), sealing_key(&a), "derivation is deterministic");
        assert_ne!(sealing_key(&a), sealing_key(&b), "different enclaves, different keys");
        assert_ne!(sealing_key(&a), a, "the key is not the measurement itself");
    }

    #[test]
    fn platform_signatures_verify_with_registered_key() {
        let platform = Platform::new(1, &[9u8; 32]);
        let sig = platform.sign_report(b"report");
        assert_eq!(sig, hmac_sha256(&platform.attestation_key(), b"report"));
    }

    #[test]
    fn different_platforms_sign_differently() {
        let a = Platform::new(1, &[9u8; 32]);
        let b = Platform::new(2, &[9u8; 32]);
        assert_ne!(a.sign_report(b"r"), b.sign_report(b"r"));
    }
}
