//! Enclave measurement and platform quote signing.
//!
//! On SGX the hardware extends MRENCLAVE with every page added at build time
//! and signs Quotes with a platform attestation key whose validity the Intel
//! Attestation Service vouches for. Here the measurement is a SHA-256 over
//! the consumer image and the enclave configuration, and the platform signs
//! reports with an HMAC key it shares with the (simulated) attestation
//! service at manufacturing time — preserving the trust topology of the
//! paper's Figure 1.

use crate::layout::EnclaveLayout;
use deflection_crypto::hmac::hmac_sha256;
use deflection_crypto::sha256::Sha256;
use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::sync::OnceLock;

/// An MRENCLAVE-style enclave measurement.
pub type Measurement = [u8; 32];

/// Computes the measurement of a bootstrap enclave: the hash of its public
/// consumer image and the security-relevant configuration (layout sizes),
/// which is what both the data owner and the code provider agree on before
/// trusting the enclave (Section III-A, key agreement).
#[must_use]
pub fn measure_enclave(consumer_image: &[u8], layout: &EnclaveLayout) -> Measurement {
    let mut h = Sha256::new();
    h.update(b"deflection-mrenclave-v1");
    h.update(&(consumer_image.len() as u64).to_le_bytes());
    h.update(consumer_image);
    for region in [
        layout.consumer,
        layout.ssa,
        layout.control,
        layout.branch_table,
        layout.shadow_stack,
        layout.code,
        layout.heap,
        layout.stack,
    ] {
        h.update(&region.start.to_le_bytes());
        h.update(&region.end.to_le_bytes());
    }
    h.finalize()
}

/// The simulated per-device root sealing fuses: the `EGETKEY` device
/// secret every sealing key is derived from. On real hardware these are
/// burned at manufacturing and never leave the CPU; here they are drawn
/// once per process from OS randomness, so the "platform" is the process
/// and a sealed blob is importable exactly where it was produced. The
/// crucial property is that the secret is *not* a function of any public
/// input (consumer image, layout, blob contents): an untrusted-storage
/// adversary cannot re-derive a sealing key and forge MACs.
fn root_sealing_fuses() -> &'static [u8; 32] {
    static FUSES: OnceLock<[u8; 32]> = OnceLock::new();
    FUSES.get_or_init(|| {
        let mut fuses = [0u8; 32];
        for (i, chunk) in fuses.chunks_exact_mut(8).enumerate() {
            // `RandomState` is the std library's per-process CSPRNG-seeded
            // hasher state — the only OS-randomness source available
            // without adding a dependency to the simulated TCB.
            let mut h = RandomState::new().build_hasher();
            h.write_u64(i as u64);
            chunk.copy_from_slice(&h.finish().to_le_bytes());
        }
        fuses
    })
}

/// Derives the enclave's sealing key — the `EGETKEY` analogue with
/// `KEYPOLICY.MRENCLAVE`: `HMAC-SHA256(device fuses, label ‖ measurement)`.
/// Only code running on the same (simulated) platform can derive *any*
/// sealing key, because the fuse secret never leaves it; among enclaves on
/// that platform, only one whose measurement equals `measurement` derives
/// *this* key. A MAC under it therefore proves the sealed data was produced
/// by an enclave with the same consumer image and layout on this platform —
/// it is not computable from the (public) measurement alone, so an
/// untrusted-storage adversary cannot forge blobs. A different measurement
/// yields an unrelated key and every MAC check under it fails closed.
#[must_use]
pub fn sealing_key(measurement: &Measurement) -> [u8; 32] {
    let mut msg = Vec::with_capacity(32 + 25);
    msg.extend_from_slice(b"deflection-sealing-key-v1");
    msg.extend_from_slice(measurement);
    hmac_sha256(root_sealing_fuses(), &msg)
}

/// The simulated SGX platform: owner of the attestation key.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Stable platform identifier (like an EPID group id).
    pub platform_id: u64,
    key: [u8; 32],
}

impl Platform {
    /// Creates a platform whose attestation key is derived from `seed`.
    #[must_use]
    pub fn new(platform_id: u64, seed: &[u8; 32]) -> Self {
        let key = hmac_sha256(seed, &platform_id.to_le_bytes());
        Platform { platform_id, key }
    }

    /// The attestation key, for registering with the attestation service
    /// (models the EPID provisioning step; never exposed to enclaves).
    #[must_use]
    pub fn attestation_key(&self) -> [u8; 32] {
        self.key
    }

    /// Signs a serialized report, producing the quote signature.
    #[must_use]
    pub fn sign_report(&self, report: &[u8]) -> [u8; 32] {
        hmac_sha256(&self.key, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::MemConfig;

    #[test]
    fn measurement_changes_with_image() {
        let layout = EnclaveLayout::new(MemConfig::small());
        let a = measure_enclave(b"consumer-v1", &layout);
        let b = measure_enclave(b"consumer-v2", &layout);
        assert_ne!(a, b);
    }

    #[test]
    fn measurement_changes_with_layout() {
        let a = measure_enclave(b"c", &EnclaveLayout::new(MemConfig::small()));
        let b = measure_enclave(b"c", &EnclaveLayout::new(MemConfig::paper()));
        assert_ne!(a, b);
    }

    #[test]
    fn measurement_is_deterministic() {
        let layout = EnclaveLayout::new(MemConfig::small());
        assert_eq!(measure_enclave(b"consumer", &layout), measure_enclave(b"consumer", &layout));
    }

    #[test]
    fn sealing_key_is_measurement_bound() {
        let a = measure_enclave(b"consumer-v1", &EnclaveLayout::new(MemConfig::small()));
        let b = measure_enclave(b"consumer-v2", &EnclaveLayout::new(MemConfig::small()));
        assert_eq!(sealing_key(&a), sealing_key(&a), "derivation is deterministic");
        assert_ne!(sealing_key(&a), sealing_key(&b), "different enclaves, different keys");
        assert_ne!(sealing_key(&a), a, "the key is not the measurement itself");
    }

    #[test]
    fn sealing_key_is_not_a_function_of_public_inputs_alone() {
        // Regression: the key was once HMAC(measurement, constant-label),
        // which an untrusted-storage adversary could recompute from the
        // public consumer image and layout to forge sealed blobs. The
        // derivation must mix the platform fuse secret.
        let m = measure_enclave(b"consumer-v1", &EnclaveLayout::new(MemConfig::small()));
        assert_ne!(sealing_key(&m), hmac_sha256(&m, b"deflection-sealing-key-v1"));
        let mut msg = Vec::new();
        msg.extend_from_slice(b"deflection-sealing-key-v1");
        msg.extend_from_slice(&m);
        assert_ne!(sealing_key(&m), hmac_sha256(&m, &msg));
    }

    #[test]
    fn platform_signatures_verify_with_registered_key() {
        let platform = Platform::new(1, &[9u8; 32]);
        let sig = platform.sign_report(b"report");
        assert_eq!(sig, hmac_sha256(&platform.attestation_key(), b"report"));
    }

    #[test]
    fn different_platforms_sign_differently() {
        let a = Platform::new(1, &[9u8; 32]);
        let b = Platform::new(2, &[9u8; 32]);
        assert_ne!(a.sign_report(b"r"), b.sign_report(b"r"));
    }
}
