//! Property-based robustness of the simulated platform: arbitrary bytes
//! loaded as code must never panic the machine — every outcome is a clean
//! halt, abort, fault or fuel exhaustion, and memory safety invariants hold
//! throughout.

use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};
use deflection_sgx_sim::mem::Memory;
use deflection_sgx_sim::vm::{NullHost, RunExit, Vm};
use proptest::prelude::*;

fn run_bytes(code: &[u8], fuel: u64) -> (RunExit, u64) {
    let layout = EnclaveLayout::new(MemConfig::small());
    let mut mem = Memory::new(layout.clone());
    mem.poke_bytes(layout.code.start, code).expect("code fits");
    let mut vm = Vm::new(mem, layout.code.start);
    let exit = vm.run(fuel, &mut NullHost);
    (exit, vm.mem.untrusted_write_count)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_code_never_panics(code in proptest::collection::vec(any::<u8>(), 1..512)) {
        let (exit, _) = run_bytes(&code, 20_000);
        // Any of these is a legitimate, contained outcome.
        match exit {
            RunExit::Halted { .. }
            | RunExit::PolicyAbort { .. }
            | RunExit::Fault(_)
            | RunExit::OutOfFuel => {}
        }
    }

    #[test]
    fn random_valid_instruction_streams_never_panic(
        seed_insts in proptest::collection::vec(any::<u16>(), 1..128)
    ) {
        // Bias toward decodable opcodes so execution gets further than the
        // first byte: map each u16 into the defined opcode ranges.
        let mut code = Vec::new();
        for s in &seed_insts {
            let op = (s % 0x79) as u8;
            code.push(op);
            code.extend_from_slice(&s.to_le_bytes());
            code.extend_from_slice(&[0u8; 8]);
        }
        let (_, _) = run_bytes(&code, 50_000);
    }

    #[test]
    fn memory_access_never_panics(addr in any::<u64>(), len in 1u8..=8) {
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut mem = Memory::new(layout);
        let _ = mem.load(addr, len);
        let _ = mem.store(addr, len, 0xAA55);
        let _ = mem.peek_bytes(addr, len as usize);
        let _ = mem.fetch_window(addr);
    }
}
