//! Attack corpus: malicious target binaries that the verifier must reject
//! or the runtime must contain (paper Section VI-A, "Policy analysis").
//!
//! Each constructor returns a linked relocatable binary built the way a
//! malicious code provider would build it — bypassing or subverting the
//! honest producer — together with a short description. Integration tests
//! and the `malicious_provider` example drive the corpus through the
//! consumer pipeline and assert on the exact outcome.

use crate::annotations;
use crate::policy::PolicySet;
use crate::producer::{instrument, produce_from_mir, produce_stripped_mir};
use deflection_isa::{AluOp, CondCode, Inst, MemOperand, Reg};
use deflection_lang::mir::{MFunction, MInst, MirProgram};
use deflection_obj::ObjectFile;
use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};
use std::collections::HashSet;

/// A corpus entry: what the attack does and the binary implementing it.
#[derive(Debug, Clone)]
pub struct Attack {
    /// Short name for reports.
    pub name: &'static str,
    /// What the attack attempts.
    pub description: &'static str,
    /// The malicious linked binary.
    pub binary: ObjectFile,
    /// The expected containment: rejected by the verifier, or aborted at
    /// runtime with a specific policy code.
    pub expected: Expected,
}

/// Expected containment of an attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// The verifier must reject the binary outright.
    VerifierReject,
    /// The binary verifies but the annotation aborts at runtime with this
    /// policy code.
    RuntimeAbort(u8),
}

fn mir_program(functions: Vec<MFunction>, indirect_targets: Vec<String>) -> MirProgram {
    MirProgram { entry: functions[0].name.clone(), functions, data: vec![], indirect_targets }
}

fn start_calling(callee: &str) -> MFunction {
    let mut start = MFunction::new("__start");
    start.push(MInst::CallSym(callee.into()));
    start.real(Inst::Halt);
    start
}

/// A raw, unannotated store to untrusted memory (the classic exfiltration
/// write P1 exists to stop). Rejected by any verifier enforcing P1.
#[must_use]
pub fn raw_out_of_enclave_store() -> Attack {
    let mut main = MFunction::new("__start");
    main.real(Inst::MovRI { dst: Reg::RBX, imm: 0x100 });
    main.real(Inst::MovRI { dst: Reg::RAX, imm: 0x5EC2E7 });
    main.real(Inst::Store { mem: MemOperand::base_disp(Reg::RBX, 0), src: Reg::RAX });
    main.real(Inst::Halt);
    let obj = produce_from_mir(&mir_program(vec![main], vec![]), &PolicySet::none())
        .expect("hand-built attack must assemble");
    Attack {
        name: "raw-out-of-enclave-store",
        description: "unannotated 8-byte store to untrusted address 0x100",
        binary: obj,
        expected: Expected::VerifierReject,
    }
}

/// A store "guarded" by an annotation that checks a *different* address —
/// the guard watches `[rcx]` while the store writes `[rdx]`.
#[must_use]
pub fn wrong_operand_guard() -> Attack {
    let mut main = MFunction::new("__start");
    main.real(Inst::MovRI { dst: Reg::RCX, imm: 0x2000_0000 });
    main.real(Inst::MovRI { dst: Reg::RDX, imm: 0x100 });
    annotations::emit_store_guard(&mut main, &MemOperand::base_disp(Reg::RCX, 0));
    main.real(Inst::Store { mem: MemOperand::base_disp(Reg::RDX, 0), src: Reg::RAX });
    main.real(Inst::Halt);
    let obj =
        produce_from_mir(&mir_program(vec![main], vec![]), &PolicySet::none()).expect("assembles");
    Attack {
        name: "wrong-operand-guard",
        description: "P1 annotation checks [rcx] but the store writes [rdx]",
        binary: obj,
        expected: Expected::VerifierReject,
    }
}

/// A conditional jump that lands *inside* a store guard, on the register
/// restore right before the store — skipping both bounds checks.
#[must_use]
pub fn jump_over_guard() -> Attack {
    let mut f = MFunction::new("__start");
    let mid = f.new_label();
    let mem = MemOperand::base_disp(Reg::RDX, 0);
    f.real(Inst::MovRI { dst: Reg::RDX, imm: 0x100 });
    f.real(Inst::CmpRI { lhs: Reg::RAX, imm: 0 });
    f.push(MInst::Jcc(CondCode::E, mid)); // hostile entry into the template
                                          // Hand-rolled copy of the store guard with a label before the pops.
    let ok1 = f.new_label();
    let ok2 = f.new_label();
    f.real(Inst::Push { reg: Reg::RBX });
    f.real(Inst::Push { reg: Reg::RAX });
    f.real(Inst::Lea { dst: Reg::RAX, mem });
    f.real(Inst::MovRI { dst: Reg::RBX, imm: annotations::PH_STORE_LO });
    f.real(Inst::CmpRR { lhs: Reg::RAX, rhs: Reg::RBX });
    f.push(MInst::Jcc(CondCode::Ae, ok1));
    f.real(Inst::Abort { code: crate::policy::abort_codes::STORE_BOUNDS });
    f.push(MInst::Label(ok1));
    f.real(Inst::MovRI { dst: Reg::RBX, imm: annotations::PH_STORE_HI });
    f.real(Inst::CmpRR { lhs: Reg::RAX, rhs: Reg::RBX });
    f.push(MInst::Jcc(CondCode::B, ok2));
    f.real(Inst::Abort { code: crate::policy::abort_codes::STORE_BOUNDS });
    f.push(MInst::Label(ok2));
    f.push(MInst::Label(mid)); // hostile landing pad
    f.real(Inst::Pop { reg: Reg::RAX });
    f.real(Inst::Pop { reg: Reg::RBX });
    f.real(Inst::Store { mem, src: Reg::RAX });
    f.real(Inst::Halt);
    let obj =
        produce_from_mir(&mir_program(vec![f], vec![]), &PolicySet::none()).expect("assembles");
    Attack {
        name: "jump-over-guard",
        description: "direct branch into the interior of a P1 annotation",
        binary: obj,
        expected: Expected::VerifierReject,
    }
}

/// A return-address smash: an in-bounds, correctly guarded store that
/// overwrites the caller's return address on the stack. The store guard
/// passes (the stack is writable data) — the shadow-stack epilogue catches
/// the corruption at `ret`.
#[must_use]
pub fn return_address_smash() -> Attack {
    let mut victim = MFunction::new("victim");
    victim.real(Inst::Push { reg: Reg::RBP });
    victim.real(Inst::MovRR { dst: Reg::RBP, src: Reg::RSP });
    victim.real(Inst::MovRI { dst: Reg::RAX, imm: 0xDEAD });
    // Return address sits at [rbp+8] after the frame setup.
    victim.real(Inst::Store { mem: MemOperand::base_disp(Reg::RBP, 8), src: Reg::RAX });
    victim.real(Inst::MovRR { dst: Reg::RSP, src: Reg::RBP });
    victim.real(Inst::Pop { reg: Reg::RBP });
    victim.push(MInst::Ret);
    let mir = mir_program(vec![start_calling("victim"), victim], vec![]);
    let obj = produce_from_mir(&mir, &PolicySet::full()).expect("assembles");
    Attack {
        name: "return-address-smash",
        description: "guarded store overwrites the return address; shadow stack detects",
        binary: obj,
        expected: Expected::RuntimeAbort(crate::policy::abort_codes::CFI_RETURN),
    }
}

/// An indirect call with an out-of-range branch-table index: the P5 bounds
/// check aborts before any control transfer.
#[must_use]
pub fn indirect_call_bad_index() -> Attack {
    let mut helper = MFunction::new("helper");
    helper.real(Inst::Push { reg: Reg::RBP });
    helper.real(Inst::MovRR { dst: Reg::RBP, src: Reg::RSP });
    helper.real(Inst::MovRR { dst: Reg::RSP, src: Reg::RBP });
    helper.real(Inst::Pop { reg: Reg::RBP });
    helper.push(MInst::Ret);
    let mut main = MFunction::new("__start");
    main.real(Inst::MovRI { dst: Reg::R10, imm: 99 }); // only 1 table entry
    main.push(MInst::CallReg(Reg::R10));
    main.real(Inst::Halt);
    let mir = mir_program(vec![main, helper], vec!["helper".into()]);
    let obj = produce_from_mir(&mir, &PolicySet::full()).expect("assembles");
    Attack {
        name: "indirect-call-bad-index",
        description: "indirect call with branch-table index 99 of 1",
        binary: obj,
        expected: Expected::RuntimeAbort(crate::policy::abort_codes::CFI_FORWARD),
    }
}

/// A stack pivot: `rsp` is pointed at untrusted memory so subsequent spills
/// would leak. The P2 annotation right after the write aborts.
#[must_use]
pub fn rsp_pivot() -> Attack {
    let mut main = MFunction::new("__start");
    main.real(Inst::MovRI { dst: Reg::RAX, imm: 0x500 });
    main.real(Inst::MovRR { dst: Reg::RSP, src: Reg::RAX });
    main.real(Inst::Push { reg: Reg::RBX }); // would write to 0x4F8
    main.real(Inst::Halt);
    let obj =
        produce_from_mir(&mir_program(vec![main], vec![]), &PolicySet::full()).expect("assembles");
    Attack {
        name: "rsp-pivot",
        description: "rsp redirected to untrusted memory; P2 aborts after the write",
        binary: obj,
        expected: Expected::RuntimeAbort(crate::policy::abort_codes::RSP_BOUNDS),
    }
}

/// Self-modifying code: a (guarded) store aimed at the program's own RWX
/// code pages. Page permissions cannot stop it under SGXv1 — the software
/// DEP bounds do (P4 via the P1 window).
#[must_use]
pub fn self_modifying_code() -> Attack {
    let mut victim = MFunction::new("victim");
    victim.real(Inst::Push { reg: Reg::RBP });
    victim.real(Inst::MovRR { dst: Reg::RBP, src: Reg::RSP });
    victim.real(Inst::MovRR { dst: Reg::RSP, src: Reg::RBP });
    victim.real(Inst::Pop { reg: Reg::RBP });
    victim.push(MInst::Ret);
    let mut main = MFunction::new("__start");
    // Address of victim's code, resolved by the in-enclave loader.
    main.push(MInst::LoadSymAddr { dst: Reg::RBX, symbol: "victim".into(), addend: 0 });
    main.real(Inst::MovRI { dst: Reg::RAX, imm: 0x0101_0101 });
    main.real(Inst::Store { mem: MemOperand::base_disp(Reg::RBX, 0), src: Reg::RAX });
    main.real(Inst::Halt);
    let mir = mir_program(vec![main, victim], vec![]);
    let obj = produce_from_mir(&mir, &PolicySet::full()).expect("assembles");
    Attack {
        name: "self-modifying-code",
        description: "guarded store targets the RWX code window (software DEP)",
        binary: obj,
        expected: Expected::RuntimeAbort(crate::policy::abort_codes::STORE_BOUNDS),
    }
}

/// A store targeting the bootstrap enclave's security-critical data (the
/// shadow-stack page) — P3 via the same window bounds.
#[must_use]
pub fn critical_data_overwrite() -> Attack {
    let mut main = MFunction::new("__start");
    // The shadow stack lives below the code window; aim just below the
    // store window's lower bound. The producer cannot know absolute
    // addresses, but `__io` (first data symbol) minus a large offset lands
    // below the heap reliably.
    main.push(MInst::LoadSymAddr { dst: Reg::RBX, symbol: "__trap".into(), addend: -4096 });
    main.real(Inst::MovRI { dst: Reg::RAX, imm: 0x666 });
    main.real(Inst::Store { mem: MemOperand::base_disp(Reg::RBX, 0), src: Reg::RAX });
    main.real(Inst::Halt);
    let mut mir = mir_program(vec![main], vec![]);
    mir.data.push(deflection_lang::mir::DataDef { name: "__trap".into(), size: 8, init: None });
    let obj = produce_from_mir(&mir, &PolicySet::full()).expect("assembles");
    Attack {
        name: "critical-data-overwrite",
        description: "guarded store aimed below the data window (critical pages)",
        binary: obj,
        expected: Expected::RuntimeAbort(crate::policy::abort_codes::STORE_BOUNDS),
    }
}

/// A raw indirect jump that bypasses the branch table entirely.
#[must_use]
pub fn raw_indirect_jump() -> Attack {
    let mut main = MFunction::new("__start");
    main.real(Inst::MovRI { dst: Reg::RAX, imm: 0x1234_5678 });
    main.real(Inst::JmpInd { reg: Reg::RAX });
    main.real(Inst::Halt);
    let obj =
        produce_from_mir(&mir_program(vec![main], vec![]), &PolicySet::none()).expect("assembles");
    Attack {
        name: "raw-indirect-jump",
        description: "indirect jump not lowered through the branch table",
        binary: obj,
        expected: Expected::VerifierReject,
    }
}

/// A `ret` without the shadow-stack epilogue in a binary claiming full
/// instrumentation elsewhere.
#[must_use]
pub fn bare_ret() -> Attack {
    let mut victim = MFunction::new("victim");
    victim.push(MInst::Ret); // no epilogue, no prologue
    let mir = mir_program(vec![start_calling("victim"), victim], vec![]);
    // Instrument only the entry (simulating a producer that "forgets" one
    // function): run the honest pass, then splice the bare function back.
    let honest = instrument(&mir, &PolicySet::p1_p5());
    let mut functions = honest.functions.clone();
    let mut bare = MFunction::new("victim");
    bare.push(MInst::Ret);
    functions[1] = bare;
    let spliced = MirProgram {
        functions,
        data: honest.data.clone(),
        entry: honest.entry.clone(),
        indirect_targets: honest.indirect_targets.clone(),
    };
    let obj = produce_from_mir(&spliced, &PolicySet::none()).expect("assembles");
    Attack {
        name: "bare-ret",
        description: "function without shadow-stack prologue/epilogue",
        binary: obj,
        expected: Expected::VerifierReject,
    }
}

/// A frame-pointer hijack: `rbp` is pointed outside the stack so that
/// "frame-local" stores (exempt from P1 guards) would write through it.
/// The verifier's rbp-discipline rule rejects the binary outright.
#[must_use]
pub fn rbp_hijack() -> Attack {
    let mut main = MFunction::new("__start");
    main.real(Inst::MovRI { dst: Reg::RBP, imm: 0x600 }); // untrusted memory
    main.real(Inst::MovRI { dst: Reg::RAX, imm: 0x5EC2E7 });
    // Looks like an innocent frame store, would leak through hijacked rbp.
    main.real(Inst::Store { mem: MemOperand::base_disp(Reg::RBP, -8), src: Reg::RAX });
    main.real(Inst::Halt);
    let obj =
        produce_from_mir(&mir_program(vec![main], vec![]), &PolicySet::none()).expect("assembles");
    Attack {
        name: "rbp-hijack",
        description: "rbp loaded with an untrusted address to abuse the frame-store exemption",
        binary: obj,
        expected: Expected::VerifierReject,
    }
}

/// A store pretending to be frame-local but displaced past the guard page
/// (beyond `FRAME_STORE_LIMIT`), without a guard annotation.
#[must_use]
pub fn oversized_frame_store() -> Attack {
    let mut main = MFunction::new("__start");
    main.real(Inst::Push { reg: Reg::RBP });
    main.real(Inst::MovRR { dst: Reg::RBP, src: Reg::RSP });
    main.real(Inst::MovRI { dst: Reg::RAX, imm: 1 });
    // -8192 reaches past the guard page below the stack.
    main.real(Inst::Store { mem: MemOperand::base_disp(Reg::RBP, -8192), src: Reg::RAX });
    main.real(Inst::Halt);
    let obj =
        produce_from_mir(&mir_program(vec![main], vec![]), &PolicySet::none()).expect("assembles");
    Attack {
        name: "oversized-frame-store",
        description: "unguarded rbp-relative store displaced beyond the guard page",
        binary: obj,
        expected: Expected::VerifierReject,
    }
}

/// Elision exploit: an unguarded store whose address interval *widens* —
/// the index grows without bound around an unconditional back edge, so no
/// finite range covers it. A lazy verifier that trusted the first-iteration
/// address would accept; the abstract interpretation must widen to ⊤ and
/// reject the missing guard.
#[must_use]
pub fn elision_widened_store() -> Attack {
    let mut main = MFunction::new("__start");
    let head = main.new_label();
    main.push(MInst::LoadSymAddr { dst: Reg::RBX, symbol: "__trap".into(), addend: 0 });
    main.real(Inst::MovRI { dst: Reg::RAX, imm: 0x5EC2E7 });
    main.push(MInst::Label(head));
    // In-window on iteration one, out of the window eventually.
    main.real(Inst::Store { mem: MemOperand::base_disp(Reg::RBX, 0), src: Reg::RAX });
    main.real(Inst::AluRI { op: AluOp::Add, dst: Reg::RBX, imm: 4096 });
    main.push(MInst::Jmp(head));
    let mut mir = mir_program(vec![main], vec![]);
    mir.data.push(deflection_lang::mir::DataDef { name: "__trap".into(), size: 8, init: None });
    // Fully instrument, then strip exactly the store's guard (site 0) the
    // way a malicious producer hoping for elision acceptance would.
    let obj = produce_stripped_mir(
        &mir,
        &PolicySet::full().with_elision(),
        &HashSet::from([0]),
        &HashSet::new(),
    )
    .expect("assembles");
    Attack {
        name: "elision-widened-store",
        description: "unguarded store whose index widens past the store window in a loop",
        binary: obj,
        expected: Expected::VerifierReject,
    }
}

/// Elision exploit: the stored-through pointer is safe along the *direct*
/// call path but poisoned along a branch-table *indirect* path to the same
/// function. A verifier that only followed direct edges would prove the
/// store safe; the analysis joins both incoming edges and must reject.
#[must_use]
pub fn elision_indirect_edge_store() -> Attack {
    let mut victim = MFunction::new("victim");
    victim.real(Inst::Push { reg: Reg::RBP });
    victim.real(Inst::MovRR { dst: Reg::RBP, src: Reg::RSP });
    // Store through the caller-controlled pointer in rdx — guard stripped.
    victim.real(Inst::Store { mem: MemOperand::base_disp(Reg::RDX, 0), src: Reg::RAX });
    victim.real(Inst::MovRR { dst: Reg::RSP, src: Reg::RBP });
    victim.real(Inst::Pop { reg: Reg::RBP });
    victim.push(MInst::Ret);
    let mut main = MFunction::new("__start");
    // Direct path: a pointer the analysis can prove in-window.
    main.push(MInst::LoadSymAddr { dst: Reg::RDX, symbol: "__trap".into(), addend: 0 });
    main.push(MInst::CallSym("victim".into()));
    // Indirect path through the sealed branch table, pointer poisoned.
    main.real(Inst::MovRI { dst: Reg::RDX, imm: 0x100 });
    main.real(Inst::MovRI { dst: Reg::R10, imm: 0 }); // table index of victim
    main.push(MInst::CallReg(Reg::R10));
    main.real(Inst::Halt);
    let mut mir = mir_program(vec![main, victim], vec!["victim".into()]);
    mir.data.push(deflection_lang::mir::DataDef { name: "__trap".into(), size: 8, init: None });
    let obj = produce_stripped_mir(
        &mir,
        &PolicySet::full().with_elision(),
        &HashSet::from([0]),
        &HashSet::new(),
    )
    .expect("assembles");
    Attack {
        name: "elision-indirect-edge-store",
        description: "store safe on the direct path, poisoned via a branch-table edge",
        binary: obj,
        expected: Expected::VerifierReject,
    }
}

/// Elision exploit: a guard-less stack pivot. The producer strips the P2
/// annotation of an `rsp` write whose target is a *constant outside the
/// stack window*, then relies on the frame-store exemption (rbp tracks the
/// pivoted rsp) to smuggle writes. The verifier's own `rsp` range proof
/// must fail and reject the missing annotation.
#[must_use]
pub fn elision_rsp_pivot() -> Attack {
    let mut main = MFunction::new("__start");
    main.real(Inst::MovRI { dst: Reg::RAX, imm: 0x500 });
    main.real(Inst::MovRR { dst: Reg::RSP, src: Reg::RAX }); // P2 site 0, stripped
                                                             // rbp/rsp confusion: adopt the pivoted rsp as a "frame" so rbp-relative
                                                             // stores would look exempt from P1.
    main.real(Inst::Push { reg: Reg::RBP });
    main.real(Inst::MovRR { dst: Reg::RBP, src: Reg::RSP });
    main.real(Inst::MovRI { dst: Reg::RAX, imm: 0x5EC2E7 });
    main.real(Inst::Store { mem: MemOperand::base_disp(Reg::RBP, -8), src: Reg::RAX });
    main.real(Inst::Halt);
    let mir = mir_program(vec![main], vec![]);
    let obj = produce_stripped_mir(
        &mir,
        &PolicySet::full().with_elision(),
        &HashSet::new(),
        &HashSet::from([0]),
    )
    .expect("assembles");
    Attack {
        name: "elision-rsp-pivot",
        description: "stripped P2 guard on an rsp write provably outside the stack window",
        binary: obj,
        expected: Expected::VerifierReject,
    }
}

/// Elision exploit: a counted loop whose bound is off by one. The store
/// walks a window-sized table from a base chosen so the *correct* bound
/// (64 iterations) would stay inside the P1 window — the producer ships
/// the loop with bound 65 and no guard, betting the verifier's interval
/// only checks the first iteration. Branch refinement bounds the index at
/// `[0, 64]`, so the last iteration's address provably crosses `store_hi`
/// and the analysis must reject.
#[must_use]
pub fn elision_off_by_one_bound() -> Attack {
    let layout = EnclaveLayout::new(MemConfig::small());
    let window = layout.store_window();
    let base = window.end - 64 * 8; // 64 slots fit exactly; slot 65 does not
    let mut main = MFunction::new("__start");
    let head = main.new_label();
    main.real(Inst::MovRI { dst: Reg::RBX, imm: base });
    main.real(Inst::MovRI { dst: Reg::RAX, imm: 0 });
    main.real(Inst::MovRI { dst: Reg::RCX, imm: 0x5EC2E7 });
    main.push(MInst::Label(head));
    // table[i] — guard stripped (site 0).
    main.real(Inst::Store { mem: MemOperand::base_index(Reg::RBX, Reg::RAX, 8, 0), src: Reg::RCX });
    main.real(Inst::AluRI { op: AluOp::Add, dst: Reg::RAX, imm: 1 });
    main.real(Inst::CmpRI { lhs: Reg::RAX, imm: 65 });
    main.push(MInst::Jcc(CondCode::L, head));
    main.real(Inst::Halt);
    let mir = mir_program(vec![main], vec![]);
    let obj = produce_stripped_mir(
        &mir,
        &PolicySet::full().with_elision(),
        &HashSet::from([0]),
        &HashSet::new(),
    )
    .expect("assembles");
    Attack {
        name: "elision-off-by-one-bound",
        description: "counted-loop store whose bound overshoots the P1 window by one slot",
        binary: obj,
        expected: Expected::VerifierReject,
    }
}

/// Elision exploit: a counter the analysis widens to `+∞` and can never
/// narrow back — the loop exit tests memory (`cmpmem`), which leaves no
/// register snapshot for branch refinement to re-bound. The post-loop
/// store indexes by the widened counter without a guard; a verifier that
/// "narrowed" by trusting the exit condition's syntax would accept, the
/// sound one must keep `+∞` and reject.
#[must_use]
pub fn elision_unnarrowed_counter() -> Attack {
    let layout = EnclaveLayout::new(MemConfig::small());
    let mut main = MFunction::new("__start");
    let head = main.new_label();
    main.real(Inst::MovRI { dst: Reg::RBX, imm: layout.store_window().start });
    main.real(Inst::MovRI { dst: Reg::RAX, imm: 0 });
    main.real(Inst::MovRI { dst: Reg::RCX, imm: 0x5EC2E7 });
    main.push(MInst::Label(head));
    main.real(Inst::AluRI { op: AluOp::Add, dst: Reg::RAX, imm: 8 });
    // Exit condition through memory: flags carry no refinable snapshot.
    main.real(Inst::CmpMem { reg: Reg::RAX, mem: MemOperand::base_disp(Reg::RBX, 0) });
    main.push(MInst::Jcc(CondCode::Ne, head));
    // window[rax] with rax ∈ [8, +∞) — guard stripped (site 0).
    main.real(Inst::Store { mem: MemOperand::base_index(Reg::RBX, Reg::RAX, 1, 0), src: Reg::RCX });
    main.real(Inst::Halt);
    let mir = mir_program(vec![main], vec![]);
    let obj = produce_stripped_mir(
        &mir,
        &PolicySet::full().with_elision(),
        &HashSet::from([0]),
        &HashSet::new(),
    )
    .expect("assembles");
    Attack {
        name: "elision-unnarrowed-counter",
        description: "store indexed by a widened counter no branch refinement can re-bound",
        binary: obj,
        expected: Expected::VerifierReject,
    }
}

/// Elision exploit: the base pointer of the target store is spilled to a
/// frame slot, and between the spill and the reload sits a *guarded* store
/// through an unknown pointer — legal anywhere in the P1 window, the
/// caller's stack included, so it may overwrite the spilled base. A
/// verifier that kept the slot fact across the aliasing store would prove
/// the reloaded base safe; the aliasing rule must havoc the slot and
/// reject the stripped guard.
#[must_use]
pub fn elision_aliased_slot_store() -> Attack {
    let layout = EnclaveLayout::new(MemConfig::small());
    let mut main = MFunction::new("__start");
    main.real(Inst::Push { reg: Reg::RBP });
    main.real(Inst::MovRR { dst: Reg::RBP, src: Reg::RSP });
    // Spill an in-window pointer to the frame.
    main.real(Inst::MovRI { dst: Reg::RBX, imm: layout.store_window().start });
    main.real(Inst::Store { mem: MemOperand::base_disp(Reg::RBP, -8), src: Reg::RBX });
    // A guarded store through a pointer loaded from data: the guard makes
    // any in-window address legal — including the spill slot above.
    main.push(MInst::LoadSymAddr { dst: Reg::RCX, symbol: "__cell".into(), addend: 0 });
    main.real(Inst::Load { dst: Reg::RCX, mem: MemOperand::base_disp(Reg::RCX, 0) });
    main.real(Inst::MovRI { dst: Reg::RAX, imm: 0x5EC2E7 });
    main.real(Inst::Store { mem: MemOperand::base_disp(Reg::RCX, 0), src: Reg::RAX }); // site 0, kept
                                                                                       // Reload the (possibly clobbered) base and store through it — site 1,
                                                                                       // stripped.
    main.real(Inst::Load { dst: Reg::RDX, mem: MemOperand::base_disp(Reg::RBP, -8) });
    main.real(Inst::Store { mem: MemOperand::base_disp(Reg::RDX, 0), src: Reg::RAX });
    main.real(Inst::Halt);
    let mut mir = mir_program(vec![main], vec![]);
    mir.data.push(deflection_lang::mir::DataDef { name: "__cell".into(), size: 8, init: None });
    let obj = produce_stripped_mir(
        &mir,
        &PolicySet::full().with_elision(),
        &HashSet::from([1]),
        &HashSet::new(),
    )
    .expect("assembles");
    Attack {
        name: "elision-aliased-slot-store",
        description: "spilled base pointer clobbered by an aliasing guarded store, then reloaded",
        binary: obj,
        expected: Expected::VerifierReject,
    }
}

/// Elision exploit: a loop counter and its bound both live in frame slots,
/// and the loop body makes a call. The callee may legally rewrite the
/// caller's frame (its guarded stores reach the whole P1 window), so the
/// counter reloaded after the call is unbounded and the relational fact
/// `i < bound` learned at the loop header no longer covers it. A verifier
/// that kept slot facts or difference bounds across the call-havoc edge
/// would accept the stripped in-loop store; the sound one must reject.
#[must_use]
pub fn elision_call_clobbered_bound() -> Attack {
    let layout = EnclaveLayout::new(MemConfig::small());
    let mut clobber = MFunction::new("clobber");
    clobber.real(Inst::Push { reg: Reg::RBP });
    clobber.real(Inst::MovRR { dst: Reg::RBP, src: Reg::RSP });
    clobber.real(Inst::MovRR { dst: Reg::RSP, src: Reg::RBP });
    clobber.real(Inst::Pop { reg: Reg::RBP });
    clobber.push(MInst::Ret);
    let mut main = MFunction::new("__start");
    let head = main.new_label();
    let exit = main.new_label();
    main.real(Inst::Push { reg: Reg::RBP });
    main.real(Inst::MovRR { dst: Reg::RBP, src: Reg::RSP });
    main.real(Inst::MovRI { dst: Reg::RAX, imm: 0 });
    main.real(Inst::Store { mem: MemOperand::base_disp(Reg::RBP, -8), src: Reg::RAX });
    main.real(Inst::MovRI { dst: Reg::RBX, imm: 64 });
    main.real(Inst::Store { mem: MemOperand::base_disp(Reg::RBP, -16), src: Reg::RBX });
    main.push(MInst::Label(head));
    main.real(Inst::Load { dst: Reg::RAX, mem: MemOperand::base_disp(Reg::RBP, -8) });
    main.real(Inst::Load { dst: Reg::RBX, mem: MemOperand::base_disp(Reg::RBP, -16) });
    main.real(Inst::CmpRR { lhs: Reg::RAX, rhs: Reg::RBX });
    main.push(MInst::Jcc(CondCode::Ge, exit));
    // The call may clobber both slots through guarded stores.
    main.push(MInst::CallSym("clobber".into()));
    main.real(Inst::MovRI { dst: Reg::RBX, imm: layout.store_window().start });
    main.real(Inst::Load { dst: Reg::RAX, mem: MemOperand::base_disp(Reg::RBP, -8) });
    // table[i] with post-call i — guard stripped (site 0).
    main.real(Inst::Store { mem: MemOperand::base_index(Reg::RBX, Reg::RAX, 8, 0), src: Reg::RAX });
    main.real(Inst::Load { dst: Reg::RAX, mem: MemOperand::base_disp(Reg::RBP, -8) });
    main.real(Inst::AluRI { op: AluOp::Add, dst: Reg::RAX, imm: 1 });
    main.real(Inst::Store { mem: MemOperand::base_disp(Reg::RBP, -8), src: Reg::RAX });
    main.push(MInst::Jmp(head));
    main.push(MInst::Label(exit));
    main.real(Inst::Halt);
    let mir = mir_program(vec![main, clobber], vec![]);
    let obj = produce_stripped_mir(
        &mir,
        &PolicySet::full().with_elision(),
        &HashSet::from([0]),
        &HashSet::new(),
    )
    .expect("assembles");
    Attack {
        name: "elision-call-clobbered-bound",
        description: "in-loop store indexed by a counter whose slot a call may rewrite",
        binary: obj,
        expected: Expected::VerifierReject,
    }
}

/// Attacks specific to guard elision: binaries that ship *without* certain
/// guards, hoping the eliding verifier's analysis accepts them. Drive these
/// under a `PolicySet::full().with_elision()` manifest.
#[must_use]
pub fn elision_corpus() -> Vec<Attack> {
    vec![
        elision_widened_store(),
        elision_indirect_edge_store(),
        elision_rsp_pivot(),
        elision_off_by_one_bound(),
        elision_unnarrowed_counter(),
        elision_aliased_slot_store(),
        elision_call_clobbered_bound(),
    ]
}

/// The complete corpus.
#[must_use]
pub fn corpus() -> Vec<Attack> {
    vec![
        raw_out_of_enclave_store(),
        wrong_operand_guard(),
        jump_over_guard(),
        return_address_smash(),
        indirect_call_bad_index(),
        rsp_pivot(),
        self_modifying_code(),
        critical_data_overwrite(),
        raw_indirect_jump(),
        bare_ret(),
        rbp_hijack(),
        oversized_frame_store(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consumer::{install, InstallError};
    use crate::policy::Manifest;
    use crate::runtime::BootstrapEnclave;
    use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};
    use deflection_sgx_sim::mem::Memory;
    use deflection_sgx_sim::vm::RunExit;

    #[test]
    fn every_attack_is_contained() {
        let manifest = Manifest::ccaas(); // full policy
        for attack in corpus() {
            let binary = attack.binary.serialize();
            match attack.expected {
                Expected::VerifierReject => {
                    let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
                    let res = install(&binary, &manifest, &mut mem);
                    assert!(
                        matches!(res, Err(InstallError::Verify(_))),
                        "{}: expected verifier rejection, got {res:?}",
                        attack.name
                    );
                }
                Expected::RuntimeAbort(code) => {
                    let mut enclave = BootstrapEnclave::new(
                        EnclaveLayout::new(MemConfig::small()),
                        manifest.clone(),
                    );
                    enclave
                        .install_plain(&binary)
                        .unwrap_or_else(|e| panic!("{}: must install: {e}", attack.name));
                    let report = enclave.run(1_000_000).unwrap();
                    assert_eq!(
                        report.exit,
                        RunExit::PolicyAbort { code },
                        "{}: wrong containment",
                        attack.name
                    );
                    assert_eq!(
                        report.untrusted_writes, 0,
                        "{}: attack leaked bytes before containment",
                        attack.name
                    );
                }
            }
        }
    }

    #[test]
    fn every_elision_attack_is_rejected() {
        // Even with guard elision enabled, the verifier's own analysis must
        // refuse to bless any of these stripped binaries.
        let mut manifest = Manifest::ccaas();
        manifest.policy = PolicySet::full().with_elision();
        for attack in elision_corpus() {
            assert_eq!(attack.expected, Expected::VerifierReject, "{}", attack.name);
            let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
            let res = install(&attack.binary.serialize(), &manifest, &mut mem);
            // Not just any rejection: the analysis itself must refuse the
            // stripped site, proving the elision path is what's tested.
            assert!(
                matches!(
                    res,
                    Err(InstallError::Verify(
                        crate::consumer::VerifyError::UnguardedStore { .. }
                            | crate::consumer::VerifyError::UnguardedRspWrite { .. }
                    ))
                ),
                "{}: expected an unguarded-site rejection, got {res:?}",
                attack.name
            );
        }
    }

    #[test]
    fn elision_attacks_also_rejected_without_elision() {
        // Sanity: under the strict policy the same binaries are rejected by
        // the plain structural rules.
        let manifest = Manifest::ccaas();
        for attack in elision_corpus() {
            let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
            let res = install(&attack.binary.serialize(), &manifest, &mut mem);
            assert!(
                matches!(res, Err(InstallError::Verify(_))),
                "{}: expected verifier rejection, got {res:?}",
                attack.name
            );
        }
    }

    #[test]
    fn corpus_is_nontrivial() {
        let c = corpus();
        assert!(c.len() >= 10);
        let rejects = c.iter().filter(|a| a.expected == Expected::VerifierReject).count();
        let aborts = c.len() - rejects;
        assert!(rejects >= 4, "need static rejections");
        assert!(aborts >= 4, "need runtime containments");
    }
}
