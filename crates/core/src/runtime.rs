//! The bootstrap enclave runtime: ECall surface, P0 OCall wrappers and the
//! execution loop.
//!
//! This is the public, attestable software layer of the DEFLECTION model
//! (paper Section III-A): it receives the target binary and the user data
//! over role-separated encrypted channels, drives the consumer pipeline
//! (load → verify → rewrite), and mediates everything that crosses the
//! enclave boundary at runtime. The P0 policy lives here:
//!
//! * only manifest-listed OCalls are serviced — anything else faults;
//! * `send` encrypts with the data owner's session key and pads every
//!   record to a fixed length (entropy control), under a per-run budget
//!   and an optional lifetime cap tracked by a never-reset ledger;
//! * `recv` only ever exposes data the owner provisioned.

use crate::audit::{AuditKind, AuditRing, AUDIT_EXPORT_LEN};
use crate::consumer::{install, Bindings, InstallError, Installed};
use crate::policy::Manifest;
use crate::sealed::UnsealError;
use deflection_crypto::aead::ChaCha20Poly1305;
use deflection_crypto::sha256::sha256;
use deflection_crypto::CryptoError;
use deflection_isa::{OcallCode, Reg};
use deflection_sgx_sim::aex::AexInjector;
use deflection_sgx_sim::coloc::{ColocationTester, PROFILES};
use deflection_sgx_sim::cpu::Cpu;
use deflection_sgx_sim::layout::EnclaveLayout;
use deflection_sgx_sim::measure::{measure_enclave, Measurement};
use deflection_sgx_sim::mem::Memory;
use deflection_sgx_sim::vm::{ExecStats, RunExit, Vm, VmHost};
use deflection_sgx_sim::Fault;
use deflection_telemetry::METRICS;
use std::collections::VecDeque;

/// The public consumer image: stands in for the loader/verifier binary whose
/// hash anchors the remote attestation (both parties inspect and agree on
/// this code, Section III-A).
pub const CONSUMER_IMAGE: &[u8] = b"deflection-bootstrap-consumer image v1 \
    {loader,verifier,imm-rewriter,p0-wrappers}";

/// AAD binding every outgoing record to the P0 channel.
const RECORD_AAD: &[u8] = b"deflection-p0-record";

/// Where the I/O buffers were placed in the heap.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IoPlan {
    io_ctl_va: u64,
    input_base: u64,
    input_cap: u64,
    output_base: u64,
    output_cap: u64,
}

/// Runtime-side state the VM host callbacks mutate.
#[derive(Debug)]
struct HostState {
    manifest: Manifest,
    io: Option<IoPlan>,
    owner_key: Option<[u8; 32]>,
    inbox: VecDeque<Vec<u8>>,
    /// Sealed records produced by `send` (ciphertext, fixed length).
    outbox: Vec<Vec<u8>>,
    /// Plaintext bytes sent during the current run (reset by `run()`).
    sent_bytes: usize,
    /// Plaintext bytes sent over the enclave's whole lifetime — never
    /// reset, carried across pool respawns, and capped by the manifest's
    /// optional `lifetime_output_budget`.
    lifetime_sent_bytes: u64,
    /// The record-nonce channel id (a pool worker's slot index); see
    /// [`record_nonce`].
    channel: u32,
    send_nonce: u64,
    /// Policy-relevant events, retained in-enclave and exported only as
    /// sealed, fixed-size, budget-charged records (see [`crate::audit`]).
    audit: AuditRing,
    log_values: Vec<i64>,
    clock: u64,
    coloc: ColocationTester,
}

impl HostState {
    fn load_input(&mut self, mem: &mut Memory, data: &[u8]) -> Result<u64, Fault> {
        let io = self.io.expect("io plan set at install");
        let len = (data.len() as u64).min(io.input_cap);
        mem.poke_bytes(io.input_base, &data[..len as usize])?;
        mem.poke_u64(io.io_ctl_va + 8, len)?;
        Ok(len)
    }
}

impl VmHost for HostState {
    fn ocall(&mut self, code: u8, cpu: &mut Cpu, mem: &mut Memory) -> Result<(), Fault> {
        if !self.manifest.allows(code) {
            return Err(Fault::OcallDenied { code });
        }
        match OcallCode::from_u8(code) {
            Some(OcallCode::Send) => {
                let io = self.io.ok_or(Fault::OcallFailed {
                    code,
                    reason: "program has no I/O block".into(),
                })?;
                let ptr = cpu.get(Reg::RDI);
                let len = cpu.get(Reg::RSI) as usize;
                if ptr != io.output_base {
                    return Err(Fault::OcallFailed {
                        code,
                        reason: "send pointer is not the staging buffer".into(),
                    });
                }
                if len > io.output_cap as usize || len > self.manifest.output_record_len {
                    return Err(Fault::OcallFailed {
                        code,
                        reason: "send length exceeds the record size".into(),
                    });
                }
                // The budget is per *run*: `sent_bytes` is reset by `run()`
                // so a long-lived worker serving many small requests never
                // exhausts it, while any single run is still capped.
                // No telemetry here: a counter bumped mid-run would leak the
                // refusal before the ECall returns. `run()` counts the
                // exhaustion at the ECall boundary, off the fault reason the
                // host sees in the report anyway.
                if self.sent_bytes + len > self.manifest.output_budget {
                    self.audit.record(AuditKind::RunBudgetExhausted, len as u64);
                    return Err(Fault::OcallFailed {
                        code,
                        reason: "output entropy budget exhausted".into(),
                    });
                }
                // The lifetime ledger never resets: when the manifest caps
                // it, cumulative leakage across every run this instance
                // (and, via pool respawns, its slot) ever serves stays
                // bounded.
                if let Some(cap) = self.manifest.lifetime_output_budget {
                    if self.lifetime_sent_bytes + len as u64 > cap {
                        self.audit.record(AuditKind::LifetimeBudgetExhausted, len as u64);
                        return Err(Fault::OcallFailed {
                            code,
                            reason: "lifetime output entropy budget exhausted".into(),
                        });
                    }
                }
                let Some(key) = self.owner_key else {
                    return Err(Fault::OcallFailed {
                        code,
                        reason: "no data-owner session".into(),
                    });
                };
                let plaintext = mem.peek_bytes(ptr, len)?.to_vec();
                self.outbox.push(seal_record(
                    &key,
                    self.channel,
                    self.send_nonce,
                    &plaintext,
                    self.manifest.output_record_len,
                ));
                self.send_nonce += 1;
                self.sent_bytes += len;
                self.lifetime_sent_bytes += len as u64;
                cpu.set(Reg::RAX, len as u64);
            }
            Some(OcallCode::Recv) => {
                let msg = self.inbox.pop_front();
                let len = match msg {
                    Some(data) => self.load_input(mem, &data)?,
                    None => 0,
                };
                cpu.set(Reg::RAX, len);
            }
            Some(OcallCode::Log) => {
                if self.log_values.len() < 1024 {
                    self.log_values.push(cpu.get(Reg::RDI) as i64);
                }
                cpu.set(Reg::RAX, 0);
            }
            Some(OcallCode::Clock) => {
                self.clock += 1;
                cpu.set(Reg::RAX, self.clock);
            }
            None => return Err(Fault::OcallDenied { code }),
        }
        Ok(())
    }

    fn aex_probe(&mut self) -> bool {
        self.coloc.probe()
    }
}

/// Seals one P0 record: `[u32 length][payload][zero padding]` padded to
/// `record_len`, AEAD-sealed under the owner session key with a
/// `(channel, counter)` nonce. Every record has identical ciphertext
/// length. `channel` is the sealing enclave's channel id (a pool worker's
/// slot index; `0` for a standalone enclave) — several enclaves may share
/// the owner session key, and distinct channels keep their nonce domains
/// disjoint.
#[must_use]
pub fn seal_record(
    key: &[u8; 32],
    channel: u32,
    counter: u64,
    payload: &[u8],
    record_len: usize,
) -> Vec<u8> {
    let mut plain = Vec::with_capacity(4 + record_len);
    plain.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    plain.extend_from_slice(payload);
    plain.resize(4 + record_len, 0);
    ChaCha20Poly1305::new(key).seal(&record_nonce(channel, counter), RECORD_AAD, &plain)
}

/// Opens a sealed P0 record (the data owner's side), returning the payload.
/// `channel` and `counter` must be the pair the record was sealed under
/// (the serving protocol carries both; a standalone enclave uses channel
/// `0` and counts records from `0`).
///
/// # Errors
///
/// Returns a [`CryptoError`] if the record fails authentication or is
/// structurally invalid.
pub fn open_record(
    key: &[u8; 32],
    channel: u32,
    counter: u64,
    sealed: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    let plain =
        ChaCha20Poly1305::new(key).open(&record_nonce(channel, counter), RECORD_AAD, sealed)?;
    if plain.len() < 4 {
        return Err(CryptoError::TruncatedCiphertext);
    }
    let len = u32::from_le_bytes(plain[..4].try_into().expect("checked")) as usize;
    if 4 + len > plain.len() {
        return Err(CryptoError::TruncatedCiphertext);
    }
    Ok(plain[4..4 + len].to_vec())
}

/// Builds the nonce for one outgoing record: `'S' ‖ channel (24-bit LE) ‖
/// counter (64-bit LE)`. The leading `'S'` keeps the domain disjoint from
/// the `'B'`/`'D'` delivery nonces under the same owner key; the channel
/// id keeps enclaves that share the owner session key (pool workers) from
/// ever colliding — each worker's counter runs in its own nonce lane, so
/// no `(key, nonce)` pair repeats pool-wide even though every counter
/// starts at 0.
fn record_nonce(channel: u32, counter: u64) -> [u8; 12] {
    debug_assert!(channel < MAX_CHANNELS, "channel id exceeds the 24-bit nonce field");
    let mut nonce = [0u8; 12];
    nonce[0] = b'S';
    nonce[1..4].copy_from_slice(&channel.to_le_bytes()[..3]);
    nonce[4..].copy_from_slice(&counter.to_le_bytes());
    nonce
}

/// Channel ids must fit the 24-bit field of `record_nonce`.
pub const MAX_CHANNELS: u32 = 1 << 24;

/// Everything a finished run reports back.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// How the program stopped.
    pub exit: RunExit,
    /// Instruction and event counters.
    pub stats: ExecStats,
    /// Sealed output records (for the data owner).
    pub records: Vec<Vec<u8>>,
    /// Count of stores that landed outside ELRANGE during the run — must be
    /// zero whenever the store-bounds policy is enforced.
    pub untrusted_writes: u64,
    /// Instructions of idle padding added by the time-blur extension
    /// (paper Section VII); zero when blurring is off.
    pub blur_padding: u64,
}

/// The bootstrap enclave (paper Fig. 1): public code layer hosting the
/// consumer pipeline and the P0 runtime.
#[derive(Debug)]
pub struct BootstrapEnclave {
    pub(crate) layout: EnclaveLayout,
    pub(crate) manifest: Manifest,
    pub(crate) vm: Option<Vm>,
    installed: Option<Installed>,
    host: HostState,
    provider_key: Option<[u8; 32]>,
    recv_nonce: u64,
    /// Whether a directly-loaded input message is waiting for the next run.
    direct_input_pending: bool,
    /// Whether the enclave instance was torn down (`SGX_ERROR_ENCLAVE_LOST`
    /// analogue); every ECall fails until a fresh enclave is built.
    lost: bool,
}

/// ECall-surface failures.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EcallError {
    /// Decryption/authentication of a delivered payload failed.
    Channel(CryptoError),
    /// No session key established for the required role.
    NoSession,
    /// The consumer pipeline rejected the binary.
    Install(InstallError),
    /// The heap cannot fit the I/O buffers next to the loaded data.
    NoRoomForIo,
    /// No binary installed yet.
    NotInstalled,
    /// A [`PreparedInstall`] was replayed into an enclave with a different
    /// measurement (layout or consumer image) than the one that captured it.
    PreparedMismatch,
    /// The enclave instance was torn down (the `SGX_ERROR_ENCLAVE_LOST`
    /// analogue: power transition, EPC eviction, or an injected chaos
    /// kill). Every ECall fails until a fresh enclave is built; a pool
    /// respawns the worker and retries the request.
    EnclaveLost,
    /// The pool worker is quarantined and its respawn budget is exhausted
    /// (or no prepared image is available to reinstall from).
    WorkerQuarantined,
    /// A sealed install blob was rejected on import.
    Unseal(UnsealError),
    /// An audit export was refused because the per-run or lifetime output
    /// budget cannot absorb the fixed-size record: the export fails closed
    /// and nothing leaves the enclave.
    AuditBudget,
}

impl std::fmt::Display for EcallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcallError::Channel(e) => write!(f, "channel failure: {e}"),
            EcallError::NoSession => write!(f, "no session established for this role"),
            EcallError::Install(e) => write!(f, "{e}"),
            EcallError::NoRoomForIo => write!(f, "heap cannot fit I/O buffers"),
            EcallError::NotInstalled => write!(f, "no target binary installed"),
            EcallError::PreparedMismatch => {
                write!(f, "prepared install was captured under a different measurement")
            }
            EcallError::EnclaveLost => {
                write!(f, "enclave instance lost; it must be rebuilt before further ecalls")
            }
            EcallError::WorkerQuarantined => {
                write!(f, "pool worker quarantined and respawn budget exhausted")
            }
            EcallError::Unseal(e) => write!(f, "sealed install rejected: {e}"),
            EcallError::AuditBudget => {
                write!(f, "audit export refused: output entropy budget exhausted")
            }
        }
    }
}

impl From<UnsealError> for EcallError {
    fn from(e: UnsealError) -> Self {
        EcallError::Unseal(e)
    }
}

impl std::error::Error for EcallError {}

impl From<InstallError> for EcallError {
    fn from(e: InstallError) -> Self {
        EcallError::Install(e)
    }
}

impl From<CryptoError> for EcallError {
    fn from(e: CryptoError) -> Self {
        EcallError::Channel(e)
    }
}

/// A captured post-verification install image, replayable into further
/// enclaves with the same measurement without re-running the consumer
/// pipeline.
///
/// # Why replay is sound
///
/// The consumer pipeline is a *deterministic* function of
/// `(consumer image, layout, manifest, binary)`: the loader, verifier and
/// rewriter consume no randomness, no clock and no ambient state, so two
/// enclaves with the same measurement (which hashes the consumer image and
/// the layout) given the same manifest and binary compute byte-identical
/// post-rewrite memory images. Replaying the captured image into such an
/// enclave therefore yields *exactly* the state its own pipeline would
/// have produced — verification happened, once, on an identical input.
/// [`BootstrapEnclave::install_replayed`] enforces the measurement match
/// and fails closed on any mismatch; the manifest is part of the pool's
/// construction, so a pool's workers are identical by construction.
#[derive(Debug, Clone)]
pub struct PreparedInstall {
    pub(crate) measurement: Measurement,
    pub(crate) code_hash: [u8; 32],
    pub(crate) mem: Memory,
    pub(crate) installed: Installed,
    pub(crate) io: Option<IoPlan>,
    /// The original serialized binary, kept so the image can be sealed and
    /// deterministically re-derived after a restart (`crate::sealed`).
    pub(crate) binary: Vec<u8>,
    /// SHA-256 of the capturing manifest's canonical JSON form; sealing
    /// binds the image to it so a restarted pool with a different manifest
    /// fails closed.
    pub(crate) manifest_digest: [u8; 32],
}

impl PreparedInstall {
    /// SHA-256 of the captured binary (the loader's code hash).
    #[must_use]
    pub fn code_hash(&self) -> [u8; 32] {
        self.code_hash
    }

    /// The measurement of the enclave that captured (or rebuilt) the image.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }
}

/// Digest of the manifest's canonical JSON form, as bound into sealed
/// install blobs.
#[must_use]
pub fn manifest_digest(manifest: &Manifest) -> [u8; 32] {
    sha256(manifest.to_json().as_bytes())
}

/// Places the I/O buffers in the free heap above the loaded image and arms
/// the program's `__io` control block. Deterministic in the
/// measurement-covered inputs, like the rest of the pipeline.
pub(crate) fn place_io(
    mem: &mut Memory,
    installed: &Installed,
    layout: &EnclaveLayout,
    manifest: &Manifest,
) -> Result<Option<IoPlan>, EcallError> {
    let input_base = (installed.program.data_end + 7) & !7;
    let output_base = input_base + manifest.input_capacity as u64;
    let end = output_base + manifest.output_capacity as u64;
    if end > layout.heap.end {
        return Err(EcallError::NoRoomForIo);
    }
    let io = installed.program.symbols.get("__io").map(|&io_ctl_va| IoPlan {
        io_ctl_va,
        input_base,
        input_cap: manifest.input_capacity as u64,
        output_base,
        output_cap: manifest.output_capacity as u64,
    });
    if let Some(plan) = &io {
        mem.poke_u64(plan.io_ctl_va, plan.input_base).expect("io block mapped");
        mem.poke_u64(plan.io_ctl_va + 8, 0).expect("io block mapped");
        mem.poke_u64(plan.io_ctl_va + 16, plan.output_base).expect("io block mapped");
        mem.poke_u64(plan.io_ctl_va + 24, plan.output_cap).expect("io block mapped");
    }
    Ok(io)
}

impl BootstrapEnclave {
    /// Initializes a bootstrap enclave over a fresh memory image.
    #[must_use]
    pub fn new(layout: EnclaveLayout, manifest: Manifest) -> Self {
        let host = HostState {
            manifest: manifest.clone(),
            io: None,
            owner_key: None,
            inbox: VecDeque::new(),
            outbox: Vec::new(),
            sent_bytes: 0,
            lifetime_sent_bytes: 0,
            channel: 0,
            send_nonce: 0,
            audit: AuditRing::new(),
            log_values: Vec::new(),
            clock: 0,
            coloc: ColocationTester::new(PROFILES[0], 0xD5F1),
        };
        BootstrapEnclave {
            layout,
            manifest,
            vm: None,
            installed: None,
            host,
            provider_key: None,
            recv_nonce: 0,
            direct_input_pending: false,
            lost: false,
        }
    }

    /// Simulates losing the enclave instance (power transition, EPC
    /// eviction, or an injected chaos kill): every subsequent ECall fails
    /// with [`EcallError::EnclaveLost`]. There is no way back — like the
    /// hardware, the instance must be rebuilt from scratch.
    pub fn mark_lost(&mut self) {
        self.lost = true;
    }

    /// Whether this instance was lost (see [`BootstrapEnclave::mark_lost`]).
    #[must_use]
    pub fn is_lost(&self) -> bool {
        self.lost
    }

    /// The next outgoing P0 record counter. Monotonic over the enclave's
    /// lifetime — it never resets, because a repeated `(channel, counter)`
    /// pair under the same owner session key would reuse an AEAD nonce.
    #[must_use]
    pub fn send_nonce(&self) -> u64 {
        self.host.send_nonce
    }

    /// Raises the outgoing record counter to at least `floor`. Used when a
    /// pool respawns a worker under the *same* owner session key: the fresh
    /// enclave inherits the dead worker's counter (and channel id) so no
    /// nonce is ever reused. The counter never moves backwards.
    pub fn resume_send_nonce(&mut self, floor: u64) {
        self.host.send_nonce = self.host.send_nonce.max(floor);
    }

    /// The record-nonce channel id (see `record_nonce`): `0` for a
    /// standalone enclave, the slot index for a pool worker.
    #[must_use]
    pub fn channel(&self) -> u32 {
        self.host.channel
    }

    /// Assigns the record-nonce channel id. A pool gives every worker slot
    /// a distinct channel so enclaves sharing the owner session key never
    /// collide on a `(key, nonce)` pair; respawned instances keep their
    /// slot's channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel` does not fit the nonce's 24-bit channel field.
    pub fn set_channel(&mut self, channel: u32) {
        assert!(channel < MAX_CHANNELS, "channel id exceeds the 24-bit nonce field");
        self.host.channel = channel;
    }

    /// Total plaintext bytes this instance has sent over its lifetime —
    /// the never-reset P0 entropy ledger backing the manifest's optional
    /// `lifetime_output_budget`.
    #[must_use]
    pub fn lifetime_sent_bytes(&self) -> u64 {
        self.host.lifetime_sent_bytes
    }

    /// Raises the lifetime output ledger to at least `floor`. Used when a
    /// pool respawns a worker slot: the fresh instance inherits the dead
    /// one's ledger, so the optional lifetime cap bounds the *slot's*
    /// cumulative leakage, not just one instance's. Never moves backwards.
    pub fn resume_lifetime_sent_bytes(&mut self, floor: u64) {
        self.host.lifetime_sent_bytes = self.host.lifetime_sent_bytes.max(floor);
    }

    /// The sequence number the next audit event will get — the slot's
    /// lifetime event count. Pools carry it across respawns (like the send
    /// nonce) so exported sequences never regress.
    #[must_use]
    pub fn audit_next_seq(&self) -> u64 {
        self.host.audit.next_seq()
    }

    /// Raises the audit sequence counter to at least `floor` (pool respawn
    /// carry-forward). Never moves backwards.
    pub fn resume_audit_seq(&mut self, floor: u64) {
        self.host.audit.resume_seq(floor);
    }

    /// `ecall_export_audit`: seals the audit ring for the data owner on
    /// this enclave's record-nonce channel. The export is an *output*: its
    /// fixed [`AUDIT_EXPORT_LEN`]-byte plaintext is charged against the
    /// per-run and lifetime output budgets exactly like a P0 record, and
    /// the call fails closed — leaking nothing — when either budget cannot
    /// absorb it. The sealed blob opens with
    /// [`crate::audit::open_audit_export`] under the `(channel, counter)`
    /// pair in force at export time.
    ///
    /// # Errors
    ///
    /// Fails when the instance is lost, no owner session exists, or a
    /// budget refuses the export ([`EcallError::AuditBudget`]).
    pub fn ecall_export_audit(&mut self) -> Result<Vec<u8>, EcallError> {
        if self.lost {
            return Err(EcallError::EnclaveLost);
        }
        let key = self.host.owner_key.ok_or(EcallError::NoSession)?;
        // The refusals below are counted in telemetry at this boundary:
        // `EcallError::AuditBudget` is itself returned to the host, so the
        // counter mirrors an already-visible fact.
        if self.host.sent_bytes + AUDIT_EXPORT_LEN > self.manifest.output_budget {
            self.host.audit.record(AuditKind::RunBudgetExhausted, AUDIT_EXPORT_LEN as u64);
            METRICS.run_budget_exhaustions.add(1);
            return Err(EcallError::AuditBudget);
        }
        if let Some(cap) = self.manifest.lifetime_output_budget {
            if self.host.lifetime_sent_bytes + AUDIT_EXPORT_LEN as u64 > cap {
                self.host.audit.record(AuditKind::LifetimeBudgetExhausted, AUDIT_EXPORT_LEN as u64);
                METRICS.run_budget_exhaustions.add(1);
                return Err(EcallError::AuditBudget);
            }
        }
        let plain = self.host.audit.export_bytes();
        let sealed =
            seal_record(&key, self.host.channel, self.host.send_nonce, &plain, AUDIT_EXPORT_LEN);
        self.host.send_nonce += 1;
        self.host.sent_bytes += AUDIT_EXPORT_LEN;
        self.host.lifetime_sent_bytes += AUDIT_EXPORT_LEN as u64;
        METRICS.audit_exports.add(1);
        Ok(sealed)
    }

    /// The enclave's measurement, as the hardware would report it in a
    /// quote (hash of the public consumer image and the enclave layout).
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        measure_enclave(CONSUMER_IMAGE, &self.layout)
    }

    /// The manifest in force.
    #[must_use]
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Installs the data owner's session key (normally derived by the
    /// RA-TLS handshake in `deflection-attest`).
    pub fn set_owner_session(&mut self, key: [u8; 32]) {
        self.host.owner_key = Some(key);
    }

    /// Installs the code provider's session key.
    pub fn set_provider_session(&mut self, key: [u8; 32]) {
        self.provider_key = Some(key);
    }

    /// `ecall_receive_binary`: decrypts the provider-sealed target binary,
    /// runs the consumer pipeline and prepares the I/O buffers. Returns the
    /// code hash the enclave later reports to the data owner.
    ///
    /// # Errors
    ///
    /// Fails when no provider session exists, authentication fails, the
    /// consumer rejects the binary, or the heap cannot host the buffers.
    pub fn ecall_receive_binary(&mut self, sealed: &[u8]) -> Result<[u8; 32], EcallError> {
        let key = self.provider_key.ok_or(EcallError::NoSession)?;
        let nonce = delivery_nonce(b"BIN\0", self.recv_nonce);
        self.recv_nonce += 1;
        let binary = ChaCha20Poly1305::new(&key).open(&nonce, b"deflection-binary", sealed)?;
        self.install_plain(&binary)
    }

    /// Installs an already-plaintext binary (used by tests and benches that
    /// do not exercise the channel; the consumer pipeline is identical).
    ///
    /// # Errors
    ///
    /// Propagates consumer rejections and I/O-placement failures.
    pub fn install_plain(&mut self, binary: &[u8]) -> Result<[u8; 32], EcallError> {
        Ok(self.install_capture(binary)?.code_hash)
    }

    /// Runs the full consumer pipeline on `binary`, installs the result
    /// into this enclave, and additionally captures the finished image as
    /// a [`PreparedInstall`] for replay into identically-measured peers.
    ///
    /// # Errors
    ///
    /// Propagates consumer rejections and I/O-placement failures.
    pub fn install_capture(&mut self, binary: &[u8]) -> Result<PreparedInstall, EcallError> {
        if self.lost {
            return Err(EcallError::EnclaveLost);
        }
        let mut mem = Memory::new(self.layout.clone());
        let installed = install(binary, &self.manifest, &mut mem)?;
        let io = place_io(&mut mem, &installed, &self.layout, &self.manifest)?;
        let prepared = PreparedInstall {
            measurement: self.measurement(),
            code_hash: installed.program.code_hash,
            mem: mem.clone(),
            installed: installed.clone(),
            io,
            binary: binary.to_vec(),
            manifest_digest: manifest_digest(&self.manifest),
        };
        self.adopt(mem, installed, io);
        Ok(prepared)
    }

    /// Installs a previously captured image without re-running the
    /// consumer pipeline. Sound because the pipeline is deterministic in
    /// the measurement-covered inputs — see [`PreparedInstall`].
    ///
    /// # Errors
    ///
    /// Fails closed with [`EcallError::PreparedMismatch`] when this
    /// enclave's measurement differs from the capturing enclave's.
    pub fn install_replayed(&mut self, prepared: &PreparedInstall) -> Result<[u8; 32], EcallError> {
        if self.lost {
            return Err(EcallError::EnclaveLost);
        }
        if prepared.measurement != self.measurement() {
            return Err(EcallError::PreparedMismatch);
        }
        self.adopt(prepared.mem.clone(), prepared.installed.clone(), prepared.io);
        Ok(prepared.code_hash)
    }

    /// Adopts a finished install image as this enclave's runnable state.
    ///
    /// Every install path — fresh pipeline, `PreparedInstall` replay into
    /// pool workers and respawns, sealed import — funnels through here, so
    /// pre-warming the VM's instruction cache at this single point means
    /// they all start hot: the verifier already decoded the whole program,
    /// and [`rewritten_insts`] predicts the post-rewrite stream exactly, so
    /// execution never pays for another decode pass.
    pub(crate) fn adopt(&mut self, mem: Memory, installed: Installed, io: Option<IoPlan>) {
        self.host.io = io;
        self.direct_input_pending = false;
        let entry = installed.program.entry_va;
        let hash_prefix =
            u64::from_le_bytes(installed.program.code_hash[..8].try_into().expect("32-byte hash"));
        self.host.audit.record(AuditKind::Install, hash_prefix);
        let mut vm = Vm::new(mem, entry);
        let bindings = Bindings::from_layout(
            &self.layout,
            installed.program.ibt_addresses.len() as u64,
            self.manifest.aex_threshold,
        );
        let code_base = self.layout.code.start;
        let warmed = crate::consumer::rewriter::rewritten_insts(&installed.verified, &bindings);
        let entries: Vec<(u64, deflection_isa::Inst, u8)> = warmed
            .into_iter()
            .map(|(off, inst, len)| (code_base + off as u64, inst, len as u8))
            .collect();
        vm.prewarm_icache(entries.iter().copied());
        // Superblock traces form over the same patched disassembly, so a
        // full-policy run needs neither demand fills nor demand formations.
        vm.prewarm_traces(&entries);
        METRICS.vm_icache_prewarms.add(vm.icache_stats().prewarms);
        self.installed = Some(installed);
        self.vm = Some(vm);
    }

    /// `ecall_receive_userdata`: decrypts owner-sealed input. The first
    /// message is loaded straight into the input buffer; later messages
    /// queue for `recv()`.
    ///
    /// # Errors
    ///
    /// Fails when no owner session or installed binary exists, or when
    /// authentication fails.
    pub fn ecall_receive_userdata(&mut self, sealed: &[u8]) -> Result<(), EcallError> {
        let key = self.host.owner_key.ok_or(EcallError::NoSession)?;
        let nonce = delivery_nonce(b"DAT\0", self.recv_nonce);
        self.recv_nonce += 1;
        let data = ChaCha20Poly1305::new(&key).open(&nonce, b"deflection-userdata", sealed)?;
        self.provide_input(&data)
    }

    /// Provides plaintext input directly (test/bench path; same buffering
    /// as the sealed ECall).
    ///
    /// # Errors
    ///
    /// Fails when no binary is installed.
    pub fn provide_input(&mut self, data: &[u8]) -> Result<(), EcallError> {
        if self.lost {
            return Err(EcallError::EnclaveLost);
        }
        let vm = self.vm.as_mut().ok_or(EcallError::NotInstalled)?;
        if self.host.io.is_some() && !self.direct_input_pending && self.host.inbox.is_empty() {
            self.host.load_input(&mut vm.mem, data).expect("input buffer mapped");
            self.direct_input_pending = true;
            return Ok(());
        }
        self.host.inbox.push_back(data.to_vec());
        Ok(())
    }

    /// Replaces the AEX injection schedule (experiment control).
    ///
    /// # Panics
    ///
    /// Panics if no binary is installed.
    pub fn set_aex(&mut self, injector: AexInjector) {
        self.vm.as_mut().expect("binary installed").set_aex(injector);
    }

    /// Switches the VM between icache dispatch (default) and the
    /// decode-every-step reference mode (differential tests and the
    /// `ablation_icache` bench).
    ///
    /// # Panics
    ///
    /// Panics if no binary is installed.
    pub fn set_decode_every_step(&mut self, on: bool) {
        self.vm.as_mut().expect("binary installed").set_decode_every_step(on);
    }

    /// Selects the VM dispatch mode (traced / block / reference) —
    /// differential tests and the `ablation_icache` bench.
    ///
    /// # Panics
    ///
    /// Panics if no binary is installed.
    pub fn set_exec_mode(&mut self, mode: deflection_sgx_sim::vm::ExecMode) {
        self.vm.as_mut().expect("binary installed").set_exec_mode(mode);
    }

    /// Icache event counters of the installed VM (diagnostics/benches).
    ///
    /// # Panics
    ///
    /// Panics if no binary is installed.
    #[must_use]
    pub fn icache_stats(&self) -> deflection_sgx_sim::icache::ICacheStats {
        self.vm.as_ref().expect("binary installed").icache_stats()
    }

    /// Trace-cache event counters of the installed VM.
    ///
    /// # Panics
    ///
    /// Panics if no binary is installed.
    #[must_use]
    pub fn trace_stats(&self) -> deflection_sgx_sim::icache::TraceStats {
        self.vm.as_ref().expect("binary installed").trace_stats()
    }

    /// Marks whether an attacker occupies the sibling hyper-thread (drives
    /// the co-location probe outcomes).
    pub fn set_attacker_present(&mut self, present: bool) {
        self.host.coloc.attacker_present = present;
    }

    /// Logged values emitted through the `log` OCall.
    #[must_use]
    pub fn log_values(&self) -> &[i64] {
        &self.host.log_values
    }

    /// Read-only view of the enclave memory (diagnostics/tests).
    ///
    /// # Panics
    ///
    /// Panics if no binary is installed.
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.vm.as_ref().expect("binary installed").mem
    }

    /// Runs the installed program from its entry with the given instruction
    /// budget.
    ///
    /// # Errors
    ///
    /// Fails only when no binary is installed; program-level failures are
    /// reported inside the [`RunReport`].
    pub fn run(&mut self, fuel: u64) -> Result<RunReport, EcallError> {
        if self.lost {
            return Err(EcallError::EnclaveLost);
        }
        let vm = self.vm.as_mut().ok_or(EcallError::NotInstalled)?;
        let installed = self.installed.as_ref().expect("installed with vm");
        // Reset the CPU to the entry; memory (globals, control slots)
        // persists across runs.
        vm.cpu = Cpu::new(installed.program.entry_va);
        vm.cpu.set(Reg::RSP, self.layout.initial_rsp());
        // The P0 output budget caps each *run*: reset the counter so a
        // long-lived worker serving many in-budget requests never faults on
        // accumulated history. The send nonce and the lifetime output
        // ledger, by contrast, must never reset — a repeated counter under
        // the same owner key would reuse an AEAD nonce, and the ledger is
        // what makes the optional lifetime entropy cap cumulative.
        self.host.sent_bytes = 0;
        // The pending direct input is consumed by this run; the next
        // provide_input call refreshes the buffer.
        self.direct_input_pending = false;
        let exit = vm.run(fuel, &mut self.host);
        let mut stats = vm.stats;
        // Policy-relevant outcomes land in the in-enclave audit ring; they
        // leave the enclave only via the sealed, budget-charged export.
        if matches!(exit, RunExit::PolicyAbort { .. } | RunExit::Fault(_)) {
            self.host.audit.record(AuditKind::GuardTrip, stats.instructions);
        }
        if stats.aex_injected > 0 {
            self.host.audit.record(AuditKind::AexInjected, stats.aex_injected);
        }
        // On-demand processing-time blurring (paper Section VII): idle until
        // the next quantum boundary before releasing any output, so the
        // completion time no longer modulates a covert channel.
        let mut blur_padding = 0;
        if let Some(q) = self.manifest.time_blur_quantum {
            if q > 0 {
                let rem = stats.instructions % q;
                if rem != 0 {
                    blur_padding = q - rem;
                    stats.instructions += blur_padding;
                }
            }
        }
        // Telemetry sits at the ECall boundary: everything it records here
        // (bytes sent, budget headroom, the budget-exhaustion fault below)
        // is already host-visible in the returned report, so the collector
        // adds no new channel — in-run refusals are counted only once the
        // report carrying them is handed back.
        if matches!(&exit, RunExit::Fault(Fault::OcallFailed { reason, .. })
            if reason.ends_with("entropy budget exhausted"))
        {
            METRICS.run_budget_exhaustions.add(1);
        }
        METRICS.run_reports.add(1);
        METRICS.run_sent_bytes.observe(self.host.sent_bytes as u64);
        METRICS
            .run_budget_headroom
            .set(self.manifest.output_budget.saturating_sub(self.host.sent_bytes) as i64);
        Ok(RunReport {
            exit,
            stats,
            records: std::mem::take(&mut self.host.outbox),
            untrusted_writes: vm.mem.untrusted_write_count,
            blur_padding,
        })
    }
}

/// Builds the nonce for a sealed code/data delivery.
#[must_use]
pub fn delivery_nonce(tag: &[u8; 4], counter: u64) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    nonce[..4].copy_from_slice(tag);
    nonce[4..].copy_from_slice(&counter.to_le_bytes());
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySet;
    use crate::producer::produce;
    use deflection_sgx_sim::layout::MemConfig;

    fn enclave(policy: PolicySet) -> BootstrapEnclave {
        let mut manifest = Manifest::ccaas();
        manifest.policy = policy;
        BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest)
    }

    const ECHO_SRC: &str = "
        fn main() -> int {
            var n: int = input_len();
            var i: int = 0;
            while (i < n) { output_byte(i, input_byte(i) + 1); i = i + 1; }
            return send(n);
        }
    ";

    #[test]
    fn end_to_end_echo_with_sealed_output() {
        let policy = PolicySet::full();
        let obj = produce(ECHO_SRC, &policy).unwrap();
        let mut enclave = enclave(policy);
        let owner_key = [0x11u8; 32];
        enclave.set_owner_session(owner_key);
        enclave.install_plain(&obj.serialize()).unwrap();
        enclave.provide_input(b"hello").unwrap();
        let report = enclave.run(10_000_000).unwrap();
        assert_eq!(report.exit, RunExit::Halted { exit: 5 });
        assert_eq!(report.untrusted_writes, 0);
        assert_eq!(report.records.len(), 1);
        // All records are fixed-size (P0 padding).
        assert_eq!(report.records[0].len(), 4 + enclave.manifest().output_record_len + 16);
        let plain = open_record(&owner_key, 0, 0, &report.records[0]).unwrap();
        assert_eq!(plain, b"ifmmp");
    }

    #[test]
    fn sealed_delivery_roundtrip() {
        let policy = PolicySet::p1();
        let obj = produce(ECHO_SRC, &policy).unwrap();
        let mut e = enclave(policy);
        let provider_key = [0x22u8; 32];
        let owner_key = [0x33u8; 32];
        e.set_provider_session(provider_key);
        e.set_owner_session(owner_key);
        let sealed_bin = ChaCha20Poly1305::new(&provider_key).seal(
            &delivery_nonce(b"BIN\0", 0),
            b"deflection-binary",
            &obj.serialize(),
        );
        let hash = e.ecall_receive_binary(&sealed_bin).unwrap();
        assert_eq!(hash, deflection_crypto::sha256::sha256(&obj.serialize()));
        let sealed_data = ChaCha20Poly1305::new(&owner_key).seal(
            &delivery_nonce(b"DAT\0", 1),
            b"deflection-userdata",
            b"abc",
        );
        e.ecall_receive_userdata(&sealed_data).unwrap();
        let report = e.run(10_000_000).unwrap();
        assert_eq!(report.exit, RunExit::Halted { exit: 3 });
    }

    #[test]
    fn tampered_binary_delivery_rejected() {
        let policy = PolicySet::p1();
        let obj = produce(ECHO_SRC, &policy).unwrap();
        let mut e = enclave(policy);
        let provider_key = [0x22u8; 32];
        e.set_provider_session(provider_key);
        let mut sealed = ChaCha20Poly1305::new(&provider_key).seal(
            &delivery_nonce(b"BIN\0", 0),
            b"deflection-binary",
            &obj.serialize(),
        );
        sealed[10] ^= 1;
        assert!(matches!(e.ecall_receive_binary(&sealed), Err(EcallError::Channel(_))));
    }

    #[test]
    fn send_without_owner_session_faults() {
        let policy = PolicySet::p1();
        let obj = produce("fn main() -> int { return send(1); }", &policy).unwrap();
        let mut e = enclave(policy);
        e.install_plain(&obj.serialize()).unwrap();
        let report = e.run(1_000_000).unwrap();
        assert!(matches!(report.exit, RunExit::Fault(Fault::OcallFailed { .. })));
    }

    #[test]
    fn oversized_send_faults() {
        let policy = PolicySet::p1();
        let src = "fn main() -> int { return send(100000); }";
        let obj = produce(src, &policy).unwrap();
        let mut e = enclave(policy);
        e.set_owner_session([1; 32]);
        e.install_plain(&obj.serialize()).unwrap();
        let report = e.run(1_000_000).unwrap();
        assert!(matches!(report.exit, RunExit::Fault(Fault::OcallFailed { .. })));
    }

    #[test]
    fn output_budget_enforced() {
        let policy = PolicySet::p1();
        // Send 100 bytes repeatedly until the budget trips.
        let src = "
            fn main() -> int {
                var i: int = 0;
                while (i < 100) { send(100); i = i + 1; }
                return 0;
            }
        ";
        let obj = produce(src, &policy).unwrap();
        let mut manifest = Manifest::ccaas();
        manifest.policy = policy;
        manifest.output_budget = 450; // allows 4 sends of 100
        let mut e = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
        e.set_owner_session([1; 32]);
        e.install_plain(&obj.serialize()).unwrap();
        let report = e.run(10_000_000).unwrap();
        assert!(matches!(report.exit, RunExit::Fault(Fault::OcallFailed { .. })));
        assert_eq!(report.records.len(), 4);
    }

    #[test]
    fn output_budget_is_per_run_and_nonce_stays_monotonic() {
        let policy = PolicySet::p1();
        let obj = produce("fn main() -> int { return send(100); }", &policy).unwrap();
        let mut manifest = Manifest::ccaas();
        manifest.policy = policy;
        manifest.output_budget = 450; // each run sends 100, well within budget
        let owner_key = [1u8; 32];
        let mut e = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
        e.set_owner_session(owner_key);
        e.install_plain(&obj.serialize()).unwrap();
        // budget/len + 1 = 5 runs would have tripped the old cumulative
        // counter (500 > 450); one extra run for good measure.
        for run in 0..6u64 {
            let report = e.run(10_000_000).unwrap();
            assert_eq!(report.exit, RunExit::Halted { exit: 100 }, "run {run} faulted");
            assert_eq!(report.records.len(), 1);
            // The record counter never reset: run N seals under nonce N.
            assert!(open_record(&owner_key, 0, run, &report.records[0]).is_ok());
        }
        assert_eq!(e.send_nonce(), 6);
    }

    #[test]
    fn recv_dequeues_messages() {
        let policy = PolicySet::p1();
        let src = "
            fn main() -> int {
                var first: int = input_len();
                var second: int = recv();
                var third: int = recv();
                return first * 10000 + second * 100 + third;
            }
        ";
        let obj = produce(src, &policy).unwrap();
        let mut e = enclave(policy);
        e.set_owner_session([1; 32]);
        e.install_plain(&obj.serialize()).unwrap();
        e.provide_input(b"aaaa").unwrap(); // 4 bytes, loaded immediately
        e.provide_input(b"bb").unwrap(); // queued
        let report = e.run(10_000_000).unwrap();
        assert_eq!(report.exit, RunExit::Halted { exit: 4 * 10000 + 2 * 100 });
    }

    #[test]
    fn run_requires_install() {
        let mut e = enclave(PolicySet::none());
        assert!(matches!(e.run(100), Err(EcallError::NotInstalled)));
    }

    #[test]
    fn measurement_is_stable_and_layout_bound() {
        let e1 = enclave(PolicySet::none());
        let e2 = enclave(PolicySet::none());
        assert_eq!(e1.measurement(), e2.measurement());
        let other =
            BootstrapEnclave::new(EnclaveLayout::new(MemConfig::paper()), Manifest::ccaas());
        assert_ne!(e1.measurement(), other.measurement());
    }

    #[test]
    fn time_blur_hides_completion_time() {
        // Two inputs with different true costs complete at identical
        // (blurred) instruction counts.
        let policy = PolicySet::p1();
        let src = "
            fn main() -> int {
                var n: int = input_len();
                var i: int = 0;
                var s: int = 0;
                while (i < n * 100) { s = s + i; i = i + 1; }
                return s & 0xFF;
            }
        ";
        let obj = produce(src, &policy).unwrap();
        let mut manifest = Manifest::ccaas();
        manifest.policy = policy;
        manifest.time_blur_quantum = Some(1_000_000);
        let mut counts = Vec::new();
        for input in [&b"ab"[..], &b"abcdefgh"[..]] {
            let mut e =
                BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest.clone());
            e.set_owner_session([1; 32]);
            e.install_plain(&obj.serialize()).unwrap();
            e.provide_input(input).unwrap();
            let report = e.run(10_000_000).unwrap();
            assert!(matches!(report.exit, RunExit::Halted { .. }));
            assert!(report.blur_padding > 0);
            counts.push(report.stats.instructions);
        }
        assert_eq!(counts[0], counts[1], "blurred completion times must match");
    }

    #[test]
    fn replay_requires_matching_measurement() {
        let policy = PolicySet::p1();
        let obj = produce(ECHO_SRC, &policy).unwrap();
        let mut source = enclave(policy);
        let prepared = source.install_capture(&obj.serialize()).unwrap();
        // Same layout and manifest: replay installs and runs identically.
        let mut twin = enclave(policy);
        twin.set_owner_session([0x11; 32]);
        assert_eq!(twin.install_replayed(&prepared).unwrap(), prepared.code_hash());
        twin.provide_input(b"abc").unwrap();
        assert_eq!(twin.run(10_000_000).unwrap().exit, RunExit::Halted { exit: 3 });
        // Different layout → different measurement → fail closed.
        let mut manifest = Manifest::ccaas();
        manifest.policy = policy;
        let mut other = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::paper()), manifest);
        assert_eq!(other.install_replayed(&prepared), Err(EcallError::PreparedMismatch));
    }

    #[test]
    fn record_seal_open_roundtrip() {
        let key = [9u8; 32];
        let sealed = seal_record(&key, 0, 7, b"result", 64);
        assert_eq!(sealed.len(), 4 + 64 + 16);
        assert_eq!(open_record(&key, 0, 7, &sealed).unwrap(), b"result");
        // Wrong counter (nonce) fails.
        assert!(open_record(&key, 0, 8, &sealed).is_err());
    }

    #[test]
    fn record_channels_are_disjoint_nonce_domains() {
        // Two enclaves sharing the owner key (pool workers) both start
        // their counters at 0: the channel id must keep their nonces — and
        // hence ciphertexts of identical plaintexts — distinct.
        let key = [9u8; 32];
        let a = seal_record(&key, 0, 0, b"same plaintext", 64);
        let b = seal_record(&key, 1, 0, b"same plaintext", 64);
        assert_ne!(a, b, "identical (key, counter, plaintext) must differ across channels");
        assert_eq!(open_record(&key, 0, 0, &a).unwrap(), b"same plaintext");
        assert_eq!(open_record(&key, 1, 0, &b).unwrap(), b"same plaintext");
        // Cross-channel opens fail authentication.
        assert!(open_record(&key, 1, 0, &a).is_err());
        assert!(open_record(&key, 0, 0, &b).is_err());
    }

    #[test]
    fn enclave_channel_feeds_the_record_nonce() {
        let policy = PolicySet::p1();
        let obj = produce("fn main() -> int { return send(3); }", &policy).unwrap();
        let owner_key = [7u8; 32];
        let run_on_channel = |channel: u32| {
            let mut e = enclave(policy);
            e.set_owner_session(owner_key);
            e.set_channel(channel);
            e.install_plain(&obj.serialize()).unwrap();
            e.provide_input(b"xyz").unwrap();
            e.run(1_000_000).unwrap().records.remove(0)
        };
        let rec0 = run_on_channel(0);
        let rec5 = run_on_channel(5);
        assert_ne!(rec0, rec5);
        assert!(open_record(&owner_key, 0, 0, &rec0).is_ok());
        assert!(open_record(&owner_key, 5, 0, &rec5).is_ok());
        assert!(open_record(&owner_key, 0, 0, &rec5).is_err());
    }

    #[test]
    fn lifetime_output_budget_caps_across_runs() {
        let policy = PolicySet::p1();
        let obj = produce("fn main() -> int { return send(100); }", &policy).unwrap();
        let mut manifest = Manifest::ccaas();
        manifest.policy = policy;
        manifest.output_budget = 450; // each run is well within this
        manifest.lifetime_output_budget = Some(250); // but only 2 runs fit
        let mut e = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
        e.set_owner_session([1; 32]);
        e.install_plain(&obj.serialize()).unwrap();
        for run in 0..2 {
            let report = e.run(1_000_000).unwrap();
            assert_eq!(report.exit, RunExit::Halted { exit: 100 }, "run {run}");
        }
        assert_eq!(e.lifetime_sent_bytes(), 200);
        // The third run's send would push the lifetime ledger past 250.
        let report = e.run(1_000_000).unwrap();
        assert!(matches!(report.exit, RunExit::Fault(Fault::OcallFailed { .. })));
        assert_eq!(e.lifetime_sent_bytes(), 200, "the refused send leaked nothing");
    }
}
