//! The in-enclave policy verifier.
//!
//! After the loader has relocated the target binary into the code window,
//! the verifier performs the paper's *just-enough disassembling and
//! verification* (Section IV-D): recursive-descent disassembly from the
//! entry, continued across indirect flows via the indirect-branch target
//! list, followed by a structural check that every security-relevant
//! instruction carries its annotation and that no control flow can skip an
//! annotation. Any failure rejects the binary — the verifier never repairs.
//!
//! # Threading model
//!
//! [`verify_threaded`] shards the expensive per-function work — the
//! structural checks here and the abstract interpretation in
//! [`deflection_analysis`] — across worker threads at function-entry
//! granularity. Frontier discovery and greedy template discovery stay
//! serial (cheap, order-sensitive); each worker then scans one function
//! over the *same immutable* disassembly, roles and instance tables, and
//! records the first error per check phase. A deterministic merge reports,
//! for the earliest failing phase, the error with the lowest instruction
//! index — exactly what the serial ascending scan returns — so the verdict
//! is bit-identical for every thread count. All of this runs over the
//! enclave's private pre-mapped copy of the binary, so parallelism adds no
//! TOCTOU surface; see `DESIGN.md` for the full argument.

use crate::annotations::{
    elision_analysis_config, is_exempt_frame_store, match_any, Code, Instance, TemplateKind,
};
use crate::policy::PolicySet;
use deflection_analysis::Analysis;
use deflection_isa::{disassemble_threaded, DisasmError, Disassembly, Inst, Reg};
use deflection_sgx_sim::layout::EnclaveLayout;
use deflection_telemetry::{Span, METRICS};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Why a binary was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// Disassembly failed (decode error, overlap, target out of range).
    Disasm(DisasmError),
    /// A store instruction has no (or a mismatched) P1 guard.
    UnguardedStore {
        /// Offset of the offending store.
        offset: usize,
    },
    /// An instruction writes `rsp` without a following P2 guard.
    UnguardedRspWrite {
        /// Offset of the offending instruction.
        offset: usize,
    },
    /// An indirect branch is not the subject of a branch-table lowering.
    RawIndirectBranch {
        /// Offset of the offending branch.
        offset: usize,
    },
    /// Policy requires the CFI bounds check but the lowering is unchecked.
    MissingCfiCheck {
        /// Offset of the offending branch.
        offset: usize,
    },
    /// A `ret` lacks the shadow-stack epilogue.
    MissingEpilogue {
        /// Offset of the offending `ret`.
        offset: usize,
    },
    /// A call target / indirect-branch-table entry lacks the shadow-stack
    /// prologue.
    MissingPrologue {
        /// Offset of the function entry.
        offset: usize,
    },
    /// A branch from outside an annotation targets its interior.
    BranchIntoAnnotation {
        /// Offset of the branching instruction.
        source: usize,
        /// The interior offset it targets.
        target: usize,
    },
    /// An indirect-branch-table entry points inside an annotation.
    IndirectTargetIntoAnnotation {
        /// The offending table target.
        target: usize,
    },
    /// The entry point sits inside an annotation.
    EntryInsideAnnotation,
    /// More than `q` program instructions ran without an AEX marker check.
    AexGapExceeded {
        /// Offset where the gap limit was crossed.
        offset: usize,
    },
    /// `rbp` written by something other than the frame idiom
    /// (`mov rbp, rsp` / `pop rbp`) — would break the frame-store
    /// exemption's containment argument.
    IllegalRbpWrite {
        /// Offset of the offending instruction.
        offset: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Disasm(e) => write!(f, "disassembly rejected: {e}"),
            VerifyError::UnguardedStore { offset } => {
                write!(f, "store at {offset:#x} lacks a valid P1 annotation")
            }
            VerifyError::UnguardedRspWrite { offset } => {
                write!(f, "rsp write at {offset:#x} lacks a P2 annotation")
            }
            VerifyError::RawIndirectBranch { offset } => {
                write!(f, "indirect branch at {offset:#x} bypasses the branch table")
            }
            VerifyError::MissingCfiCheck { offset } => {
                write!(f, "indirect branch at {offset:#x} lacks the P5 bounds check")
            }
            VerifyError::MissingEpilogue { offset } => {
                write!(f, "ret at {offset:#x} lacks the shadow-stack epilogue")
            }
            VerifyError::MissingPrologue { offset } => {
                write!(f, "call target {offset:#x} lacks the shadow-stack prologue")
            }
            VerifyError::BranchIntoAnnotation { source, target } => {
                write!(f, "branch at {source:#x} jumps into annotation interior {target:#x}")
            }
            VerifyError::IndirectTargetIntoAnnotation { target } => {
                write!(f, "indirect-branch table entry {target:#x} is annotation interior")
            }
            VerifyError::EntryInsideAnnotation => write!(f, "entry point inside an annotation"),
            VerifyError::AexGapExceeded { offset } => {
                write!(f, "more than q instructions without an AEX check near {offset:#x}")
            }
            VerifyError::IllegalRbpWrite { offset } => {
                write!(f, "illegal rbp write at {offset:#x} (only `mov rbp, rsp` / `pop rbp`)")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<DisasmError> for VerifyError {
    fn from(e: DisasmError) -> Self {
        VerifyError::Disasm(e)
    }
}

/// Role of each instruction after template discovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Role {
    /// Ordinary program instruction.
    Program,
    /// Inside annotation `id` (not its subject).
    Interior(usize),
    /// The guarded subject of annotation `id`.
    Subject(usize),
}

/// The verifier's accepted output: everything the rewriter and runtime need.
#[derive(Debug, Clone)]
pub struct Verified {
    /// The recursive-descent disassembly.
    pub disassembly: Disassembly,
    /// Address-ordered instruction list `(offset, inst, len)`.
    pub insts: Vec<(usize, Inst, usize)>,
    /// Every recognized annotation instance.
    pub instances: Vec<Instance>,
}

/// Verifies the relocated target binary at `code` against `policy`.
///
/// `entry` and `indirect_targets` are code-relative offsets (the loader
/// translates the symbolic proof list before calling).
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered; acceptance means every
/// rule of the enforced policy set holds on every reachable instruction.
pub fn verify(
    code: &[u8],
    entry: usize,
    indirect_targets: &[usize],
    policy: &PolicySet,
) -> Result<Verified, VerifyError> {
    verify_impl(code, entry, indirect_targets, policy, None, 1)
}

/// Verifies like [`verify`] with the per-function work sharded across up
/// to `threads` worker threads.
///
/// The verdict — acceptance or the exact [`VerifyError`] — is identical
/// to the single-threaded [`verify`] for every thread count; see the
/// module docs on the threading model. `threads <= 1` runs the plain
/// serial pipeline with no thread machinery at all.
///
/// # Errors
///
/// Same contract as [`verify`].
pub fn verify_threaded(
    code: &[u8],
    entry: usize,
    indirect_targets: &[usize],
    policy: &PolicySet,
    threads: usize,
) -> Result<Verified, VerifyError> {
    verify_impl(code, entry, indirect_targets, policy, None, threads)
}

/// Verifies like [`verify`], additionally accepting guard-elided binaries
/// when `policy.elide_guards` is set.
///
/// Under elision an unguarded store (or explicit `rsp` write) is accepted
/// **only** when the verifier's own in-enclave run of the abstract
/// interpretation ([`deflection_analysis`]) re-derives the safety proof
/// against the real `layout` bounds — no producer hints or proof witnesses
/// are consulted, keeping the producer fully untrusted. Elision further
/// requires `policy.cfi`: the analysis models exactly the control flow in
/// its CFG, and only P5 (shadow stack + sealed branch table) pins the
/// runtime's indirect edges to that CFG. Without CFI the layout is ignored
/// and the strict structural rules of [`verify`] apply unchanged.
///
/// # Errors
///
/// Same contract as [`verify`].
pub fn verify_with_layout(
    code: &[u8],
    entry: usize,
    indirect_targets: &[usize],
    policy: &PolicySet,
    layout: &EnclaveLayout,
) -> Result<Verified, VerifyError> {
    verify_impl(code, entry, indirect_targets, policy, Some(layout), 1)
}

/// Verifies like [`verify_with_layout`] with the per-function work
/// sharded across up to `threads` worker threads; the verdict is
/// identical to the single-threaded run for every thread count.
///
/// # Errors
///
/// Same contract as [`verify`].
pub fn verify_with_layout_threaded(
    code: &[u8],
    entry: usize,
    indirect_targets: &[usize],
    policy: &PolicySet,
    layout: &EnclaveLayout,
    threads: usize,
) -> Result<Verified, VerifyError> {
    verify_impl(code, entry, indirect_targets, policy, Some(layout), threads)
}

/// Back-to-back P2 elision: an explicit `rsp` write needs no guard of its
/// own when the byte-adjacent *next* instruction is ordinary program code
/// that again writes `rsp` without touching memory. The intermediate value
/// is dead — no access uses it — and the final write of the chain is
/// itself subject to the P2 rule (guard, chain or analysis proof).
fn rsp_chain_ok(insts: &[(usize, Inst, usize)], roles: &[Role], idx: usize) -> bool {
    let (off, _, len) = insts[idx];
    insts.get(idx + 1).is_some_and(|&(noff, ninst, _)| {
        noff == off + len
            && roles[idx + 1] == Role::Program
            && ninst.writes_rsp_explicitly()
            && ninst.stored_mem().is_none()
    })
}

/// Read-only inputs shared by every per-function check worker.
pub(crate) struct CheckCtx<'a> {
    pub(crate) insts: &'a [(usize, Inst, usize)],
    pub(crate) roles: &'a [Role],
    pub(crate) instances: &'a [Instance],
    pub(crate) starts_at: &'a HashMap<usize, TemplateKind>,
    pub(crate) d: &'a Disassembly,
    pub(crate) policy: &'a PolicySet,
    pub(crate) elide: Option<&'a EnclaveLayout>,
    pub(crate) analysis: &'a OnceLock<Analysis>,
    pub(crate) threads: usize,
}

impl CheckCtx<'_> {
    pub(crate) fn instance_of(&self, idx: usize) -> Option<usize> {
        match self.roles[idx] {
            Role::Interior(id) | Role::Subject(id) => Some(id),
            Role::Program => None,
        }
    }

    /// The shared elision analysis, built on first demand. `OnceLock`
    /// runs the initializer exactly once even under contention, and the
    /// analysis value itself is thread-count independent, so every
    /// worker observes the same proofs.
    fn analysis(&self, l: &EnclaveLayout) -> &Analysis {
        self.analysis.get_or_init(|| {
            Analysis::run_threaded(self.d, elision_analysis_config(l), self.threads)
        })
    }
}

/// First error found per check phase within one function's instruction
/// range, keyed by instruction index for the deterministic merge.
#[derive(Clone, Default)]
pub(crate) struct RangeErrors {
    /// Phase: branches may not skip into annotations.
    pub(crate) branch: Option<(usize, VerifyError)>,
    /// Phase: rbp write discipline.
    pub(crate) rbp: Option<(usize, VerifyError)>,
    /// Phase: per-policy structural rules.
    pub(crate) policy: Option<(usize, VerifyError)>,
}

/// Scans instructions `[lo, hi)` — one function — recording the first
/// error of each instruction-independent phase. Scanning ascending means
/// the recorded error per phase is the range's lowest-index one; every
/// check reads only immutable shared state, so ranges are independent.
pub(crate) fn check_range(ctx: &CheckCtx<'_>, lo: usize, hi: usize) -> RangeErrors {
    let mut out = RangeErrors::default();
    for idx in lo..hi {
        let (offset, inst, len) = ctx.insts[idx];
        if out.branch.is_none() {
            if let Some(rel) = inst.direct_rel() {
                let target = ((offset + len) as i64 + i64::from(rel)) as usize;
                let target_idx =
                    ctx.d.index_of(target).expect("disassembly followed every direct branch");
                if let Some(tid) = ctx.instance_of(target_idx) {
                    let lands_on_start = target_idx == ctx.instances[tid].start_idx;
                    let same_instance = ctx.instance_of(idx) == Some(tid);
                    if !lands_on_start && !same_instance {
                        out.branch = Some((
                            idx,
                            VerifyError::BranchIntoAnnotation { source: offset, target },
                        ));
                    }
                }
            }
        }
        if out.rbp.is_none() && ctx.policy.store_bounds {
            let writes_rbp = inst.written_reg() == Some(Reg::RBP);
            let frame_idiom = matches!(
                inst,
                Inst::MovRR { dst: Reg::RBP, src: Reg::RSP } | Inst::Pop { reg: Reg::RBP }
            );
            if writes_rbp && !frame_idiom {
                out.rbp = Some((idx, VerifyError::IllegalRbpWrite { offset }));
            }
        }
        if out.policy.is_none() {
            if let Some(err) = policy_check_inst(ctx, idx, offset, &inst) {
                out.policy = Some((idx, err));
            }
        }
        // Each phase records at most one error; stop early once no phase
        // can improve (rbp is done when found or not enforced).
        if out.branch.is_some()
            && out.policy.is_some()
            && (out.rbp.is_some() || !ctx.policy.store_bounds)
        {
            break;
        }
    }
    out
}

/// The per-policy structural rules for one instruction, in the fixed
/// intra-instruction order (store, rsp, indirect branch, ret) the serial
/// verifier has always used.
fn policy_check_inst(
    ctx: &CheckCtx<'_>,
    idx: usize,
    offset: usize,
    inst: &Inst,
) -> Option<VerifyError> {
    match ctx.roles[idx] {
        Role::Program => {
            if ctx.policy.store_bounds {
                if let Some(mem) = inst.stored_mem() {
                    if !is_exempt_frame_store(mem) {
                        let proven = ctx.elide.is_some_and(|l| ctx.analysis(l).store_safe(offset));
                        if !proven {
                            return Some(VerifyError::UnguardedStore { offset });
                        }
                    }
                }
            }
            if ctx.policy.rsp_integrity && inst.writes_rsp_explicitly() {
                // The immediately following instruction must start a
                // P2 guard instance — unless, under elision, the write
                // is part of a dead chain or the analysis proves the
                // resulting rsp stays inside the stack window.
                if ctx.starts_at.get(&(idx + 1)) != Some(&TemplateKind::RspGuard) {
                    let proven = ctx.elide.is_some_and(|l| {
                        rsp_chain_ok(ctx.insts, ctx.roles, idx) || {
                            let a = ctx.analysis(l);
                            a.rsp_after(offset)
                                .and_then(|v| a.concrete_range(v))
                                .is_some_and(|(lo, hi)| lo >= l.stack.start && hi <= l.stack.end)
                        }
                    });
                    if !proven {
                        return Some(VerifyError::UnguardedRspWrite { offset });
                    }
                }
            }
            if inst.is_indirect_branch() {
                return Some(VerifyError::RawIndirectBranch { offset });
            }
            if ctx.policy.cfi && matches!(inst, Inst::Ret) {
                return Some(VerifyError::MissingEpilogue { offset });
            }
            None
        }
        Role::Subject(id) => {
            let kind = ctx.instances[id].kind;
            if inst.is_indirect_branch() && ctx.policy.cfi && kind == TemplateKind::CfiUnchecked {
                return Some(VerifyError::MissingCfiCheck { offset });
            }
            None
        }
        Role::Interior(_) => None,
    }
}

/// Runs [`check_range`] over every function range, work-claimed across
/// `threads` workers. The collected set is schedule-independent (each
/// range's result is a pure function of shared immutable state), so the
/// caller's min-key merge sees identical inputs for every thread count.
fn run_range_checks(
    ctx: &CheckCtx<'_>,
    ranges: &[(usize, usize)],
    threads: usize,
) -> Vec<RangeErrors> {
    let _span = Span::start(&METRICS.verify_checks_ns);
    let workers = threads.min(ranges.len());
    if workers <= 1 {
        return ranges.iter().map(|&(lo, hi)| check_range(ctx, lo, hi)).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<RangeErrors>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(lo, hi)) = ranges.get(i) else { break };
                let r = check_range(ctx, lo, hi);
                results.lock().expect("range results lock").push(r);
            });
        }
    });
    results.into_inner().expect("range results lock")
}

/// Output of the discovery prefix of verification: disassembly, greedily
/// matched annotation instances, and the per-instruction roles the check
/// phases consume.
pub(crate) struct Discovery {
    pub(crate) disassembly: Disassembly,
    pub(crate) roles: Vec<Role>,
    pub(crate) instances: Vec<Instance>,
}

/// The discovery prefix shared by [`verify_impl`] and [`discover`]: the
/// recursive-descent disassembly followed by the greedy template scan.
///
/// Template discovery is deliberately serial: the greedy scan is
/// order-sensitive (a match consumes its instructions before the next
/// candidate is considered) and costs a small fraction of verification.
/// Everything downstream only reads its output.
pub(crate) fn discover_impl(
    code: &[u8],
    entry: usize,
    indirect_targets: &[usize],
    threads: usize,
) -> Result<Discovery, VerifyError> {
    let disassembly = {
        let _span = Span::start(&METRICS.verify_disasm_ns);
        disassemble_threaded(code, entry, indirect_targets, threads)?
    };
    let _span = Span::start(&METRICS.verify_discovery_ns);
    let insts = disassembly.insts();
    let mut roles = vec![Role::Program; insts.len()];
    let mut instances: Vec<Instance> = Vec::new();
    let mut i = 0;
    while i < insts.len() {
        if roles[i] != Role::Program {
            i += 1;
            continue;
        }
        if let Some(inst) = match_any(&Code { insts }, i) {
            let id = instances.len();
            roles[inst.start_idx..=inst.end_idx].fill(Role::Interior(id));
            if let Some(s) = inst.subject_idx {
                roles[s] = Role::Subject(id);
            }
            i = inst.end_idx + 1;
            instances.push(inst);
        } else {
            i += 1;
        }
    }
    Ok(Discovery { disassembly, roles, instances })
}

/// Re-derives only the *discovery* prefix of verification — disassembly
/// plus greedy template matching — returning it in [`Verified`] form
/// without running any policy check phase.
///
/// This is **not** verification and never accepts anything: it must only
/// be used on a binary whose acceptance is already proven by other means —
/// concretely the sealed install cache ([`crate::sealed`]), whose MAC
/// attests that the full verifying pipeline accepted the identical binary
/// under the identical measurement and manifest. The pipeline is
/// deterministic in those inputs, so the discovery output here is
/// byte-identical to what the accepted run produced.
///
/// # Errors
///
/// Returns a [`VerifyError`] if disassembly fails (a corrupted image
/// cannot even be re-derived).
pub fn discover(
    code: &[u8],
    entry: usize,
    indirect_targets: &[usize],
) -> Result<Verified, VerifyError> {
    let d = discover_impl(code, entry, indirect_targets, 1)?;
    let insts = d.disassembly.insts().to_vec();
    Ok(Verified { disassembly: d.disassembly, insts, instances: d.instances })
}

fn verify_impl(
    code: &[u8],
    entry: usize,
    indirect_targets: &[usize],
    policy: &PolicySet,
    layout: Option<&EnclaveLayout>,
    threads: usize,
) -> Result<Verified, VerifyError> {
    let _span = Span::start(&METRICS.verify_ns);
    let result = verify_inner(code, entry, indirect_targets, policy, layout, threads);
    match &result {
        Ok(_) => METRICS.verify_accepts.add(1),
        Err(_) => METRICS.verify_rejects.add(1),
    }
    result
}

fn verify_inner(
    code: &[u8],
    entry: usize,
    indirect_targets: &[usize],
    policy: &PolicySet,
    layout: Option<&EnclaveLayout>,
    threads: usize,
) -> Result<Verified, VerifyError> {
    let Discovery { disassembly, roles, instances } =
        discover_impl(code, entry, indirect_targets, threads)?;
    let insts = disassembly.insts();

    // Instance-start index → kind, for O(1) rule lookups.
    let starts_at: HashMap<usize, TemplateKind> =
        instances.iter().map(|i| (i.start_idx, i.kind)).collect();

    // Elision is sound only under P5: the analysis CFG contains exactly the
    // sealed branch-table edges, and the shadow stack pins returns, so at
    // runtime control cannot reach an elided site along an unanalyzed edge.
    let elide = match layout {
        Some(l) if policy.elide_guards && policy.cfi => Some(l),
        _ => None,
    };
    // The abstract interpretation is only paid for when an unguarded site is
    // actually encountered; fully instrumented binaries verify at the same
    // cost as under the strict rules.
    let analysis: OnceLock<Analysis> = OnceLock::new();
    let ctx = CheckCtx {
        insts,
        roles: &roles,
        instances: &instances,
        starts_at: &starts_at,
        d: &disassembly,
        policy,
        elide,
        analysis: &analysis,
        threads,
    };

    // --- Sharded pass: instruction-independent phases, per function. ------
    // Each worker scans one function's instructions and records the first
    // error per phase. The merge below picks, within each phase, the error
    // with the lowest instruction index — exactly the error a serial
    // ascending scan would have returned first — so the verdict cannot
    // depend on thread timing.
    let ranges = disassembly.function_ranges();
    let results = run_range_checks(&ctx, &ranges, threads);
    merged_verdict(&ctx, entry, indirect_targets, &results)?;
    Ok(Verified { insts: insts.to_vec(), disassembly, instances })
}

/// The deterministic tail of verification: merges the per-function phase
/// errors (lowest instruction index wins within each phase, phases in the
/// serial scan's fixed order) and runs the remaining whole-program serial
/// checks. Shared by the threaded and incremental entry points so the
/// verdict is bit-identical across all of them.
pub(crate) fn merged_verdict(
    ctx: &CheckCtx<'_>,
    entry: usize,
    indirect_targets: &[usize],
    results: &[RangeErrors],
) -> Result<(), VerifyError> {
    let min_of = |pick: fn(&RangeErrors) -> Option<&(usize, VerifyError)>| {
        results.iter().filter_map(pick).min_by_key(|(k, _)| *k).map(|(_, e)| e.clone())
    };

    // --- Control flow may not skip into annotations. ----------------------
    if let Some(e) = min_of(|r| r.branch.as_ref()) {
        return Err(e);
    }
    for &t in indirect_targets {
        let target_idx = ctx.d.index_of(t).expect("indirect targets are disassembly roots");
        if let Some(id) = ctx.instance_of(target_idx) {
            if target_idx != ctx.instances[id].start_idx {
                return Err(VerifyError::IndirectTargetIntoAnnotation { target: t });
            }
        }
    }
    let entry_idx = ctx.d.index_of(entry).expect("entry is a disassembly root");
    if let Some(id) = ctx.instance_of(entry_idx) {
        if entry_idx != ctx.instances[id].start_idx {
            return Err(VerifyError::EntryInsideAnnotation);
        }
    }

    // --- rbp write discipline (underpins the frame-store exemption). -------
    if let Some(e) = min_of(|r| r.rbp.as_ref()) {
        return Err(e);
    }

    // --- Per-policy structural rules. --------------------------------------
    if let Some(e) = min_of(|r| r.policy.as_ref()) {
        return Err(e);
    }

    // --- Shadow-stack prologues at every call target (P5). ----------------
    if ctx.policy.cfi {
        let mut call_targets: Vec<usize> = indirect_targets.to_vec();
        for &(offset, inst, len) in ctx.insts {
            if let Inst::Call { rel } = inst {
                call_targets.push(((offset + len) as i64 + i64::from(rel)) as usize);
            }
        }
        call_targets.sort_unstable();
        call_targets.dedup();
        for target in call_targets {
            if target == entry {
                continue;
            }
            let target_idx = ctx.d.index_of(target).expect("call targets are disassembled");
            if ctx.starts_at.get(&target_idx) != Some(&TemplateKind::Prologue) {
                return Err(VerifyError::MissingPrologue { offset: target });
            }
        }
    }

    // --- AEX density (P6): inherently a sequential prefix scan. ------------
    if ctx.policy.aex {
        // 8 instructions of slack over the declared q, matching the rewriter.
        let mut since: u32 = 0;
        for (idx, &(offset, _, _)) in ctx.insts.iter().enumerate() {
            if ctx.starts_at.get(&idx) == Some(&TemplateKind::AexCheck) {
                since = 0;
            }
            if matches!(ctx.roles[idx], Role::Program | Role::Subject(_)) {
                since += 1;
                if since > ctx.policy.q + 8 {
                    return Err(VerifyError::AexGapExceeded { offset });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::producer::produce;
    use deflection_obj::ObjectFile;

    const SRC: &str = "
        var data: [int; 32];
        fn helper(x: int) -> int { return x * 3; }
        fn main() -> int {
            var i: int = 0;
            var f: fn(int) -> int = &helper;
            while (i < 32) { data[i] = f(i); i = i + 1; }
            return data[31];
        }
    ";

    fn entry_and_ibt(obj: &ObjectFile) -> (usize, Vec<usize>) {
        let entry = obj.symbol(&obj.entry_symbol).unwrap().offset as usize;
        let ibt = obj
            .indirect_branch_table
            .iter()
            .map(|n| obj.symbol(n).unwrap().offset as usize)
            .collect();
        (entry, ibt)
    }

    #[test]
    fn every_policy_level_verifies_its_own_output() {
        for (name, policy) in PolicySet::levels() {
            let obj = produce(SRC, &policy).unwrap();
            let (entry, ibt) = entry_and_ibt(&obj);
            let v = verify(&obj.text, entry, &ibt, &policy);
            assert!(v.is_ok(), "level {name}: {:?}", v.err());
        }
    }

    #[test]
    fn baseline_verifies_under_empty_policy() {
        let obj = produce(SRC, &PolicySet::none()).unwrap();
        let (entry, ibt) = entry_and_ibt(&obj);
        verify(&obj.text, entry, &ibt, &PolicySet::none()).unwrap();
    }

    #[test]
    fn baseline_rejected_under_full_policy() {
        let obj = produce(SRC, &PolicySet::none()).unwrap();
        let (entry, ibt) = entry_and_ibt(&obj);
        let err = verify(&obj.text, entry, &ibt, &PolicySet::full()).unwrap_err();
        // Which rule fires first depends on instruction order; any of the
        // enforced policies is a valid ground for rejection.
        assert!(matches!(
            err,
            VerifyError::UnguardedStore { .. }
                | VerifyError::UnguardedRspWrite { .. }
                | VerifyError::MissingEpilogue { .. }
                | VerifyError::MissingCfiCheck { .. }
                | VerifyError::AexGapExceeded { .. }
        ));
    }

    #[test]
    fn p1_binary_rejected_when_p5_required() {
        let obj = produce(SRC, &PolicySet::p1()).unwrap();
        let (entry, ibt) = entry_and_ibt(&obj);
        let err = verify(&obj.text, entry, &ibt, &PolicySet::p1_p5()).unwrap_err();
        assert!(
            matches!(
                err,
                VerifyError::MissingCfiCheck { .. }
                    | VerifyError::MissingEpilogue { .. }
                    | VerifyError::MissingPrologue { .. }
                    | VerifyError::UnguardedRspWrite { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn stronger_binary_accepted_by_weaker_policy() {
        // A fully instrumented binary satisfies the P1-only verifier.
        let obj = produce(SRC, &PolicySet::full()).unwrap();
        let (entry, ibt) = entry_and_ibt(&obj);
        verify(&obj.text, entry, &ibt, &PolicySet::p1()).unwrap();
    }

    #[test]
    fn discover_matches_verify_and_never_checks_policy() {
        let obj = produce(SRC, &PolicySet::full()).unwrap();
        let (entry, ibt) = entry_and_ibt(&obj);
        let v = verify(&obj.text, entry, &ibt, &PolicySet::full()).unwrap();
        let d = discover(&obj.text, entry, &ibt).unwrap();
        assert_eq!(d.insts, v.insts);
        assert_eq!(d.instances.len(), v.instances.len());
        // discover never rejects on policy grounds: a baseline binary the
        // full policy refuses still re-derives its discovery output.
        let obj = produce(SRC, &PolicySet::none()).unwrap();
        let (entry, ibt) = entry_and_ibt(&obj);
        assert!(verify(&obj.text, entry, &ibt, &PolicySet::full()).is_err());
        assert!(discover(&obj.text, entry, &ibt).is_ok());
    }

    #[test]
    fn instances_are_discovered() {
        let obj = produce(SRC, &PolicySet::full()).unwrap();
        let (entry, ibt) = entry_and_ibt(&obj);
        let v = verify(&obj.text, entry, &ibt, &PolicySet::full()).unwrap();
        let kinds: Vec<TemplateKind> = v.instances.iter().map(|i| i.kind).collect();
        assert!(kinds.contains(&TemplateKind::StoreGuard));
        assert!(kinds.contains(&TemplateKind::RspGuard));
        assert!(kinds.contains(&TemplateKind::CfiChecked));
        assert!(kinds.contains(&TemplateKind::Prologue));
        assert!(kinds.contains(&TemplateKind::Epilogue));
        assert!(kinds.contains(&TemplateKind::AexCheck));
    }
}
