//! Content-addressed incremental re-verification for high-churn fleets.
//!
//! [`verify_incremental`] is a drop-in sibling of
//! [`verify_with_layout`](super::verify_with_layout) for installers that
//! repeatedly verify *patched* variants of the same binary: it keeps a
//! per-function memo of check results (and, through
//! [`deflection_analysis::incremental`], of abstract-interpretation
//! fixpoints) and re-runs the expensive per-instruction check phases only
//! for functions whose verification-relevant inputs changed since the last
//! call. Discovery — recursive-descent disassembly plus the greedy
//! template scan — always re-runs in full: it is cheap, order-sensitive,
//! and its output is what the memo keys are captured *from*, so a binary
//! whose structure diverged falls out of the memo naturally instead of
//! needing a separate fallback test.
//!
//! # Memo key and soundness
//!
//! Each function range from `Disassembly::function_ranges()` is keyed by
//! an explicit capture of **everything** `check_range` reads for that
//! range: the enforced [`PolicySet`], the instruction list (offsets,
//! decoded forms, lengths — the content address), the discovered roles
//! (with annotation identities reduced to the template kinds the checks
//! consult), the guard-template kinds starting at each following
//! instruction, the resolved facts of every direct branch (does it land
//! on an instance start / stay inside its own instance), the one
//! instruction past the range that the `rsp`-chain rule may peek at, and
//! — under elision — the stack window bounds. Reuse requires the stored
//! capture to compare **equal** to this run's fresh capture, and, when
//! elision consults the abstract interpretation, that the function's
//! fixpoint group was itself reused (same input-equality discipline; see
//! the analysis-side module docs). A hit therefore replays a result that
//! a from-scratch serial verify would recompute identically; the merge
//! and the whole-program tail checks run unconditionally through the same
//! `merged_verdict` the serial and threaded verifiers use, so the final
//! verdict — acceptance or the exact error — is bit-identical to
//! [`verify_with_layout`](super::verify_with_layout). The full serial
//! verifier stays the measured TCB and the oracle; this module is a
//! host-side work-avoidance layer whose agreement is enforced by the
//! cross-check corpus in `tests/incremental_verify.rs`.
//!
//! # Covert-channel note
//!
//! Memo hit/miss/invalidation counts are a function of *which* functions
//! changed between two producer-supplied binaries — information the host
//! already holds (it supplies both binaries). The counters are bumped
//! once per [`verify_incremental`] call on the host-side install path,
//! never from inside a check phase, so they expose no per-instruction
//! timing structure beyond what `deflection_verify_ns` already does.

use super::verifier::{
    check_range, discover_impl, merged_verdict, CheckCtx, Discovery, RangeErrors, Role,
};
use super::{load, rewrite, Bindings, InstallError, Installed, Verified, VerifyError};
use crate::annotations::{
    elision_analysis_config, is_exempt_frame_store, TemplateKind, SSA_MARKER_VALUE,
};
use crate::policy::{Manifest, PolicySet};
use crate::runtime::{manifest_digest, place_io, BootstrapEnclave, EcallError, PreparedInstall};
use deflection_analysis::incremental::{run_incremental, AnalysisMemo};
use deflection_analysis::Analysis;
use deflection_isa::Inst;
use deflection_sgx_sim::layout::EnclaveLayout;
use deflection_sgx_sim::mem::Memory;
use deflection_telemetry::{Span, METRICS};
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// A discovered role reduced to exactly what the check phases consult:
/// annotation identities are positional bookkeeping, but the policy rules
/// only ever read the *kind* of a subject's instance.
#[derive(Clone, PartialEq)]
enum LocalRole {
    Program,
    Interior,
    Subject(TemplateKind),
}

/// The captured inputs of one function's [`check_range`] run. Two runs
/// with equal keys are guaranteed to produce the equal [`RangeErrors`].
#[derive(Clone, PartialEq)]
struct FnKey {
    policy: PolicySet,
    elide: bool,
    /// Stack window bounds consulted by the elided-`rsp` proof.
    stack: Option<(u64, u64)>,
    /// `(offset, inst, len)` of every instruction in the range — the
    /// function's content address.
    insts: Vec<(usize, Inst, usize)>,
    roles: Vec<LocalRole>,
    /// The template kind starting at each `idx + 1` the P2 rule peeks at.
    start_kinds: Vec<Option<TemplateKind>>,
    /// Per instruction: `None` = not a direct branch; `Some(None)` =
    /// target outside any annotation; `Some(Some((lands_on_start,
    /// same_instance)))` = the resolved annotation facts of the target.
    branch_facts: Vec<Option<Option<(bool, bool)>>>,
    /// The first instruction past the range and whether its role is
    /// `Program` — the only out-of-range state `rsp_chain_ok` reads.
    boundary: Option<((usize, Inst, usize), bool)>,
}

/// Observable outcome of one [`verify_incremental`] call, for tests and
/// the ablation bench (robust against unrelated tests sharing the global
/// telemetry counters).
#[derive(Debug, Clone, Copy, Default)]
pub struct IncrementalStats {
    /// Function check results replayed from the memo.
    pub hits: u64,
    /// Functions with no memo entry (first sight of this entry offset).
    pub misses: u64,
    /// Functions whose memo entry existed but whose captured inputs (or
    /// analysis-group reuse gate) no longer matched.
    pub invalidated: u64,
    /// Analysis fixpoint groups reused (elision runs only).
    pub groups_reused: u64,
    /// Analysis fixpoint groups recomputed (elision runs only).
    pub groups_recomputed: u64,
}

/// The persistent memo carried across [`verify_incremental`] calls:
/// per-function check results keyed by entry offset, plus the
/// analysis-side fixpoint memo. One cache serves one logical install
/// slot; entries for changed functions are replaced in place.
#[derive(Clone, Default)]
pub struct IncrementalCache {
    checks: HashMap<usize, (FnKey, RangeErrors)>,
    analysis: AnalysisMemo,
    last: IncrementalStats,
}

impl fmt::Debug for IncrementalCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IncrementalCache")
            .field("functions", &self.checks.len())
            .field("last", &self.last)
            .finish()
    }
}

impl IncrementalCache {
    /// An empty cache: the first verify computes everything.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Stats of the most recent [`verify_incremental`] call through this
    /// cache.
    #[must_use]
    pub fn last_stats(&self) -> IncrementalStats {
        self.last
    }
}

/// Captures the [`FnKey`] of the function occupying `[lo, hi)`.
fn capture_key(ctx: &CheckCtx<'_>, lo: usize, hi: usize) -> FnKey {
    let roles = ctx.roles[lo..hi]
        .iter()
        .map(|r| match r {
            Role::Program => LocalRole::Program,
            Role::Interior(_) => LocalRole::Interior,
            Role::Subject(id) => LocalRole::Subject(ctx.instances[*id].kind),
        })
        .collect();
    let start_kinds = (lo..hi).map(|idx| ctx.starts_at.get(&(idx + 1)).copied()).collect();
    let branch_facts = (lo..hi)
        .map(|idx| {
            let (offset, inst, len) = ctx.insts[idx];
            inst.direct_rel().map(|rel| {
                let target = ((offset + len) as i64 + i64::from(rel)) as usize;
                let target_idx =
                    ctx.d.index_of(target).expect("disassembly followed every direct branch");
                ctx.instance_of(target_idx).map(|tid| {
                    (target_idx == ctx.instances[tid].start_idx, ctx.instance_of(idx) == Some(tid))
                })
            })
        })
        .collect();
    FnKey {
        policy: *ctx.policy,
        elide: ctx.elide.is_some(),
        stack: ctx.elide.map(|l| (l.stack.start, l.stack.end)),
        insts: ctx.insts[lo..hi].to_vec(),
        roles,
        start_kinds,
        branch_facts,
        boundary: ctx.insts.get(hi).map(|&t| (t, ctx.roles.get(hi) == Some(&Role::Program))),
    }
}

/// Shifts a [`RangeErrors`] between the stored function-local index space
/// and this run's global instruction indices. Only the merge keys move;
/// the error payloads are code offsets, which the matched key pins.
fn shift(errors: &RangeErrors, delta: isize) -> RangeErrors {
    let mv = |o: &Option<(usize, VerifyError)>| {
        o.as_ref().map(|(i, e)| ((*i as isize + delta) as usize, e.clone()))
    };
    RangeErrors { branch: mv(&errors.branch), rbp: mv(&errors.rbp), policy: mv(&errors.policy) }
}

/// Verifies like [`verify_with_layout`](super::verify_with_layout) —
/// same rules, same elision support, bit-identical verdict — reusing
/// per-function work from `cache` where this binary's captured inputs
/// are unchanged. Serial by design: the fast path's win is skipping
/// work, not sharding it.
///
/// # Errors
///
/// Same contract as [`verify`](super::verify): the error (and its exact
/// offsets) equals what the full serial verifier returns on this input.
pub fn verify_incremental(
    code: &[u8],
    entry: usize,
    indirect_targets: &[usize],
    policy: &PolicySet,
    layout: &EnclaveLayout,
    cache: &mut IncrementalCache,
) -> Result<Verified, VerifyError> {
    let _span = Span::start(&METRICS.verify_ns);
    cache.last = IncrementalStats::default();
    let result = verify_incremental_inner(code, entry, indirect_targets, policy, layout, cache);
    match &result {
        Ok(_) => METRICS.verify_accepts.add(1),
        Err(_) => METRICS.verify_rejects.add(1),
    }
    METRICS.verify_memo_hits.add(cache.last.hits);
    METRICS.verify_memo_misses.add(cache.last.misses);
    METRICS.verify_memo_invalidated.add(cache.last.invalidated);
    result
}

/// Whether any instruction in `[lo, hi)` can reach one of the two
/// analysis consult sites in the per-instruction policy rules: an
/// unguarded store, or an explicit `rsp` write not covered by a P2 guard
/// template. Conservative on the `rsp` dead-chain rule (which can
/// discharge a write without the analysis), so this may build the
/// analysis where the lazy serial verifier would not — a cost difference
/// only, never a verdict one.
fn may_consult_analysis(
    policy: &PolicySet,
    insts: &[(usize, Inst, usize)],
    roles: &[Role],
    starts_at: &HashMap<usize, TemplateKind>,
    lo: usize,
    hi: usize,
) -> bool {
    (lo..hi).any(|idx| {
        if !matches!(roles[idx], Role::Program) {
            return false;
        }
        let inst = &insts[idx].1;
        (policy.store_bounds && inst.stored_mem().is_some_and(|m| !is_exempt_frame_store(m)))
            || (policy.rsp_integrity
                && inst.writes_rsp_explicitly()
                && starts_at.get(&(idx + 1)) != Some(&TemplateKind::RspGuard))
    })
}

fn verify_incremental_inner(
    code: &[u8],
    entry: usize,
    indirect_targets: &[usize],
    policy: &PolicySet,
    layout: &EnclaveLayout,
    cache: &mut IncrementalCache,
) -> Result<Verified, VerifyError> {
    // Discovery always re-runs in full — see the module docs.
    let Discovery { disassembly, roles, instances } =
        discover_impl(code, entry, indirect_targets, 1)?;
    let starts_at: HashMap<usize, TemplateKind> =
        instances.iter().map(|i| (i.start_idx, i.kind)).collect();
    let elide = if policy.elide_guards && policy.cfi { Some(layout) } else { None };

    let insts = disassembly.insts();
    let ranges = disassembly.function_ranges();
    let mut stats = IncrementalStats::default();
    // The elision analysis is built only when some range can actually
    // consult it — the same workloads that force the lazy serial verifier
    // to build its analysis. Ranges that cannot consult it replay without
    // the fixpoint-reuse gate: their stored results do not depend on any
    // analysis value.
    let needs_analysis: Vec<bool> = ranges
        .iter()
        .map(|&(lo, hi)| {
            elide.is_some() && may_consult_analysis(policy, insts, &roles, &starts_at, lo, hi)
        })
        .collect();
    let analysis: OnceLock<Analysis> = OnceLock::new();
    let report = match elide {
        Some(l) if needs_analysis.contains(&true) => {
            let (a, report) =
                run_incremental(&disassembly, elision_analysis_config(l), &mut cache.analysis);
            let _ = analysis.set(a);
            stats.groups_reused = report.groups_reused as u64;
            stats.groups_recomputed = report.groups_recomputed as u64;
            Some(report)
        }
        _ => None,
    };
    let ctx = CheckCtx {
        insts,
        roles: &roles,
        instances: &instances,
        starts_at: &starts_at,
        d: &disassembly,
        policy,
        elide,
        analysis: &analysis,
        threads: 1,
    };

    let entries = disassembly.function_entries();
    let mut results = Vec::with_capacity(ranges.len());
    {
        let _span = Span::start(&METRICS.verify_checks_ns);
        for (g, &(lo, hi)) in ranges.iter().enumerate() {
            let fn_off = entries.get(g).copied().unwrap_or(0);
            let key = capture_key(&ctx, lo, hi);
            // When a range can consult the analysis, its stored result may
            // embed analysis answers; it is then replayable only if the
            // function's own fixpoint group was reused (its in-states are
            // bit-identical to a fresh run's).
            let analysis_ok = !needs_analysis[g]
                || report.as_ref().is_some_and(|r| r.reused.get(g).copied().unwrap_or(false));
            let replay = match cache.checks.get(&fn_off) {
                Some((k, stored)) if *k == key && analysis_ok => Some(shift(stored, lo as isize)),
                Some(_) => {
                    stats.invalidated += 1;
                    None
                }
                None => {
                    stats.misses += 1;
                    None
                }
            };
            match replay {
                Some(r) => {
                    stats.hits += 1;
                    results.push(r);
                }
                None => {
                    let r = check_range(&ctx, lo, hi);
                    cache.checks.insert(fn_off, (key, shift(&r, -(lo as isize))));
                    results.push(r);
                }
            }
        }
    }
    cache.last = stats;
    merged_verdict(&ctx, entry, indirect_targets, &results)?;
    Ok(Verified { insts: insts.to_vec(), disassembly, instances })
}

/// The full consumer install pipeline with [`verify_incremental`] in the
/// verifier slot — the patched-binary sibling of
/// [`install`](super::install). Load, verify incrementally, rewrite,
/// arm control state.
///
/// # Errors
///
/// Returns [`InstallError`] on any load or verification failure; on error
/// the enclave must be discarded, never run.
pub fn install_incremental(
    binary: &[u8],
    manifest: &Manifest,
    mem: &mut Memory,
    cache: &mut IncrementalCache,
) -> Result<Installed, InstallError> {
    let layout: EnclaveLayout = mem.layout().clone();
    let program = load(binary, mem)?;
    let code = mem
        .peek_bytes(layout.code.start, program.code_len)
        .expect("loader wrote the code window")
        .to_vec();
    let entry = (program.entry_va - layout.code.start) as usize;
    let verified =
        verify_incremental(&code, entry, &program.ibt_offsets, &manifest.policy, &layout, cache)?;
    let bindings =
        Bindings::from_layout(&layout, program.ibt_addresses.len() as u64, manifest.aex_threshold);
    rewrite(mem, layout.code.start, &verified, &bindings);
    mem.poke_u64(layout.shadow_sp_slot(), layout.shadow_stack.end).expect("control page mapped");
    mem.poke_u64(layout.aex_count_slot(), 0).expect("control page mapped");
    mem.poke_u64(layout.ssa_marker_slot(), SSA_MARKER_VALUE as u64).expect("ssa mapped");
    Ok(Installed { program, verified })
}

/// [`BootstrapEnclave::install_capture`] with the incremental verifier:
/// runs [`install_incremental`], adopts the image, and captures it as a
/// [`PreparedInstall`] for replay into identically-measured peers.
///
/// # Errors
///
/// Propagates consumer rejections and I/O-placement failures; fails with
/// [`EcallError::EnclaveLost`] on a lost enclave.
pub fn install_capture_incremental(
    enclave: &mut BootstrapEnclave,
    binary: &[u8],
    cache: &mut IncrementalCache,
) -> Result<PreparedInstall, EcallError> {
    if enclave.is_lost() {
        return Err(EcallError::EnclaveLost);
    }
    let mut mem = Memory::new(enclave.layout.clone());
    let installed = install_incremental(binary, &enclave.manifest, &mut mem, cache)?;
    let io = place_io(&mut mem, &installed, &enclave.layout, &enclave.manifest)?;
    let prepared = PreparedInstall {
        measurement: enclave.measurement(),
        code_hash: installed.program.code_hash,
        mem: mem.clone(),
        installed: installed.clone(),
        io,
        binary: binary.to_vec(),
        manifest_digest: manifest_digest(&enclave.manifest),
    };
    enclave.adopt(mem, installed, io);
    Ok(prepared)
}
