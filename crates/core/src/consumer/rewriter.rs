//! The immediate-operand rewriter.
//!
//! The last consumer step before execution (paper Section V-B): "resolve and
//! replace the Imm operands in instrumentations, including the base of the
//! shadow stack, and the addresses of indirect branch targets". The rewriter
//! only touches the placeholder immediates at the positions the verifier
//! proved to be annotation instructions — it never scans for magic values in
//! program code, so a program that happens to contain a placeholder-looking
//! constant is unaffected.

use crate::annotations::{Instance, TemplateKind};
use crate::consumer::verifier::Verified;
use deflection_sgx_sim::layout::EnclaveLayout;
use deflection_sgx_sim::mem::Memory;

/// Concrete values bound to the annotation placeholders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bindings {
    /// P1 lower bound (start of the writable data window).
    pub store_lo: u64,
    /// P1 upper bound (end of the writable data window, exclusive).
    pub store_hi: u64,
    /// P2 lower bound (stack start).
    pub stack_lo: u64,
    /// P2 upper bound (stack end, inclusive-as-empty).
    pub stack_hi: u64,
    /// P5 branch-table base address.
    pub bt_base: u64,
    /// P5 branch-table entry count.
    pub bt_len: u64,
    /// P5 shadow-stack top-pointer slot address.
    pub ss_slot: u64,
    /// P6 SSA marker address.
    pub ssa_marker: u64,
    /// P6 AEX counter slot address.
    pub aex_slot: u64,
    /// P6 AEX abort threshold.
    pub aex_max: u64,
}

impl Bindings {
    /// Derives the standard bindings from the enclave layout, the loaded
    /// table length, and the manifest's AEX threshold.
    #[must_use]
    pub fn from_layout(layout: &EnclaveLayout, bt_len: u64, aex_max: u64) -> Self {
        Bindings {
            store_lo: layout.store_window().start,
            store_hi: layout.store_window().end,
            stack_lo: layout.stack.start,
            stack_hi: layout.stack.end,
            bt_base: layout.branch_table.start,
            bt_len,
            ss_slot: layout.shadow_sp_slot(),
            ssa_marker: layout.ssa_marker_slot(),
            aex_slot: layout.aex_count_slot(),
            aex_max,
        }
    }
}

/// `(instruction index relative to instance start, placeholder role)` pairs
/// of the `MovRI` placeholders each template carries.
fn placeholder_sites(kind: TemplateKind) -> &'static [(usize, PlaceholderRole)] {
    match kind {
        TemplateKind::StoreGuard => &[(3, PlaceholderRole::StoreLo), (7, PlaceholderRole::StoreHi)],
        TemplateKind::RspGuard => &[(0, PlaceholderRole::StackLo), (4, PlaceholderRole::StackHi)],
        TemplateKind::CfiChecked => &[(0, PlaceholderRole::BtLen), (4, PlaceholderRole::BtBase)],
        TemplateKind::CfiUnchecked => &[(0, PlaceholderRole::BtBase)],
        TemplateKind::Prologue | TemplateKind::Epilogue => &[(0, PlaceholderRole::SsSlot)],
        TemplateKind::AexCheck => &[
            (0, PlaceholderRole::SsaMarker),
            (10, PlaceholderRole::AexSlot),
            (14, PlaceholderRole::AexMax),
            (18, PlaceholderRole::SsaMarker),
        ],
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlaceholderRole {
    StoreLo,
    StoreHi,
    StackLo,
    StackHi,
    BtBase,
    BtLen,
    SsSlot,
    SsaMarker,
    AexSlot,
    AexMax,
}

impl PlaceholderRole {
    fn value(self, b: &Bindings) -> u64 {
        match self {
            PlaceholderRole::StoreLo => b.store_lo,
            PlaceholderRole::StoreHi => b.store_hi,
            PlaceholderRole::StackLo => b.stack_lo,
            PlaceholderRole::StackHi => b.stack_hi,
            PlaceholderRole::BtBase => b.bt_base,
            PlaceholderRole::BtLen => b.bt_len,
            PlaceholderRole::SsSlot => b.ss_slot,
            PlaceholderRole::SsaMarker => b.ssa_marker,
            PlaceholderRole::AexSlot => b.aex_slot,
            PlaceholderRole::AexMax => b.aex_max,
        }
    }
}

/// The post-rewrite instruction stream: the verifier's decoded instructions
/// with every placeholder immediate replaced by its bound value — exactly
/// what re-decoding the code window after [`rewrite`] yields (the `MovRI`
/// encoding is fixed-length, so patching an immediate moves no offsets).
///
/// The install path feeds this to the VM's instruction cache: the program
/// is decoded once by the producer and once by the in-enclave verifier,
/// and pre-warming from the verifier's own decode means execution never
/// pays for a third pass.
#[must_use]
pub fn rewritten_insts(
    verified: &Verified,
    bindings: &Bindings,
) -> Vec<(usize, deflection_isa::Inst, usize)> {
    let mut insts = verified.insts.clone();
    for instance in &verified.instances {
        for &(rel_idx, role) in placeholder_sites(instance.kind) {
            let idx = instance.start_idx + rel_idx;
            if let deflection_isa::Inst::MovRI { dst, .. } = insts[idx].1 {
                insts[idx].1 = deflection_isa::Inst::MovRI { dst, imm: role.value(bindings) };
            } else {
                debug_assert!(false, "placeholder site must be a MovRI (verifier checked)");
            }
        }
    }
    insts
}

/// Rewrites every placeholder immediate of every verified annotation
/// instance in the relocated code, in place via the privileged memory path.
///
/// `code_base` is the virtual address the verified code image starts at.
pub fn rewrite(mem: &mut Memory, code_base: u64, verified: &Verified, bindings: &Bindings) {
    for instance in &verified.instances {
        rewrite_instance(mem, code_base, verified, instance, bindings);
    }
}

fn rewrite_instance(
    mem: &mut Memory,
    code_base: u64,
    verified: &Verified,
    instance: &Instance,
    bindings: &Bindings,
) {
    for &(rel_idx, role) in placeholder_sites(instance.kind) {
        let idx = instance.start_idx + rel_idx;
        let (offset, inst, _) = verified.insts[idx];
        debug_assert!(
            matches!(inst, deflection_isa::Inst::MovRI { .. }),
            "placeholder site must be a MovRI (verifier checked the template)"
        );
        // MovRI encoding: opcode byte, register byte, then the 64-bit imm.
        let imm_va = code_base + offset as u64 + 2;
        mem.poke_u64(imm_va, role.value(bindings)).expect("verified code is mapped");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotations::{PH_STORE_HI, PH_STORE_LO};
    use crate::consumer::verifier::verify;
    use crate::policy::PolicySet;
    use crate::producer::produce;
    use deflection_sgx_sim::layout::MemConfig;

    const SRC: &str = "
        var g: [int; 4];
        fn h() {}
        fn main() -> int {
            var f: fn() = &h;
            f();
            g[0] = 7;
            return g[0];
        }
    ";

    #[test]
    fn placeholders_replaced_with_bounds() {
        let policy = PolicySet::full();
        let obj = produce(SRC, &policy).unwrap();
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut mem = Memory::new(layout.clone());
        let loaded = crate::consumer::loader::load(&obj.serialize(), &mut mem).unwrap();
        let code = mem.peek_bytes(layout.code.start, loaded.code_len).unwrap().to_vec();
        let entry = (loaded.entry_va - layout.code.start) as usize;
        let verified = verify(&code, entry, &loaded.ibt_offsets, &policy).unwrap();
        let bindings = Bindings::from_layout(&layout, loaded.ibt_addresses.len() as u64, 100);
        rewrite(&mut mem, layout.code.start, &verified, &bindings);

        // Re-disassemble: no placeholder immediates may remain, and the
        // real bounds must appear.
        let code2 = mem.peek_bytes(layout.code.start, loaded.code_len).unwrap().to_vec();
        let d = deflection_isa::disassemble(&code2, entry, &loaded.ibt_offsets).unwrap();
        let mut saw_lo = false;
        for (_, inst, _) in d.insts() {
            if let deflection_isa::Inst::MovRI { imm, .. } = inst {
                assert_ne!(*imm, PH_STORE_LO, "placeholder must be rewritten");
                assert_ne!(*imm, PH_STORE_HI);
                if *imm == bindings.store_lo {
                    saw_lo = true;
                }
            }
        }
        assert!(saw_lo, "real lower bound must appear in rewritten code");

        // The predicted post-rewrite stream must equal what a fresh decode
        // of the patched memory actually sees — this is the contract the
        // icache pre-warm path depends on.
        let predicted = rewritten_insts(&verified, &bindings);
        let actual: Vec<(usize, deflection_isa::Inst, usize)> = d.insts().to_vec();
        assert_eq!(predicted, actual);
    }

    #[test]
    fn bindings_from_layout_are_consistent() {
        let layout = EnclaveLayout::new(MemConfig::small());
        let b = Bindings::from_layout(&layout, 5, 42);
        assert_eq!(b.store_lo, layout.heap.start);
        assert_eq!(b.store_hi, layout.stack.end);
        assert_eq!(b.bt_len, 5);
        assert_eq!(b.aex_max, 42);
        assert!(b.store_lo < b.store_hi);
        assert!(b.stack_lo < b.stack_hi);
    }
}
