//! The in-enclave dynamic loader.
//!
//! Implements the paper's in-enclave half of code loading (Section IV-D and
//! Fig. 6): parse the relocatable target binary delivered through
//! `ecall_receive_binary`, rebase its symbols into the enclave's code and
//! data windows, apply the absolute relocations, translate the symbolic
//! indirect-branch list into in-enclave addresses on the reserved
//! branch-table page, and seal that page read-only. The loader performs *no*
//! code rewriting beyond relocation — annotations were implanted by the
//! producer and are only checked (verifier) and bound (imm rewriter) here.

use deflection_crypto::sha256::sha256;
use deflection_obj::{ObjError, ObjectFile, RelocKind, SectionId};
use deflection_sgx_sim::layout::EnclaveLayout;
use deflection_sgx_sim::mem::{Memory, PagePerm};
use std::collections::HashMap;
use std::error::Error as StdError;
use std::fmt;

/// Loading failures (all cause ECall rejection).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LoadError {
    /// The binary did not parse.
    Malformed(ObjError),
    /// A section exceeds its enclave window.
    TooLarge {
        /// Which section.
        section: &'static str,
    },
    /// A relocation or table entry referenced an undefined symbol.
    UndefinedSymbol(String),
    /// The entry symbol is missing or not a function.
    BadEntry,
    /// An indirect-branch-table entry is not a text function symbol.
    BadIndirectTarget(String),
    /// The table exceeds the reserved branch-table page(s).
    TableTooLarge,
    /// A relocation site fell outside its section.
    BadRelocation,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Malformed(e) => write!(f, "malformed binary: {e}"),
            LoadError::TooLarge { section } => write!(f, "{section} exceeds its enclave window"),
            LoadError::UndefinedSymbol(s) => write!(f, "undefined symbol `{s}`"),
            LoadError::BadEntry => write!(f, "missing or invalid entry symbol"),
            LoadError::BadIndirectTarget(s) => write!(f, "branch-table entry `{s}` invalid"),
            LoadError::TableTooLarge => write!(f, "indirect-branch table exceeds reserved page"),
            LoadError::BadRelocation => write!(f, "relocation site out of bounds"),
        }
    }
}

impl StdError for LoadError {}

impl From<ObjError> for LoadError {
    fn from(e: ObjError) -> Self {
        LoadError::Malformed(e)
    }
}

/// A successfully loaded (relocated, not yet verified) program.
#[derive(Debug, Clone)]
pub struct LoadedProgram {
    /// Virtual address of the entry point.
    pub entry_va: u64,
    /// Length of the loaded text image.
    pub code_len: usize,
    /// Code-relative offsets of the indirect-branch targets (for the
    /// verifier's recursive descent).
    pub ibt_offsets: Vec<usize>,
    /// In-enclave addresses of the indirect-branch targets (written to the
    /// branch-table page, in order).
    pub ibt_addresses: Vec<u64>,
    /// Symbol name → virtual address.
    pub symbols: HashMap<String, u64>,
    /// Virtual address one past the loaded data image (free heap starts
    /// here; the runtime places the I/O buffers above it).
    pub data_end: u64,
    /// SHA-256 of the delivered binary (the measurement the bootstrap
    /// enclave reports to the data owner, Section III-A).
    pub code_hash: [u8; 32],
}

fn align8(v: u64) -> u64 {
    (v + 7) & !7
}

/// The pure half of loading: everything [`load`] computes before touching
/// enclave memory — section base assignment, symbol resolution, Abs64
/// relocation applied to cloned images, branch-table translation and entry
/// lookup.
#[derive(Debug, Clone)]
pub struct ResolvedImage {
    /// Text image with Abs64 relocations applied.
    pub text: Vec<u8>,
    /// Data image with Abs64 relocations applied.
    pub data: Vec<u8>,
    /// Virtual address rodata is placed at (start of the heap window).
    pub rodata_base: u64,
    /// Virtual address the data image is placed at.
    pub data_base: u64,
    /// Virtual address the zero-initialized bss begins at.
    pub bss_base: u64,
    /// Virtual address one past the loaded image.
    pub data_end: u64,
    /// Virtual address of the entry point.
    pub entry_va: u64,
    /// Code-relative offsets of the indirect-branch targets.
    pub ibt_offsets: Vec<usize>,
    /// In-enclave addresses of the indirect-branch targets.
    pub ibt_addresses: Vec<u64>,
    /// Symbol name → virtual address.
    pub symbols: HashMap<String, u64>,
}

/// Resolves `obj` against `layout` without touching any memory.
///
/// [`load`] builds on this; the untrusted producer's guard-elision pass
/// calls it too, so the text image its abstract interpretation analyses is
/// bit-for-bit the one the in-enclave verifier will see after loading.
///
/// # Errors
///
/// See [`LoadError`].
pub fn resolve(obj: &ObjectFile, layout: &EnclaveLayout) -> Result<ResolvedImage, LoadError> {
    if obj.text.len() as u64 > layout.code.len() {
        return Err(LoadError::TooLarge { section: "text" });
    }
    let rodata_base = layout.heap.start;
    let data_base = align8(rodata_base + obj.rodata.len() as u64);
    let bss_base = align8(data_base + obj.data.len() as u64);
    let data_end = align8(bss_base + obj.bss_size);
    if data_end > layout.heap.end {
        return Err(LoadError::TooLarge { section: "data" });
    }

    // Resolve symbol virtual addresses.
    let mut symbols = HashMap::new();
    for sym in &obj.symbols {
        let va = match sym.section {
            SectionId::Text => layout.code.start + sym.offset,
            SectionId::Rodata => rodata_base + sym.offset,
            SectionId::Data => data_base + sym.offset,
            SectionId::Bss => bss_base + sym.offset,
        };
        symbols.insert(sym.name.clone(), va);
    }

    // Apply the remaining (absolute) relocations to local images.
    let mut text = obj.text.clone();
    let mut data = obj.data.clone();
    for reloc in &obj.relocations {
        debug_assert_eq!(reloc.kind, RelocKind::Abs64, "linker resolved Rel32");
        let target = symbols
            .get(&reloc.symbol)
            .ok_or_else(|| LoadError::UndefinedSymbol(reloc.symbol.clone()))?;
        let value = (*target as i64 + reloc.addend) as u64;
        let site = reloc.offset as usize;
        let image: &mut Vec<u8> = match reloc.section {
            SectionId::Text => &mut text,
            SectionId::Data => &mut data,
            _ => return Err(LoadError::BadRelocation),
        };
        if site + 8 > image.len() {
            return Err(LoadError::BadRelocation);
        }
        image[site..site + 8].copy_from_slice(&value.to_le_bytes());
    }

    // Translate the indirect-branch proof list.
    let mut ibt_offsets = Vec::with_capacity(obj.indirect_branch_table.len());
    let mut ibt_addresses = Vec::with_capacity(obj.indirect_branch_table.len());
    for name in &obj.indirect_branch_table {
        let sym = obj.symbol(name).ok_or_else(|| LoadError::UndefinedSymbol(name.clone()))?;
        if sym.section != SectionId::Text {
            return Err(LoadError::BadIndirectTarget(name.clone()));
        }
        ibt_offsets.push(sym.offset as usize);
        ibt_addresses.push(layout.code.start + sym.offset);
    }
    if (ibt_addresses.len() as u64) * 8 > layout.branch_table.len() {
        return Err(LoadError::TableTooLarge);
    }

    // Entry.
    let entry_sym = obj.symbol(&obj.entry_symbol).ok_or(LoadError::BadEntry)?;
    if entry_sym.section != SectionId::Text {
        return Err(LoadError::BadEntry);
    }
    let entry_va = layout.code.start + entry_sym.offset;

    Ok(ResolvedImage {
        text,
        data,
        rodata_base,
        data_base,
        bss_base,
        data_end,
        entry_va,
        ibt_offsets,
        ibt_addresses,
        symbols,
    })
}

/// Loads `binary` (a serialized [`ObjectFile`]) into `mem`.
///
/// # Errors
///
/// See [`LoadError`]. On error the enclave memory may contain a partial
/// image; callers must not run it (the ECall surface discards the enclave).
pub fn load(binary: &[u8], mem: &mut Memory) -> Result<LoadedProgram, LoadError> {
    let layout: EnclaveLayout = mem.layout().clone();
    let obj = ObjectFile::parse(binary)?;
    let code_hash = sha256(binary);
    let r = resolve(&obj, &layout)?;

    // Copy the images into the enclave (privileged loader path) and zero
    // the bss window.
    mem.poke_bytes(layout.code.start, &r.text).expect("text fits code window");
    mem.poke_bytes(r.rodata_base, &obj.rodata).expect("rodata fits heap");
    mem.poke_bytes(r.data_base, &r.data).expect("data fits heap");
    let zeros = vec![0u8; (r.data_end - r.bss_base) as usize];
    mem.poke_bytes(r.bss_base, &zeros).expect("bss fits heap");

    // Write and seal the branch table.
    for (i, addr) in r.ibt_addresses.iter().enumerate() {
        mem.poke_u64(layout.branch_table.start + (i as u64) * 8, *addr)
            .expect("table fits reserved page");
    }
    mem.set_region_perm(layout.branch_table, PagePerm::R);

    Ok(LoadedProgram {
        entry_va: r.entry_va,
        code_len: r.text.len(),
        ibt_offsets: r.ibt_offsets,
        ibt_addresses: r.ibt_addresses,
        symbols: r.symbols,
        data_end: r.data_end,
        code_hash,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySet;
    use crate::producer::produce;
    use deflection_sgx_sim::layout::MemConfig;

    const SRC: &str = "
        var g: [int; 8] = {1, 2, 3};
        fn main() -> int { g[3] = 4; return g[0]; }
    ";

    fn fresh_mem() -> Memory {
        Memory::new(EnclaveLayout::new(MemConfig::small()))
    }

    #[test]
    fn loads_and_relocates() {
        let obj = produce(SRC, &PolicySet::none()).unwrap();
        let mut mem = fresh_mem();
        let loaded = load(&obj.serialize(), &mut mem).unwrap();
        let layout = mem.layout().clone();
        assert_eq!(loaded.entry_va, layout.code.start + obj.symbol("__start").unwrap().offset);
        // The initialized global must be present in the heap image.
        let g_va = loaded.symbols["g"];
        assert_eq!(mem.peek_u64(g_va).unwrap(), 1);
        assert_eq!(mem.peek_u64(g_va + 8).unwrap(), 2);
        assert_eq!(mem.peek_u64(g_va + 24).unwrap(), 0);
        assert!(loaded.data_end > layout.heap.start);
        assert_eq!(loaded.code_hash, sha256(&obj.serialize()));
    }

    #[test]
    fn branch_table_written_and_sealed() {
        let src = "
            fn h() {}
            fn main() -> int { var f: fn() = &h; f(); return 0; }
        ";
        let obj = produce(src, &PolicySet::none()).unwrap();
        let mut mem = fresh_mem();
        let loaded = load(&obj.serialize(), &mut mem).unwrap();
        let layout = mem.layout().clone();
        assert_eq!(loaded.ibt_addresses.len(), 1);
        assert_eq!(mem.peek_u64(layout.branch_table.start).unwrap(), loaded.ibt_addresses[0]);
        // Sealed: the running binary cannot overwrite the table.
        assert!(mem.store(layout.branch_table.start, 8, 0).is_err());
    }

    #[test]
    fn garbage_rejected() {
        let mut mem = fresh_mem();
        assert!(matches!(load(b"not an object", &mut mem), Err(LoadError::Malformed(_))));
    }

    #[test]
    fn oversized_text_rejected() {
        let mut obj = produce(SRC, &PolicySet::none()).unwrap();
        obj.text = vec![0; (MemConfig::small().code_size + 1) as usize];
        let mut mem = fresh_mem();
        assert!(matches!(
            load(&obj.serialize(), &mut mem),
            Err(LoadError::TooLarge { section: "text" })
        ));
    }

    #[test]
    fn oversized_bss_rejected() {
        let mut obj = produce(SRC, &PolicySet::none()).unwrap();
        obj.bss_size = MemConfig::small().heap_size + 1;
        let mut mem = fresh_mem();
        assert!(matches!(
            load(&obj.serialize(), &mut mem),
            Err(LoadError::TooLarge { section: "data" })
        ));
    }

    #[test]
    fn bad_ibt_entry_rejected() {
        let mut obj = produce(SRC, &PolicySet::none()).unwrap();
        obj.indirect_branch_table.push("g".into()); // a data symbol
        let mut mem = fresh_mem();
        assert!(matches!(load(&obj.serialize(), &mut mem), Err(LoadError::BadIndirectTarget(_))));
        let mut obj2 = produce(SRC, &PolicySet::none()).unwrap();
        obj2.indirect_branch_table.push("ghost".into());
        assert!(matches!(
            load(&obj2.serialize(), &mut fresh_mem()),
            Err(LoadError::UndefinedSymbol(_))
        ));
    }

    #[test]
    fn abs64_relocations_resolve_to_heap_addresses() {
        let obj = produce(SRC, &PolicySet::none()).unwrap();
        assert!(!obj.relocations.is_empty());
        let mut mem = fresh_mem();
        let loaded = load(&obj.serialize(), &mut mem).unwrap();
        // Find one MovRI in the loaded code whose imm equals the g address.
        let g_va = loaded.symbols["g"];
        let code = mem.peek_bytes(mem.layout().code.start, loaded.code_len).unwrap().to_vec();
        let d = deflection_isa::disassemble(
            &code,
            (loaded.entry_va - mem.layout().code.start) as usize,
            &loaded.ibt_offsets,
        )
        .unwrap();
        let found = d.insts().iter().any(
            |(_, inst, _)| matches!(inst, deflection_isa::Inst::MovRI { imm, .. } if *imm == g_va),
        );
        assert!(found, "relocated global address must appear in code");
    }
}
