//! The trusted code consumer inside the bootstrap enclave: dynamic loader,
//! policy verifier and immediate rewriter (paper Fig. 2/3, Section IV-D).
//!
//! The consumer is deliberately tiny and does no binary rewriting beyond
//! relocation and placeholder substitution — all heavy lifting happened in
//! the untrusted producer, which is what lets the TCB stay small
//! (Table I of the paper).

pub mod incremental;
pub mod loader;
pub mod rewriter;
pub mod verifier;

use crate::policy::Manifest;
use deflection_sgx_sim::layout::EnclaveLayout;
use deflection_sgx_sim::mem::Memory;
use std::error::Error as StdError;
use std::fmt;

pub use loader::{load, resolve, LoadError, LoadedProgram, ResolvedImage};
pub use rewriter::{rewrite, Bindings};
pub use verifier::{
    discover, verify, verify_threaded, verify_with_layout, verify_with_layout_threaded, Verified,
    VerifyError,
};

use crate::annotations::SSA_MARKER_VALUE;

/// Rejection reasons of the full install pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum InstallError {
    /// The loader rejected the binary.
    Load(LoadError),
    /// The verifier rejected the binary.
    Verify(VerifyError),
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::Load(e) => write!(f, "load rejected: {e}"),
            InstallError::Verify(e) => write!(f, "verification rejected: {e}"),
        }
    }
}

impl StdError for InstallError {}

impl From<LoadError> for InstallError {
    fn from(e: LoadError) -> Self {
        InstallError::Load(e)
    }
}

impl From<VerifyError> for InstallError {
    fn from(e: VerifyError) -> Self {
        InstallError::Verify(e)
    }
}

/// A fully installed program: loaded, verified, rewritten, control state
/// armed; ready for the runtime to execute.
#[derive(Debug, Clone)]
pub struct Installed {
    /// Loader output (addresses, symbols, code hash).
    pub program: LoadedProgram,
    /// Verifier output (disassembly and annotation instances).
    pub verified: Verified,
}

/// The whole consumer pipeline: parse + relocate (steps 2–3 of Fig. 3),
/// verify (step 4), rewrite immediates (step 5), and arm the shadow stack,
/// SSA marker and AEX counter.
///
/// # Errors
///
/// Returns [`InstallError`] on any load or verification failure; on error
/// the enclave must be discarded, never run.
pub fn install(
    binary: &[u8],
    manifest: &Manifest,
    mem: &mut Memory,
) -> Result<Installed, InstallError> {
    install_impl(binary, manifest, mem, true)
}

/// The trusted-replay variant of [`install`]: runs the loader and
/// re-derives the rewriter inputs via [`discover`], but executes **no**
/// policy check phase. It exists solely for the sealed install cache
/// (`crate::sealed`), whose MAC attests that the full verifying pipeline
/// already accepted the identical binary under the identical measurement
/// and manifest; because the pipeline is deterministic in those inputs,
/// this rebuild produces the byte-identical post-rewrite image. Calling it
/// on a binary without such a proof installs unverified code — never do
/// that.
///
/// # Errors
///
/// Returns [`InstallError`] if the loader rejects the binary or the image
/// cannot even be re-derived (corrupted code window).
pub fn install_trusted(
    binary: &[u8],
    manifest: &Manifest,
    mem: &mut Memory,
) -> Result<Installed, InstallError> {
    install_impl(binary, manifest, mem, false)
}

fn install_impl(
    binary: &[u8],
    manifest: &Manifest,
    mem: &mut Memory,
    verify: bool,
) -> Result<Installed, InstallError> {
    let layout: EnclaveLayout = mem.layout().clone();
    let program = load(binary, mem)?;
    let code = mem
        .peek_bytes(layout.code.start, program.code_len)
        .expect("loader wrote the code window")
        .to_vec();
    let entry = (program.entry_va - layout.code.start) as usize;
    let verified = if verify {
        verify_with_layout(&code, entry, &program.ibt_offsets, &manifest.policy, &layout)?
    } else {
        discover(&code, entry, &program.ibt_offsets)?
    };
    let bindings =
        Bindings::from_layout(&layout, program.ibt_addresses.len() as u64, manifest.aex_threshold);
    rewrite(mem, layout.code.start, &verified, &bindings);

    // Arm the control state the annotations rely on.
    mem.poke_u64(layout.shadow_sp_slot(), layout.shadow_stack.end).expect("control page mapped");
    mem.poke_u64(layout.aex_count_slot(), 0).expect("control page mapped");
    mem.poke_u64(layout.ssa_marker_slot(), SSA_MARKER_VALUE as u64).expect("ssa mapped");

    Ok(Installed { program, verified })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySet;
    use crate::producer::produce;
    use deflection_sgx_sim::layout::MemConfig;

    const SRC: &str = "
        var g: [int; 4];
        fn main() -> int { g[0] = 1; return g[0]; }
    ";

    #[test]
    fn install_accepts_matching_policy() {
        let manifest = Manifest::ccaas();
        let obj = produce(SRC, &manifest.policy).unwrap();
        let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
        let installed = install(&obj.serialize(), &manifest, &mut mem).unwrap();
        assert!(!installed.verified.instances.is_empty());
        // Control state armed.
        let layout = mem.layout().clone();
        assert_eq!(mem.peek_u64(layout.shadow_sp_slot()).unwrap(), layout.shadow_stack.end);
        assert_eq!(mem.peek_u64(layout.ssa_marker_slot()).unwrap(), SSA_MARKER_VALUE as u64);
    }

    #[test]
    fn trusted_install_rebuilds_identical_image() {
        let manifest = Manifest::ccaas();
        let obj = produce(SRC, &manifest.policy).unwrap();
        let mut a = Memory::new(EnclaveLayout::new(MemConfig::small()));
        let verified = install(&obj.serialize(), &manifest, &mut a).unwrap();
        let mut b = Memory::new(EnclaveLayout::new(MemConfig::small()));
        let trusted = install_trusted(&obj.serialize(), &manifest, &mut b).unwrap();
        // The deterministic pipeline re-derives the byte-identical code
        // window and the same instance set without running any checks.
        let layout = a.layout().clone();
        let len = layout.code.len() as usize;
        assert_eq!(
            a.peek_bytes(layout.code.start, len).unwrap(),
            b.peek_bytes(layout.code.start, len).unwrap()
        );
        assert_eq!(verified.verified.instances.len(), trusted.verified.instances.len());
        assert_eq!(verified.program.code_hash, trusted.program.code_hash);
    }

    #[test]
    fn install_rejects_underinstrumented_binary() {
        let manifest = Manifest::ccaas(); // requires full policy
        let obj = produce(SRC, &PolicySet::p1()).unwrap();
        let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
        let err = install(&obj.serialize(), &manifest, &mut mem).unwrap_err();
        assert!(matches!(err, InstallError::Verify(_)));
    }

    #[test]
    fn install_rejects_garbage() {
        let manifest = Manifest::ccaas();
        let mut mem = Memory::new(EnclaveLayout::new(MemConfig::small()));
        assert!(matches!(install(b"garbage", &manifest, &mut mem), Err(InstallError::Load(_))));
    }
}
