//! Per-tenant registration for the multi-tenant admission frontend.
//!
//! A *tenant* is one principal whose verified binary the shared pool
//! serves: the Confidential-Attestation reading of the paper's CCaaS
//! setting, where many mutually distrusting users submit code to one
//! bootstrap enclave fleet. Registration is pure untrusted host
//! bookkeeping — it validates that the tenant's declared budgets fit
//! inside the pool manifest the enclaves were built with, pins the
//! binary by its code hash, and assigns the tenant a private nonce
//! channel. Nothing here is inside the TCB: a lying registry can only
//! deny service, never widen what the in-enclave verifier accepts.

use crate::policy::Manifest;
use deflection_crypto::sha256::sha256;

/// Opaque handle naming a registered tenant. Returned by
/// [`TenantRegistry::register`]; dense (registration order), so it doubles
/// as an index into per-tenant tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

/// Everything a principal declares when joining the serving fleet.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Human-readable tenant name (diagnostics only; not a key).
    pub name: String,
    /// The tenant's produced binary (object-file serialization). Installed
    /// on demand when the dispatcher forms a batch for this tenant.
    pub binary: Vec<u8>,
    /// The manifest the tenant expects to run under. Must agree with the
    /// pool manifest on the policy set, and its budgets must not exceed
    /// the pool's (the enclave enforces the pool manifest; a tenant
    /// declaring more would silently get less).
    pub manifest: Manifest,
    /// Maximum requests this tenant may have queued or executing at once.
    /// Admission sheds (not blocks) beyond it, so one chatty tenant
    /// cannot monopolize the bounded queue.
    pub max_in_flight: usize,
    /// Optional host-side cap on total output-record plaintext bytes over
    /// the tenant's lifetime, mirroring the enclave's own
    /// `lifetime_output_budget` ledger. Admission sheds new requests once
    /// the delivered-bytes ledger reaches it — a cheap host-side
    /// circuit breaker in front of the enclave's authoritative one.
    pub lifetime_output_budget: Option<u64>,
}

/// Registration error: the tenant's declaration does not fit the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TenantRejected {
    /// The tenant's policy set differs from the pool manifest's. The
    /// enclaves verify against the pool policy, so a mismatched tenant
    /// would be verified under rules it did not ask for.
    PolicyMismatch,
    /// The tenant declared a per-run output budget larger than the pool
    /// manifest's — the enclave would fault the run before the tenant's
    /// declared budget is reached.
    BudgetExceedsPool,
    /// `max_in_flight` was zero: the tenant could never admit anything.
    ZeroInFlight,
}

impl std::fmt::Display for TenantRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantRejected::PolicyMismatch => {
                write!(f, "tenant policy set differs from the pool manifest")
            }
            TenantRejected::BudgetExceedsPool => {
                write!(f, "tenant per-run output budget exceeds the pool's")
            }
            TenantRejected::ZeroInFlight => write!(f, "max_in_flight must be at least 1"),
        }
    }
}

impl std::error::Error for TenantRejected {}

/// Monotonic per-tenant serving counters, maintained by the admission
/// frontend (enqueue/shed) and dispatcher (admit/complete/output bytes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests accepted into the bounded queue.
    pub admitted: u64,
    /// Requests whose verdict (report *or* error) was delivered.
    pub completed: u64,
    /// Requests rejected with a typed `Overloaded` error.
    pub shed: u64,
    /// Total output-record plaintext bytes delivered to this tenant,
    /// charged against `lifetime_output_budget` when set.
    pub output_bytes: u64,
}

/// One registered tenant: its declaration plus live serving state.
#[derive(Debug, Clone)]
pub struct Tenant {
    /// The declaration given at registration.
    pub config: TenantConfig,
    /// SHA-256 of `config.binary` — the dispatcher's install-skip key,
    /// matching [`crate::pool::EnclavePool::active_code_hash`].
    pub code_hash: [u8; 32],
    /// The tenant's reserved nonce-channel namespace (its registration
    /// index): response nonces for tenant `t` live in channel `t`, so two
    /// tenants' sealed outputs can never be confused or replayed across
    /// tenants even by a malicious host scheduler.
    pub nonce_channel: u32,
    /// Requests currently queued or executing.
    pub in_flight: usize,
    /// Serving counters.
    pub stats: TenantStats,
}

/// The tenant table the admission frontend consults on every submit.
///
/// Created against the pool manifest; every registration is validated
/// against it so an admitted request can never reach an enclave whose
/// manifest contradicts what the tenant declared.
#[derive(Debug, Clone)]
pub struct TenantRegistry {
    pool_manifest: Manifest,
    tenants: Vec<Tenant>,
}

impl TenantRegistry {
    /// Creates an empty registry for a pool built with `pool_manifest`.
    #[must_use]
    pub fn new(pool_manifest: &Manifest) -> Self {
        TenantRegistry { pool_manifest: pool_manifest.clone(), tenants: Vec::new() }
    }

    /// Registers a tenant, validating its declaration against the pool
    /// manifest, and returns its dense id.
    ///
    /// # Errors
    ///
    /// [`TenantRejected`] when the policy sets differ, the tenant's
    /// per-run output budget exceeds the pool's, or `max_in_flight` is 0.
    pub fn register(&mut self, config: TenantConfig) -> Result<TenantId, TenantRejected> {
        if config.manifest.policy != self.pool_manifest.policy {
            return Err(TenantRejected::PolicyMismatch);
        }
        if config.manifest.output_budget > self.pool_manifest.output_budget {
            return Err(TenantRejected::BudgetExceedsPool);
        }
        if config.max_in_flight == 0 {
            return Err(TenantRejected::ZeroInFlight);
        }
        let id = TenantId(u32::try_from(self.tenants.len()).expect("fewer than 2^32 tenants"));
        let code_hash = sha256(&config.binary);
        self.tenants.push(Tenant {
            config,
            code_hash,
            nonce_channel: id.0,
            in_flight: 0,
            stats: TenantStats::default(),
        });
        Ok(id)
    }

    /// The number of registered tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether no tenants are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Looks a tenant up by id.
    #[must_use]
    pub fn get(&self, id: TenantId) -> Option<&Tenant> {
        self.tenants.get(id.0 as usize)
    }

    /// Mutable lookup (admission/dispatcher bookkeeping).
    pub fn get_mut(&mut self, id: TenantId) -> Option<&mut Tenant> {
        self.tenants.get_mut(id.0 as usize)
    }

    /// Iterates over `(id, tenant)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (TenantId, &Tenant)> {
        self.tenants.iter().enumerate().map(|(i, t)| (TenantId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicySet;

    fn config(name: &str) -> TenantConfig {
        TenantConfig {
            name: name.to_string(),
            binary: vec![1, 2, 3],
            manifest: Manifest::ccaas(),
            max_in_flight: 4,
            lifetime_output_budget: None,
        }
    }

    #[test]
    fn register_assigns_dense_ids_and_private_nonce_channels() {
        let mut reg = TenantRegistry::new(&Manifest::ccaas());
        let a = reg.register(config("a")).unwrap();
        let b = reg.register(config("b")).unwrap();
        assert_eq!(a, TenantId(0));
        assert_eq!(b, TenantId(1));
        assert_eq!(reg.get(a).unwrap().nonce_channel, 0);
        assert_eq!(reg.get(b).unwrap().nonce_channel, 1);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn register_pins_binary_by_code_hash() {
        let mut reg = TenantRegistry::new(&Manifest::ccaas());
        let id = reg.register(config("a")).unwrap();
        assert_eq!(reg.get(id).unwrap().code_hash, sha256(&[1, 2, 3]));
    }

    #[test]
    fn policy_mismatch_is_rejected() {
        let mut reg = TenantRegistry::new(&Manifest::ccaas());
        let mut c = config("lax");
        c.manifest.policy = PolicySet::none();
        assert_eq!(reg.register(c), Err(TenantRejected::PolicyMismatch));
    }

    #[test]
    fn oversized_budget_is_rejected() {
        let mut reg = TenantRegistry::new(&Manifest::ccaas());
        let mut c = config("greedy");
        c.manifest.output_budget = Manifest::ccaas().output_budget + 1;
        assert_eq!(reg.register(c), Err(TenantRejected::BudgetExceedsPool));
    }

    #[test]
    fn zero_in_flight_is_rejected() {
        let mut reg = TenantRegistry::new(&Manifest::ccaas());
        let mut c = config("idle");
        c.max_in_flight = 0;
        assert_eq!(reg.register(c), Err(TenantRejected::ZeroInFlight));
    }
}
