//! Multi-tenant admission frontend: a bounded request queue with adaptive
//! batching and typed load shedding in front of
//! [`crate::pool::EnclavePool`].
//!
//! ```text
//!   clients (any thread)                 dispatcher (owns &mut pool)
//!  ┌─────────────────────┐   bounded    ┌─────────────────────────────┐
//!  │ submit(tenant, req) │──▶ queue ───▶│ drain ≤ batch_max or until  │
//!  │   → Ticket | Shed   │  (VecDeque)  │ batch_wait deadline, group  │
//!  │ ticket.wait()       │◀── slots ────│ by tenant, serve_parallel,  │
//!  └─────────────────────┘              │ deliver verdicts            │
//!                                       └─────────────────────────────┘
//! ```
//!
//! Everything in this module runs **outside** the enclave: admission,
//! queueing, batching and shedding decisions add zero TCB lines (see
//! `table1_tcb` — this file is deliberately absent from its source
//! list). A malicious host already controls scheduling, so the only
//! thing shedding can do is deny service, which the threat model always
//! permitted; it can never forge a verdict, because every report still
//! comes sealed from an enclave worker.
//!
//! Backpressure model: `submit` never blocks. Past the queue's
//! high-water mark — or past a tenant's `max_in_flight` or lifetime
//! output budget — it returns a typed [`Overloaded`] immediately, so
//! callers see bounded tail latency instead of a collapsing queue. Each
//! accepted request gets its [`TraceId`] minted *at enqueue*, so the
//! flight recorder shows queueing delay as its own lane segment
//! (Enqueue → Admit → Claim).

use crate::pool::EnclavePool;
use crate::runtime::{EcallError, RunReport};
use crate::tenant::{TenantConfig, TenantId, TenantRegistry, TenantRejected, TenantStats};
use deflection_telemetry::flightrec::{self, EventKind, TraceId};
use deflection_telemetry::METRICS;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for the admission frontend.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Hard capacity of the bounded queue; `submit` sheds at
    /// `high_water` which must be ≤ this.
    pub queue_capacity: usize,
    /// Queue depth at (and beyond) which new submissions are shed with
    /// [`Overloaded::QueueFull`]. Keeping this below `queue_capacity`
    /// leaves headroom so depth metrics can distinguish "shedding" from
    /// "hard full".
    pub high_water: usize,
    /// Largest batch the dispatcher hands to the pool at once.
    pub batch_max: usize,
    /// How long the dispatcher waits for a batch to fill before serving a
    /// partial one — the adaptive-batching knob: under load batches reach
    /// `batch_max` instantly (amortizing pool fan-out), while a trickle
    /// is served within one `batch_wait` of arriving.
    pub batch_wait: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 1024,
            high_water: 896,
            batch_max: 64,
            batch_wait: Duration::from_millis(2),
        }
    }
}

/// Typed shed verdict: the request never entered the queue. Host-side
/// only — deliberately **not** an [`EcallError`] variant, because no
/// enclave was involved in the decision.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Overloaded {
    /// Queue depth was at or past the high-water mark.
    QueueFull {
        /// Depth observed at the shed decision.
        depth: usize,
    },
    /// The tenant already has `limit` requests queued or executing.
    TenantInFlight {
        /// The tenant's `max_in_flight`.
        limit: usize,
    },
    /// The tenant's host-side lifetime output ledger is exhausted.
    TenantBudget,
    /// The tenant id was never registered.
    UnknownTenant,
    /// The frontend was closed; no further submissions are accepted.
    Closed,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Overloaded::QueueFull { depth } => {
                write!(f, "admission queue past high-water mark (depth {depth})")
            }
            Overloaded::TenantInFlight { limit } => {
                write!(f, "tenant at max in-flight requests ({limit})")
            }
            Overloaded::TenantBudget => write!(f, "tenant lifetime output budget exhausted"),
            Overloaded::UnknownTenant => write!(f, "unknown tenant"),
            Overloaded::Closed => write!(f, "admission frontend closed"),
        }
    }
}

impl std::error::Error for Overloaded {}

/// Where a client's verdict is delivered: a one-shot slot the dispatcher
/// fills and the ticket holder waits on.
#[derive(Debug, Default)]
struct ResultSlot {
    cell: Mutex<Option<Result<RunReport, EcallError>>>,
    ready: Condvar,
}

/// Receipt for an accepted request. Exactly one verdict will arrive:
/// the dispatcher serves every queued request before
/// [`AdmissionFrontend::run_dispatcher`] returns, even for requests it
/// drained after `close()`.
#[derive(Debug)]
pub struct Ticket {
    /// Global request id, assigned in admission order across all tenants.
    /// This is the id batch errors are reported under (see
    /// [`BatchOutcome::first_error`]).
    pub global_id: u64,
    /// The request's causal trace, minted at enqueue.
    pub trace: TraceId,
    slot: Arc<ResultSlot>,
}

impl Ticket {
    /// Blocks until the dispatcher delivers this request's verdict.
    ///
    /// # Errors
    ///
    /// Returns the per-request [`EcallError`] when the run failed —
    /// including a clone of the install error when the tenant's own
    /// binary failed verification mid-stream.
    ///
    /// # Panics
    ///
    /// Panics if the delivering dispatcher thread panicked (poisoned
    /// slot), which would otherwise deadlock this wait forever.
    pub fn wait(self) -> Result<RunReport, EcallError> {
        let mut cell = self.slot.cell.lock().expect("slot not poisoned");
        loop {
            if let Some(verdict) = cell.take() {
                return verdict;
            }
            cell = self.slot.ready.wait(cell).expect("slot not poisoned");
        }
    }

    /// Non-blocking probe: the verdict if it has already been delivered.
    ///
    /// # Errors
    ///
    /// Same per-request error contract as [`Ticket::wait`].
    ///
    /// # Panics
    ///
    /// Panics if the delivering dispatcher thread panicked.
    pub fn try_wait(&self) -> Option<Result<RunReport, EcallError>> {
        self.slot.cell.lock().expect("slot not poisoned").take()
    }
}

/// One queued request.
struct Pending {
    global_id: u64,
    tenant: TenantId,
    payload: Vec<u8>,
    trace: TraceId,
    enqueued_at: Instant,
    slot: Arc<ResultSlot>,
}

/// Everything behind the frontend mutex.
struct QueueState {
    queue: VecDeque<Pending>,
    registry: TenantRegistry,
    next_global: u64,
    closed: bool,
}

/// Outcome of one dispatcher batch, in global-request-id terms.
///
/// Restates [`EnclavePool::serve_parallel`]'s deterministic
/// lowest-request-index error rule per admission batch: indices inside a
/// drained batch are batch-relative, so the rule is re-expressed as "the
/// error of the **lowest global request id** that failed in this batch".
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Global ids served in this batch, in drain (admission) order.
    pub global_ids: Vec<u64>,
    /// `(global_id, error)` of the failed request with the lowest global
    /// id in the batch — the batch-level error a batch-granular caller
    /// would see, independent of worker count and thread timing.
    pub first_error: Option<(u64, EcallError)>,
}

/// Summary returned by [`AdmissionFrontend::run_dispatcher`].
#[derive(Debug, Clone, Default)]
pub struct DispatcherReport {
    /// Batches formed, in service order.
    pub batches: Vec<BatchOutcome>,
    /// Total requests served (every one delivered exactly one verdict).
    pub served: u64,
}

/// The bounded multi-tenant admission queue. Share it via reference (or
/// `Arc`) across any number of submitting threads; exactly one thread at
/// a time runs [`AdmissionFrontend::run_dispatcher`], because the
/// dispatcher needs `&mut` access to the pool it feeds.
pub struct AdmissionFrontend {
    state: Mutex<QueueState>,
    /// Signaled on enqueue and on close, waking the dispatcher.
    items: Condvar,
    config: AdmissionConfig,
}

impl AdmissionFrontend {
    /// Creates a frontend for a pool built with `pool_manifest`.
    ///
    /// # Panics
    ///
    /// Panics if `high_water` exceeds `queue_capacity` or `batch_max`
    /// is 0 — configuration bugs, not load conditions.
    #[must_use]
    pub fn new(config: AdmissionConfig, registry: TenantRegistry) -> Self {
        assert!(
            config.high_water <= config.queue_capacity,
            "high_water must not exceed queue_capacity"
        );
        assert!(config.batch_max > 0, "batch_max must be at least 1");
        AdmissionFrontend {
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(config.queue_capacity),
                registry,
                next_global: 0,
                closed: false,
            }),
            items: Condvar::new(),
            config,
        }
    }

    /// Registers a tenant after construction (the registry is otherwise
    /// sealed behind the frontend's lock).
    ///
    /// # Errors
    ///
    /// Propagates [`TenantRejected`] from
    /// [`TenantRegistry::register`].
    pub fn register(&self, config: TenantConfig) -> Result<TenantId, TenantRejected> {
        self.state.lock().expect("admission lock").registry.register(config)
    }

    /// A snapshot of a tenant's serving counters.
    #[must_use]
    pub fn tenant_stats(&self, id: TenantId) -> Option<TenantStats> {
        self.state.lock().expect("admission lock").registry.get(id).map(|t| t.stats.clone())
    }

    /// Current queue depth (diagnostics; racy by nature).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state.lock().expect("admission lock").queue.len()
    }

    /// Submits one request for `tenant`. Never blocks: either the request
    /// is accepted (trace minted, Enqueue recorded, dispatcher woken) and
    /// a [`Ticket`] is returned, or it is shed immediately with a typed
    /// [`Overloaded`].
    ///
    /// # Errors
    ///
    /// [`Overloaded`] when the frontend is closed, the tenant is unknown,
    /// the tenant's lifetime output ledger or in-flight cap is exhausted,
    /// or queue depth is at the high-water mark. Shed decisions are
    /// counted per reason in `METRICS` and recorded as
    /// [`EventKind::Shed`] flight events.
    pub fn submit(&self, tenant: TenantId, payload: Vec<u8>) -> Result<Ticket, Overloaded> {
        let mut state = self.state.lock().expect("admission lock");
        if state.closed {
            return Err(Overloaded::Closed);
        }
        let depth = state.queue.len();
        let Some(t) = state.registry.get_mut(tenant) else {
            return Err(Overloaded::UnknownTenant);
        };
        if let Some(budget) = t.config.lifetime_output_budget {
            if t.stats.output_bytes >= budget {
                t.stats.shed += 1;
                METRICS.admission_shed_lifetime_budget.add(1);
                flightrec::record(EventKind::Shed, TraceId::NONE, depth as u64, 2);
                return Err(Overloaded::TenantBudget);
            }
        }
        if t.in_flight >= t.config.max_in_flight {
            let limit = t.config.max_in_flight;
            t.stats.shed += 1;
            METRICS.admission_shed_tenant_in_flight.add(1);
            flightrec::record(EventKind::Shed, TraceId::NONE, depth as u64, 1);
            return Err(Overloaded::TenantInFlight { limit });
        }
        if depth >= self.config.high_water {
            t.stats.shed += 1;
            METRICS.admission_shed_queue_full.add(1);
            flightrec::record(EventKind::Shed, TraceId::NONE, depth as u64, 0);
            return Err(Overloaded::QueueFull { depth });
        }
        t.in_flight += 1;
        t.stats.admitted += 1;
        let global_id = state.next_global;
        state.next_global += 1;
        // The trace is minted HERE, at enqueue — not when a worker claims
        // the request — so the Enqueue→Admit gap is visible queueing
        // delay in the timeline.
        let trace = TraceId::mint();
        flightrec::record(EventKind::Enqueue, trace, global_id, (depth + 1) as u64);
        METRICS.admission_enqueued.add(1);
        let slot = Arc::new(ResultSlot::default());
        state.queue.push_back(Pending {
            global_id,
            tenant,
            payload,
            trace,
            enqueued_at: Instant::now(),
            slot: Arc::clone(&slot),
        });
        METRICS.admission_queue_depth.set(state.queue.len() as i64);
        drop(state);
        self.items.notify_one();
        Ok(Ticket { global_id, trace, slot })
    }

    /// Closes the frontend: subsequent `submit`s shed with
    /// [`Overloaded::Closed`], and the dispatcher drains what is already
    /// queued and returns.
    pub fn close(&self) {
        self.state.lock().expect("admission lock").closed = true;
        self.items.notify_all();
    }

    /// Runs the dispatcher loop until the frontend is closed **and** the
    /// queue is drained. Exactly one thread may run this at a time (it
    /// borrows the pool mutably); every request accepted by `submit` —
    /// before or during the loop — is served and has its verdict
    /// delivered before this returns, so no ticket ever waits forever.
    ///
    /// Batch formation is adaptive: the dispatcher sleeps until the first
    /// request arrives, then drains up to `batch_max` requests or waits
    /// at most `batch_wait` for the batch to fill, whichever comes first.
    /// Each drained batch is grouped by tenant (first-occurrence order,
    /// deterministic in admission order); each tenant group installs the
    /// tenant's binary if it is not already the pool's active image and
    /// is served through
    /// [`EnclavePool::serve_parallel_each_traced`] with the traces minted
    /// at enqueue.
    ///
    /// # Panics
    ///
    /// Panics if a submitting thread panicked while holding the admission
    /// lock.
    pub fn run_dispatcher(&self, pool: &mut EnclavePool, fuel: u64) -> DispatcherReport {
        let mut report = DispatcherReport::default();
        loop {
            let drained = {
                let mut state = self.state.lock().expect("admission lock");
                // Sleep until there is work or we are closed.
                while state.queue.is_empty() && !state.closed {
                    state = self.items.wait(state).expect("admission lock");
                }
                if state.queue.is_empty() && state.closed {
                    return report;
                }
                // Adaptive fill: give the batch up to `batch_wait` to
                // reach `batch_max`, unless we are closed (drain fast).
                let deadline = Instant::now() + self.config.batch_wait;
                while state.queue.len() < self.config.batch_max && !state.closed {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (s, timeout) =
                        self.items.wait_timeout(state, deadline - now).expect("admission lock");
                    state = s;
                    if timeout.timed_out() {
                        break;
                    }
                }
                let take = state.queue.len().min(self.config.batch_max);
                let drained: Vec<Pending> = state.queue.drain(..take).collect();
                METRICS.admission_queue_depth.set(state.queue.len() as i64);
                drained
            };
            if drained.is_empty() {
                continue;
            }
            let now = Instant::now();
            for p in &drained {
                flightrec::record(EventKind::Admit, p.trace, p.global_id, drained.len() as u64);
                METRICS.admission_admitted.add(1);
                METRICS
                    .admission_wait_ns
                    .observe(now.duration_since(p.enqueued_at).as_nanos() as u64);
            }
            METRICS.admission_batch_size.observe(drained.len() as u64);
            report.batches.push(self.serve_drained(pool, fuel, drained));
            report.served += report.batches.last().map_or(0, |b| b.global_ids.len() as u64);
        }
    }

    /// Serves one drained batch: group by tenant, install-if-needed,
    /// serve, deliver.
    fn serve_drained(
        &self,
        pool: &mut EnclavePool,
        fuel: u64,
        drained: Vec<Pending>,
    ) -> BatchOutcome {
        let global_ids: Vec<u64> = drained.iter().map(|p| p.global_id).collect();
        // Group batch positions by tenant, preserving first-occurrence
        // order so the grouping is a pure function of admission order.
        let mut groups: Vec<(TenantId, Vec<usize>)> = Vec::new();
        for (pos, p) in drained.iter().enumerate() {
            match groups.iter_mut().find(|(t, _)| *t == p.tenant) {
                Some((_, idxs)) => idxs.push(pos),
                None => groups.push((p.tenant, vec![pos])),
            }
        }
        let mut first_error: Option<(u64, EcallError)> = None;
        for (tenant, idxs) in groups {
            let (code_hash, binary) = {
                let state = self.state.lock().expect("admission lock");
                let t = state.registry.get(tenant).expect("registered tenant");
                (t.code_hash, t.config.binary.clone())
            };
            let verdicts: Vec<Result<RunReport, EcallError>> = if pool.active_code_hash()
                == Some(code_hash)
            {
                let payloads: Vec<&[u8]> =
                    idxs.iter().map(|&i| drained[i].payload.as_slice()).collect();
                let traces: Vec<TraceId> = idxs.iter().map(|&i| drained[i].trace).collect();
                pool.serve_parallel_each_traced(&payloads, &traces, fuel)
            } else {
                match pool.install_all(&binary) {
                    Ok(_) => {
                        let payloads: Vec<&[u8]> =
                            idxs.iter().map(|&i| drained[i].payload.as_slice()).collect();
                        let traces: Vec<TraceId> = idxs.iter().map(|&i| drained[i].trace).collect();
                        pool.serve_parallel_each_traced(&payloads, &traces, fuel)
                    }
                    // A rejected tenant binary fails the whole tenant
                    // group — each of its requests gets its own clone
                    // of the install error — but never its
                    // batch-mates from other tenants.
                    Err(e) => idxs.iter().map(|_| Err(e.clone())).collect(),
                }
            };
            let mut state = self.state.lock().expect("admission lock");
            for (&pos, verdict) in idxs.iter().zip(verdicts) {
                let p = &drained[pos];
                if let Err(e) = &verdict {
                    // Lowest **global id**, not lowest batch-relative
                    // index: admission batches interleave tenants, so the
                    // deterministic error rule must be restated in global
                    // terms to stay independent of grouping.
                    if first_error.as_ref().is_none_or(|(g, _)| p.global_id < *g) {
                        first_error = Some((p.global_id, e.clone()));
                    }
                }
                let t = state.registry.get_mut(p.tenant).expect("registered tenant");
                t.in_flight -= 1;
                t.stats.completed += 1;
                if let Ok(r) = &verdict {
                    t.stats.output_bytes +=
                        r.records.iter().map(|rec| rec.len() as u64).sum::<u64>();
                }
                *p.slot.cell.lock().expect("slot lock") = Some(verdict);
                p.slot.ready.notify_all();
            }
        }
        BatchOutcome { global_ids, first_error }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Manifest, PolicySet};
    use crate::producer::produce;
    use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};

    const ECHO_SUM: &str = "
        fn main() -> int {
            var n: int = input_len();
            var s: int = 0;
            var i: int = 0;
            while (i < n) { s = s + input_byte(i); i = i + 1; }
            return s;
        }
    ";
    const FUEL: u64 = 10_000_000;

    fn manifest() -> Manifest {
        let mut m = Manifest::ccaas();
        m.policy = PolicySet::full();
        m
    }

    fn echo_binary() -> Vec<u8> {
        produce(ECHO_SUM, &manifest().policy).unwrap().serialize()
    }

    fn echo_pool(workers: usize) -> EnclavePool {
        let layout = EnclaveLayout::new(MemConfig::small());
        let mut pool = EnclavePool::new(&layout, &manifest(), workers);
        pool.set_owner_session([7; 32]);
        pool
    }

    fn tenant_config(name: &str, max_in_flight: usize) -> TenantConfig {
        TenantConfig {
            name: name.to_string(),
            binary: echo_binary(),
            manifest: manifest(),
            max_in_flight,
            lifetime_output_budget: None,
        }
    }

    fn frontend(config: AdmissionConfig) -> AdmissionFrontend {
        AdmissionFrontend::new(config, TenantRegistry::new(&manifest()))
    }

    #[test]
    fn submit_close_dispatch_delivers_every_verdict() {
        let fe = frontend(AdmissionConfig::default());
        let tenant = fe.register(tenant_config("t", 64)).unwrap();
        let tickets: Vec<Ticket> =
            (0..10u8).map(|i| fe.submit(tenant, vec![i, i, 1]).unwrap()).collect();
        fe.close();
        let mut pool = echo_pool(2);
        let report = fe.run_dispatcher(&mut pool, FUEL);
        assert_eq!(report.served, 10);
        for (i, t) in tickets.into_iter().enumerate() {
            let r = t.wait().unwrap();
            assert_eq!(r.exit.exit_value(), Some(i as u64 * 2 + 1));
        }
        let stats = fe.tenant_stats(tenant).unwrap();
        assert_eq!(stats.admitted, 10);
        assert_eq!(stats.completed, 10);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn global_ids_are_assigned_in_admission_order() {
        let fe = frontend(AdmissionConfig::default());
        let tenant = fe.register(tenant_config("t", 8)).unwrap();
        let a = fe.submit(tenant, vec![1]).unwrap();
        let b = fe.submit(tenant, vec![2]).unwrap();
        assert_eq!(a.global_id, 0);
        assert_eq!(b.global_id, 1);
    }

    #[test]
    fn queue_full_sheds_with_depth() {
        let fe = frontend(AdmissionConfig {
            queue_capacity: 4,
            high_water: 2,
            ..AdmissionConfig::default()
        });
        let tenant = fe.register(tenant_config("t", 64)).unwrap();
        fe.submit(tenant, vec![1]).unwrap();
        fe.submit(tenant, vec![2]).unwrap();
        assert_eq!(fe.submit(tenant, vec![3]).err(), Some(Overloaded::QueueFull { depth: 2 }));
        assert_eq!(fe.tenant_stats(tenant).unwrap().shed, 1);
        // Drain so the queued tickets are not leaked on a poisoned path.
        fe.close();
        let mut pool = echo_pool(1);
        fe.run_dispatcher(&mut pool, FUEL);
    }

    #[test]
    fn tenant_in_flight_cap_sheds_only_that_tenant() {
        let fe = frontend(AdmissionConfig::default());
        let small = fe.register(tenant_config("small", 1)).unwrap();
        let big = fe.register(tenant_config("big", 8)).unwrap();
        fe.submit(small, vec![1]).unwrap();
        assert_eq!(fe.submit(small, vec![2]).err(), Some(Overloaded::TenantInFlight { limit: 1 }));
        fe.submit(big, vec![3]).unwrap();
        fe.close();
        let mut pool = echo_pool(1);
        fe.run_dispatcher(&mut pool, FUEL);
    }

    #[test]
    fn lifetime_budget_sheds_before_enqueue() {
        let fe = frontend(AdmissionConfig::default());
        let mut cfg = tenant_config("capped", 8);
        cfg.lifetime_output_budget = Some(0);
        let tenant = fe.register(cfg).unwrap();
        assert_eq!(fe.submit(tenant, vec![1]).err(), Some(Overloaded::TenantBudget));
    }

    #[test]
    fn unknown_tenant_and_closed_are_typed() {
        let fe = frontend(AdmissionConfig::default());
        assert_eq!(fe.submit(TenantId(9), vec![1]).err(), Some(Overloaded::UnknownTenant));
        fe.close();
        let tenant_after_close = TenantId(0);
        assert_eq!(fe.submit(tenant_after_close, vec![1]).err(), Some(Overloaded::Closed));
    }

    #[test]
    fn verdicts_match_direct_serve_parallel_bit_for_bit() {
        // The admission layer must be a pure scheduler: same requests,
        // same per-request exits and record counts as handing the batch
        // to `serve_parallel` directly.
        let requests: Vec<Vec<u8>> = (0..12u8).map(|i| vec![i, 2 * i, 5]).collect();

        let mut direct_pool = echo_pool(2);
        direct_pool.install_all(&echo_binary()).unwrap();
        let direct = direct_pool.serve_parallel(&requests, FUEL).unwrap();

        let fe = frontend(AdmissionConfig::default());
        let tenant = fe.register(tenant_config("t", 64)).unwrap();
        let tickets: Vec<Ticket> =
            requests.iter().map(|r| fe.submit(tenant, r.clone()).unwrap()).collect();
        fe.close();
        let mut pool = echo_pool(2);
        fe.run_dispatcher(&mut pool, FUEL);

        for (t, d) in tickets.into_iter().zip(&direct) {
            let admitted = t.wait().unwrap();
            assert_eq!(admitted.exit, d.exit);
            assert_eq!(admitted.records.len(), d.records.len());
        }
    }

    #[test]
    fn two_tenants_share_one_pool_with_install_switching() {
        let doubler = "
            fn main() -> int {
                var n: int = input_len();
                return n * 2;
            }
        ";
        let fe = frontend(AdmissionConfig {
            // Force one batch containing both tenants.
            batch_max: 4,
            ..AdmissionConfig::default()
        });
        let echo = fe.register(tenant_config("echo", 8)).unwrap();
        let mut dcfg = tenant_config("doubler", 8);
        dcfg.binary = produce(doubler, &manifest().policy).unwrap().serialize();
        let dbl = fe.register(dcfg).unwrap();

        let te = fe.submit(echo, vec![10, 20]).unwrap();
        let td = fe.submit(dbl, vec![0, 0, 0]).unwrap();
        fe.close();
        let mut pool = echo_pool(2);
        let report = fe.run_dispatcher(&mut pool, FUEL);
        assert_eq!(report.batches.len(), 1);
        assert_eq!(report.batches[0].global_ids, vec![0, 1]);
        assert_eq!(te.wait().unwrap().exit.exit_value(), Some(30));
        assert_eq!(td.wait().unwrap().exit.exit_value(), Some(6));
        // Two installs: echo's image, then the doubler's.
        assert_eq!(pool.verification_count(), 2);
    }

    #[test]
    fn rejected_tenant_binary_reports_lowest_global_id_error() {
        // Tenant A (honest echo) owns global ids 0, 2, 3; tenant B's
        // binary fails verification mid-stream at global id 1. The
        // deterministic error rule is restated per batch in *global*
        // request ids, so `first_error` must name id 1 even though B's
        // group is served after A's (grouping is first-occurrence order).
        let fe = frontend(AdmissionConfig { batch_max: 4, ..AdmissionConfig::default() });
        let honest = fe.register(tenant_config("honest", 8)).unwrap();
        let mut bad = tenant_config("attacker", 8);
        bad.binary = crate::attack::corpus().remove(0).binary.serialize();
        let attacker = fe.register(bad).unwrap();

        let t0 = fe.submit(honest, vec![1, 2]).unwrap();
        let t1 = fe.submit(attacker, vec![3]).unwrap();
        let t2 = fe.submit(honest, vec![4]).unwrap();
        let t3 = fe.submit(honest, vec![5, 6]).unwrap();
        fe.close();
        let mut pool = echo_pool(2);
        let report = fe.run_dispatcher(&mut pool, FUEL);

        assert_eq!(report.batches.len(), 1);
        let (gid, err) = report.batches[0]
            .first_error
            .clone()
            .expect("rejected install must surface as the batch error");
        assert_eq!(gid, 1, "error must carry the lowest failing global id");
        assert!(matches!(err, EcallError::Install(_)), "{err:?}");
        // The attacker's request gets its own clone of the install error;
        // the honest tenant's batch-mates are untouched.
        assert_eq!(t0.wait().unwrap().exit.exit_value(), Some(3));
        assert!(matches!(t1.wait(), Err(EcallError::Install(_))));
        assert_eq!(t2.wait().unwrap().exit.exit_value(), Some(4));
        assert_eq!(t3.wait().unwrap().exit.exit_value(), Some(11));
    }

    #[test]
    fn same_tenant_batches_skip_reinstall() {
        let fe = frontend(AdmissionConfig::default());
        let tenant = fe.register(tenant_config("t", 64)).unwrap();
        for i in 0..6u8 {
            fe.submit(tenant, vec![i]).unwrap();
        }
        fe.close();
        let mut pool = echo_pool(1);
        fe.run_dispatcher(&mut pool, FUEL);
        assert_eq!(pool.verification_count(), 1);
    }
}
