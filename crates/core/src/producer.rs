//! The untrusted code producer: instrumentation passes over machine IR and
//! the end-to-end `source → instrumented relocatable object` pipeline.
//!
//! This is the out-of-enclave half of DEFLECTION's unbalanced design
//! (Section IV-C): all analysis and rewriting happens here, so the
//! in-enclave consumer only needs to *recognize* the result. One pass per
//! policy, driven by [`PolicySet`] switches exactly like the paper's
//! IR-level switches (Fig. 4):
//!
//! * **P1/P3/P4** — [`annotations::emit_store_guard`] before every
//!   store (`MachineInstr::mayStore()` analogue: [`Inst::stored_mem`]);
//! * **P2** — [`annotations::emit_rsp_guard`] after every explicit write to
//!   `rsp`;
//! * **P5** — branch-table lowering of indirect branches (with the bounds
//!   check when enabled), plus shadow-stack prologue/epilogue;
//! * **P6** — [`annotations::emit_aex_check`] at every basic-block entry
//!   and at least every `q` program instructions.

use crate::annotations::{self, elision_analysis_config, TemplateKind};
use crate::consumer::{resolve, verify, verify_with_layout};
use crate::policy::PolicySet;
use deflection_analysis::Analysis;
use deflection_isa::Inst;
use deflection_lang::mir::{MFunction, MInst, MirProgram};
use deflection_lang::CompileError;
use deflection_obj::{link, LinkError, ObjectFile};
use deflection_sgx_sim::layout::EnclaveLayout;
use deflection_telemetry::flightrec::{self, EventKind as FlightEventKind};
use deflection_telemetry::{Span, METRICS};
use std::collections::HashSet;
use std::error::Error as StdError;
use std::fmt;

/// Failures of the production pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProduceError {
    /// Frontend or assembler failure.
    Compile(CompileError),
    /// Static linking failure.
    Link(LinkError),
}

impl fmt::Display for ProduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProduceError::Compile(e) => write!(f, "compile error: {e}"),
            ProduceError::Link(e) => write!(f, "link error: {e}"),
        }
    }
}

impl StdError for ProduceError {}

impl From<CompileError> for ProduceError {
    fn from(e: CompileError) -> Self {
        ProduceError::Compile(e)
    }
}

impl From<LinkError> for ProduceError {
    fn from(e: LinkError) -> Self {
        ProduceError::Link(e)
    }
}

/// Whether a q-triggered AEX check may be inserted *before* this item.
///
/// Unsafe points: before flag consumers (`jcc`, `setcc` — the check clobbers
/// flags), before indirect-branch items (`r10`/`r11` hold the lowered
/// target), and before `ret` epilogues is fine but pointless, so allowed.
fn safe_insertion_point(item: &MInst) -> bool {
    !matches!(
        item,
        MInst::Jcc(..) | MInst::CallReg(_) | MInst::JmpReg(_) | MInst::Real(Inst::SetCc { .. })
    )
}

fn is_program_instruction(item: &MInst) -> bool {
    !matches!(item, MInst::Label(_))
}

/// Guard-elision decisions, keyed by guard *site ordinal*: the n-th P1
/// (resp. P2) instrumentation site in emission order, which — because
/// functions are assembled and linked in program order — is also the n-th
/// `StoreGuard` (resp. `RspGuard`) instance the verifier discovers in a
/// fully instrumented build. Built by [`produce_from_mir_for_layout`] from
/// its own pass-1 analysis; never trusted by the consumer, which re-derives
/// every proof.
#[derive(Debug, Clone, Default)]
pub struct ElisionPlan {
    /// P1 site ordinals whose store was proven inside the store window.
    pub store_skip: HashSet<usize>,
    /// P2 site ordinals whose resulting `rsp` was proven inside the stack.
    pub rsp_skip: HashSet<usize>,
    /// Allow skipping the guard of an `rsp` write when the next machine
    /// instruction is itself a non-store `rsp` write (the verifier's
    /// back-to-back chain rule).
    pub chain_rsp: bool,
}

/// Running per-kind site counters threaded through a whole-program
/// instrumentation pass so ordinals are global, like instance discovery.
#[derive(Default)]
struct GuardOrdinals {
    store: usize,
    rsp: usize,
}

fn instrument_function(
    orig: &MFunction,
    policy: &PolicySet,
    is_entry: bool,
    plan: Option<&ElisionPlan>,
    ord: &mut GuardOrdinals,
) -> MFunction {
    let mut f = MFunction::new(orig.name.clone());
    f.reserve_labels(orig.label_watermark());

    if policy.cfi && !is_entry {
        annotations::emit_prologue(&mut f);
    }
    if policy.aex {
        annotations::emit_aex_check(&mut f);
    }

    let mut since_check: u32 = 0;
    for (item_idx, item) in orig.insts.iter().enumerate() {
        if policy.aex
            && since_check >= policy.q
            && is_program_instruction(item)
            && safe_insertion_point(item)
        {
            annotations::emit_aex_check(&mut f);
            since_check = 0;
        }
        match item {
            MInst::Label(l) => {
                f.push(MInst::Label(*l));
                if policy.aex {
                    annotations::emit_aex_check(&mut f);
                    since_check = 0;
                }
            }
            MInst::Real(inst) => {
                if let Some(mem) = inst.stored_mem() {
                    if policy.store_bounds && !annotations::is_exempt_frame_store(mem) {
                        let skip = plan.is_some_and(|p| p.store_skip.contains(&ord.store));
                        ord.store += 1;
                        if !skip {
                            annotations::emit_store_guard(&mut f, mem);
                        }
                    }
                    f.real(*inst);
                } else if inst.writes_rsp_explicitly() {
                    f.real(*inst);
                    if policy.rsp_integrity {
                        // The chain skip needs the two rsp writes to stay
                        // byte-adjacent, so it is off whenever a q-triggered
                        // AEX check could land between them.
                        let skip = plan.is_some_and(|p| {
                            p.rsp_skip.contains(&ord.rsp)
                                || (p.chain_rsp
                                    && !(policy.aex && since_check + 1 >= policy.q)
                                    && matches!(
                                        orig.insts.get(item_idx + 1),
                                        Some(MInst::Real(n))
                                            if n.writes_rsp_explicitly()
                                                && n.stored_mem().is_none()
                                    ))
                        });
                        ord.rsp += 1;
                        if !skip {
                            annotations::emit_rsp_guard(&mut f);
                        }
                    }
                } else {
                    f.real(*inst);
                }
                since_check += 1;
            }
            MInst::CallReg(reg) => {
                annotations::emit_cfi_branch(&mut f, *reg, true, policy.cfi);
                since_check += 1;
            }
            MInst::JmpReg(reg) => {
                annotations::emit_cfi_branch(&mut f, *reg, false, policy.cfi);
                since_check += 1;
            }
            MInst::Ret => {
                if policy.cfi {
                    annotations::emit_epilogue_and_ret(&mut f);
                } else {
                    f.push(MInst::Ret);
                }
                since_check += 1;
            }
            other @ (MInst::Jmp(_)
            | MInst::Jcc(..)
            | MInst::CallSym(_)
            | MInst::LoadSymAddr { .. }) => {
                f.push(other.clone());
                since_check += 1;
            }
        }
    }
    f
}

/// Applies the policy-selected instrumentation passes to a program.
#[must_use]
pub fn instrument(mir: &MirProgram, policy: &PolicySet) -> MirProgram {
    instrument_inner(mir, policy, None)
}

/// Like [`instrument`], but skipping the guard sites named by `plan`.
#[must_use]
pub fn instrument_with_plan(
    mir: &MirProgram,
    policy: &PolicySet,
    plan: &ElisionPlan,
) -> MirProgram {
    instrument_inner(mir, policy, Some(plan))
}

fn instrument_inner(
    mir: &MirProgram,
    policy: &PolicySet,
    plan: Option<&ElisionPlan>,
) -> MirProgram {
    let mut ord = GuardOrdinals::default();
    let functions = mir
        .functions
        .iter()
        .map(|f| instrument_function(f, policy, f.name == mir.entry, plan, &mut ord))
        .collect();
    MirProgram {
        functions,
        data: mir.data.clone(),
        entry: mir.entry.clone(),
        indirect_targets: mir.indirect_targets.clone(),
    }
}

/// Runs the full machine-IR optimizer pipeline on `mir` and feeds the
/// per-pass rewrite counts to the producer telemetry counters (flushed
/// with the rest of the producer metrics outside measured runs).
pub fn optimize_mir(mir: &mut MirProgram) -> deflection_lang::opt::PipelineStats {
    let stats = deflection_lang::opt::optimize_pipeline(mir);
    METRICS.producer_opt_peephole.add(stats.peephole as u64);
    METRICS.producer_opt_const_fold.add(stats.const_folds as u64);
    METRICS.producer_opt_loop_bound.add(stats.loop_bounds as u64);
    METRICS.producer_opt_addr_canon.add(stats.addr_canons as u64);
    METRICS.producer_opt_dce.add(stats.dce as u64);
    stats
}

/// The full producer pipeline: compile DCL source, optimize the machine
/// IR, instrument with `policy`, assemble, and statically link into one
/// relocatable target binary carrying the indirect-branch list as its
/// proof.
///
/// # Errors
///
/// Propagates compile, assembly and link errors.
pub fn produce(source: &str, policy: &PolicySet) -> Result<ObjectFile, ProduceError> {
    let mut mir = deflection_lang::compile(source)?;
    optimize_mir(&mut mir);
    produce_from_mir(&mir, policy)
}

/// [`produce`] with the optimizer pipeline disabled: instruments the raw
/// code-generator output. Exists for the optimizer differential tests,
/// which compare the observable behavior of optimized and unoptimized
/// builds of the same source under every policy mix.
///
/// # Errors
///
/// Propagates compile, assembly and link errors.
pub fn produce_unoptimized(source: &str, policy: &PolicySet) -> Result<ObjectFile, ProduceError> {
    let mir = deflection_lang::compile(source)?;
    produce_from_mir(&mir, policy)
}

/// Producer pipeline starting from already-compiled machine IR (used by the
/// benches to amortize frontend time and by the attack corpus to build
/// hand-crafted binaries).
///
/// # Errors
///
/// Propagates assembly and link errors.
pub fn produce_from_mir(mir: &MirProgram, policy: &PolicySet) -> Result<ObjectFile, ProduceError> {
    let instrumented = instrument(mir, policy);
    let obj = deflection_lang::assemble(&instrumented)?;
    let linked = link(&[obj])?;
    flightrec::record_ambient(FlightEventKind::Produce, linked.text.len() as u64, 0);
    Ok(linked)
}

/// Relocates `obj` against `layout` and returns `(text, entry, ibt)` as the
/// verifier wants them — the producer running the *same* pure resolution
/// step the in-enclave loader will run.
fn resolve_for_verify(
    obj: &ObjectFile,
    layout: &EnclaveLayout,
) -> Option<(Vec<u8>, usize, Vec<usize>)> {
    let resolved = resolve(obj, layout).ok()?;
    let entry = usize::try_from(resolved.entry_va.checked_sub(layout.code.start)?).ok()?;
    Some((resolved.text, entry, resolved.ibt_offsets))
}

/// How many P1 / P2 guard sites [`instrument_function`] will visit in `f`.
fn mir_guard_sites(f: &MFunction, policy: &PolicySet) -> (usize, usize) {
    let mut stores = 0usize;
    let mut rsps = 0usize;
    for item in &f.insts {
        if let MInst::Real(inst) = item {
            if let Some(mem) = inst.stored_mem() {
                if policy.store_bounds && !annotations::is_exempt_frame_store(mem) {
                    stores += 1;
                }
            } else if inst.writes_rsp_explicitly() && policy.rsp_integrity {
                rsps += 1;
            }
        }
    }
    (stores, rsps)
}

/// Builds the elision plan for a fully instrumented binary: verify it
/// strictly to enumerate guard instances, run the abstract interpretation
/// over the relocated text, and mark every instance whose subject the
/// analysis independently proves safe.
///
/// Ordinals are global emission-order site indices. The verifier only
/// discovers instances in *reachable* code (the disassembler is
/// recursive-descent), so a dead function's emitted guards never become
/// instances; mapping instances straight to global indices would therefore
/// drift. Instead each instance is attributed to its owning function via
/// the symbol table, and its global ordinal is the prefix sum of MIR guard
/// sites in all preceding functions plus its within-function index.
///
/// Public so benches and diagnostics can report which fraction of guards
/// is provably redundant; ordinary producers should call
/// [`produce_for_layout`].
pub fn elision_plan(
    mir: &MirProgram,
    full: &ObjectFile,
    policy: &PolicySet,
    layout: &EnclaveLayout,
) -> Option<ElisionPlan> {
    let (text, entry, ibt) = resolve_for_verify(full, layout)?;
    let strict = PolicySet { elide_guards: false, ..*policy };
    let verified = verify(&text, entry, &ibt, &strict).ok()?;
    let analysis = {
        let _span = Span::start(&METRICS.produce_analysis_ns);
        Analysis::run(&verified.disassembly, elision_analysis_config(layout))
    };

    // Function layout: (start offset, index in mir.functions). Any symbol —
    // including injected runtime helpers — terminates the previous range.
    let mut bounds: Vec<u64> = full.symbols.iter().map(|s| s.offset).collect();
    bounds.sort_unstable();
    bounds.dedup();
    let func_start = |name: &str| full.symbols.iter().find(|s| s.name == name).map(|s| s.offset);
    let mut ranges: Vec<(u64, u64, usize)> = Vec::new(); // (start, end, mir idx)
    for (fi, f) in mir.functions.iter().enumerate() {
        let start = func_start(&f.name)?;
        let end = bounds.iter().copied().find(|&b| b > start).unwrap_or(full.text.len() as u64);
        ranges.push((start, end, fi));
    }
    let owner = |offset: usize| -> Option<usize> {
        let off = offset as u64;
        ranges.iter().find(|&&(s, e, _)| s <= off && off < e).map(|&(_, _, fi)| fi)
    };

    // Global emission ordinal of each function's first site, per kind.
    let mut store_base = vec![0usize; mir.functions.len()];
    let mut rsp_base = vec![0usize; mir.functions.len()];
    let (mut s_acc, mut r_acc) = (0usize, 0usize);
    for (fi, f) in mir.functions.iter().enumerate() {
        store_base[fi] = s_acc;
        rsp_base[fi] = r_acc;
        let (s, r) = mir_guard_sites(f, policy);
        s_acc += s;
        r_acc += r;
    }

    let mut plan = ElisionPlan { chain_rsp: true, ..ElisionPlan::default() };
    let mut store_seen = vec![0usize; mir.functions.len()];
    let mut rsp_seen = vec![0usize; mir.functions.len()];
    for inst in &verified.instances {
        match inst.kind {
            TemplateKind::StoreGuard => {
                let Some(sidx) = inst.subject_idx else { continue };
                let offset = verified.insts[sidx].0;
                // Guards in injected runtime helpers are not emission sites
                // (instrument never saw them); leave them alone.
                let Some(fi) = owner(offset) else { continue };
                let ordinal = store_base[fi] + store_seen[fi];
                store_seen[fi] += 1;
                if analysis.store_safe(offset) {
                    plan.store_skip.insert(ordinal);
                }
            }
            TemplateKind::RspGuard => {
                // The guarded write is the instruction just before the
                // guard template.
                let offset = verified.insts[inst.start_idx - 1].0;
                let Some(fi) = owner(offset) else { continue };
                let ordinal = rsp_base[fi] + rsp_seen[fi];
                rsp_seen[fi] += 1;
                let proven = analysis
                    .rsp_after(offset)
                    .and_then(|v| analysis.concrete_range(v))
                    .is_some_and(|(lo, hi)| lo >= layout.stack.start && hi <= layout.stack.end);
                if proven {
                    plan.rsp_skip.insert(ordinal);
                }
            }
            _ => {}
        }
    }
    Some(plan)
}

/// Like [`produce`], but targeting a concrete [`EnclaveLayout`] so that,
/// when `policy.elide_guards` is on, provably-safe P1/P2 guards can be
/// dropped (paper Section IV-C's "necessary checks only" direction).
///
/// Two-pass scheme: pass 1 instruments fully and analyses the relocated
/// result; pass 2 re-instruments, skipping every guard whose subject the
/// analysis proved safe. The elided binary is then *self-verified* with the
/// same in-enclave rules ([`verify_with_layout`]); on any disagreement the
/// fully instrumented binary is returned instead, so the producer can never
/// ship something its consumer would reject. Elision additionally requires
/// `policy.cfi` (see [`verify_with_layout`] for the soundness argument).
///
/// # Errors
///
/// Propagates compile, assembly and link errors.
pub fn produce_for_layout(
    source: &str,
    policy: &PolicySet,
    layout: &EnclaveLayout,
) -> Result<ObjectFile, ProduceError> {
    let mut mir = deflection_lang::compile(source)?;
    optimize_mir(&mut mir);
    produce_from_mir_for_layout(&mir, policy, layout)
}

/// [`produce_for_layout`] starting from already-compiled machine IR.
///
/// # Errors
///
/// Propagates assembly and link errors.
pub fn produce_from_mir_for_layout(
    mir: &MirProgram,
    policy: &PolicySet,
    layout: &EnclaveLayout,
) -> Result<ObjectFile, ProduceError> {
    let _span = Span::start(&METRICS.produce_ns);
    let full = produce_from_mir(mir, policy)?;
    if !policy.elide_guards || !policy.cfi || !(policy.store_bounds || policy.rsp_integrity) {
        return Ok(full);
    }
    let Some(plan) = elision_plan(mir, &full, policy, layout) else {
        return Ok(full);
    };
    let elided = instrument_with_plan(mir, policy, &plan);
    let Ok(obj) = deflection_lang::assemble(&elided) else {
        METRICS.produce_elision_fallbacks.add(1);
        return Ok(full);
    };
    let Ok(obj) = link(&[obj]) else {
        METRICS.produce_elision_fallbacks.add(1);
        return Ok(full);
    };
    // Self-verify: replay the consumer's exact acceptance check. Any
    // divergence between the pass-1 analysis and the verifier's own run
    // (e.g. different widening behaviour on the re-laid-out code) falls
    // back to full instrumentation rather than shipping a reject.
    let accepted = {
        let _span = Span::start(&METRICS.produce_self_verify_ns);
        resolve_for_verify(&obj, layout).is_some_and(|(text, entry, ibt)| {
            verify_with_layout(&text, entry, &ibt, policy, layout).is_ok()
        })
    };
    if accepted {
        METRICS.produce_guards_elided.add((plan.store_skip.len() + plan.rsp_skip.len()) as u64);
        Ok(obj)
    } else {
        METRICS.produce_elision_fallbacks.add(1);
        Ok(full)
    }
}

/// Red-team helper: produce with the given guard site ordinals stripped,
/// with **no** analysis and **no** self-verification. The output is
/// intentionally allowed to be unsound — soundness tests feed it to the
/// verifier and assert rejection.
///
/// # Errors
///
/// Propagates compile, assembly and link errors.
pub fn produce_stripped(
    source: &str,
    policy: &PolicySet,
    store_skip: &HashSet<usize>,
    rsp_skip: &HashSet<usize>,
) -> Result<ObjectFile, ProduceError> {
    let mut mir = deflection_lang::compile(source)?;
    optimize_mir(&mut mir);
    produce_stripped_mir(&mir, policy, store_skip, rsp_skip)
}

/// [`produce_stripped`] starting from machine IR.
///
/// # Errors
///
/// Propagates assembly and link errors.
pub fn produce_stripped_mir(
    mir: &MirProgram,
    policy: &PolicySet,
    store_skip: &HashSet<usize>,
    rsp_skip: &HashSet<usize>,
) -> Result<ObjectFile, ProduceError> {
    let plan = ElisionPlan {
        store_skip: store_skip.clone(),
        rsp_skip: rsp_skip.clone(),
        chain_rsp: false,
    };
    let stripped = instrument_with_plan(mir, policy, &plan);
    let obj = deflection_lang::assemble(&stripped)?;
    Ok(link(&[obj])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflection_isa::disassemble;

    const SRC: &str = "
        var table: [int; 16];
        fn fill(n: int) -> int {
            var i: int = 0;
            while (i < n) { table[i] = i * i; i = i + 1; }
            return table[n - 1];
        }
        fn main() -> int { return fill(10); }
    ";

    #[test]
    fn baseline_produces_linkable_object() {
        let obj = produce(SRC, &PolicySet::none()).unwrap();
        assert!(obj.symbol("main").is_some());
        assert!(obj.symbol("__start").is_some());
        // Fully linked: only Abs64 relocations remain for the loader.
        assert!(obj.relocations.iter().all(|r| r.kind == deflection_obj::RelocKind::Abs64));
    }

    #[test]
    fn instrumentation_grows_code_monotonically() {
        let sizes: Vec<usize> =
            PolicySet::levels().iter().map(|(_, p)| produce(SRC, p).unwrap().text.len()).collect();
        let baseline = produce(SRC, &PolicySet::none()).unwrap().text.len();
        assert!(baseline < sizes[0], "P1 must add code");
        assert!(sizes[0] < sizes[1], "P2 must add code");
        assert!(sizes[1] < sizes[2], "P5 must add code");
        assert!(sizes[2] < sizes[3], "P6 must add code");
    }

    #[test]
    fn instrumented_binary_still_disassembles() {
        let obj = produce(SRC, &PolicySet::full()).unwrap();
        let entry = obj.symbol("__start").unwrap().offset as usize;
        let ibt: Vec<usize> = obj
            .indirect_branch_table
            .iter()
            .map(|n| obj.symbol(n).unwrap().offset as usize)
            .collect();
        let d = disassemble(&obj.text, entry, &ibt).unwrap();
        assert!(d.len() > 100);
    }

    #[test]
    fn indirect_calls_get_lowered_per_policy() {
        let src = "
            fn h(x: int) -> int { return x + 1; }
            fn main() -> int { var f: fn(int) -> int = &h; return f(41); }
        ";
        let baseline = produce(src, &PolicySet::none()).unwrap();
        let with_cfi = produce(src, &PolicySet::p1_p5()).unwrap();
        assert!(with_cfi.text.len() > baseline.text.len());
        assert_eq!(baseline.indirect_branch_table, vec!["h".to_string()]);
        // Both must contain an indirect call instruction somewhere.
        for obj in [&baseline, &with_cfi] {
            let entry = obj.symbol("__start").unwrap().offset as usize;
            let ibt: Vec<usize> = obj
                .indirect_branch_table
                .iter()
                .map(|n| obj.symbol(n).unwrap().offset as usize)
                .collect();
            let d = disassemble(&obj.text, entry, &ibt).unwrap();
            assert!(d.insts().iter().any(|(_, i, _)| matches!(i, Inst::CallInd { .. })));
        }
    }

    #[test]
    fn aex_checks_inserted_within_q() {
        // A long straight-line block: many stores in sequence.
        let src = "
            var a: [int; 64];
            fn main() -> int {
                a[0]=1; a[1]=1; a[2]=1; a[3]=1; a[4]=1; a[5]=1; a[6]=1; a[7]=1;
                a[8]=1; a[9]=1; a[10]=1; a[11]=1; a[12]=1; a[13]=1; a[14]=1; a[15]=1;
                return 0;
            }
        ";
        let mir = deflection_lang::compile(src).unwrap();
        let policy = PolicySet { q: 10, ..PolicySet::full() };
        let instrumented = instrument(&mir, &policy);
        // Count AEX check template starts in main (signature: MovRI r11, PH_SSA_MARKER).
        let main = instrumented.functions.iter().find(|f| f.name == "main").unwrap();
        let checks = main
            .insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    MInst::Real(Inst::MovRI { dst: deflection_isa::Reg::R11, imm })
                        if *imm == annotations::PH_SSA_MARKER
                )
            })
            .count();
        // Each template mentions the marker twice (check + re-arm); at least
        // 2 templates must have been inserted for 16+ stores with q=10.
        assert!(checks >= 4, "expected several AEX checks, saw {checks} marker refs");
    }

    #[test]
    fn compile_error_propagates() {
        assert!(matches!(
            produce("fn main() -> int { return x; }", &PolicySet::none()),
            Err(ProduceError::Compile(_))
        ));
    }
}
