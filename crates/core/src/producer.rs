//! The untrusted code producer: instrumentation passes over machine IR and
//! the end-to-end `source → instrumented relocatable object` pipeline.
//!
//! This is the out-of-enclave half of DEFLECTION's unbalanced design
//! (Section IV-C): all analysis and rewriting happens here, so the
//! in-enclave consumer only needs to *recognize* the result. One pass per
//! policy, driven by [`PolicySet`] switches exactly like the paper's
//! IR-level switches (Fig. 4):
//!
//! * **P1/P3/P4** — [`annotations::emit_store_guard`] before every
//!   store (`MachineInstr::mayStore()` analogue: [`Inst::stored_mem`]);
//! * **P2** — [`annotations::emit_rsp_guard`] after every explicit write to
//!   `rsp`;
//! * **P5** — branch-table lowering of indirect branches (with the bounds
//!   check when enabled), plus shadow-stack prologue/epilogue;
//! * **P6** — [`annotations::emit_aex_check`] at every basic-block entry
//!   and at least every `q` program instructions.

use crate::annotations;
use crate::policy::PolicySet;
use deflection_lang::mir::{MFunction, MInst, MirProgram};
use deflection_lang::CompileError;
use deflection_obj::{link, LinkError, ObjectFile};
use deflection_isa::Inst;
use std::error::Error as StdError;
use std::fmt;

/// Failures of the production pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProduceError {
    /// Frontend or assembler failure.
    Compile(CompileError),
    /// Static linking failure.
    Link(LinkError),
}

impl fmt::Display for ProduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProduceError::Compile(e) => write!(f, "compile error: {e}"),
            ProduceError::Link(e) => write!(f, "link error: {e}"),
        }
    }
}

impl StdError for ProduceError {}

impl From<CompileError> for ProduceError {
    fn from(e: CompileError) -> Self {
        ProduceError::Compile(e)
    }
}

impl From<LinkError> for ProduceError {
    fn from(e: LinkError) -> Self {
        ProduceError::Link(e)
    }
}

/// Whether a q-triggered AEX check may be inserted *before* this item.
///
/// Unsafe points: before flag consumers (`jcc`, `setcc` — the check clobbers
/// flags), before indirect-branch items (`r10`/`r11` hold the lowered
/// target), and before `ret` epilogues is fine but pointless, so allowed.
fn safe_insertion_point(item: &MInst) -> bool {
    !matches!(
        item,
        MInst::Jcc(..)
            | MInst::CallReg(_)
            | MInst::JmpReg(_)
            | MInst::Real(Inst::SetCc { .. })
    )
}

fn is_program_instruction(item: &MInst) -> bool {
    !matches!(item, MInst::Label(_))
}

fn instrument_function(orig: &MFunction, policy: &PolicySet, is_entry: bool) -> MFunction {
    let mut f = MFunction::new(orig.name.clone());
    f.reserve_labels(orig.label_watermark());

    if policy.cfi && !is_entry {
        annotations::emit_prologue(&mut f);
    }
    if policy.aex {
        annotations::emit_aex_check(&mut f);
    }

    let mut since_check: u32 = 0;
    for item in &orig.insts {
        if policy.aex
            && since_check >= policy.q
            && is_program_instruction(item)
            && safe_insertion_point(item)
        {
            annotations::emit_aex_check(&mut f);
            since_check = 0;
        }
        match item {
            MInst::Label(l) => {
                f.push(MInst::Label(*l));
                if policy.aex {
                    annotations::emit_aex_check(&mut f);
                    since_check = 0;
                }
            }
            MInst::Real(inst) => {
                if let Some(mem) = inst.stored_mem() {
                    if policy.store_bounds && !annotations::is_exempt_frame_store(mem) {
                        annotations::emit_store_guard(&mut f, mem);
                    }
                    f.real(*inst);
                } else if inst.writes_rsp_explicitly() {
                    f.real(*inst);
                    if policy.rsp_integrity {
                        annotations::emit_rsp_guard(&mut f);
                    }
                } else {
                    f.real(*inst);
                }
                since_check += 1;
            }
            MInst::CallReg(reg) => {
                annotations::emit_cfi_branch(&mut f, *reg, true, policy.cfi);
                since_check += 1;
            }
            MInst::JmpReg(reg) => {
                annotations::emit_cfi_branch(&mut f, *reg, false, policy.cfi);
                since_check += 1;
            }
            MInst::Ret => {
                if policy.cfi {
                    annotations::emit_epilogue_and_ret(&mut f);
                } else {
                    f.push(MInst::Ret);
                }
                since_check += 1;
            }
            other @ (MInst::Jmp(_) | MInst::Jcc(..) | MInst::CallSym(_)
            | MInst::LoadSymAddr { .. }) => {
                f.push(other.clone());
                since_check += 1;
            }
        }
    }
    f
}

/// Applies the policy-selected instrumentation passes to a program.
#[must_use]
pub fn instrument(mir: &MirProgram, policy: &PolicySet) -> MirProgram {
    let functions = mir
        .functions
        .iter()
        .map(|f| instrument_function(f, policy, f.name == mir.entry))
        .collect();
    MirProgram {
        functions,
        data: mir.data.clone(),
        entry: mir.entry.clone(),
        indirect_targets: mir.indirect_targets.clone(),
    }
}

/// The full producer pipeline: compile DCL source, optimize the machine
/// IR, instrument with `policy`, assemble, and statically link into one
/// relocatable target binary carrying the indirect-branch list as its
/// proof.
///
/// # Errors
///
/// Propagates compile, assembly and link errors.
pub fn produce(source: &str, policy: &PolicySet) -> Result<ObjectFile, ProduceError> {
    let mut mir = deflection_lang::compile(source)?;
    deflection_lang::opt::optimize(&mut mir);
    produce_from_mir(&mir, policy)
}

/// Producer pipeline starting from already-compiled machine IR (used by the
/// benches to amortize frontend time and by the attack corpus to build
/// hand-crafted binaries).
///
/// # Errors
///
/// Propagates assembly and link errors.
pub fn produce_from_mir(mir: &MirProgram, policy: &PolicySet) -> Result<ObjectFile, ProduceError> {
    let instrumented = instrument(mir, policy);
    let obj = deflection_lang::assemble(&instrumented)?;
    Ok(link(&[obj])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deflection_isa::disassemble;

    const SRC: &str = "
        var table: [int; 16];
        fn fill(n: int) -> int {
            var i: int = 0;
            while (i < n) { table[i] = i * i; i = i + 1; }
            return table[n - 1];
        }
        fn main() -> int { return fill(10); }
    ";

    #[test]
    fn baseline_produces_linkable_object() {
        let obj = produce(SRC, &PolicySet::none()).unwrap();
        assert!(obj.symbol("main").is_some());
        assert!(obj.symbol("__start").is_some());
        // Fully linked: only Abs64 relocations remain for the loader.
        assert!(obj
            .relocations
            .iter()
            .all(|r| r.kind == deflection_obj::RelocKind::Abs64));
    }

    #[test]
    fn instrumentation_grows_code_monotonically() {
        let sizes: Vec<usize> = PolicySet::levels()
            .iter()
            .map(|(_, p)| produce(SRC, p).unwrap().text.len())
            .collect();
        let baseline = produce(SRC, &PolicySet::none()).unwrap().text.len();
        assert!(baseline < sizes[0], "P1 must add code");
        assert!(sizes[0] < sizes[1], "P2 must add code");
        assert!(sizes[1] < sizes[2], "P5 must add code");
        assert!(sizes[2] < sizes[3], "P6 must add code");
    }

    #[test]
    fn instrumented_binary_still_disassembles() {
        let obj = produce(SRC, &PolicySet::full()).unwrap();
        let entry = obj.symbol("__start").unwrap().offset as usize;
        let ibt: Vec<usize> = obj
            .indirect_branch_table
            .iter()
            .map(|n| obj.symbol(n).unwrap().offset as usize)
            .collect();
        let d = disassemble(&obj.text, entry, &ibt).unwrap();
        assert!(d.instrs.len() > 100);
    }

    #[test]
    fn indirect_calls_get_lowered_per_policy() {
        let src = "
            fn h(x: int) -> int { return x + 1; }
            fn main() -> int { var f: fn(int) -> int = &h; return f(41); }
        ";
        let baseline = produce(src, &PolicySet::none()).unwrap();
        let with_cfi = produce(src, &PolicySet::p1_p5()).unwrap();
        assert!(with_cfi.text.len() > baseline.text.len());
        assert_eq!(baseline.indirect_branch_table, vec!["h".to_string()]);
        // Both must contain an indirect call instruction somewhere.
        for obj in [&baseline, &with_cfi] {
            let entry = obj.symbol("__start").unwrap().offset as usize;
            let ibt: Vec<usize> = obj
                .indirect_branch_table
                .iter()
                .map(|n| obj.symbol(n).unwrap().offset as usize)
                .collect();
            let d = disassemble(&obj.text, entry, &ibt).unwrap();
            assert!(d
                .instrs
                .values()
                .any(|(i, _)| matches!(i, Inst::CallInd { .. })));
        }
    }

    #[test]
    fn aex_checks_inserted_within_q() {
        // A long straight-line block: many stores in sequence.
        let src = "
            var a: [int; 64];
            fn main() -> int {
                a[0]=1; a[1]=1; a[2]=1; a[3]=1; a[4]=1; a[5]=1; a[6]=1; a[7]=1;
                a[8]=1; a[9]=1; a[10]=1; a[11]=1; a[12]=1; a[13]=1; a[14]=1; a[15]=1;
                return 0;
            }
        ";
        let mir = deflection_lang::compile(src).unwrap();
        let policy = PolicySet { q: 10, ..PolicySet::full() };
        let instrumented = instrument(&mir, &policy);
        // Count AEX check template starts in main (signature: MovRI r11, PH_SSA_MARKER).
        let main = instrumented.functions.iter().find(|f| f.name == "main").unwrap();
        let checks = main
            .insts
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    MInst::Real(Inst::MovRI { dst: deflection_isa::Reg::R11, imm })
                        if *imm == annotations::PH_SSA_MARKER
                )
            })
            .count();
        // Each template mentions the marker twice (check + re-arm); at least
        // 2 templates must have been inserted for 16+ stores with q=10.
        assert!(checks >= 4, "expected several AEX checks, saw {checks} marker refs");
    }

    #[test]
    fn compile_error_propagates() {
        assert!(matches!(
            produce("fn main() -> int { return x; }", &PolicySet::none()),
            Err(ProduceError::Compile(_))
        ));
    }
}
