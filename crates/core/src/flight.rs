//! Host-side flight-recorder and profiler plumbing.
//!
//! Everything here observes facts the untrusted host already witnesses —
//! the `RunReport` an ECall returns, the profiler arm/collect toggles of
//! the simulated VM — so it lives outside the counted in-enclave TCB
//! sources (`table1_tcb`), exactly like the incremental-verification
//! modules (DESIGN.md §5i/§5j). The runtime itself contains no flight
//! recording sites; the pool calls [`record_run_report`] at its serve
//! boundary, and verify-phase events are derived inside the telemetry
//! crate from the verifier's existing span instrumentation.

use crate::runtime::{BootstrapEnclave, RunReport};
use deflection_sgx_sim::vm::{RunExit, VmProfile};
use deflection_telemetry::flightrec::{self, EventKind};

/// Records the `Run` (and, when output was sealed, `Seal`) flight events
/// for one completed ECall, attributed to the ambient trace. The payloads
/// are facts of the report the host is holding: cumulative instruction
/// count, exit tag, sealed record count and total sealed bytes.
pub(crate) fn record_run_report(report: &RunReport) {
    let exit_tag = match &report.exit {
        RunExit::Halted { .. } => 0,
        RunExit::PolicyAbort { .. } => 1,
        RunExit::Fault(_) => 2,
        RunExit::OutOfFuel => 3,
    };
    flightrec::record_ambient(EventKind::Run, report.stats.instructions, exit_tag);
    if !report.records.is_empty() {
        let bytes: usize = report.records.iter().map(Vec::len).sum();
        flightrec::record_ambient(EventKind::Seal, report.records.len() as u64, bytes as u64);
    }
}

impl BootstrapEnclave {
    /// Arms the VM sampling profiler: one PC sample per `interval`
    /// executed instructions, accumulated in a VM-local buffer and folded
    /// only at run exit (the same boundary rule the icache counters
    /// follow). Stays armed across subsequent runs until disarmed.
    ///
    /// # Panics
    ///
    /// Panics if no binary is installed.
    pub fn enable_profiler(&mut self, interval: u64) {
        self.vm.as_mut().expect("binary installed").enable_profiler(interval);
    }

    /// Takes (and clears) the profile accumulated since the profiler was
    /// armed; the profiler stays armed for subsequent runs.
    ///
    /// # Panics
    ///
    /// Panics if no binary is installed.
    pub fn take_profile(&mut self) -> VmProfile {
        self.vm.as_mut().expect("binary installed").take_profile()
    }
}
