//! # deflection-core
//!
//! The primary contribution of *"Practical and Efficient in-Enclave
//! Verification of Privacy Compliance"* (DSN 2021): the DEFLECTION model's
//! code producer, code consumer and bootstrap-enclave runtime.
//!
//! ```text
//!   untrusted producer                      trusted consumer (in enclave)
//!  ┌────────────────────┐   binary+proof   ┌──────────────────────────────┐
//!  │ DCL compiler       │ ───────────────▶ │ loader    (relocate, table)  │
//!  │ + P1..P6 passes    │                  │ verifier  (recursive descent │
//!  │ + static linker    │                  │            + annotations)    │
//!  └────────────────────┘                  │ rewriter  (bind immediates)  │
//!                                          │ runtime   (P0 wrappers, run) │
//!                                          └──────────────────────────────┘
//! ```
//!
//! * [`policy`] — P0–P6 switches ([`policy::PolicySet`]) and the enclave
//!   [`policy::Manifest`];
//! * [`annotations`] — the annotation templates (emission *and* matching,
//!   kept side by side);
//! * [`producer`] — instrumentation passes and the
//!   `source → instrumented object` pipeline;
//! * [`consumer`] — loader, verifier and immediate rewriter; the
//!   [`consumer::install`] pipeline;
//! * [`runtime`] — the [`runtime::BootstrapEnclave`] ECall surface with the
//!   P0 OCall wrappers (encryption, fixed-length padding, budgets);
//! * [`pool`] — concurrent serving across isolated enclave workers
//!   (the TOCTOU-free reading of the paper's Section VII);
//! * [`admission`] / [`tenant`] — the untrusted multi-tenant admission
//!   frontend: bounded queueing, adaptive batching and typed load
//!   shedding in front of the pool (zero TCB lines);
//! * [`audit`] — the attested in-enclave audit ring: policy-relevant
//!   events, exported only as sealed, fixed-size, budget-charged records;
//! * [`attack`] — the malicious-binary corpus every policy must contain.
//!
//! # Example
//!
//! ```
//! use deflection_core::policy::{Manifest, PolicySet};
//! use deflection_core::producer::produce;
//! use deflection_core::runtime::BootstrapEnclave;
//! use deflection_sgx_sim::layout::{EnclaveLayout, MemConfig};
//!
//! let src = "fn main() -> int { return 40 + 2; }";
//! let manifest = Manifest::ccaas();
//! let binary = produce(src, &manifest.policy)?.serialize();
//! let mut enclave = BootstrapEnclave::new(EnclaveLayout::new(MemConfig::small()), manifest);
//! enclave.install_plain(&binary)?;
//! let report = enclave.run(1_000_000)?;
//! assert_eq!(report.exit.exit_value(), Some(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod annotations;
pub mod attack;
pub mod audit;
pub mod consumer;
mod flight;
pub mod policy;
pub mod pool;
pub mod producer;
pub mod runtime;
pub mod sealed;
pub mod tenant;
