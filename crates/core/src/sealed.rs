//! Sealing of captured install images across enclave restarts.
//!
//! SGX enclaves persist state across teardown with *sealing*: `EGETKEY`
//! derives a key bound to the enclave's identity (here
//! `KEYPOLICY.MRENCLAVE`), data MACed/encrypted under it can be stored on
//! untrusted media, and only an enclave with the same measurement can
//! re-derive the key to accept it. This module applies that to
//! [`PreparedInstall`]: a pool that verified a binary once can export the
//! image, survive a full restart, and re-import it with **zero**
//! re-verifications.
//!
//! # What is sealed, and why rebuilding is sound
//!
//! The blob does not carry the multi-megabyte post-rewrite memory image; it
//! carries the original *binary* plus the identity triple that the full
//! verifying pipeline accepted: the capturing enclave's measurement, the
//! manifest digest, and the loader's code hash — all under an HMAC keyed by
//! [`sealing_key`]. Because the consumer pipeline is a deterministic
//! function of `(consumer image, layout, manifest, binary)` (the replay
//! argument documented on [`PreparedInstall`]), an importer with the *same*
//! measurement and manifest can re-derive the byte-identical image by
//! re-running only the discovery half of the pipeline
//! ([`install_trusted`]) — the MAC attests that the checking half already
//! accepted exactly these inputs. Every identity mismatch fails closed
//! before any rebuild happens.
//!
//! # Blob format (all integers little-endian)
//!
//! ```text
//! "DFLSEAL1" | measurement[32] | manifest_digest[32] | code_hash[32]
//!            | binary_len u64  | binary[binary_len]  | mac[32]
//! ```
//!
//! where `mac = HMAC-SHA256(sealing_key(measurement), all prior bytes)`
//! and [`sealing_key`] mixes the platform's fuse secret into the
//! derivation — the key is *not* computable from the blob's (public)
//! contents, so the untrusted-storage adversary can corrupt blobs but not
//! forge them.

use crate::consumer::{install_trusted, InstallError};
use crate::policy::Manifest;
use crate::runtime::{manifest_digest, place_io, PreparedInstall, CONSUMER_IMAGE};
use deflection_crypto::hmac::hmac_sha256;
use deflection_sgx_sim::layout::EnclaveLayout;
use deflection_sgx_sim::measure::{measure_enclave, sealing_key};
use deflection_sgx_sim::mem::Memory;
use std::error::Error as StdError;
use std::fmt;

/// Magic prefix of a sealed install blob (format version 1).
const MAGIC: &[u8; 8] = b"DFLSEAL1";
/// Fixed-size prefix: magic + measurement + manifest digest + code hash +
/// binary length.
const HEADER_LEN: usize = 8 + 32 + 32 + 32 + 8;
/// Trailing MAC length.
const MAC_LEN: usize = 32;

/// Rejection reasons when importing a sealed install blob. Every variant
/// fails closed: no partial state is constructed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum UnsealError {
    /// The blob is truncated, has a wrong magic, or an inconsistent length.
    Malformed,
    /// The blob was sealed by an enclave with a different measurement than
    /// the importer — the `EGETKEY` analogue would derive a different key.
    WrongMeasurement,
    /// The MAC does not verify under the importer's sealing key: the blob
    /// was tampered with (or sealed under a different key).
    BadMac,
    /// The importer's manifest differs from the one the image was verified
    /// under.
    WrongManifest,
    /// The deterministic rebuild rejected the sealed binary — the blob's
    /// payload cannot be the one the verifier accepted.
    Rebuild(InstallError),
    /// The I/O buffers no longer fit the heap (layout drift).
    IoPlacement,
    /// The rebuilt image's code hash differs from the sealed one.
    CodeHashMismatch,
}

impl fmt::Display for UnsealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsealError::Malformed => write!(f, "malformed sealed blob"),
            UnsealError::WrongMeasurement => {
                write!(f, "sealed under a different enclave measurement")
            }
            UnsealError::BadMac => write!(f, "sealing MAC verification failed"),
            UnsealError::WrongManifest => write!(f, "sealed under a different manifest"),
            UnsealError::Rebuild(e) => write!(f, "sealed binary failed rebuild: {e}"),
            UnsealError::IoPlacement => write!(f, "rebuilt image cannot host the I/O buffers"),
            UnsealError::CodeHashMismatch => write!(f, "rebuilt code hash mismatch"),
        }
    }
}

impl StdError for UnsealError {}

/// Constant-time-shaped MAC comparison (no early exit on first mismatch).
fn mac_eq(a: &[u8; 32], b: &[u8]) -> bool {
    if b.len() != 32 {
        return false;
    }
    a.iter().zip(b).fold(0u8, |acc, (x, y)| acc | (x ^ y)) == 0
}

impl PreparedInstall {
    /// Exports this image as a sealed blob: the original binary plus the
    /// identity triple the verifier accepted, MACed under the capturing
    /// enclave's sealing key. Safe to store on untrusted media — any
    /// tampering is caught by [`PreparedInstall::unseal`].
    #[must_use]
    pub fn seal(&self) -> Vec<u8> {
        let mut blob = Vec::with_capacity(HEADER_LEN + self.binary.len() + MAC_LEN);
        blob.extend_from_slice(MAGIC);
        blob.extend_from_slice(&self.measurement);
        blob.extend_from_slice(&self.manifest_digest);
        blob.extend_from_slice(&self.code_hash);
        blob.extend_from_slice(&(self.binary.len() as u64).to_le_bytes());
        blob.extend_from_slice(&self.binary);
        let mac = hmac_sha256(&sealing_key(&self.measurement), &blob);
        blob.extend_from_slice(&mac);
        blob
    }

    /// Imports a sealed blob into a [`PreparedInstall`] for a pool whose
    /// enclaves have `layout` and `manifest`, re-running **no** policy
    /// checks. Identity is checked in fail-closed order: framing, then the
    /// importer's measurement against the sealed one, then the MAC under
    /// the importer-derived key, then the manifest digest; only then is the
    /// image deterministically rebuilt and its code hash cross-checked.
    ///
    /// # Errors
    ///
    /// Returns [`UnsealError`] on any framing, identity, MAC or rebuild
    /// failure; no partial image is ever returned.
    pub fn unseal(
        blob: &[u8],
        layout: &EnclaveLayout,
        manifest: &Manifest,
    ) -> Result<PreparedInstall, UnsealError> {
        if blob.len() < HEADER_LEN + MAC_LEN || &blob[..8] != MAGIC {
            return Err(UnsealError::Malformed);
        }
        let mut measurement = [0u8; 32];
        measurement.copy_from_slice(&blob[8..40]);
        let mut sealed_manifest = [0u8; 32];
        sealed_manifest.copy_from_slice(&blob[40..72]);
        let mut code_hash = [0u8; 32];
        code_hash.copy_from_slice(&blob[72..104]);
        // `binary_len` is attacker-controlled: reject lengths that do not
        // fit a usize or whose framing sum would overflow instead of
        // panicking on a crafted blob in overflow-checked builds.
        let binary_len = u64::from_le_bytes(blob[104..112].try_into().expect("8 bytes"));
        let expected_len = usize::try_from(binary_len)
            .ok()
            .and_then(|n| n.checked_add(HEADER_LEN + MAC_LEN))
            .ok_or(UnsealError::Malformed)?;
        if blob.len() != expected_len {
            return Err(UnsealError::Malformed);
        }
        let binary_len = binary_len as usize;
        let (signed, mac) = blob.split_at(HEADER_LEN + binary_len);

        // Identity before integrity: an importer with a different
        // measurement derives an unrelated key, so its MAC check would
        // fail anyway — but reporting the measurement mismatch first
        // distinguishes "wrong enclave" from "tampered blob".
        let own = measure_enclave(CONSUMER_IMAGE, layout);
        if measurement != own {
            return Err(UnsealError::WrongMeasurement);
        }
        let expect = hmac_sha256(&sealing_key(&own), signed);
        if !mac_eq(&expect, mac) {
            return Err(UnsealError::BadMac);
        }
        if sealed_manifest != manifest_digest(manifest) {
            return Err(UnsealError::WrongManifest);
        }

        // Deterministic rebuild: discovery-only pipeline, zero checks.
        let binary = &signed[HEADER_LEN..];
        let mut mem = Memory::new(layout.clone());
        let installed =
            install_trusted(binary, manifest, &mut mem).map_err(UnsealError::Rebuild)?;
        let io = place_io(&mut mem, &installed, layout, manifest)
            .map_err(|_| UnsealError::IoPlacement)?;
        if installed.program.code_hash != code_hash {
            return Err(UnsealError::CodeHashMismatch);
        }
        Ok(PreparedInstall {
            measurement,
            code_hash,
            mem,
            installed,
            io,
            binary: binary.to_vec(),
            manifest_digest: sealed_manifest,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Manifest;
    use crate::producer::produce;
    use crate::runtime::BootstrapEnclave;
    use deflection_sgx_sim::layout::MemConfig;

    const SRC: &str = "fn main() -> int { return 40 + 2; }";

    fn captured() -> (PreparedInstall, EnclaveLayout, Manifest) {
        let layout = EnclaveLayout::new(MemConfig::small());
        let manifest = Manifest::ccaas();
        let binary = produce(SRC, &manifest.policy).unwrap().serialize();
        let mut enclave = BootstrapEnclave::new(layout.clone(), manifest.clone());
        let prepared = enclave.install_capture(&binary).unwrap();
        (prepared, layout, manifest)
    }

    #[test]
    fn seal_roundtrip_preserves_image() {
        let (prepared, layout, manifest) = captured();
        let blob = prepared.seal();
        let back = PreparedInstall::unseal(&blob, &layout, &manifest).unwrap();
        assert_eq!(back.code_hash(), prepared.code_hash());
        assert_eq!(back.measurement(), prepared.measurement());
        // The rebuilt image is runnable and produces the program's output.
        let mut enclave = BootstrapEnclave::new(layout, manifest);
        enclave.install_replayed(&back).unwrap();
        let report = enclave.run(1_000_000).unwrap();
        assert_eq!(report.exit.exit_value(), Some(42));
    }

    #[test]
    fn every_bit_flip_in_the_header_is_rejected() {
        let (prepared, layout, manifest) = captured();
        let blob = prepared.seal();
        for byte in 0..HEADER_LEN {
            let mut bad = blob.clone();
            bad[byte] ^= 0x40;
            assert!(
                PreparedInstall::unseal(&bad, &layout, &manifest).is_err(),
                "header byte {byte} flip accepted"
            );
        }
    }

    #[test]
    fn payload_and_mac_tampering_fail_the_mac() {
        let (prepared, layout, manifest) = captured();
        let blob = prepared.seal();
        let mut bad = blob.clone();
        bad[HEADER_LEN + 3] ^= 1; // binary payload
        assert_eq!(
            PreparedInstall::unseal(&bad, &layout, &manifest).unwrap_err(),
            UnsealError::BadMac
        );
        let mut bad = blob;
        let last = bad.len() - 1; // MAC itself
        bad[last] ^= 1;
        assert_eq!(
            PreparedInstall::unseal(&bad, &layout, &manifest).unwrap_err(),
            UnsealError::BadMac
        );
    }

    #[test]
    fn wrong_measurement_is_rejected_before_the_mac() {
        let (prepared, _, manifest) = captured();
        let blob = prepared.seal();
        // An importer with a different layout has a different measurement.
        let other = EnclaveLayout::new(MemConfig::paper());
        assert_eq!(
            PreparedInstall::unseal(&blob, &other, &manifest).unwrap_err(),
            UnsealError::WrongMeasurement
        );
    }

    #[test]
    fn wrong_manifest_is_rejected() {
        let (prepared, layout, manifest) = captured();
        let blob = prepared.seal();
        let mut other = manifest;
        other.output_budget += 1;
        assert_eq!(
            PreparedInstall::unseal(&blob, &layout, &other).unwrap_err(),
            UnsealError::WrongManifest
        );
    }

    #[test]
    fn forged_blob_under_public_derivation_is_rejected() {
        // The untrusted-storage adversary knows the blob format, the
        // consumer image, the layout and the manifest — everything public.
        // It must still be unable to seal a binary of its choosing: the
        // old measurement-only key derivation made this forgery succeed.
        let (prepared, layout, manifest) = captured();
        let evil_binary =
            produce("fn main() -> int { return 666; }", &manifest.policy).unwrap().serialize();
        let mut forged = Vec::new();
        forged.extend_from_slice(MAGIC);
        forged.extend_from_slice(&prepared.measurement);
        forged.extend_from_slice(&prepared.manifest_digest);
        forged.extend_from_slice(&deflection_crypto::sha256::sha256(&evil_binary));
        forged.extend_from_slice(&(evil_binary.len() as u64).to_le_bytes());
        forged.extend_from_slice(&evil_binary);
        // Best public guess at the key: HMAC(measurement, label) — the
        // pre-fix derivation.
        let guessed_key = hmac_sha256(&prepared.measurement, b"deflection-sealing-key-v1");
        let mac = hmac_sha256(&guessed_key, &forged);
        forged.extend_from_slice(&mac);
        assert_eq!(
            PreparedInstall::unseal(&forged, &layout, &manifest).unwrap_err(),
            UnsealError::BadMac
        );
    }

    #[test]
    fn huge_claimed_binary_len_is_malformed_not_a_panic() {
        // A crafted `binary_len` near u64::MAX must be rejected as
        // Malformed, not overflow the framing arithmetic.
        let (prepared, layout, manifest) = captured();
        let mut bad = prepared.seal();
        bad[104..112].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            PreparedInstall::unseal(&bad, &layout, &manifest).unwrap_err(),
            UnsealError::Malformed
        );
        bad[104..112].copy_from_slice(&(u64::MAX - (HEADER_LEN + MAC_LEN) as u64).to_le_bytes());
        assert_eq!(
            PreparedInstall::unseal(&bad, &layout, &manifest).unwrap_err(),
            UnsealError::Malformed
        );
    }

    #[test]
    fn truncated_and_garbage_blobs_are_malformed() {
        let (prepared, layout, manifest) = captured();
        let blob = prepared.seal();
        assert_eq!(
            PreparedInstall::unseal(&blob[..blob.len() - 1], &layout, &manifest).unwrap_err(),
            UnsealError::Malformed
        );
        assert_eq!(
            PreparedInstall::unseal(b"not a seal", &layout, &manifest).unwrap_err(),
            UnsealError::Malformed
        );
        assert_eq!(
            PreparedInstall::unseal(&blob[..HEADER_LEN], &layout, &manifest).unwrap_err(),
            UnsealError::Malformed
        );
    }
}
