//! Security policies, policy switches and the enclave manifest.
//!
//! The paper defines policies P0–P6 (Section IV-B). P0 (enclave interface
//! control) is enforced by the runtime's manifest and OCall wrappers; P1–P6
//! are enforced by security annotations the producer instruments and the
//! in-enclave verifier checks. Like the paper's IR-level switches (Section
//! V-A), [`PolicySet`] selects which passes run, and the evaluation's four
//! measurement levels (`P1`, `P1+P2`, `P1–P5`, `P1–P6`) are provided as
//! constructors.

use deflection_isa::OcallCode;
use serde::{Deserialize, Serialize};

/// Runtime abort codes carried by `abort` instructions, one per policy.
pub mod abort_codes {
    /// P1/P3/P4: store outside the permitted window.
    pub const STORE_BOUNDS: u8 = 1;
    /// P2: stack pointer left the stack region.
    pub const RSP_BOUNDS: u8 = 2;
    /// P5: indirect-branch index out of table range.
    pub const CFI_FORWARD: u8 = 5;
    /// P5: return address mismatch against the shadow stack.
    pub const CFI_RETURN: u8 = 7;
    /// P6: AEX threshold exceeded or co-location alarm.
    pub const AEX: u8 = 6;
}

/// Which annotation passes are applied / verified.
///
/// `store_bounds` covers P1, P3 and P4 together: the paper notes the same
/// check template enforces all three "via different boundaries", and the
/// rewriter points the bounds at the data window that excludes both the
/// security-critical pages (P3) and the RWX code pages (P4, software DEP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicySet {
    /// P1 (+P3/P4): bounds-check every memory store.
    pub store_bounds: bool,
    /// P2: check `rsp` after every explicit stack-pointer write.
    pub rsp_integrity: bool,
    /// P5: forward-edge CFI (branch-table bound check) and shadow-stack
    /// return protection.
    pub cfi: bool,
    /// P6: per-basic-block SSA marker checks with AEX counting.
    pub aex: bool,
    /// P6 granularity: a marker check at least every `q` instructions
    /// within a basic block.
    pub q: u32,
}

impl PolicySet {
    /// No annotations at all (the baseline the paper measures against).
    #[must_use]
    pub fn none() -> Self {
        PolicySet { store_bounds: false, rsp_integrity: false, cfi: false, aex: false, q: 20 }
    }

    /// Evaluation level "P1": explicit store checks only.
    #[must_use]
    pub fn p1() -> Self {
        PolicySet { store_bounds: true, ..Self::none() }
    }

    /// Evaluation level "P1+P2": store checks plus RSP integrity.
    #[must_use]
    pub fn p1_p2() -> Self {
        PolicySet { store_bounds: true, rsp_integrity: true, ..Self::none() }
    }

    /// Evaluation level "P1–P5": all memory-write and control-flow checks.
    #[must_use]
    pub fn p1_p5() -> Self {
        PolicySet { store_bounds: true, rsp_integrity: true, cfi: true, ..Self::none() }
    }

    /// Evaluation level "P1–P6": everything, including side/covert-channel
    /// mitigation.
    #[must_use]
    pub fn full() -> Self {
        PolicySet { store_bounds: true, rsp_integrity: true, cfi: true, aex: true, q: 20 }
    }

    /// The four levels in the order the paper's tables report them.
    #[must_use]
    pub fn levels() -> [(&'static str, PolicySet); 4] {
        [
            ("P1", Self::p1()),
            ("P1+P2", Self::p1_p2()),
            ("P1-P5", Self::p1_p5()),
            ("P1-P6", Self::full()),
        ]
    }
}

impl Default for PolicySet {
    fn default() -> Self {
        Self::full()
    }
}

/// The bootstrap enclave's manifest — the EDL-file analogue (Section V-B):
/// which OCalls the loaded binary may make, how P0 shapes the output
/// channel, and the P6 threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// OCall service codes the wrappers accept; anything else faults.
    pub allowed_ocalls: Vec<u8>,
    /// Every outgoing record is padded to exactly this many plaintext bytes
    /// before sealing (P0 entropy control).
    pub output_record_len: usize,
    /// Upper bound on total plaintext bytes the program may emit over its
    /// lifetime (P0 entropy budget); `send` faults beyond it.
    pub output_budget: usize,
    /// Capacity of the input buffer placed in the heap.
    pub input_capacity: usize,
    /// Capacity of the output staging buffer.
    pub output_capacity: usize,
    /// P6: abort once this many AEX events have been counted.
    pub aex_threshold: u64,
    /// Optional processing-time blurring (paper Section VII): when set, the
    /// runtime pads every run to the next multiple of this many instructions
    /// before releasing its output, closing the completion-time covert
    /// channel.
    pub time_blur_quantum: Option<u64>,
    /// The policy set the verifier must see enforced in the binary.
    pub policy: PolicySet,
}

impl Manifest {
    /// A permissive default for the CCaaS setting: `send`/`recv`/`log`/
    /// `clock` allowed, 256-byte records, generous budget.
    #[must_use]
    pub fn ccaas() -> Self {
        Manifest {
            allowed_ocalls: vec![
                OcallCode::Send as u8,
                OcallCode::Recv as u8,
                OcallCode::Log as u8,
                OcallCode::Clock as u8,
            ],
            output_record_len: 256,
            output_budget: 1 << 20,
            input_capacity: 1 << 20,
            output_capacity: 1 << 20,
            aex_threshold: 1000,
            time_blur_quantum: None,
            policy: PolicySet::full(),
        }
    }

    /// Whether OCall `code` is allowed.
    #[must_use]
    pub fn allows(&self, code: u8) -> bool {
        self.allowed_ocalls.contains(&code)
    }
}

impl Default for Manifest {
    fn default() -> Self {
        Self::ccaas()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_monotone() {
        let levels = PolicySet::levels();
        assert!(!levels[0].1.rsp_integrity);
        assert!(levels[1].1.rsp_integrity && !levels[1].1.cfi);
        assert!(levels[2].1.cfi && !levels[2].1.aex);
        assert!(levels[3].1.aex);
    }

    #[test]
    fn manifest_allows() {
        let m = Manifest::ccaas();
        assert!(m.allows(OcallCode::Send as u8));
        assert!(!m.allows(99));
    }

    #[test]
    fn manifest_serde_roundtrip() {
        let m = Manifest::ccaas();
        let json = serde_json::to_string(&m).unwrap();
        let back: Manifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
