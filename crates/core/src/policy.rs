//! Security policies, policy switches and the enclave manifest.
//!
//! The paper defines policies P0–P6 (Section IV-B). P0 (enclave interface
//! control) is enforced by the runtime's manifest and OCall wrappers; P1–P6
//! are enforced by security annotations the producer instruments and the
//! in-enclave verifier checks. Like the paper's IR-level switches (Section
//! V-A), [`PolicySet`] selects which passes run, and the evaluation's four
//! measurement levels (`P1`, `P1+P2`, `P1–P5`, `P1–P6`) are provided as
//! constructors.

use deflection_isa::OcallCode;
use std::fmt;

/// Runtime abort codes carried by `abort` instructions, one per policy.
pub mod abort_codes {
    /// P1/P3/P4: store outside the permitted window.
    pub const STORE_BOUNDS: u8 = 1;
    /// P2: stack pointer left the stack region.
    pub const RSP_BOUNDS: u8 = 2;
    /// P5: indirect-branch index out of table range.
    pub const CFI_FORWARD: u8 = 5;
    /// P5: return address mismatch against the shadow stack.
    pub const CFI_RETURN: u8 = 7;
    /// P6: AEX threshold exceeded or co-location alarm.
    pub const AEX: u8 = 6;
}

/// Which annotation passes are applied / verified.
///
/// `store_bounds` covers P1, P3 and P4 together: the paper notes the same
/// check template enforces all three "via different boundaries", and the
/// rewriter points the bounds at the data window that excludes both the
/// security-critical pages (P3) and the RWX code pages (P4, software DEP).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicySet {
    /// P1 (+P3/P4): bounds-check every memory store.
    pub store_bounds: bool,
    /// P2: check `rsp` after every explicit stack-pointer write.
    pub rsp_integrity: bool,
    /// P5: forward-edge CFI (branch-table bound check) and shadow-stack
    /// return protection.
    pub cfi: bool,
    /// P6: per-basic-block SSA marker checks with AEX counting.
    pub aex: bool,
    /// P6 granularity: a marker check at least every `q` instructions
    /// within a basic block.
    pub q: u32,
    /// Guard elision: the producer may drop P1/P2 annotations on operations
    /// its abstract interpretation proves safe, and the verifier accepts an
    /// unguarded operation only after *its own* in-enclave run of the same
    /// analysis re-derives the proof (no producer hints cross the boundary).
    pub elide_guards: bool,
}

impl PolicySet {
    /// No annotations at all (the baseline the paper measures against).
    #[must_use]
    pub fn none() -> Self {
        PolicySet {
            store_bounds: false,
            rsp_integrity: false,
            cfi: false,
            aex: false,
            q: 20,
            elide_guards: false,
        }
    }

    /// Evaluation level "P1": explicit store checks only.
    #[must_use]
    pub fn p1() -> Self {
        PolicySet { store_bounds: true, ..Self::none() }
    }

    /// Evaluation level "P1+P2": store checks plus RSP integrity.
    #[must_use]
    pub fn p1_p2() -> Self {
        PolicySet { store_bounds: true, rsp_integrity: true, ..Self::none() }
    }

    /// Evaluation level "P1–P5": all memory-write and control-flow checks.
    #[must_use]
    pub fn p1_p5() -> Self {
        PolicySet { store_bounds: true, rsp_integrity: true, cfi: true, ..Self::none() }
    }

    /// Evaluation level "P1–P6": everything, including side/covert-channel
    /// mitigation.
    #[must_use]
    pub fn full() -> Self {
        PolicySet { store_bounds: true, rsp_integrity: true, cfi: true, aex: true, ..Self::none() }
    }

    /// Turns on guard elision (producer strips provably safe P1/P2
    /// annotations; the verifier re-proves every elision in-enclave).
    #[must_use]
    pub fn with_elision(mut self) -> Self {
        self.elide_guards = true;
        self
    }

    /// The four levels in the order the paper's tables report them.
    #[must_use]
    pub fn levels() -> [(&'static str, PolicySet); 4] {
        [
            ("P1", Self::p1()),
            ("P1+P2", Self::p1_p2()),
            ("P1-P5", Self::p1_p5()),
            ("P1-P6", Self::full()),
        ]
    }
}

impl Default for PolicySet {
    fn default() -> Self {
        Self::full()
    }
}

/// The bootstrap enclave's manifest — the EDL-file analogue (Section V-B):
/// which OCalls the loaded binary may make, how P0 shapes the output
/// channel, and the P6 threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// OCall service codes the wrappers accept; anything else faults.
    pub allowed_ocalls: Vec<u8>,
    /// Every outgoing record is padded to exactly this many plaintext bytes
    /// before sealing (P0 entropy control).
    pub output_record_len: usize,
    /// Upper bound on total plaintext bytes the program may emit per run
    /// (P0 entropy budget); `send` faults beyond it. The counter resets at
    /// the start of every [`crate::runtime::BootstrapEnclave::run`], so a
    /// long-lived worker serving many in-budget requests never accumulates
    /// spurious budget pressure.
    pub output_budget: usize,
    /// Optional cap on total plaintext bytes over the enclave's whole
    /// lifetime, tracked by a ledger that never resets (and survives pool
    /// respawns of the same slot). `None` leaves cumulative output
    /// unbounded — the per-run budget alone matches the paper's
    /// per-inference P0 entropy control; deployments that need a hard
    /// bound on `budget × runs` leakage set this.
    pub lifetime_output_budget: Option<u64>,
    /// Capacity of the input buffer placed in the heap.
    pub input_capacity: usize,
    /// Capacity of the output staging buffer.
    pub output_capacity: usize,
    /// P6: abort once this many AEX events have been counted.
    pub aex_threshold: u64,
    /// Optional processing-time blurring (paper Section VII): when set, the
    /// runtime pads every run to the next multiple of this many instructions
    /// before releasing its output, closing the completion-time covert
    /// channel.
    pub time_blur_quantum: Option<u64>,
    /// The policy set the verifier must see enforced in the binary.
    pub policy: PolicySet,
}

impl Manifest {
    /// A permissive default for the CCaaS setting: `send`/`recv`/`log`/
    /// `clock` allowed, 256-byte records, generous budget.
    #[must_use]
    pub fn ccaas() -> Self {
        Manifest {
            allowed_ocalls: vec![
                OcallCode::Send as u8,
                OcallCode::Recv as u8,
                OcallCode::Log as u8,
                OcallCode::Clock as u8,
            ],
            output_record_len: 256,
            output_budget: 1 << 20,
            lifetime_output_budget: None,
            input_capacity: 1 << 20,
            output_capacity: 1 << 20,
            aex_threshold: 1000,
            time_blur_quantum: None,
            policy: PolicySet::full(),
        }
    }

    /// Whether OCall `code` is allowed.
    #[must_use]
    pub fn allows(&self, code: u8) -> bool {
        self.allowed_ocalls.contains(&code)
    }

    /// Serializes the manifest as JSON — the wire form exchanged between
    /// the service provider and the bootstrap enclave (EDL analogue).
    /// Hand-rolled: the enclave TCB takes no serialization dependency.
    #[must_use]
    pub fn to_json(&self) -> String {
        let ocalls: Vec<String> = self.allowed_ocalls.iter().map(u8::to_string).collect();
        let blur = match self.time_blur_quantum {
            Some(v) => v.to_string(),
            None => "null".into(),
        };
        let lifetime = match self.lifetime_output_budget {
            Some(v) => v.to_string(),
            None => "null".into(),
        };
        let p = &self.policy;
        format!(
            concat!(
                "{{\"allowed_ocalls\":[{}],\"output_record_len\":{},",
                "\"output_budget\":{},\"lifetime_output_budget\":{},",
                "\"input_capacity\":{},\"output_capacity\":{},",
                "\"aex_threshold\":{},\"time_blur_quantum\":{},\"policy\":{{",
                "\"store_bounds\":{},\"rsp_integrity\":{},\"cfi\":{},\"aex\":{},",
                "\"q\":{},\"elide_guards\":{}}}}}"
            ),
            ocalls.join(","),
            self.output_record_len,
            self.output_budget,
            lifetime,
            self.input_capacity,
            self.output_capacity,
            self.aex_threshold,
            blur,
            p.store_bounds,
            p.rsp_integrity,
            p.cfi,
            p.aex,
            p.q,
            p.elide_guards,
        )
    }

    /// Parses a manifest from the JSON form [`Manifest::to_json`] emits.
    ///
    /// # Errors
    ///
    /// Returns [`ManifestParseError`] on malformed JSON, a missing field, or
    /// an out-of-range number.
    pub fn from_json(input: &str) -> Result<Self, ManifestParseError> {
        let v = json::parse(input)?;
        let top = v.as_object()?;
        let policy_val = json::field(top, "policy")?;
        let pol = policy_val.as_object()?;
        let policy = PolicySet {
            store_bounds: json::field(pol, "store_bounds")?.as_bool()?,
            rsp_integrity: json::field(pol, "rsp_integrity")?.as_bool()?,
            cfi: json::field(pol, "cfi")?.as_bool()?,
            aex: json::field(pol, "aex")?.as_bool()?,
            q: json::field(pol, "q")?.as_u32()?,
            // Absent in manifests written before the elision switch existed.
            elide_guards: match json::field(pol, "elide_guards") {
                Ok(v) => v.as_bool()?,
                Err(_) => false,
            },
        };
        let ocalls = json::field(top, "allowed_ocalls")?
            .as_array()?
            .iter()
            .map(|v| v.as_u64().and_then(json::to_u8))
            .collect::<Result<Vec<u8>, _>>()?;
        let blur = match json::field(top, "time_blur_quantum")? {
            json::Value::Null => None,
            other => Some(other.as_u64()?),
        };
        // Absent in manifests written before the lifetime ledger existed.
        let lifetime = match json::field(top, "lifetime_output_budget") {
            Ok(json::Value::Null) | Err(_) => None,
            Ok(other) => Some(other.as_u64()?),
        };
        Ok(Manifest {
            allowed_ocalls: ocalls,
            output_record_len: json::field(top, "output_record_len")?.as_usize()?,
            output_budget: json::field(top, "output_budget")?.as_usize()?,
            lifetime_output_budget: lifetime,
            input_capacity: json::field(top, "input_capacity")?.as_usize()?,
            output_capacity: json::field(top, "output_capacity")?.as_usize()?,
            aex_threshold: json::field(top, "aex_threshold")?.as_u64()?,
            time_blur_quantum: blur,
            policy,
        })
    }
}

/// Error from [`Manifest::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestParseError(String);

impl fmt::Display for ManifestParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest parse error: {}", self.0)
    }
}

impl std::error::Error for ManifestParseError {}

/// A minimal JSON reader covering exactly the manifest grammar: objects,
/// arrays, unsigned integers, booleans and `null` (strings appear only as
/// object keys).
mod json {
    use super::ManifestParseError;

    pub(super) enum Value {
        Null,
        Bool(bool),
        Num(u64),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    fn err(msg: impl Into<String>) -> ManifestParseError {
        ManifestParseError(msg.into())
    }

    impl Value {
        pub(super) fn as_bool(&self) -> Result<bool, ManifestParseError> {
            match self {
                Value::Bool(b) => Ok(*b),
                _ => Err(err("expected bool")),
            }
        }
        pub(super) fn as_u64(&self) -> Result<u64, ManifestParseError> {
            match self {
                Value::Num(n) => Ok(*n),
                _ => Err(err("expected number")),
            }
        }
        pub(super) fn as_u32(&self) -> Result<u32, ManifestParseError> {
            u32::try_from(self.as_u64()?).map_err(|_| err("number exceeds u32"))
        }
        pub(super) fn as_usize(&self) -> Result<usize, ManifestParseError> {
            usize::try_from(self.as_u64()?).map_err(|_| err("number exceeds usize"))
        }
        pub(super) fn as_array(&self) -> Result<&[Value], ManifestParseError> {
            match self {
                Value::Arr(v) => Ok(v),
                _ => Err(err("expected array")),
            }
        }
        pub(super) fn as_object(&self) -> Result<&[(String, Value)], ManifestParseError> {
            match self {
                Value::Obj(v) => Ok(v),
                _ => Err(err("expected object")),
            }
        }
    }

    pub(super) fn to_u8(n: u64) -> Result<u8, ManifestParseError> {
        u8::try_from(n).map_err(|_| err("number exceeds u8"))
    }

    pub(super) fn field<'a>(
        obj: &'a [(String, Value)],
        name: &str,
    ) -> Result<&'a Value, ManifestParseError> {
        obj.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| err(format!("missing field `{name}`")))
    }

    pub(super) fn parse(input: &str) -> Result<Value, ManifestParseError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err("trailing bytes after JSON value"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), ManifestParseError> {
        skip_ws(b, pos);
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(err(format!("expected `{}` at byte {}", c as char, pos)))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, ManifestParseError> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b't') => parse_lit(b, pos, b"true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, b"false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, b"null", Value::Null),
            Some(c) if c.is_ascii_digit() => parse_number(b, pos),
            _ => Err(err(format!("unexpected byte at {pos}"))),
        }
    }

    fn parse_lit(
        b: &[u8],
        pos: &mut usize,
        lit: &[u8],
        v: Value,
    ) -> Result<Value, ManifestParseError> {
        if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(err("bad literal"))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, ManifestParseError> {
        let start = *pos;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| err("bad number"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ManifestParseError> {
        expect(b, pos, b'"')?;
        let start = *pos;
        while *pos < b.len() && b[*pos] != b'"' {
            if b[*pos] == b'\\' {
                return Err(err("escapes not supported in manifest keys"));
            }
            *pos += 1;
        }
        if *pos >= b.len() {
            return Err(err("unterminated string"));
        }
        let s = std::str::from_utf8(&b[start..*pos]).map_err(|_| err("non-UTF-8 key"))?;
        *pos += 1;
        Ok(s.to_string())
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, ManifestParseError> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, ManifestParseError> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            let key = parse_string(b, pos)?;
            expect(b, pos, b':')?;
            fields.push((key, parse_value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(err("expected `,` or `}`")),
            }
        }
    }
}

impl Default for Manifest {
    fn default() -> Self {
        Self::ccaas()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_monotone() {
        let levels = PolicySet::levels();
        assert!(!levels[0].1.rsp_integrity);
        assert!(levels[1].1.rsp_integrity && !levels[1].1.cfi);
        assert!(levels[2].1.cfi && !levels[2].1.aex);
        assert!(levels[3].1.aex);
    }

    #[test]
    fn manifest_allows() {
        let m = Manifest::ccaas();
        assert!(m.allows(OcallCode::Send as u8));
        assert!(!m.allows(99));
    }

    #[test]
    fn manifest_json_roundtrip() {
        let mut m = Manifest::ccaas();
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        m.time_blur_quantum = Some(4096);
        m.policy = PolicySet::p1_p2().with_elision();
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        m.lifetime_output_budget = Some(1 << 24);
        let back = Manifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_without_lifetime_budget_field_still_parses() {
        // Wire compatibility: manifests serialized before the lifetime
        // ledger existed omit the field; parsing defaults it to None.
        let json = Manifest::ccaas().to_json().replace("\"lifetime_output_budget\":null,", "");
        let back = Manifest::from_json(&json).unwrap();
        assert_eq!(back, Manifest::ccaas());
    }

    #[test]
    fn manifest_json_rejects_garbage() {
        assert!(Manifest::from_json("").is_err());
        assert!(Manifest::from_json("{\"allowed_ocalls\":[}").is_err());
        assert!(Manifest::from_json("{}").is_err());
        let valid = Manifest::ccaas().to_json();
        assert!(Manifest::from_json(&valid[..valid.len() - 1]).is_err());
    }

    #[test]
    fn elision_switch_composes() {
        let p = PolicySet::full().with_elision();
        assert!(p.elide_guards && p.store_bounds && p.aex);
        assert!(!PolicySet::full().elide_guards);
    }
}
